"""Shim for environments without the `wheel` package (offline editable install).

`pip install -e . --no-build-isolation --no-use-pep517` uses this legacy path;
all metadata -- including the dependency lists CI installs via
`pip install -r requirements.txt` -- lives in pyproject.toml.
"""

from setuptools import setup

setup()
