"""Ground-truth mechanistic timing model (the "Sniper" of this repo).

Sniper's interval core model decomposes CPI into an execution component and
miss-event penalties; we implement the same first-order decomposition over
the full per-core configuration grid ``(core size c, frequency f, ways w)``:

``TPI(c,f,w) [ns/instr] = cpi_exe(c) / f  +  mpi(w) * L_eff(c,w) / MLP(c,w)``

The memory term is wall-clock (frequency-independent): off-chip latency does
not scale with the core clock, which is the physical fact every DVFS/cache
trade-off in the paper rests on.  ``L_eff`` includes a bandwidth queueing
term solved by fixed-point iteration (the demanded bandwidth depends on TPI,
which depends on the latency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SystemConfig
from repro.cpu.microarch import exec_cpi_by_size
from repro.mem.dram import effective_latency_ns
from repro.util.validation import require
from repro.workloads.phases import PhaseSpec

__all__ = ["PhaseExecution", "timing_grid", "FIXED_POINT_ITERS"]

#: Fixed-point iterations for the latency/bandwidth loop (converges in 2-3).
FIXED_POINT_ITERS = 4


@dataclass(frozen=True)
class PhaseExecution:
    """Per-phase microarchitecture-independent inputs to the timing model."""

    spec: PhaseSpec
    mpki: np.ndarray          # (ways,) ground-truth miss curve
    mlp: np.ndarray           # (ncore_sizes, ways) ground-truth overlap factors

    def __post_init__(self) -> None:
        require(self.mlp.ndim == 2, "mlp must be (ncore_sizes, ways)")
        require(self.mlp.shape[1] == len(self.mpki), "mlp/mpki ways mismatch")


def timing_grid(system: SystemConfig, phase: PhaseExecution) -> tuple[np.ndarray, np.ndarray]:
    """Ground-truth ``TPI[c, f, w]`` (ns/instr) and ``L_eff[c, f, w]`` (ns).

    Returns both so the power model can charge queueing-inflated DRAM time
    consistently and the counter model can report the observed latency.
    """
    freqs = system.vf.freqs_array()                      # (F,)
    cpi_exe = exec_cpi_by_size(system, phase.spec.base_cpi, phase.spec.ilp_sensitivity)  # (C,)
    mpi = phase.mpki / 1000.0                            # (W,)
    mlp = phase.mlp                                      # (C, W)

    compute_tpi = cpi_exe[:, None, None] / freqs[None, :, None]     # (C, F, 1)
    per_miss = (mpi[None, :] / mlp)[:, None, :]                     # (C, 1, W)

    latency = np.full(
        (system.ncore_sizes, len(freqs), len(phase.mpki)), system.mem.latency_ns
    )
    share = system.per_core_bw_gbps
    mpi_b = mpi[None, None, :]
    for _ in range(FIXED_POINT_ITERS):
        tpi = compute_tpi + per_miss * latency
        latency = effective_latency_ns(
            system.mem, share, mpi_b, tpi, system.llc.line_bytes
        )
    tpi = compute_tpi + per_miss * latency
    return tpi, latency
