"""CPU substrate: DVFS, reconfigurable micro-architecture, timing and power."""

from repro.cpu.dvfs import dvfs_transition_cost_ns, voltage_ratio_sq
from repro.cpu.microarch import ilp_cpi_factor, exec_cpi_by_size
from repro.cpu.interval_model import PhaseExecution, timing_grid
from repro.cpu.power import energy_grid
from repro.cpu.counters import CounterSnapshot, observe_counters

__all__ = [
    "dvfs_transition_cost_ns",
    "voltage_ratio_sq",
    "ilp_cpi_factor",
    "exec_cpi_by_size",
    "PhaseExecution",
    "timing_grid",
    "energy_grid",
    "CounterSnapshot",
    "observe_counters",
]
