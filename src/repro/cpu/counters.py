"""Hardware performance counters as the RMA observes them.

At every invocation the paper's RMA "starts by collecting statistics of the
past interval from hardware performance counters and an Auxiliary Tag
Directory".  This module produces that counter snapshot for an interval
executed in a given phase at a given allocation.

Counter values are *ground truth* (counters count exactly); the RMA's
estimation error comes from three mechanistic sources, not injected noise:

* the next interval may be a different phase (phase-lag error -- decisions
  are made from the past interval's statistics);
* the ATD / MLP-ATD readings are set-sampled and quantised;
* counter-derived indices (ILP sensitivity, dynamic EPI) are per-phase
  calibration estimates with a small systematic bias, modelling the fact
  that a real counter set underdetermines them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import Allocation, SystemConfig
from repro.util.rng import rng_for

__all__ = ["CounterSnapshot", "observe_counters"]

#: Systematic relative bias bound of counter-derived calibration estimates.
ILP_INDEX_BIAS = 0.06
EPI_EST_BIAS = 0.04


@dataclass(frozen=True)
class CounterSnapshot:
    """Statistics of one executed interval, as read by the RMA.

    All quantities are per the *current* allocation (``core``, ``freq``,
    ``ways`` indices recorded alongside so the models can rescale).
    """

    instructions: float
    cycles: float
    llc_misses: float
    llc_accesses: float
    mem_stall_cycles: float
    mlp_observed: float
    avg_mem_latency_ns: float
    energy_nj: float
    # counter-derived calibration estimates (systematically biased)
    ilp_index_est: float
    epi_dyn_est_nj: float
    # the allocation the interval ran at
    core_index: int
    freq_index: int
    ways: int
    freq_ghz: float

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions

    @property
    def exec_cpi(self) -> float:
        """Execution (non-memory-stall) cycles per instruction."""
        return (self.cycles - self.mem_stall_cycles) / self.instructions

    @property
    def mpki(self) -> float:
        return self.llc_misses / self.instructions * 1000.0


def observe_counters(
    system: SystemConfig,
    record,  # simulation.database.PhaseRecord (duck-typed to avoid a cycle)
    alloc: Allocation,
    instructions: float | None = None,
) -> CounterSnapshot:
    """Counter snapshot for one interval of ``record``'s phase at ``alloc``."""
    n = float(system.interval_instructions if instructions is None else instructions)
    c, fi, w = alloc.core, alloc.freq, alloc.ways
    f = system.vf.freqs_ghz[fi]
    tpi = float(record.tpi[c, fi, w - 1])
    latency = float(record.latency[c, fi, w - 1])
    mpki = float(record.mpki_full[w - 1])
    mlp = float(record.mlp_full[c, w - 1])
    mpi = mpki / 1000.0

    cycles = tpi * f * n
    stall_cycles = (mpi * latency / mlp) * f * n
    misses = mpi * n
    accesses = record.apki / 1000.0 * n
    energy = float(record.epi[c, fi, w - 1]) * n

    # Per-phase systematic calibration bias (deterministic, seeded).
    rng = rng_for("counters", record.bench, record.phase_key)
    ilp_est = float(
        min(1.0, max(0.0, record.ilp_sensitivity + rng.uniform(-ILP_INDEX_BIAS, ILP_INDEX_BIAS)))
    )
    epi_est = float(record.epi_dyn * (1.0 + rng.uniform(-EPI_EST_BIAS, EPI_EST_BIAS)))

    return CounterSnapshot(
        instructions=n,
        cycles=cycles,
        llc_misses=misses,
        llc_accesses=accesses,
        mem_stall_cycles=stall_cycles,
        mlp_observed=mlp,
        avg_mem_latency_ns=latency,
        energy_nj=energy,
        ilp_index_est=ilp_est,
        epi_dyn_est_nj=epi_est,
        core_index=c,
        freq_index=fi,
        ways=w,
        freq_ghz=f,
    )
