"""DVFS helpers: voltage scaling factors and transition costs.

The quadratic dependence of dynamic energy on voltage is the physical lever
behind the paper's central trade-off: an application that gains cache ways
can lower its frequency (and voltage) while holding performance, cutting
dynamic energy quadratically -- whereas compensating lost ways with a higher
VF costs quadratically and does nothing for memory stall time (thesis §3.2).
"""

from __future__ import annotations

import numpy as np

from repro.config import VFTable

__all__ = ["voltage_ratio_sq", "voltage_ratio", "dvfs_transition_cost_ns"]


def voltage_ratio(vf: VFTable, f_ghz: float | np.ndarray) -> np.ndarray:
    """``V(f) / Vnom`` -- the leakage-power scaling factor."""
    return (vf.v0 + vf.kv * np.asarray(f_ghz, dtype=float)) / vf.vnom


def voltage_ratio_sq(vf: VFTable, f_ghz: float | np.ndarray) -> np.ndarray:
    """``(V(f) / Vnom)^2`` -- the dynamic-energy scaling factor."""
    r = voltage_ratio(vf, f_ghz)
    return r * r


def dvfs_transition_cost_ns(transition_us: float, old_index: int, new_index: int) -> float:
    """Stall time of a VF transition (zero when the level is unchanged).

    Modelled as a fixed PLL/regulator relock stall, independent of the level
    distance -- the common behaviour of integrated voltage regulators.
    """
    if old_index == new_index:
        return 0.0
    return transition_us * 1000.0
