"""Re-configurable core micro-architecture (Paper II substrate).

Paper II's processor can deactivate sections of its micro-architectural
resources (ROB/issue/MSHR segments, à la Albonesi et al.).  We expose that as
the discrete :class:`~repro.config.CoreSize` ladder; this module maps a
phase's *ILP sensitivity* onto the execution-CPI multiplier of each size.

A fully sensitive phase (sensitivity 1) tracks the size's full
``ilp_speedup``; an insensitive phase only pays/earns the structural floor
(pipeline width effects every program sees).  MLP effects of core size are
handled separately in :mod:`repro.mem.mlp`.
"""

from __future__ import annotations

import numpy as np

from repro.config import CoreSize, SystemConfig
from repro.util.validation import require_prob

__all__ = ["ilp_cpi_factor", "exec_cpi_by_size"]


def ilp_cpi_factor(core: CoreSize, ilp_sensitivity: float) -> float:
    """Execution-CPI multiplier of ``core`` relative to the medium size."""
    require_prob(ilp_sensitivity, "ilp_sensitivity")
    return core.ilp_floor + (core.ilp_speedup - core.ilp_floor) * ilp_sensitivity


def exec_cpi_by_size(system: SystemConfig, base_cpi: float, ilp_sensitivity: float) -> np.ndarray:
    """Execution (non-memory) CPI for every core size, ``shape (ncore_sizes,)``.

    ``base_cpi`` is the medium-core execution CPI; the result is floored at
    ``1 / width`` (a core cannot commit faster than its issue width).
    """
    out = np.empty(system.ncore_sizes, dtype=float)
    for i, core in enumerate(system.core_sizes):
        cpi = base_cpi * ilp_cpi_factor(core, ilp_sensitivity)
        out[i] = max(cpi, 1.0 / core.width)
    return out
