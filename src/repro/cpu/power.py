"""Ground-truth energy model (the "McPAT" of this repo).

Per-instruction energy of one core and the memory traffic it causes:

* **core dynamic** -- activity energy scaled by the size factor of the core
  configuration and quadratically by supply voltage;
* **core static** -- leakage power (scaled by area and linearly by voltage)
  integrated over the time per instruction, which is what penalises slow,
  stretched executions;
* **LLC** -- per-access dynamic energy plus the static power of the ways the
  core owns (way-granular power budgeting, as in way-partitioned caches);
* **DRAM** -- per-miss access energy plus the core's share of background
  power.

The RMA's analytical energy model (:mod:`repro.core.energy_model`) mirrors
these terms from counters; this module is the ground truth it approximates.
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.cpu.dvfs import voltage_ratio, voltage_ratio_sq
from repro.cpu.interval_model import PhaseExecution

__all__ = ["energy_grid"]


def energy_grid(
    system: SystemConfig,
    phase: PhaseExecution,
    tpi: np.ndarray,
) -> np.ndarray:
    """Ground-truth ``EPI[c, f, w]`` in nJ/instruction.

    ``tpi`` is the matching timing grid from
    :func:`repro.cpu.interval_model.timing_grid`.
    """
    spec = phase.spec
    freqs = system.vf.freqs_array()
    vr = voltage_ratio(system.vf, freqs)          # (F,)
    vr2 = voltage_ratio_sq(system.vf, freqs)      # (F,)

    epi_factors = np.array([c.epi_factor for c in system.core_sizes])     # (C,)
    leak_factors = np.array([c.leak_factor for c in system.core_sizes])   # (C,)
    ways = np.arange(1, len(phase.mpki) + 1, dtype=float)                 # (W,)
    mpi = phase.mpki / 1000.0                                             # (W,)
    api = spec.apki / 1000.0

    core_dyn = spec.epi_dyn * epi_factors[:, None, None] * vr2[None, :, None]
    leak_w = system.core_leak_w * leak_factors[:, None, None] * vr[None, :, None]
    core_static = leak_w * tpi
    llc = (
        system.llc_access_energy_nj * api
        + system.llc_way_static_w * ways[None, None, :] * tpi
    )
    dram = (
        system.mem.energy_per_access_nj * mpi[None, None, :]
        + (system.mem.background_power_w / system.ncores) * tpi
    )
    return core_dyn + core_static + llc + dram
