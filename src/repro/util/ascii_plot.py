"""Terminal line/bar rendering for figure-type experiment artefacts.

The papers' evaluations are mostly figures (savings per workload, savings vs
relaxation).  The benchmark harness regenerates them as tables; this module
adds a terminal bar rendering so the *shape* of a figure -- who wins, where
it saturates -- is visible at a glance in CI logs.
"""

from __future__ import annotations

from typing import Sequence

from repro.util.validation import require

__all__ = ["bar_chart", "spark_line"]

_TICKS = "▁▂▃▄▅▆▇█"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "%",
) -> str:
    """Horizontal bar chart; negative values render a left-marked bar."""
    require(len(labels) == len(values), "labels/values length mismatch")
    if not values:
        return "(empty)"
    span = max(max(abs(v) for v in values), 1e-9)
    label_w = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        n = int(round(abs(value) / span * width))
        bar = ("▇" * n) if value >= 0 else ("▁" * n)
        sign = "" if value >= 0 else "-"
        lines.append(f"{label.rjust(label_w)} |{bar.ljust(width)} {sign}{abs(value):.2f}{unit}")
    return "\n".join(lines)


def spark_line(values: Sequence[float]) -> str:
    """One-line sparkline of a numeric series."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = max(hi - lo, 1e-9)
    return "".join(_TICKS[int((v - lo) / span * (len(_TICKS) - 1))] for v in values)
