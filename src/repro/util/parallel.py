"""Process-parallel map with a serial fallback.

The simulation-results database (the "Sniper + McPAT" step of the paper's
framework, Chapter 2 of the thesis) consists of fully independent per-phase
simulations -- the paper notes they "can be executed in parallel in a short
time".  We exploit exactly that structure with a :class:`multiprocessing.Pool`
fan-out; the worker function and items must be picklable.

Set ``REPRO_PROCESSES=1`` (or pass ``processes=1``) to force serial execution,
which is used by the test-suite for determinism of coverage and tracebacks.
The results are identical either way because all randomness is derived from
stable per-item seeds (:mod:`repro.util.rng`).
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_processes"]


def default_processes() -> int:
    """Worker count: ``REPRO_PROCESSES`` env var, else ``os.cpu_count()``."""
    env = os.environ.get("REPRO_PROCESSES")
    if env:
        return max(1, int(env))
    return max(1, os.cpu_count() or 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    processes: int | None = None,
    chunksize: int = 1,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
    start_method: str | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving order.

    Falls back to a plain comprehension when only one worker is requested or
    there are fewer than two items, so small inputs never pay fork overhead.

    ``initializer(*initargs)`` runs once per worker before any items are
    processed -- *and* once in-process on the serial fallback path, so
    worker-global state (e.g. the experiment context) is populated the same
    way regardless of how the map executes.  Under the ``spawn`` start
    method workers inherit nothing, so any such state **must** come through
    the initializer; ``start_method`` forces a specific method (tests use
    ``"spawn"`` to exercise exactly that path).
    """
    seq: Sequence[T] = list(items)
    nproc = default_processes() if processes is None else max(1, processes)
    nproc = min(nproc, len(seq)) if seq else 1
    if nproc <= 1 or len(seq) < 2:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in seq]
    method = start_method or ("fork" if hasattr(os, "fork") else "spawn")
    ctx = mp.get_context(method)
    with ctx.Pool(processes=nproc, initializer=initializer, initargs=initargs) as pool:
        return pool.map(fn, seq, chunksize=chunksize)
