"""Deterministic RNG discipline.

Every stochastic component in the library derives its seed from a tuple of
string/int parts via a stable hash.  This makes the entire pipeline -- trace
generation, SimPoint clustering, workload draws -- bit-reproducible across
processes and platforms, which matters because the simulation database is
built in parallel worker processes (see :mod:`repro.util.parallel`).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["seed_for", "rng_for"]


def seed_for(*parts: object) -> int:
    """Return a stable 64-bit seed derived from ``parts``.

    Parts are joined by ``/`` after ``str()`` conversion and hashed with
    SHA-256; the first 8 bytes form the seed.  Unlike :func:`hash`, the result
    does not depend on ``PYTHONHASHSEED`` or the process, so seeds derived in
    a multiprocessing worker match those derived in the parent.

    >>> seed_for("mcf_like", "phase", 0) == seed_for("mcf_like", "phase", 0)
    True
    """
    key = "/".join(str(p) for p in parts)
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def rng_for(*parts: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded from ``parts``."""
    return np.random.default_rng(seed_for(*parts))
