"""Opt-in per-stage wall-clock accounting for replays (``REPRO_PROFILE=1``).

Set the ``REPRO_PROFILE`` environment variable and every
:class:`~repro.simulation.engine.kernel.SimulationKernel` run accumulates a
:class:`StageTimer` and dumps its breakdown to stderr when the run
finishes -- the quick way to see where a service or bench replay spends
its time without attaching a profiler:

* ``manager.decide`` -- the resource manager's ``on_interval`` calls,
  split further by the coordinated managers into ``manager.curves``
  (model-grid construction and memo lookups) and ``manager.reduce``
  (reduction refresh + solve);
* ``kernel.apply`` -- applying returned allocation maps;
* ``kernel.advance`` -- derived remainder of ``run.total``: scheduling,
  vector advance, interval bookkeeping and tenancy.

When profiling is off (the default) the kernel holds no timer and the hot
path pays one ``is None`` test per instrumented site.
"""

from __future__ import annotations

import os
import sys

__all__ = ["profiling_enabled", "StageTimer"]


def profiling_enabled() -> bool:
    """Whether ``REPRO_PROFILE`` asks for per-stage replay timing."""
    return os.environ.get("REPRO_PROFILE", "") not in ("", "0")


class StageTimer:
    """Accumulates wall-clock seconds per named replay stage."""

    __slots__ = ("stages",)

    def __init__(self) -> None:
        self.stages: dict[str, float] = {}

    def add(self, stage: str, seconds: float) -> None:
        """Accumulate ``seconds`` of wall-clock into ``stage``."""
        self.stages[stage] = self.stages.get(stage, 0.0) + seconds

    def breakdown(self) -> dict[str, float]:
        """The accumulated stages plus the derived ``kernel.advance``
        remainder (everything in ``run.total`` not attributed to the
        manager or the apply loop)."""
        out = dict(self.stages)
        total = out.get("run.total")
        if total is not None:
            attributed = out.get("manager.decide", 0.0) + out.get("kernel.apply", 0.0)
            out["kernel.advance"] = max(0.0, total - attributed)
        return out

    def dump(self, label: str, stream=None) -> None:
        """Write the breakdown as one stderr line (``REPRO_PROFILE`` hook)."""
        if stream is None:
            stream = sys.stderr
        parts = " ".join(
            f"{k}={v:.4f}s" for k, v in sorted(self.breakdown().items())
        )
        print(f"[REPRO_PROFILE] {label}: {parts}", file=stream)
