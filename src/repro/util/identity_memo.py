"""Identity-keyed memoisation of values derived from long-lived objects.

Model code derives small constant tables (frequency vectors, voltage
ratios, core-size factor arrays) from the immutable ``SystemConfig``; the
derivations are pure but were re-executed on every hot-path call.  Keying
a memo on ``id(obj)`` makes the lookup a dict probe with no hashing of the
(deeply nested) config object; holding the object in the entry guards
against id reuse after garbage collection, and a size cap bounds retention
of dead entries (systems per process number a handful in practice).
"""

from __future__ import annotations

from typing import Callable, TypeVar

T = TypeVar("T")

__all__ = ["identity_memo"]


def identity_memo(cache: dict, obj, build: Callable[..., T], cap: int = 32) -> T:
    """``build(obj)``, memoised in ``cache`` by ``obj``'s identity.

    ``cache`` is caller-owned (one dict per derivation), so distinct
    derivations never collide.  The entry stores ``obj`` itself: an id
    reused by a different object fails the ``is`` check and rebuilds.
    """
    entry = cache.get(id(obj))
    if entry is None or entry[0] is not obj:
        if len(cache) >= cap:
            cache.clear()
        entry = (obj, build(obj))
        cache[id(obj)] = entry
    return entry[1]
