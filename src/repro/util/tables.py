"""ASCII table rendering for experiment reports.

Every experiment driver ends by printing a table whose rows correspond to the
rows/series of the paper's table or figure; the benchmarks under
``benchmarks/`` call the same renderer so ``pytest benchmarks/`` regenerates
the paper artefacts verbatim.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: object, floatfmt: str = "{:.2f}") -> str:
    """Format a single cell; floats use ``floatfmt``, percents pre-formatted."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return floatfmt.format(value)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    floatfmt: str = "{:.2f}",
) -> str:
    """Render a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; cells may be any type.
    title:
        Optional title printed above the table.
    floatfmt:
        ``str.format`` spec applied to float cells.
    """
    str_rows = [[format_cell(c, floatfmt) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(list(headers)))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)
