"""Small statistics helpers used by models, metrics and experiment reports."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["geo_mean", "weighted_mean", "summarize", "Summary"]


def geo_mean(values) -> float:
    """Geometric mean of positive values (0.0 for an empty input)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return 0.0
    if np.any(arr <= 0):
        raise ValueError("geo_mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def weighted_mean(values, weights) -> float:
    """Weighted arithmetic mean; weights need not be normalised."""
    v = np.asarray(values, dtype=float)
    w = np.asarray(weights, dtype=float)
    if v.shape != w.shape:
        raise ValueError(f"shape mismatch: {v.shape} vs {w.shape}")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    return float(np.dot(v, w) / total)


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary used in experiment tables."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def as_row(self) -> list:
        return [self.n, self.mean, self.std, self.minimum, self.maximum]


def summarize(values) -> Summary:
    """Return a :class:`Summary` of ``values`` (all-zero summary if empty)."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return Summary(0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )
