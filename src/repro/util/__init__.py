"""Shared utilities: deterministic RNG discipline, statistics, tables,
parallel map, deterministic retry backoff."""

from repro.util.rng import rng_for, seed_for
from repro.util.backoff import backoff_delay, backoff_schedule
from repro.util.stats import geo_mean, summarize, weighted_mean
from repro.util.tables import render_table
from repro.util.parallel import parallel_map
from repro.util.validation import require

__all__ = [
    "rng_for",
    "seed_for",
    "backoff_delay",
    "backoff_schedule",
    "geo_mean",
    "weighted_mean",
    "summarize",
    "render_table",
    "parallel_map",
    "require",
]
