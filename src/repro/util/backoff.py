"""Deterministic capped exponential backoff with content-keyed jitter.

Retry delays in the replay service must be reproducible: the chaos harness
(``tools/chaos_smoke.py``) asserts that two runs with the same fault seed
produce identical journal event sequences, which rules out ``random``
jitter and wall-clock-derived schedules.  :func:`backoff_delay` therefore
derives its jitter from :func:`repro.util.rng.seed_for` over a caller
supplied key (typically ``(job_id, attempt)``) -- the same key always
yields the same delay, different jobs decorrelate, and the schedule obeys
the usual exponential shape with a hard cap.
"""

from __future__ import annotations

from repro.util.rng import seed_for

__all__ = ["backoff_delay", "backoff_schedule"]

#: Scale of a 64-bit seed, used to map hashes onto [0, 1).
_U64 = float(2**64)


def backoff_delay(
    attempt: int,
    *,
    base_s: float = 0.05,
    cap_s: float = 2.0,
    jitter: float = 0.5,
    key: tuple = (),
) -> float:
    """Delay (seconds) before retry number ``attempt`` (1-based).

    The raw schedule is ``base_s * 2**(attempt - 1)`` capped at ``cap_s``;
    the returned delay is the raw value scaled into
    ``[(1 - jitter) * raw, raw]`` by a deterministic hash of
    ``(*key, attempt)``.  ``jitter=0`` disables randomisation entirely.

    >>> backoff_delay(1, key=("job",)) == backoff_delay(1, key=("job",))
    True
    """
    if attempt < 1:
        raise ValueError("attempt is 1-based; got %r" % (attempt,))
    if not 0.0 <= jitter <= 1.0:
        raise ValueError("jitter must be within [0, 1]")
    raw = min(cap_s, base_s * (2.0 ** (attempt - 1)))
    if jitter == 0.0:
        return raw
    u = seed_for("backoff", *key, attempt) / _U64  # deterministic in [0, 1)
    return raw * (1.0 - jitter * u)


def backoff_schedule(
    retries: int,
    *,
    base_s: float = 0.05,
    cap_s: float = 2.0,
    jitter: float = 0.5,
    key: tuple = (),
) -> list[float]:
    """The full delay schedule for ``retries`` attempts (for tests/docs)."""
    return [
        backoff_delay(a, base_s=base_s, cap_s=cap_s, jitter=jitter, key=key)
        for a in range(1, retries + 1)
    ]
