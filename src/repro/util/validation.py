"""Lightweight precondition helpers.

These raise early, with messages naming the offending argument, instead of
letting bad configurations surface as NaNs deep inside the optimizer.
"""

from __future__ import annotations

import numpy as np

__all__ = ["require", "require_prob", "require_positive", "require_monotone"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_prob(value: float, name: str) -> None:
    """Validate that ``value`` is a probability in [0, 1]."""
    require(0.0 <= value <= 1.0, f"{name} must be in [0, 1], got {value}")


def require_positive(value: float, name: str) -> None:
    """Validate that ``value`` is strictly positive."""
    require(value > 0, f"{name} must be > 0, got {value}")


def require_monotone(arr, name: str, increasing: bool = False) -> None:
    """Validate that ``arr`` is monotone (non-increasing by default)."""
    a = np.asarray(arr, dtype=float)
    diffs = np.diff(a)
    ok = np.all(diffs >= -1e-12) if increasing else np.all(diffs <= 1e-12)
    direction = "non-decreasing" if increasing else "non-increasing"
    require(bool(ok), f"{name} must be {direction}")
