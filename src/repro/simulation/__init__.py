"""The paper's multi-level simulation framework (thesis Chapter 2).

Pipeline: benchmarks -> SimPoint phase analysis -> detailed per-phase
simulation into a results database -> event-driven RMA simulation of full
multi-programmed executions.
"""

from repro.simulation.database import PhaseRecord, SimulationDatabase, build_database
from repro.simulation.detailed import simulate_phase, analyze_benchmark
from repro.simulation.overheads import transition_cost
from repro.simulation.metrics import (
    AppResult,
    RunResult,
    WorkloadComparison,
    compare_runs,
    energy_savings_pct,
)
from repro.simulation.results_store import ResultsStore, run_key
from repro.simulation.rma_sim import RMASimulator, simulate_scenario, simulate_workload

__all__ = [
    "ResultsStore",
    "run_key",
    "simulate_scenario",
    "PhaseRecord",
    "SimulationDatabase",
    "build_database",
    "simulate_phase",
    "analyze_benchmark",
    "transition_cost",
    "AppResult",
    "RunResult",
    "WorkloadComparison",
    "compare_runs",
    "energy_savings_pct",
    "RMASimulator",
    "simulate_workload",
]
