"""The detailed-simulation step ("Sniper + McPAT" of the paper's framework).

For each benchmark: run SimPoint over its slice features, then characterise
each operational phase's representative slice across the *entire* resource
grid (core size x VF level x way allocation):

1. synthesise the representative slice's LLC access trace;
2. one ATD pass gives the full miss curve (LRU stack distances);
3. leading-miss grouping gives the ground-truth MLP grid;
4. the interval timing model and the power model evaluate all
   ``(c, f, w)`` points vectorised;
5. the *online* hardware readings (sampled ATD curve, quantised MLP-ATD
   table) are derived from the sampled-set subset of the same trace.
"""

from __future__ import annotations


from repro.cache.atd import atd_profile, stack_distances
from repro.cache.mlp_atd import quantize
from repro.config import SystemConfig
from repro.cpu.interval_model import PhaseExecution, timing_grid
from repro.cpu.power import energy_grid
from repro.mem.mlp import mlp_grid
from repro.simulation.database import PhaseRecord
from repro.workloads.address_gen import AccessTrace, generate_trace
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.phases import PhaseSpec
from repro.workloads.simpoint import run_simpoint, slice_features

__all__ = ["simulate_phase", "analyze_benchmark"]


def simulate_phase(
    system: SystemConfig,
    bench: str,
    phase_key: int,
    spec: PhaseSpec,
    weight: float,
    accesses_per_set: int = 1200,
) -> PhaseRecord:
    """Characterise one phase over the full configuration grid."""
    trace: AccessTrace = generate_trace(
        spec,
        nsets=system.llc.model_sets,
        accesses_per_set=accesses_per_set,
        seed_parts=(bench, phase_key),
    )
    ways = system.llc.ways
    dists = stack_distances(trace, ways, system.llc.model_sets)

    # Ground truth from the full trace.
    profile = atd_profile(dists, ways, trace.instructions)
    mpki_full = profile.mpki()
    mlp_full = mlp_grid(system, dists, trace.instr_pos, trace.chain_ids, spec.mlp_sensitivity)

    # Online hardware readings from the sampled sets of the same trace
    # (stack distances are per-set, so masking preserves them exactly).
    sample = system.llc.atd_sampled_sets
    mask = trace.set_ids < sample
    scale = sample / system.llc.model_sets
    sampled_profile = atd_profile(dists[mask], ways, trace.instructions, scale=scale)
    mpki_sampled = sampled_profile.mpki()
    # The MLP-ATD's overlap detector observes every in-flight miss (it sits
    # next to the MSHR file); only the per-way miss classification relies on
    # the ATD.  A set-thinned stream would destroy the burst structure that
    # overlap depends on, so the hardware reading is the full-density grid
    # with the unit's fixed-point quantisation as its estimation error.
    mlp_sampled = quantize(mlp_full)

    phase_exec = PhaseExecution(spec=spec, mpki=mpki_full, mlp=mlp_full)
    tpi, latency = timing_grid(system, phase_exec)
    epi = energy_grid(system, phase_exec, tpi)

    return PhaseRecord(
        bench=bench,
        phase_key=phase_key,
        weight=weight,
        apki=float(profile.apki()),
        epi_dyn=spec.epi_dyn,
        base_cpi=spec.base_cpi,
        ilp_sensitivity=spec.ilp_sensitivity,
        mlp_sensitivity=spec.mlp_sensitivity,
        mpki_full=mpki_full,
        mlp_full=mlp_full,
        tpi=tpi,
        latency=latency,
        epi=epi,
        mpki_sampled=mpki_sampled,
        mlp_sampled=mlp_sampled,
    )


def analyze_benchmark(
    system: SystemConfig,
    name: str,
    accesses_per_set: int = 1200,
    max_k: int = 8,
) -> tuple[dict[int, PhaseRecord], tuple[int, ...]]:
    """SimPoint + per-phase detailed simulation for one benchmark.

    Returns the phase records keyed by operational (cluster) phase id and the
    operational phase trace.  The representative slice of each cluster
    selects which *generative* phase spec is characterised -- if clustering
    merges two similar true phases, the medoid's spec stands in for both,
    exactly as a SimPoint representative stands in for its cluster.
    """
    bench = get_benchmark(name)
    features = slice_features(bench)
    sp = run_simpoint(features, max_k=max_k, seed_parts=(name,))
    true_trace = bench.phase_trace()

    records: dict[int, PhaseRecord] = {}
    for cluster, (rep_slice, weight) in enumerate(zip(sp.representatives, sp.weights)):
        true_pid = true_trace.sequence[rep_slice]
        spec = bench.spec_of(true_pid)
        records[cluster] = simulate_phase(
            system, name, cluster, spec, weight, accesses_per_set=accesses_per_set
        )
    return records, sp.phase_sequence()
