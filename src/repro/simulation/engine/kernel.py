"""The simulation kernel: the event loop over the layered components.

One iteration = one global event = the earliest completion of a
100 M-instruction interval on any core:

1. the :class:`~repro.simulation.engine.scheduler.CompletionScheduler`
   names the completing core and the span ``dt`` (cached, incrementally
   invalidated -- no database lookups for unchanged cores);
2. every other core advances by ``dt`` (stall served first, then
   instructions retire and charge energy at the cached rates);
3. the completing core retires its interval's remaining instructions
   exactly, records its counter snapshot and interval sample, and moves to
   the next phase slice;
4. due scenario requests are applied at this boundary by the
   :class:`~repro.simulation.engine.tenancy.TenancyModel`;
5. unless this boundary changed the completing core's tenancy (the
   completed statistics would describe a departed app), the resource
   manager is invoked through the
   :class:`~repro.simulation.engine.bridge.ManagerBridge` and any new
   system-wide setting is applied with transition overheads.

Accounting is bit-identical to :mod:`repro.simulation.legacy_sim`, the
frozen pre-refactor reference; the golden equivalence suite enforces it.

Many-core notes: the per-event hot path is vectorised over the
struct-of-arrays core state
(:class:`~repro.simulation.engine.core_state.CoreArrays`): step 1 is one
masked argmin and step 2 one stall-then-retire vector update, replacing
the two O(N) Python walks per event.  Per-event bookkeeping that used to
scan every core (the all-idle check, the every-core-finished check) reads
counters maintained incrementally by the tenancy model and the completion
bookkeeping, and the way-budget audit of :meth:`SimulationKernel._apply`
runs off a cached total updated by deltas -- the fixed per-event Python
cost is independent of the core count.  Scenario tenancy changes reach
managers through per-core
:meth:`~repro.core.managers.ResourceManager.on_scenario_event` calls; the
hierarchical :class:`~repro.core.managers.ClusteredManager` routes each
notification to the owning cluster's reduction tree, so a swap or
departure splices only that cluster's ``O(log)`` path.
"""

from __future__ import annotations

import os
import time

from repro.config import Allocation, SystemConfig
from repro.core.managers import ResourceManager
from repro.scenarios.events import Scenario
from repro.simulation.database import SimulationDatabase
from repro.simulation.engine.bridge import ManagerBridge
from repro.simulation.engine.core_state import CoreArrays, CoreRun, advance_core
from repro.simulation.engine.scheduler import CompletionScheduler
from repro.simulation.engine.tenancy import TenancyModel
from repro.simulation.metrics import AppResult, IntervalSample, RunResult
from repro.simulation.overheads import transition_cost
from repro.util.profiling import StageTimer, profiling_enabled
from repro.util.validation import require
from repro.workloads.mixes import Workload

__all__ = ["SimulationKernel", "MAX_EVENTS"]

#: Hard cap on simulated events (runaway-manager guard).
MAX_EVENTS = 1_000_000

#: Core count at or above which the per-event hot path uses the vectorised
#: struct-of-arrays step.  Below it the scalar reference step is cheaper
#: (NumPy's fixed per-call cost outweighs the interpreter loop on a
#: handful of lanes -- measured crossover ~16 cores); both steps are
#: bit-identical (tests/test_engine_vector.py), so this is purely a
#: dispatch choice.
VECTOR_MIN_CORES = 16

#: Debug mode: recount every core's ways from scratch after each manager
#: reallocation and assert it matches the delta-maintained total (set the
#: REPRO_WAYS_AUDIT environment variable, or monkeypatch in tests).
_WAYS_AUDIT = os.environ.get("REPRO_WAYS_AUDIT", "") not in ("", "0")


class SimulationKernel:
    """Drives one workload under one resource manager."""

    def __init__(
        self,
        system: SystemConfig,
        db: SimulationDatabase,
        workload: Workload,
        manager: ResourceManager,
        max_slices: int | None = None,
        collect_interval_samples: bool = True,
        scenario: Scenario | None = None,
    ) -> None:
        require(workload.ncores == system.ncores, "workload size must match core count")
        for app in workload.apps:
            require(app in db.records, f"database has no benchmark {app!r}")
        if scenario is not None:
            require(scenario.workload == workload,
                    "scenario workload must match the workload being simulated")
            for ev in scenario.events:
                if ev.kind == "swap":
                    require(ev.app in db.records,
                            f"database has no benchmark {ev.app!r} (scenario event)")
        self.system = system
        self.db = db
        self.workload = workload
        self.manager = manager
        self.collect_interval_samples = collect_interval_samples
        self.scenario = scenario
        self.max_slices = max_slices
        base = system.baseline_allocation()
        self.arrays = CoreArrays(system.ncores)
        self.cores: list[CoreRun] = []
        for j, app in enumerate(workload.apps):
            seq = db.phase_sequence(app)
            if max_slices is not None:
                seq = seq[:max_slices]
            active = scenario.active[j] if scenario is not None else True
            self.cores.append(
                CoreRun(self.arrays, core_id=j, app=app, seq=seq,
                        slack=workload.slack[j], alloc=base, active=active)
            )
        self.scheduler = CompletionScheduler(system, db, self.cores, self.arrays)
        self.tenancy = TenancyModel(
            system, db, self.cores, self.scheduler, manager, scenario, max_slices
        )
        self.bridge = ManagerBridge(self)
        self.time_ns = 0.0
        self.total_intervals = 0
        self.interval_samples: list[IntervalSample] = []
        # Cores that have completed their first trace round, maintained in
        # _complete_interval so _finished() is O(1) at any core count.
        self._first_rounds_done = 0
        # Sum of every core's allocated ways, maintained by deltas in
        # _apply so the per-reallocation way-budget audit needs no O(N)
        # recount (debug mode recounts and asserts, see _WAYS_AUDIT).
        self._ways_total = sum(c.alloc.ways for c in self.cores)
        #: Global events simulated by the last run() (replay throughput
        #: denominator for the scaling benchmarks).
        self.events_simulated = 0
        #: Per-stage wall-clock accounting, present only under the
        #: REPRO_PROFILE env hook (managers read it through the bridge).
        self.stage_timer = StageTimer() if profiling_enabled() else None

    # ---- manager-facing API (delegated to the bridge) ------------------------
    def slack(self, core_id: int) -> float:
        """See :meth:`~repro.simulation.engine.bridge.ManagerBridge.slack`."""
        return self.bridge.slack(core_id)

    def current_alloc(self, core_id: int) -> Allocation:
        """See :meth:`~repro.simulation.engine.bridge.ManagerBridge.current_alloc`."""
        return self.bridge.current_alloc(core_id)

    def is_active(self, core_id: int) -> bool:
        """See :meth:`~repro.simulation.engine.bridge.ManagerBridge.is_active`."""
        return self.bridge.is_active(core_id)

    def completed_snapshot(self, core_id: int):
        """See :meth:`~repro.simulation.engine.bridge.ManagerBridge.completed_snapshot`."""
        return self.bridge.completed_snapshot(core_id)

    def completed_record(self, core_id: int):
        """See :meth:`~repro.simulation.engine.bridge.ManagerBridge.completed_record`."""
        return self.bridge.completed_record(core_id)

    def upcoming_record(self, core_id: int):
        """See :meth:`~repro.simulation.engine.bridge.ManagerBridge.upcoming_record`."""
        return self.bridge.upcoming_record(core_id)

    def active_core_ids(self):
        """See :meth:`~repro.simulation.engine.bridge.ManagerBridge.active_core_ids`."""
        return self.bridge.active_core_ids()

    def upcoming_records(self, core_ids):
        """See :meth:`~repro.simulation.engine.bridge.ManagerBridge.upcoming_records`."""
        return self.bridge.upcoming_records(core_ids)

    # ---- internals -----------------------------------------------------------
    def _complete_interval(self, core: CoreRun) -> None:
        rec = self.scheduler.record(core.core_id)
        core.instr_done = 0.0
        core.intervals += 1
        core.last_record = rec
        core.last_snapshot = self.scheduler.observe(core.core_id)

        if self.collect_interval_samples and (self.scenario is not None or core.rounds == 0):
            duration = self.time_ns - core.interval_start_ns
            # Baseline interval time under *this* system's QoS anchor (the
            # anchor may differ from the database's nominal, e.g. in the
            # baseline-VF sensitivity experiment); memoised per phase record.
            baseline_ns = self.scheduler.baseline_interval_ns(core.core_id)
            self.interval_samples.append(
                IntervalSample(
                    core=core.core_id,
                    phase_key=core.seq[core.slice_idx],
                    duration_ns=duration,
                    baseline_ns=baseline_ns,
                    slack=core.slack,
                )
            )
        core.interval_start_ns = self.time_ns
        core.energy_interval_start_nj = core.energy_nj

        core.slice_idx += 1
        if core.slice_idx >= len(core.seq):
            if core.rounds == 0:
                # A scenario swap resets rounds without clearing the first
                # tenant's mark; count each core once, matching the
                # done-first-round predicate exactly.
                if core.first_round_time_ns is None:
                    self._first_rounds_done += 1
                core.first_round_time_ns = self.time_ns
                core.first_round_energy_nj = core.energy_nj
            core.rounds += 1
            core.slice_idx = 0
        self.scheduler.invalidate(core.core_id)

    def _apply(self, allocations: dict[int, Allocation]) -> None:
        system = self.system
        cores = self.cores
        # One scan finds the (typically few) entries that differ from the
        # current setting -- Allocation objects are identity-cached by the
        # managers, so unchanged cores fail the `is not` probe -- and
        # audits the way budget off the maintained total plus their deltas:
        # no per-core recount, and (like the reference) the check fires
        # before any allocation is mutated.  Entries equal in value but not
        # identity contribute a zero delta either way.
        total = self._ways_total
        changed: list[tuple[int, Allocation]] = []
        # A delta-annotated map (AllocationMap) narrows the scan to the
        # entries its manager actually rewrote: everything outside the
        # delta is object-identical to an already-applied map, so probing
        # it is a guaranteed no-op.
        delta = getattr(allocations, "delta", None)
        for j, new in allocations.items() if delta is None else delta:
            cur = cores[j].alloc
            if new is cur or new == cur:
                continue
            total += new.ways - cur.ways
            changed.append((j, new))
        require(
            total == system.llc.ways,
            f"manager allocated {total} ways, LLC has {system.llc.ways}",
        )
        for j, new in changed:
            core = cores[j]
            if not core.active:
                # Reconfiguring an idle (power-gated) core is free: there is
                # nothing to stall and nothing executing to charge.
                core.alloc = new
                self.scheduler.invalidate(j)
                continue
            cost = transition_cost(system, core.alloc, new)
            core.pending_stall_ns += cost.stall_ns
            core.energy_nj += cost.energy_nj
            core.alloc = new
            self.scheduler.invalidate(j)
        self._ways_total = total
        if _WAYS_AUDIT:
            recount = sum(c.alloc.ways for c in cores)
            assert recount == self._ways_total, (
                f"way-budget audit drift: recount {recount} != "
                f"maintained total {self._ways_total}"
            )

    def _finished(self) -> bool:
        """Whether the run reached its horizon (scenario) or first rounds."""
        if self.scenario is not None:
            return self.total_intervals >= self.scenario.horizon_intervals
        return self._first_rounds_done >= len(self.cores)

    def run(self) -> RunResult:
        """Drive the event loop to completion and score the run."""
        t0 = time.perf_counter()
        self.manager.attach(self.bridge)
        scheduler = self.scheduler
        tenancy = self.tenancy
        arrays = self.arrays
        cores = self.cores
        interval_instr = self.system.interval_instructions
        instr_done = arrays.instr_done
        energy_nj = arrays.energy_nj
        pending_stall_ns = arrays.pending_stall_ns
        epi = arrays.epi
        # Vector step for many-core systems, scalar step below the
        # crossover -- the two are bit-identical lane by lane, so the
        # dispatch never changes results.
        use_vector = self.system.ncores >= VECTOR_MIN_CORES
        events = 0
        last_applied = None
        timer = self.stage_timer
        tm = 0.0
        while not self._finished():
            events += 1
            require(events <= MAX_EVENTS, "event cap exceeded (manager thrashing?)")
            if self.scenario is not None and tenancy.n_active == 0:
                # Every core idles: jump to the next pending request (which
                # must exist, or the scenario can never reach its horizon).
                head = tenancy.next_pending_ns()
                require(head != float("inf"),
                        "all cores idle with no pending scenario events")
                self.time_ns = max(self.time_ns, head)
                tenancy.apply_due(self.time_ns, completed_core=None)
                continue
            if use_vector:
                j, dt = scheduler.next_completion()
                # All other active cores: one vectorised stall-then-retire
                # step.
                arrays.advance_all(dt, exclude=j)
            else:
                j, dt = scheduler.next_completion_scalar()
                for core in cores:
                    if core.core_id != j and core.active:
                        advance_core(core, dt, scheduler.tpi(core.core_id),
                                     scheduler.epi(core.core_id))
            # Completing core: retire the interval's remaining instructions
            # exactly and charge their energy directly (the epi entry is
            # fresh: either step refreshed every active core).
            left = interval_instr - instr_done[j]
            energy_nj[j] += left * epi[j]
            pending_stall_ns[j] = 0.0
            self.time_ns += dt
            core = cores[j]
            self._complete_interval(core)
            self.total_intervals += 1
            invoke_manager = True
            if self.scenario is not None:
                # If this boundary swapped or departed the tenant, the
                # completed-interval statistics belong to the departed app;
                # skip the invocation rather than optimise for a ghost.
                invoke_manager = not tenancy.apply_due(self.time_ns, completed_core=j)
            if invoke_manager:
                if timer is not None:
                    tm = time.perf_counter()
                new_allocs = self.manager.on_interval(j)
                if timer is not None:
                    timer.add("manager.decide", time.perf_counter() - tm)
                # Managers serving a fully cached decision return the same
                # dict object as last invocation; every entry in it was
                # already applied, so re-walking it is a guaranteed no-op
                # (returned maps are immutable by the on_interval
                # contract).  Debug mode verifies the contract held.
                if new_allocs:
                    if new_allocs is not last_applied:
                        if timer is not None:
                            tm = time.perf_counter()
                        self._apply(new_allocs)
                        if timer is not None:
                            timer.add("kernel.apply", time.perf_counter() - tm)
                        last_applied = new_allocs
                    elif _WAYS_AUDIT:
                        assert all(
                            a is cores[k].alloc or a == cores[k].alloc
                            for k, a in new_allocs.items()
                        ), "manager mutated a previously returned allocation map"
        self.events_simulated = events

        if self.scenario is not None:
            # Score completed intervals only: energy accrued by in-flight
            # partial intervals at the horizon differs between managers and
            # would bias the equal-work comparison.
            apps = [
                AppResult(
                    app=c.app,
                    core=c.core_id,
                    time_ns=self.time_ns,
                    energy_nj=c.energy_interval_start_nj,
                    intervals=c.intervals,
                    slack=c.slack,
                )
                for c in cores
            ]
            run_name = self.scenario.name
        else:
            apps = [
                AppResult(
                    app=c.app,
                    core=c.core_id,
                    time_ns=float(c.first_round_time_ns),
                    energy_nj=float(c.first_round_energy_nj),
                    intervals=len(c.seq),
                    slack=c.slack,
                )
                for c in cores
            ]
            run_name = self.workload.name
        if timer is not None:
            timer.add("run.total", time.perf_counter() - t0)
            timer.dump(run_name)
        return RunResult(
            workload=run_name,
            manager=self.manager.name,
            apps=apps,
            interval_samples=self.interval_samples,
            rma_invocations=self.manager.meter.invocations,
            rma_instructions=self.manager.meter.instructions,
            sim_wall_s=time.perf_counter() - t0,
        )
