"""The simulation kernel: the event loop over the layered components.

One iteration = one global event = the earliest completion of a
100 M-instruction interval on any core:

1. the :class:`~repro.simulation.engine.scheduler.CompletionScheduler`
   names the completing core and the span ``dt`` (cached, incrementally
   invalidated -- no database lookups for unchanged cores);
2. every other core advances by ``dt`` (stall served first, then
   instructions retire and charge energy at the cached rates);
3. the completing core retires its interval's remaining instructions
   exactly, records its counter snapshot and interval sample, and moves to
   the next phase slice;
4. due scenario requests are applied at this boundary by the
   :class:`~repro.simulation.engine.tenancy.TenancyModel`;
5. unless this boundary changed the completing core's tenancy (the
   completed statistics would describe a departed app), the resource
   manager is invoked through the
   :class:`~repro.simulation.engine.bridge.ManagerBridge` and any new
   system-wide setting is applied with transition overheads.

Accounting is bit-identical to :mod:`repro.simulation.legacy_sim`, the
frozen pre-refactor reference; the golden equivalence suite enforces it.

Many-core notes: per-event bookkeeping that used to scan every core (the
all-idle check, the every-core-finished check) reads counters maintained
incrementally by the tenancy model and the completion bookkeeping instead,
keeping the fixed per-event cost independent of the core count.  Scenario
tenancy changes reach managers through per-core
:meth:`~repro.core.managers.ResourceManager.on_scenario_event` calls; the
hierarchical :class:`~repro.core.managers.ClusteredManager` routes each
notification to the owning cluster's reduction tree, so a swap or
departure splices only that cluster's ``O(log)`` path.
"""

from __future__ import annotations

import time

from repro.config import Allocation, SystemConfig
from repro.core.managers import ResourceManager
from repro.scenarios.events import Scenario
from repro.simulation.database import SimulationDatabase
from repro.simulation.engine.bridge import ManagerBridge
from repro.simulation.engine.core_state import CoreRun, advance_core
from repro.simulation.engine.scheduler import CompletionScheduler
from repro.simulation.engine.tenancy import TenancyModel
from repro.simulation.metrics import AppResult, IntervalSample, RunResult
from repro.simulation.overheads import transition_cost
from repro.util.validation import require
from repro.workloads.mixes import Workload

__all__ = ["SimulationKernel", "MAX_EVENTS"]

#: Hard cap on simulated events (runaway-manager guard).
MAX_EVENTS = 1_000_000


class SimulationKernel:
    """Drives one workload under one resource manager."""

    def __init__(
        self,
        system: SystemConfig,
        db: SimulationDatabase,
        workload: Workload,
        manager: ResourceManager,
        max_slices: int | None = None,
        collect_interval_samples: bool = True,
        scenario: Scenario | None = None,
    ) -> None:
        require(workload.ncores == system.ncores, "workload size must match core count")
        for app in workload.apps:
            require(app in db.records, f"database has no benchmark {app!r}")
        if scenario is not None:
            require(scenario.workload == workload,
                    "scenario workload must match the workload being simulated")
            for ev in scenario.events:
                if ev.kind == "swap":
                    require(ev.app in db.records,
                            f"database has no benchmark {ev.app!r} (scenario event)")
        self.system = system
        self.db = db
        self.workload = workload
        self.manager = manager
        self.collect_interval_samples = collect_interval_samples
        self.scenario = scenario
        self.max_slices = max_slices
        base = system.baseline_allocation()
        self.cores: list[CoreRun] = []
        for j, app in enumerate(workload.apps):
            seq = db.phase_sequence(app)
            if max_slices is not None:
                seq = seq[:max_slices]
            active = scenario.active[j] if scenario is not None else True
            self.cores.append(
                CoreRun(core_id=j, app=app, seq=seq, slack=workload.slack[j],
                        alloc=base, active=active)
            )
        self.scheduler = CompletionScheduler(system, db, self.cores)
        self.tenancy = TenancyModel(
            system, db, self.cores, self.scheduler, manager, scenario, max_slices
        )
        self.bridge = ManagerBridge(self)
        self.time_ns = 0.0
        self.total_intervals = 0
        self.interval_samples: list[IntervalSample] = []
        # Cores that have completed their first trace round, maintained in
        # _complete_interval so _finished() is O(1) at any core count.
        self._first_rounds_done = 0

    # ---- manager-facing API (delegated to the bridge) ------------------------
    def slack(self, core_id: int) -> float:
        """See :meth:`~repro.simulation.engine.bridge.ManagerBridge.slack`."""
        return self.bridge.slack(core_id)

    def current_alloc(self, core_id: int) -> Allocation:
        """See :meth:`~repro.simulation.engine.bridge.ManagerBridge.current_alloc`."""
        return self.bridge.current_alloc(core_id)

    def is_active(self, core_id: int) -> bool:
        """See :meth:`~repro.simulation.engine.bridge.ManagerBridge.is_active`."""
        return self.bridge.is_active(core_id)

    def completed_snapshot(self, core_id: int):
        """See :meth:`~repro.simulation.engine.bridge.ManagerBridge.completed_snapshot`."""
        return self.bridge.completed_snapshot(core_id)

    def completed_record(self, core_id: int):
        """See :meth:`~repro.simulation.engine.bridge.ManagerBridge.completed_record`."""
        return self.bridge.completed_record(core_id)

    def upcoming_record(self, core_id: int):
        """See :meth:`~repro.simulation.engine.bridge.ManagerBridge.upcoming_record`."""
        return self.bridge.upcoming_record(core_id)

    def active_core_ids(self):
        """See :meth:`~repro.simulation.engine.bridge.ManagerBridge.active_core_ids`."""
        return self.bridge.active_core_ids()

    def upcoming_records(self, core_ids):
        """See :meth:`~repro.simulation.engine.bridge.ManagerBridge.upcoming_records`."""
        return self.bridge.upcoming_records(core_ids)

    # ---- internals -----------------------------------------------------------
    def _complete_interval(self, core: CoreRun) -> None:
        rec = self.scheduler.record(core.core_id)
        core.instr_done = 0.0
        core.intervals += 1
        core.last_record = rec
        core.last_snapshot = self.scheduler.observe(core.core_id)

        if self.collect_interval_samples and (self.scenario is not None or core.rounds == 0):
            duration = self.time_ns - core.interval_start_ns
            # Baseline interval time under *this* system's QoS anchor (the
            # anchor may differ from the database's nominal, e.g. in the
            # baseline-VF sensitivity experiment); memoised per phase record.
            baseline_ns = self.scheduler.baseline_interval_ns(core.core_id)
            self.interval_samples.append(
                IntervalSample(
                    core=core.core_id,
                    phase_key=core.seq[core.slice_idx],
                    duration_ns=duration,
                    baseline_ns=baseline_ns,
                    slack=core.slack,
                )
            )
        core.interval_start_ns = self.time_ns
        core.energy_interval_start_nj = core.energy_nj

        core.slice_idx += 1
        if core.slice_idx >= len(core.seq):
            if core.rounds == 0:
                # A scenario swap resets rounds without clearing the first
                # tenant's mark; count each core once, matching the
                # done-first-round predicate exactly.
                if core.first_round_time_ns is None:
                    self._first_rounds_done += 1
                core.first_round_time_ns = self.time_ns
                core.first_round_energy_nj = core.energy_nj
            core.rounds += 1
            core.slice_idx = 0
        self.scheduler.invalidate(core.core_id)

    def _apply(self, allocations: dict[int, Allocation]) -> None:
        system = self.system
        total = sum(a.ways for a in allocations.values())
        missing = [c for c in self.cores if c.core_id not in allocations]
        total += sum(c.alloc.ways for c in missing)
        require(
            total == system.llc.ways,
            f"manager allocated {total} ways, LLC has {system.llc.ways}",
        )
        for j, new in allocations.items():
            core = self.cores[j]
            if new == core.alloc:
                continue
            if not core.active:
                # Reconfiguring an idle (power-gated) core is free: there is
                # nothing to stall and nothing executing to charge.
                core.alloc = new
                self.scheduler.invalidate(j)
                continue
            cost = transition_cost(system, core.alloc, new)
            core.pending_stall_ns += cost.stall_ns
            core.energy_nj += cost.energy_nj
            core.alloc = new
            self.scheduler.invalidate(j)

    def _finished(self) -> bool:
        """Whether the run reached its horizon (scenario) or first rounds."""
        if self.scenario is not None:
            return self.total_intervals >= self.scenario.horizon_intervals
        return self._first_rounds_done >= len(self.cores)

    def run(self) -> RunResult:
        """Drive the event loop to completion and score the run."""
        t0 = time.perf_counter()
        self.manager.attach(self.bridge)
        scheduler = self.scheduler
        tenancy = self.tenancy
        cores = self.cores
        interval_instr = self.system.interval_instructions
        events = 0
        while not self._finished():
            events += 1
            require(events <= MAX_EVENTS, "event cap exceeded (manager thrashing?)")
            if self.scenario is not None and tenancy.n_active == 0:
                # Every core idles: jump to the next pending request (which
                # must exist, or the scenario can never reach its horizon).
                head = tenancy.next_pending_ns()
                require(head != float("inf"),
                        "all cores idle with no pending scenario events")
                self.time_ns = max(self.time_ns, head)
                tenancy.apply_due(self.time_ns, completed_core=None)
                continue
            j, dt = scheduler.next_completion()
            for core in cores:
                if core.core_id == j:
                    # Exact completion: retire the interval's remaining
                    # instructions and charge their energy directly.
                    left = interval_instr - core.instr_done
                    core.energy_nj += left * scheduler.epi(j)
                    core.pending_stall_ns = 0.0
                elif core.active:
                    advance_core(core, dt, scheduler.tpi(core.core_id),
                                 scheduler.epi(core.core_id))
            self.time_ns += dt
            core = cores[j]
            self._complete_interval(core)
            self.total_intervals += 1
            invoke_manager = True
            if self.scenario is not None:
                # If this boundary swapped or departed the tenant, the
                # completed-interval statistics belong to the departed app;
                # skip the invocation rather than optimise for a ghost.
                invoke_manager = not tenancy.apply_due(self.time_ns, completed_core=j)
            if invoke_manager:
                new_allocs = self.manager.on_interval(j)
                if new_allocs:
                    self._apply(new_allocs)

        if self.scenario is not None:
            # Score completed intervals only: energy accrued by in-flight
            # partial intervals at the horizon differs between managers and
            # would bias the equal-work comparison.
            apps = [
                AppResult(
                    app=c.app,
                    core=c.core_id,
                    time_ns=self.time_ns,
                    energy_nj=c.energy_interval_start_nj,
                    intervals=c.intervals,
                    slack=c.slack,
                )
                for c in cores
            ]
            run_name = self.scenario.name
        else:
            apps = [
                AppResult(
                    app=c.app,
                    core=c.core_id,
                    time_ns=float(c.first_round_time_ns),
                    energy_nj=float(c.first_round_energy_nj),
                    intervals=len(c.seq),
                    slack=c.slack,
                )
                for c in cores
            ]
            run_name = self.workload.name
        return RunResult(
            workload=run_name,
            manager=self.manager.name,
            apps=apps,
            interval_samples=self.interval_samples,
            rma_invocations=self.manager.meter.invocations,
            rma_instructions=self.manager.meter.instructions,
            sim_wall_s=time.perf_counter() - t0,
        )
