"""Layered RMA simulation kernel.

The monolithic replay loop of the original :mod:`repro.simulation.rma_sim`
is decomposed into four components with one orchestrator:

* :mod:`~repro.simulation.engine.core_state` -- :class:`CoreArrays`, the
  struct-of-arrays hot-path state (one NumPy vector per field) behind the
  vectorised per-event advance and next-completion argmin, and
  :class:`CoreRun`, the thin per-core view the slow path works with, plus
  the scalar advance/charge reference mechanics;
* :mod:`~repro.simulation.engine.scheduler` --
  :class:`CompletionScheduler`, which owns the per-core completion-time
  computation and caches each core's (record, tpi, epi) triple,
  invalidating a core's entry only when its allocation, tenancy or phase
  slice changes instead of re-reading the database grids for every core on
  every event;
* :mod:`~repro.simulation.engine.tenancy` -- :class:`TenancyModel`, which
  owns the pending scenario-event queues and applies swap/depart/slack
  requests at interval boundaries;
* :mod:`~repro.simulation.engine.bridge` -- :class:`ManagerBridge`, the
  narrow manager-facing API (``slack``, ``current_alloc``,
  ``completed_snapshot``, ``completed_record``, ``upcoming_record``,
  ``is_active``) that keeps :mod:`repro.core.managers` unchanged;
* :mod:`~repro.simulation.engine.kernel` -- :class:`SimulationKernel`, the
  event loop tying the components together.

Every accounting decision is bit-identical to the frozen reference
implementation in :mod:`repro.simulation.legacy_sim`; the golden
equivalence suite enforces this.
"""

from repro.simulation.engine.bridge import ManagerBridge
from repro.simulation.engine.core_state import CoreArrays, CoreRun, advance_core
from repro.simulation.engine.kernel import MAX_EVENTS, SimulationKernel
from repro.simulation.engine.scheduler import CompletionScheduler
from repro.simulation.engine.tenancy import TenancyModel

__all__ = [
    "CoreArrays",
    "CoreRun",
    "advance_core",
    "CompletionScheduler",
    "TenancyModel",
    "ManagerBridge",
    "SimulationKernel",
    "MAX_EVENTS",
]
