"""Incremental next-completion scheduler.

The reference loop re-derived every core's remaining interval time from the
database on every event: two dict lookups plus two NumPy grid indexings per
core per event (`db.record(app, key)`, ``rec.tpi_at(alloc)``,
``rec.epi_at(alloc)``), repeated millions of times over a long scenario
horizon.  Those lookups only ever change when a core's *allocation*,
*tenancy* (swap/depart/activation) or *phase slice* changes -- a handful of
times per interval, not per event.

:class:`CompletionScheduler` therefore caches the (record, tpi, epi) triple
per core and recomputes an entry lazily only after an explicit
:meth:`invalidate`.  The tpi/epi entries live in the shared
:class:`~repro.simulation.engine.core_state.CoreArrays` vectors, so
:meth:`next_completion` is a single masked argmin over
``pending_stall_ns + (interval_instructions - instr_done) * tpi`` after the
stale-and-active entries are refreshed (:meth:`refresh_stale` -- a loop
over the handful of cores invalidated since the previous event, not over
the system).  The remaining-time formula and the first-minimum tie-break
reproduce the reference arithmetic exactly
(:meth:`next_completion_scalar`, kept as the executable scalar reference),
so replay results are bit-identical -- the cache and the vectorisation
remove lookup and interpreter work, never change values.
"""

from __future__ import annotations

import math

import numpy as np

from repro.simulation.database import PhaseRecord, SimulationDatabase
from repro.simulation.engine.core_state import CoreArrays, CoreRun

__all__ = ["CompletionScheduler"]


class CompletionScheduler:
    """Cached per-core completion times with incremental invalidation."""

    def __init__(
        self,
        system,
        db: SimulationDatabase,
        cores: list[CoreRun],
        arrays: CoreArrays,
    ) -> None:
        self.system = system
        self.db = db
        self.cores = cores
        self.arrays = arrays
        n = len(cores)
        self._rec: list[PhaseRecord | None] = [None] * n
        self._valid = np.zeros(n, dtype=bool)
        # The QoS anchor is immutable per system; constructing it per
        # memo-miss in baseline_interval_ns was pure allocation churn.
        self._baseline_alloc = system.baseline_allocation()
        # Pure-function memos over (phase record, allocation): counter
        # snapshots and QoS-anchor interval times recur every time the same
        # phase completes at the same setting, and both are deterministic,
        # so memoising them is value-identical.
        self._snapshots: dict[tuple, object] = {}
        self._baseline_ns: dict[tuple, float] = {}

    # ---- cache maintenance --------------------------------------------------
    def invalidate(self, core_id: int) -> None:
        """Drop the cached entry: the core's alloc, tenancy or slice changed."""
        self._valid[core_id] = False

    def invalidate_all(self) -> None:
        """Drop every cached entry (system-wide reconfiguration)."""
        self._valid.fill(False)

    def is_valid(self, core_id: int) -> bool:
        """Whether the cached entry is current (introspection for tests)."""
        return bool(self._valid[core_id])

    def _refresh(self, core_id: int) -> None:
        core = self.cores[core_id]
        rec = self.db.record(core.app, core.seq[core.slice_idx])
        self._rec[core_id] = rec
        self.arrays.tpi[core_id] = rec.tpi_at(core.alloc)
        self.arrays.epi[core_id] = rec.epi_at(core.alloc)
        self._valid[core_id] = True

    def refresh_stale(self) -> None:
        """Recompute every invalidated-and-active entry (lazy batch point).

        Exactly the set of cores the scalar reference would have lazily
        refreshed during its next-completion and advance walks; idle cores
        are never touched (their lanes are masked out of every vector read).
        """
        stale = np.nonzero(~self._valid & self.arrays.active)[0]
        for j in stale:
            self._refresh(int(j))

    # ---- cached views -------------------------------------------------------
    def record(self, core_id: int) -> PhaseRecord:
        """The record of the slice the core is currently executing."""
        if not self._valid[core_id]:
            self._refresh(core_id)
        return self._rec[core_id]

    def tpi(self, core_id: int) -> float:
        """Cached time-per-instruction of the core's slice at its allocation."""
        if not self._valid[core_id]:
            self._refresh(core_id)
        return float(self.arrays.tpi[core_id])

    def epi(self, core_id: int) -> float:
        """Cached energy-per-instruction of the core's slice at its allocation."""
        if not self._valid[core_id]:
            self._refresh(core_id)
        return float(self.arrays.epi[core_id])

    def observe(self, core_id: int):
        """Counter snapshot of the core's current slice at its allocation.

        :func:`repro.cpu.counters.observe_counters` is deterministic (its
        calibration bias is seeded from the phase identity), so the snapshot
        for a given (phase, allocation) pair is computed once and reused.
        """
        core = self.cores[core_id]
        rec = self.record(core_id)
        key = (rec.bench, rec.phase_key, core.alloc)
        snap = self._snapshots.get(key)
        if snap is None:
            snap = rec.observe(self.system, core.alloc)
            self._snapshots[key] = snap
        return snap

    def baseline_interval_ns(self, core_id: int) -> float:
        """Interval time of the core's current slice at the QoS anchor."""
        rec = self.record(core_id)
        key = (rec.bench, rec.phase_key)
        val = self._baseline_ns.get(key)
        if val is None:
            val = self.system.interval_instructions * rec.tpi_at(
                self._baseline_alloc
            )
            self._baseline_ns[key] = val
        return val

    # ---- completion times ---------------------------------------------------
    def remaining_ns(self, core_id: int) -> float:
        """Wall-clock span until the core completes its current interval."""
        core = self.cores[core_id]
        if not core.active:
            return math.inf
        left = self.system.interval_instructions - core.instr_done
        return core.pending_stall_ns + left * self.tpi(core_id)

    def next_completion(self) -> tuple[int, float]:
        """(core id, remaining ns) of the earliest interval completion.

        One masked argmin over the struct-of-arrays state
        (:meth:`CoreArrays.next_completion`) after refreshing the stale
        active entries.  Ties break to the lowest core id, matching the
        reference loop's ``min(range(n), key=remaining.__getitem__)``.
        """
        self.refresh_stale()
        return self.arrays.next_completion(self.system.interval_instructions)

    def next_completion_scalar(self) -> tuple[int, float]:
        """Scalar reference of :meth:`next_completion` (kept for the
        vector-vs-scalar property suite; identical arithmetic, one lane at
        a time)."""
        interval_instr = self.system.interval_instructions
        best = math.inf
        best_j = 0
        for j, core in enumerate(self.cores):
            if not core.active:
                continue
            left = interval_instr - core.instr_done
            r = core.pending_stall_ns + left * self.tpi(j)
            if r < best:
                best = r
                best_j = j
        return best_j, best
