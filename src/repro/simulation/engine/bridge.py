"""The manager bridge: the narrow API resource managers are driven through.

:mod:`repro.core.managers` was written against the monolithic simulator's
surface; the bridge pins that surface down as an explicit contract --
``system`` plus six methods -- so the kernel behind it can be restructured
freely without touching manager code.  ``manager.attach`` receives the
bridge, and every read a manager performs goes through it.
"""

from __future__ import annotations

import numpy as np

from repro.config import Allocation
from repro.simulation.database import PhaseRecord
from repro.util.validation import require

__all__ = ["ManagerBridge"]


class ManagerBridge:
    """Read-only view of kernel state exposed to resource managers."""

    def __init__(self, kernel) -> None:
        self._kernel = kernel
        #: The platform under management (managers read dimension spaces,
        #: baseline allocation and QoS anchor from it).
        self.system = kernel.system

    @property
    def stage_timer(self):
        """The kernel's :class:`~repro.util.profiling.StageTimer` under the
        ``REPRO_PROFILE`` hook, else ``None`` (managers add sub-stage
        timings to it)."""
        return self._kernel.stage_timer

    def slack(self, core_id: int) -> float:
        """The core's current QoS slack (0.0 = strict baseline QoS)."""
        return self._kernel.cores[core_id].slack

    def current_alloc(self, core_id: int) -> Allocation:
        """The core's currently applied (core size, VF, ways) setting."""
        return self._kernel.cores[core_id].alloc

    def is_active(self, core_id: int) -> bool:
        """False while the core idles between scenario tenants."""
        return self._kernel.cores[core_id].active

    def completed_snapshot(self, core_id: int):
        """Hardware-counter snapshot of the last completed interval."""
        return self._kernel.cores[core_id].last_snapshot

    def completed_record(self, core_id: int) -> PhaseRecord:
        """Database record (sampled ATD curves) of the last completed interval."""
        rec = self._kernel.cores[core_id].last_record
        require(rec is not None, "no completed interval yet")
        return rec

    def upcoming_record(self, core_id: int) -> PhaseRecord:
        """Record of the slice the core is currently executing (oracle view)."""
        return self._kernel.scheduler.record(core_id)

    # -- batched accessors (the vectorised manager pipeline) -------------------
    def active_core_ids(self) -> list[int]:
        """Cores currently executing a tenant, in core order.

        One vector read of the struct-of-arrays active mask (plain ``int``
        ids, so they key manager dicts exactly like the per-core path's).
        """
        return [int(j) for j in np.nonzero(self._kernel.arrays.active)[0]]

    def inactive_core_ids(self) -> list[int]:
        """Cores currently idle (power-gated), in core order.

        The complement of :meth:`active_core_ids`, with an all-active fast
        path -- the common case on fixed workloads, where managers would
        otherwise materialise the full id list just to learn nothing idles.
        """
        mask = self._kernel.arrays.active
        if mask.all():
            return []
        return [int(j) for j in np.nonzero(~mask)[0]]

    def upcoming_records(self, core_ids: list[int]) -> list[PhaseRecord]:
        """Batched :meth:`upcoming_record`: one scheduler read per core.

        The batched manager pipeline stacks these records' grids into
        ``(N, C, F, W)`` tensors; managers fall back to per-core
        :meth:`upcoming_record` calls on simulators without this method
        (the frozen legacy reference).
        """
        record = self._kernel.scheduler.record
        return [record(j) for j in core_ids]
