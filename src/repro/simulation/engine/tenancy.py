"""Tenancy and scenario-event application.

Owns the per-core pending-event queues of a dynamic
:class:`~repro.scenarios.events.Scenario` and applies the requests --
``swap`` / ``depart`` / ``slack`` -- under the boundary discipline the
scenario engine documents: a busy core picks requests up only at its own
interval boundary; an idle core (which has no boundaries) picks them up at
any global event.

Every applied event invalidates the core's entry in the
:class:`~repro.simulation.engine.scheduler.CompletionScheduler`: swaps and
departures change tenancy, allocation-independent slack changes are
invalidated too so the cached view is never stale relative to the core
state (the recomputation is a no-op numerically).

Many-core scale: the model keeps an index of cores with *non-empty*
pending queues and a live count of active cores, so the per-event work of
:meth:`TenancyModel.apply_due` and the kernel's all-idle check is
proportional to the number of cores that still have scenario requests --
not to the system size.  Event application mutates core state through the
:class:`~repro.simulation.engine.core_state.CoreRun` views (boundary-rate
work), which keeps the struct-of-arrays vectors the hot path reads -- the
active mask, pending stall, retirement progress -- consistent without any
separate synchronisation step.  At 4 cores that is noise; at 256 cores the
previous every-core scans were a per-event tax on every manager.
Hierarchical (clustered) managers receive the same per-core
``on_scenario_event`` notifications and route them to their cluster tier
internally.
"""

from __future__ import annotations

import math
from collections import deque

from repro.scenarios.events import Scenario, ScenarioEvent
from repro.simulation.engine.core_state import CoreRun
from repro.simulation.engine.scheduler import CompletionScheduler
from repro.simulation.overheads import WARMUP_MLP

__all__ = ["TenancyModel"]


class TenancyModel:
    """Pending scenario requests plus their application to core state."""

    def __init__(
        self,
        system,
        db,
        cores: list[CoreRun],
        scheduler: CompletionScheduler,
        manager,
        scenario: Scenario | None,
        max_slices: int | None,
    ) -> None:
        """Queue each core's scenario requests and index the non-empty queues."""
        self.system = system
        self.db = db
        self.cores = cores
        self.scheduler = scheduler
        self.manager = manager
        self.scenario = scenario
        self.max_slices = max_slices
        self.pending: list[deque[ScenarioEvent]] = [
            deque(scenario.events_for(j)) if scenario is not None else deque()
            for j in range(system.ncores)
        ]
        # Cores whose queues still hold requests, ascending; apply_due walks
        # only these instead of every core on every global event.
        self._pending_cores: list[int] = sorted(
            k for k, q in enumerate(self.pending) if q
        )
        self.n_active: int = int(scheduler.arrays.active.sum())
        # Earliest head-of-queue time over *idle* pending cores.  Idle cores
        # are the only ones whose requests any global event can apply, so
        # while ``now`` is below this mark the scan in :meth:`apply_due` can
        # only touch ``completed_core`` -- and a cheap head peek covers that.
        # Active/idle status only changes inside :meth:`apply_event`, i.e.
        # inside a scan, so the mark recomputed after each scan stays valid
        # between scans.  Start at ``-inf``: the first call always scans and
        # establishes the mark from live core state.
        self._idle_due_ns: float = -math.inf

    def next_pending_ns(self) -> float:
        """Earliest pending request time, ``inf`` if none remain."""
        heads = [self.pending[k][0].time_ns for k in self._pending_cores]
        return min(heads) if heads else math.inf

    def apply_event(self, core: CoreRun, ev: ScenarioEvent, now: float) -> None:
        """Apply one request to ``core`` at wall-clock ``now``."""
        if ev.kind == "slack":
            core.slack = float(ev.slack)
            self.scheduler.invalidate(core.core_id)
            return
        if ev.kind == "depart":
            if core.active:
                self.n_active -= 1
            core.active = False
            core.instr_done = 0.0
            core.pending_stall_ns = 0.0
            core.last_record = None
            core.last_snapshot = None
            self.scheduler.invalidate(core.core_id)
            self.manager.on_scenario_event(core.core_id, "depart")
            return
        # swap: the new tenant restarts its phase trace on this core.
        seq = self.db.phase_sequence(ev.app)
        if self.max_slices is not None:
            seq = seq[: self.max_slices]
        core.app = ev.app
        core.seq = seq
        core.slice_idx = 0
        core.instr_done = 0.0
        core.rounds = 0
        if not core.active:
            self.n_active += 1
        core.active = True
        core.interval_start_ns = now
        core.energy_interval_start_nj = core.energy_nj
        core.last_record = None
        core.last_snapshot = None
        # Cold-start: the incoming tenant warms its entire partition.
        misses = self.system.overheads.warmup_extra_misses(core.alloc.ways)
        core.pending_stall_ns += misses * self.system.mem.latency_ns / WARMUP_MLP
        core.energy_nj += misses * self.system.mem.energy_per_access_nj
        self.scheduler.invalidate(core.core_id)
        self.manager.on_scenario_event(core.core_id, "swap")

    def apply_due(self, now: float, completed_core: int | None) -> bool:
        """Apply every due request; True if ``completed_core`` changed tenancy.

        A busy core only picks up requests at its own interval boundary
        (``completed_core``); idle cores, which have no boundaries, pick
        theirs up at any global event.  Only cores with non-empty queues are
        visited, in ascending core order -- the same application order as a
        full scan, so replays stay bit-identical.
        """
        if now < self._idle_due_ns:
            # No idle core's head is due, and busy cores other than
            # ``completed_core`` never pick up requests here: the full scan
            # could only apply the completed core's head, so peek at it.
            q = self.pending[completed_core] if completed_core is not None else ()
            if not q or q[0].time_ns > now:
                return False
        tenancy_changed = False
        drained = False
        for k in self._pending_cores:
            queue = self.pending[k]
            core = self.cores[k]
            while queue and queue[0].time_ns <= now and (
                k == completed_core or not core.active
            ):
                ev = queue.popleft()
                self.apply_event(core, ev, now)
                if k == completed_core and ev.kind in ("swap", "depart"):
                    tenancy_changed = True
            drained = drained or not queue
        if drained:
            self._pending_cores = [k for k in self._pending_cores if self.pending[k]]
        active = self.scheduler.arrays.active
        mark = math.inf
        for k in self._pending_cores:
            if not active[k]:
                t = self.pending[k][0].time_ns
                if t < mark:
                    mark = t
        self._idle_due_ns = mark
        return tenancy_changed
