"""Per-core execution state and the time-advance mechanics.

A :class:`CoreRun` is the complete mutable state of one core replaying its
application's operational-phase trace: progress through the current
100 M-instruction interval, pending reconfiguration stall, accrued energy,
and the first-round / scenario bookkeeping the result accounting reads.

:func:`advance_core` moves one core forward by a wall-clock span using the
(tpi, epi) scalars the :class:`~repro.simulation.engine.scheduler.
CompletionScheduler` caches for it.  The arithmetic -- serve pending stall
first, then retire ``dt / tpi`` instructions and charge their energy -- is
exactly the reference implementation's, so results stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import Allocation
from repro.simulation.database import PhaseRecord

__all__ = ["CoreRun", "advance_core"]


@dataclass
class CoreRun:
    """Mutable execution state of one core."""

    core_id: int
    app: str
    seq: tuple[int, ...]
    slack: float
    alloc: Allocation
    slice_idx: int = 0
    instr_done: float = 0.0
    pending_stall_ns: float = 0.0
    energy_nj: float = 0.0
    intervals: int = 0
    rounds: int = 0
    interval_start_ns: float = 0.0
    first_round_time_ns: float | None = None
    first_round_energy_nj: float | None = None
    last_snapshot: object = None
    last_record: PhaseRecord | None = None
    active: bool = True
    # Energy accrued up to the start of the in-flight interval; scenario
    # accounting scores completed intervals only (equal work across managers).
    energy_interval_start_nj: float = 0.0

    @property
    def done_first_round(self) -> bool:
        """Whether the core has completed one full round of its trace."""
        return self.first_round_time_ns is not None


def advance_core(core: CoreRun, dt: float, tpi: float, epi: float) -> None:
    """Advance ``core`` by ``dt`` ns at the cached ``tpi``/``epi`` rates.

    Pending reconfiguration stall is served before any instructions retire;
    a core that spends the whole span stalled makes no progress.
    """
    if dt <= 0.0 or not core.active:
        return
    if core.pending_stall_ns > 0.0:
        served = min(core.pending_stall_ns, dt)
        core.pending_stall_ns -= served
        dt -= served
        if dt <= 0.0:
            return
    instr = dt / tpi
    core.instr_done += instr
    core.energy_nj += instr * epi
