"""Per-core execution state: struct-of-arrays store plus thin views.

The engine's hot path -- advancing every core by the event span and finding
the next interval completion -- used to walk a Python list of per-core
objects, which is an O(N)-per-event interpreter tax at 64-256 cores.  The
state those two operations touch now lives in :class:`CoreArrays`, one
NumPy vector per field (``instr_done``, ``pending_stall_ns``,
``energy_nj``, ``tpi``, ``epi`` and the ``active`` mask), so the kernel
advances all cores with a handful of vector operations
(:meth:`CoreArrays.advance_all`) and the scheduler finds the earliest
completion with one masked argmin (:meth:`CoreArrays.next_completion`).

:class:`CoreRun` remains the per-core view the slow path works with --
tenancy changes, interval sampling, the manager bridge, result accounting.
Its hot fields are properties over the shared arrays (reads return plain
Python floats, so downstream ``repr``-based digests never see NumPy
scalars); everything touched only at interval boundaries (phase position,
round bookkeeping, last snapshot/record) stays an ordinary attribute.

:func:`advance_core` is kept as the executable *scalar* reference of the
advance arithmetic -- serve pending stall first, then retire ``dt / tpi``
instructions and charge their energy -- exactly the frozen
:mod:`repro.simulation.legacy_sim` implementation.  The vectorised path
performs the same IEEE operations lane-by-lane (subtracting a served stall
of ``0.0`` and adding a retired-instruction count of ``0.0`` are bitwise
no-ops on the non-negative state), so results are bit-identical; the
property suite in ``tests/test_engine_vector.py`` enforces ``==`` between
the two over randomised states, and the golden equivalence suite enforces
it end-to-end.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import Allocation
from repro.simulation.database import PhaseRecord

__all__ = ["CoreArrays", "CoreRun", "advance_core"]


class CoreArrays:
    """Struct-of-arrays hot-path state shared by all cores of one run.

    One float64 vector per field, indexed by core id.  ``tpi``/``epi`` are
    the per-instruction rate caches owned by the
    :class:`~repro.simulation.engine.scheduler.CompletionScheduler` (an
    entry is meaningful only while the scheduler's valid flag for that core
    is set); the remaining vectors are authoritative core state.
    """

    __slots__ = (
        "n", "instr_done", "pending_stall_ns", "energy_nj",
        "tpi", "epi", "active",
        "_mask", "_run", "_nmask", "_served", "_rem", "_instr", "_tmp",
    )

    def __init__(self, n: int) -> None:
        self.n = n
        self.instr_done = np.zeros(n)
        self.pending_stall_ns = np.zeros(n)
        self.energy_nj = np.zeros(n)
        self.tpi = np.zeros(n)
        self.epi = np.zeros(n)
        self.active = np.ones(n, dtype=bool)
        # Per-event scratch (reused across events; the hot path is serial).
        self._mask = np.empty(n, dtype=bool)
        self._run = np.empty(n, dtype=bool)
        self._nmask = np.empty(n, dtype=bool)
        self._served = np.empty(n)
        self._rem = np.empty(n)
        self._instr = np.empty(n)
        self._tmp = np.empty(n)

    def advance_all(self, dt: float, exclude: int | None = None) -> None:
        """Vectorised :func:`advance_core` over every active core but one.

        ``exclude`` is the completing core of the current event (the kernel
        retires its interval exactly instead).  Lane-by-lane this performs
        the scalar reference's operations in the same order -- ``served =
        min(pending, dt)``, ``rem = dt - served``, ``instr = rem / tpi`` --
        with excluded/idle/fully-stalled lanes receiving exact ``+ 0.0`` /
        ``- 0.0`` updates, which are bitwise identity on the non-negative
        state vectors.  Requires the scheduler to have refreshed the
        ``tpi``/``epi`` entries of every active core (the preceding
        ``next_completion`` call does).
        """
        if dt <= 0.0:
            return
        mask = self._mask
        np.copyto(mask, self.active)
        if exclude is not None:
            mask[exclude] = False
        pending = self.pending_stall_ns
        # served = min(pending, dt) on selected lanes, exact 0.0 elsewhere
        # (multiplying the non-negative minimum by the boolean mask is a
        # bitwise-exact select: x * 1.0 == x, x * 0.0 == +0.0 for x >= 0).
        served = np.minimum(pending, dt, out=self._served)
        np.multiply(served, mask, out=served)
        rem = np.subtract(dt, served, out=self._rem)
        run = np.greater(rem, 0.0, out=self._run)
        np.logical_and(run, mask, out=run)
        instr = self._instr
        instr.fill(0.0)
        np.divide(rem, self.tpi, out=instr, where=run)
        pending -= served
        self.instr_done += instr
        self.energy_nj += np.multiply(instr, self.epi, out=self._tmp)

    def next_completion(self, interval_instructions: float) -> tuple[int, float]:
        """(core id, remaining ns) of the earliest interval completion.

        One masked argmin over ``pending_stall_ns + (interval_instructions
        - instr_done) * tpi``; inactive lanes are masked to ``inf``.
        ``np.argmin`` returns the *first* minimum, reproducing the scalar
        loop's lowest-core-id tie-break exactly.  With no active core the
        result is ``(0, inf)``, matching the scalar reference.
        """
        remaining = np.subtract(interval_instructions, self.instr_done,
                                out=self._rem)
        remaining *= self.tpi
        remaining += self.pending_stall_ns
        np.logical_not(self.active, out=self._nmask)
        remaining[self._nmask] = math.inf
        j = int(np.argmin(remaining))
        return j, float(remaining[j])


class CoreRun:
    """Per-core view over :class:`CoreArrays` plus the slow-path state."""

    __slots__ = (
        "arrays", "core_id", "app", "seq", "slack", "alloc", "slice_idx",
        "intervals", "rounds", "interval_start_ns", "first_round_time_ns",
        "first_round_energy_nj", "last_snapshot", "last_record",
        "energy_interval_start_nj",
    )

    def __init__(
        self,
        arrays: CoreArrays,
        core_id: int,
        app: str,
        seq: tuple[int, ...],
        slack: float,
        alloc: Allocation,
        active: bool = True,
    ) -> None:
        self.arrays = arrays
        self.core_id = core_id
        self.app = app
        self.seq = seq
        self.slack = slack
        self.alloc = alloc
        self.slice_idx = 0
        self.intervals = 0
        self.rounds = 0
        self.interval_start_ns = 0.0
        self.first_round_time_ns: float | None = None
        self.first_round_energy_nj: float | None = None
        self.last_snapshot: object = None
        self.last_record: PhaseRecord | None = None
        # Energy accrued up to the start of the in-flight interval; scenario
        # accounting scores completed intervals only (equal work per manager).
        self.energy_interval_start_nj = 0.0
        arrays.active[core_id] = active

    # -- array-backed hot fields (reads return plain Python scalars) ----------
    @property
    def instr_done(self) -> float:
        """Instructions retired in the in-flight interval."""
        return float(self.arrays.instr_done[self.core_id])

    @instr_done.setter
    def instr_done(self, value: float) -> None:
        """Store retirement progress into the shared vector."""
        self.arrays.instr_done[self.core_id] = value

    @property
    def pending_stall_ns(self) -> float:
        """Reconfiguration/warm-up stall still to serve before retiring."""
        return float(self.arrays.pending_stall_ns[self.core_id])

    @pending_stall_ns.setter
    def pending_stall_ns(self, value: float) -> None:
        """Store the pending stall into the shared vector."""
        self.arrays.pending_stall_ns[self.core_id] = value

    @property
    def energy_nj(self) -> float:
        """Total energy accrued by this core so far."""
        return float(self.arrays.energy_nj[self.core_id])

    @energy_nj.setter
    def energy_nj(self, value: float) -> None:
        """Store the accrued energy into the shared vector."""
        self.arrays.energy_nj[self.core_id] = value

    @property
    def active(self) -> bool:
        """False while the core idles (power-gated) between tenants."""
        return bool(self.arrays.active[self.core_id])

    @active.setter
    def active(self, value: bool) -> None:
        """Store the activity flag into the shared mask."""
        self.arrays.active[self.core_id] = value

    @property
    def done_first_round(self) -> bool:
        """Whether the core has completed one full round of its trace."""
        return self.first_round_time_ns is not None


def advance_core(core, dt: float, tpi: float, epi: float) -> None:
    """Advance one core by ``dt`` ns at the cached ``tpi``/``epi`` rates.

    The scalar reference of :meth:`CoreArrays.advance_all`: pending
    reconfiguration stall is served before any instructions retire; a core
    that spends the whole span stalled makes no progress.  ``core`` is
    anything exposing mutable ``instr_done`` / ``pending_stall_ns`` /
    ``energy_nj`` / ``active`` fields (a :class:`CoreRun` view or a plain
    test double).
    """
    if dt <= 0.0 or not core.active:
        return
    if core.pending_stall_ns > 0.0:
        served = min(core.pending_stall_ns, dt)
        core.pending_stall_ns -= served
        dt -= served
        if dt <= 0.0:
            return
    instr = dt / tpi
    core.instr_done += instr
    core.energy_nj += instr * epi
