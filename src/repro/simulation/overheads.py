"""Reconfiguration overheads charged by the RMA simulator.

The paper: "After applying the new resource settings, the corresponding
overheads are added to the simulation results for each core depending on the
change in their resource allocations."  Three costs apply:

* a **DVFS transition** stalls the core while the PLL/regulator relocks;
* a **core resize** stalls while in-flight instructions drain and sections
  are power-gated/ungated;
* **gained cache ways** arrive cold: the warm-up refill causes extra DRAM
  fetches, costing both time and DRAM energy.

Stall time burns leakage and background power but retires no instructions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import Allocation, SystemConfig
from repro.cpu.dvfs import dvfs_transition_cost_ns, voltage_ratio

__all__ = ["TransitionCost", "transition_cost"]

#: Warm-up misses overlap like regular demand misses; a modest factor.
WARMUP_MLP = 2.0


@dataclass(frozen=True)
class TransitionCost:
    """Time and energy charged to one core for one reconfiguration."""

    stall_ns: float
    energy_nj: float

    def __add__(self, other: "TransitionCost") -> "TransitionCost":
        return TransitionCost(self.stall_ns + other.stall_ns, self.energy_nj + other.energy_nj)


ZERO_COST = TransitionCost(0.0, 0.0)


def transition_cost(system: SystemConfig, old: Allocation, new: Allocation) -> TransitionCost:
    """Cost of moving one core from ``old`` to ``new``."""
    ov = system.overheads
    stall = dvfs_transition_cost_ns(ov.dvfs_transition_us, old.freq, new.freq)
    if old.core != new.core:
        stall += ov.resize_transition_us * 1000.0

    extra_misses = ov.warmup_extra_misses(new.ways - old.ways)
    warmup_ns = extra_misses * system.mem.latency_ns / WARMUP_MLP
    warmup_energy = extra_misses * system.mem.energy_per_access_nj

    # Leakage + background power burn during the stall (no instructions retire).
    f_new = system.vf.freqs_ghz[new.freq]
    vr = float(voltage_ratio(system.vf, f_new))
    leak_w = system.core_leak_w * system.core_sizes[new.core].leak_factor * vr
    idle_power_w = leak_w + system.mem.background_power_w / system.ncores
    total_stall = stall + warmup_ns
    return TransitionCost(
        stall_ns=total_stall,
        energy_nj=total_stall * idle_power_w + warmup_energy,
    )
