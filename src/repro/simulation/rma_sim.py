"""The event-driven RMA simulator (Figure 2.2 of the thesis).

Replays the full multi-programmed execution of a workload against the
simulation-results database under the control of a resource manager:

* every core advances through its application's operational phase trace;
* the next *global event* is the earliest completion of a 100 M-instruction
  interval on any core;
* at the event, the RMA is invoked on that core; the new system-wide
  resource setting (if any) is applied to all cores with the corresponding
  transition overheads;
* the simulation runs until every application has executed at least one
  complete round; applications that finish early restart to keep resource
  pressure realistic, but are scored on their first round.

This replays thousands of 100 M-instruction intervals -- the paper's
"thousands of billions of instructions" -- in seconds, because all detailed
simulation happened once, up front, into the database.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.config import Allocation, SystemConfig
from repro.core.managers import ResourceManager, StaticBaselineManager
from repro.simulation.database import PhaseRecord, SimulationDatabase
from repro.simulation.metrics import AppResult, IntervalSample, RunResult
from repro.simulation.overheads import transition_cost
from repro.util.validation import require
from repro.workloads.mixes import Workload

__all__ = ["RMASimulator", "simulate_workload"]

#: Hard cap on simulated events (runaway-manager guard).
MAX_EVENTS = 1_000_000

#: Completion tolerance (instructions) absorbing float accumulation error.
EPS_INSTR = 1e-3


@dataclass
class _CoreRun:
    """Mutable execution state of one core."""

    core_id: int
    app: str
    seq: tuple[int, ...]
    slack: float
    alloc: Allocation
    slice_idx: int = 0
    instr_done: float = 0.0
    pending_stall_ns: float = 0.0
    energy_nj: float = 0.0
    intervals: int = 0
    rounds: int = 0
    interval_start_ns: float = 0.0
    first_round_time_ns: float | None = None
    first_round_energy_nj: float | None = None
    last_snapshot: object = None
    last_record: PhaseRecord | None = None

    @property
    def done_first_round(self) -> bool:
        return self.first_round_time_ns is not None


class RMASimulator:
    """Drives one workload under one resource manager."""

    def __init__(
        self,
        system: SystemConfig,
        db: SimulationDatabase,
        workload: Workload,
        manager: ResourceManager,
        max_slices: int | None = None,
        collect_interval_samples: bool = True,
    ) -> None:
        require(workload.ncores == system.ncores, "workload size must match core count")
        for app in workload.apps:
            require(app in db.records, f"database has no benchmark {app!r}")
        self.system = system
        self.db = db
        self.workload = workload
        self.manager = manager
        self.collect_interval_samples = collect_interval_samples
        base = system.baseline_allocation()
        self.cores: list[_CoreRun] = []
        for j, app in enumerate(workload.apps):
            seq = db.phase_sequence(app)
            if max_slices is not None:
                seq = seq[:max_slices]
            self.cores.append(
                _CoreRun(core_id=j, app=app, seq=seq, slack=workload.slack[j], alloc=base)
            )
        self.time_ns = 0.0
        self.interval_samples: list[IntervalSample] = []

    # ---- manager-facing API -------------------------------------------------
    def slack(self, core_id: int) -> float:
        return self.cores[core_id].slack

    def current_alloc(self, core_id: int) -> Allocation:
        return self.cores[core_id].alloc

    def completed_snapshot(self, core_id: int):
        return self.cores[core_id].last_snapshot

    def completed_record(self, core_id: int) -> PhaseRecord:
        rec = self.cores[core_id].last_record
        require(rec is not None, "no completed interval yet")
        return rec

    def upcoming_record(self, core_id: int) -> PhaseRecord:
        """Record of the slice the core is currently executing (oracle view)."""
        core = self.cores[core_id]
        return self.db.record(core.app, core.seq[core.slice_idx])

    # ---- internals -----------------------------------------------------------
    def _current_record(self, core: _CoreRun) -> PhaseRecord:
        return self.db.record(core.app, core.seq[core.slice_idx])

    def _remaining_ns(self, core: _CoreRun) -> float:
        tpi = self._current_record(core).tpi_at(core.alloc)
        left = self.system.interval_instructions - core.instr_done
        return core.pending_stall_ns + left * tpi

    def _advance(self, core: _CoreRun, dt: float) -> None:
        if dt <= 0.0:
            return
        if core.pending_stall_ns > 0.0:
            served = min(core.pending_stall_ns, dt)
            core.pending_stall_ns -= served
            dt -= served
            if dt <= 0.0:
                return
        rec = self._current_record(core)
        tpi = rec.tpi_at(core.alloc)
        instr = dt / tpi
        core.instr_done += instr
        core.energy_nj += instr * rec.epi_at(core.alloc)

    def _complete_interval(self, core: _CoreRun) -> None:
        system = self.system
        rec = self._current_record(core)
        core.instr_done = 0.0
        core.intervals += 1
        core.last_record = rec
        core.last_snapshot = rec.observe(system, core.alloc)

        if self.collect_interval_samples and core.rounds == 0:
            duration = self.time_ns - core.interval_start_ns
            # Baseline interval time under *this* system's QoS anchor (the
            # anchor may differ from the database's nominal, e.g. in the
            # baseline-VF sensitivity experiment).
            baseline_ns = system.interval_instructions * rec.tpi_at(
                system.baseline_allocation()
            )
            self.interval_samples.append(
                IntervalSample(
                    core=core.core_id,
                    phase_key=core.seq[core.slice_idx],
                    duration_ns=duration,
                    baseline_ns=baseline_ns,
                    slack=core.slack,
                )
            )
        core.interval_start_ns = self.time_ns

        core.slice_idx += 1
        if core.slice_idx >= len(core.seq):
            if core.rounds == 0:
                core.first_round_time_ns = self.time_ns
                core.first_round_energy_nj = core.energy_nj
            core.rounds += 1
            core.slice_idx = 0

    def _apply(self, allocations: dict[int, Allocation]) -> None:
        system = self.system
        total = sum(a.ways for a in allocations.values())
        missing = [c for c in self.cores if c.core_id not in allocations]
        total += sum(c.alloc.ways for c in missing)
        require(
            total == system.llc.ways,
            f"manager allocated {total} ways, LLC has {system.llc.ways}",
        )
        for j, new in allocations.items():
            core = self.cores[j]
            if new == core.alloc:
                continue
            cost = transition_cost(system, core.alloc, new)
            core.pending_stall_ns += cost.stall_ns
            core.energy_nj += cost.energy_nj
            core.alloc = new

    def run(self) -> RunResult:
        t0 = time.perf_counter()
        self.manager.attach(self)
        events = 0
        while not all(c.done_first_round for c in self.cores):
            events += 1
            require(events <= MAX_EVENTS, "event cap exceeded (manager thrashing?)")
            remaining = [self._remaining_ns(c) for c in self.cores]
            j = min(range(len(remaining)), key=remaining.__getitem__)
            dt = remaining[j]
            for core in self.cores:
                if core.core_id == j:
                    # Exact completion: retire the interval's remaining
                    # instructions and charge their energy directly.
                    rec = self._current_record(core)
                    left = self.system.interval_instructions - core.instr_done
                    core.energy_nj += left * rec.epi_at(core.alloc)
                    core.pending_stall_ns = 0.0
                else:
                    self._advance(core, dt)
            self.time_ns += dt
            core = self.cores[j]
            self._complete_interval(core)
            new_allocs = self.manager.on_interval(j)
            if new_allocs:
                self._apply(new_allocs)

        apps = [
            AppResult(
                app=c.app,
                core=c.core_id,
                time_ns=float(c.first_round_time_ns),
                energy_nj=float(c.first_round_energy_nj),
                intervals=len(c.seq),
                slack=c.slack,
            )
            for c in self.cores
        ]
        return RunResult(
            workload=self.workload.name,
            manager=self.manager.name,
            apps=apps,
            interval_samples=self.interval_samples,
            rma_invocations=self.manager.meter.invocations,
            rma_instructions=self.manager.meter.instructions,
            sim_wall_s=time.perf_counter() - t0,
        )


def simulate_workload(
    system: SystemConfig,
    db: SimulationDatabase,
    workload: Workload,
    manager: ResourceManager | None = None,
    max_slices: int | None = None,
) -> RunResult:
    """Convenience wrapper: simulate one workload (baseline by default)."""
    mgr = manager if manager is not None else StaticBaselineManager()
    sim = RMASimulator(system, db, workload, mgr, max_slices=max_slices)
    return sim.run()
