"""The event-driven RMA simulator (Figure 2.2 of the thesis) -- facade.

Replays the full multi-programmed execution of a workload against the
simulation-results database under the control of a resource manager:

* every core advances through its application's operational phase trace;
* the next *global event* is the earliest completion of a 100 M-instruction
  interval on any core;
* at the event, the RMA is invoked on that core; the new system-wide
  resource setting (if any) is applied to all cores with the corresponding
  transition overheads;
* the simulation runs until every application has executed at least one
  complete round; applications that finish early restart to keep resource
  pressure realistic, but are scored on their first round.

This replays thousands of 100 M-instruction intervals -- the paper's
"thousands of billions of instructions" -- in seconds, because all detailed
simulation happened once, up front, into the database.

The implementation lives in the layered kernel package
(:mod:`repro.simulation.engine`): per-core state, an incremental
next-completion scheduler, the tenancy/scenario component and the manager
bridge.  :class:`RMASimulator` is the stable public face over that kernel;
its accounting is bit-identical to the frozen pre-refactor reference
(:mod:`repro.simulation.legacy_sim`), as the golden equivalence suite
asserts.

**Dynamic scenarios.**  With a :class:`~repro.scenarios.events.Scenario`
attached, the simulator additionally applies the scenario's timed event
stream -- app swaps, departures (the core idles, power-gated) and QoS-slack
changes -- each at the target core's first interval boundary at or after the
event time (idle cores pick requests up at the next global event).  A
scenario run executes a fixed total number of intervals
(``horizon_intervals``) instead of one round per app, so different managers
simulate the same number of instructions and energy totals compare at equal
work.  Events fire at wall-clock times on each run's own timeline -- as in
a real open system, a slower run absorbs more of the arrival stream before
completing the same work, so event *exposure* may differ slightly between
managers (bounded by the QoS slack, which caps their relative slowdown).
Interval samples are collected for every interval.  The manager
is notified of tenancy changes (:meth:`ResourceManager.on_scenario_event`)
so it discards statistics and energy curves derived from departed tenants.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.core.managers import ResourceManager, StaticBaselineManager
from repro.scenarios.events import Scenario
from repro.simulation.database import SimulationDatabase
from repro.simulation.engine import MAX_EVENTS, SimulationKernel
from repro.simulation.metrics import RunResult
from repro.workloads.mixes import Workload

__all__ = ["RMASimulator", "simulate_workload", "simulate_scenario", "MAX_EVENTS"]

#: Completion tolerance (instructions) absorbing float accumulation error.
EPS_INSTR = 1e-3


class RMASimulator(SimulationKernel):
    """Drives one workload under one resource manager.

    A thin facade over :class:`~repro.simulation.engine.SimulationKernel`
    that keeps the historical surface stable: construction signature, the
    ``run()`` entry point, the manager-facing API (``slack``,
    ``current_alloc``, ``is_active``, ``completed_snapshot``,
    ``completed_record``, ``upcoming_record``) and the introspectable
    ``cores`` / ``time_ns`` / ``interval_samples`` state.
    """


def simulate_workload(
    system: SystemConfig,
    db: SimulationDatabase,
    workload: Workload,
    manager: ResourceManager | None = None,
    max_slices: int | None = None,
) -> RunResult:
    """Convenience wrapper: simulate one workload (baseline by default)."""
    mgr = manager if manager is not None else StaticBaselineManager()
    sim = RMASimulator(system, db, workload, mgr, max_slices=max_slices)
    return sim.run()


def simulate_scenario(
    system: SystemConfig,
    db: SimulationDatabase,
    scenario: Scenario,
    manager: ResourceManager | None = None,
    max_slices: int | None = None,
) -> RunResult:
    """Simulate one dynamic scenario to its interval horizon.

    The returned :class:`RunResult` scores exactly
    ``scenario.horizon_intervals`` *completed* intervals of work: per-core
    energies exclude whatever partial interval each core had in flight when
    the horizon hit (that residue differs between managers and would bias
    equal-work comparisons).  ``interval_samples`` cover every completed
    interval, so
    :func:`repro.simulation.metrics.interval_violation_stats` scores QoS
    under tenancy churn where whole-run app slowdowns are undefined.
    """
    mgr = manager if manager is not None else StaticBaselineManager()
    sim = RMASimulator(
        system, db, scenario.workload, mgr, max_slices=max_slices, scenario=scenario
    )
    return sim.run()
