"""Result accounting: energy, execution time, QoS violations.

The paper's metrics:

* **system energy savings** -- relative to the static-baseline run of the
  same workload (all apps at the baseline allocation);
* **QoS violation** -- an app's full execution taking longer than its
  (slack-adjusted) baseline execution, with violations below 1 % considered
  negligible;
* **interval-level violation statistics** (Paper II's model-accuracy
  analysis) -- probability / expected value / standard deviation of
  per-interval slowdowns versus the baseline interval time.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import require

__all__ = [
    "AppResult",
    "RunResult",
    "WorkloadComparison",
    "compare_runs",
    "energy_savings_pct",
    "interval_violation_stats",
    "run_result_digest",
    "NEGLIGIBLE_VIOLATION",
]

#: "Values below 1% are considered negligible" (thesis, §3.1).
NEGLIGIBLE_VIOLATION = 0.01


@dataclass(frozen=True)
class AppResult:
    """One application's first full execution round under a policy."""

    app: str
    core: int
    time_ns: float
    energy_nj: float
    intervals: int
    slack: float = 0.0


@dataclass(frozen=True)
class IntervalSample:
    """Per-interval record for the model-accuracy analysis (E14)."""

    core: int
    phase_key: int
    duration_ns: float
    baseline_ns: float
    slack: float


@dataclass
class RunResult:
    """Complete outcome of one workload under one resource manager."""

    workload: str
    manager: str
    apps: list[AppResult]
    interval_samples: list[IntervalSample] = field(default_factory=list)
    rma_invocations: int = 0
    rma_instructions: float = 0.0
    sim_wall_s: float = 0.0

    @property
    def total_energy_nj(self) -> float:
        return float(sum(a.energy_nj for a in self.apps))

    @property
    def max_time_ns(self) -> float:
        return float(max(a.time_ns for a in self.apps))

    def app_times(self) -> dict[str, float]:
        return {f"{a.core}:{a.app}": a.time_ns for a in self.apps}


@dataclass(frozen=True)
class AppViolation:
    """QoS outcome of one app: positive ``violation_pct`` = QoS missed."""

    app: str
    core: int
    slowdown_pct: float      # time vs baseline, minus allowed slack
    violated: bool


@dataclass(frozen=True)
class WorkloadComparison:
    """A policy run scored against its static-baseline run."""

    workload: str
    manager: str
    savings_pct: float
    violations: tuple[AppViolation, ...]

    @property
    def n_violations(self) -> int:
        return sum(1 for v in self.violations if v.violated)

    def violation_values_pct(self) -> list[float]:
        return [v.slowdown_pct for v in self.violations if v.violated]


def run_result_digest(run: RunResult) -> str:
    """Digest of one run's simulation numbers at full precision.

    The canonical result hash: the bench-regression artifacts
    (``tools/bench_*.py``), the committed golden suites and the
    scenario-replay service all go through this one implementation, so a
    "result hash" means the same bytes everywhere.  Floats are hashed via
    ``repr`` (shortest round-trip form), so any drift in any scored number
    changes the digest exactly.
    """
    parts = [run.workload, run.manager,
             repr(int(run.rma_invocations)), repr(float(run.rma_instructions))]
    for app in run.apps:
        parts.append(
            f"{app.app}|{app.core}|{app.intervals}|{app.slack!r}|"
            f"{app.time_ns!r}|{app.energy_nj!r}"
        )
    parts.append(repr(len(run.interval_samples)))
    return hashlib.sha256("\n".join(parts).encode()).hexdigest()[:16]


def energy_savings_pct(baseline: RunResult, policy: RunResult) -> float:
    """System energy saved by ``policy`` relative to ``baseline`` (percent)."""
    base = baseline.total_energy_nj
    require(base > 0, "baseline energy must be positive")
    return (1.0 - policy.total_energy_nj / base) * 100.0


def compare_runs(baseline: RunResult, policy: RunResult) -> WorkloadComparison:
    """Score a policy run: savings plus per-app QoS outcomes."""
    require(baseline.workload == policy.workload, "runs are for different workloads")
    base_by_core = {a.core: a for a in baseline.apps}
    violations = []
    for a in policy.apps:
        b = base_by_core[a.core]
        require(b.app == a.app, "core/app assignment differs between runs")
        allowed = (1.0 + a.slack)
        slowdown = (a.time_ns / b.time_ns - allowed) * 100.0
        violations.append(
            AppViolation(
                app=a.app,
                core=a.core,
                slowdown_pct=slowdown,
                violated=slowdown > NEGLIGIBLE_VIOLATION * 100.0,
            )
        )
    return WorkloadComparison(
        workload=policy.workload,
        manager=policy.manager,
        savings_pct=energy_savings_pct(baseline, policy),
        violations=tuple(violations),
    )


def interval_violation_stats(samples: list[IntervalSample]) -> dict[str, float]:
    """Paper II's per-interval violation statistics.

    Returns probability of violation, expected violation value (over
    violating intervals), and standard deviation of violation values, all in
    percent.  A violation is an interval slower than its slack-adjusted
    baseline by more than the negligible threshold.
    """
    if not samples:
        return {"probability": 0.0, "expected_value": 0.0, "std": 0.0, "n": 0}
    over = []
    nviol = 0
    for s in samples:
        allowed = s.baseline_ns * (1.0 + s.slack)
        excess = (s.duration_ns / allowed - 1.0) * 100.0
        if excess > NEGLIGIBLE_VIOLATION * 100.0:
            nviol += 1
            over.append(excess)
    prob = nviol / len(samples) * 100.0
    vals = np.array(over, dtype=float)
    return {
        "probability": prob,
        "expected_value": float(vals.mean()) if len(vals) else 0.0,
        "std": float(vals.std()) if len(vals) else 0.0,
        "n": len(samples),
    }
