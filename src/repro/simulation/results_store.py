"""Persistent run-results store.

The paper's framework already amortises *detailed simulation* into one
on-disk database; this module does the same for the *replay* step.  A
finished :class:`~repro.simulation.metrics.RunResult` is a pure function of

* the simulation database (itself keyed by system configuration, benchmark
  set, trace density and ``DB_FORMAT_VERSION``),
* the workload or scenario being replayed (including slack vectors, event
  streams, horizon and starting tenancy),
* the manager specification (:class:`~repro.experiments.runner.ManagerSpec`),
* the trace-truncation fidelity knob (``max_slices``),

so :func:`run_key` hashes exactly those inputs and :class:`ResultsStore`
pickles results under ``<cache_dir>/results/`` next to the simulation
database.  Repeated experiment and benchmark invocations then skip replay
entirely and load bit-identical results from disk.

Entries are stored with their canonical content digest
(:func:`~repro.simulation.metrics.run_result_digest`) and **verified on
every load**: a stored result whose recomputed digest disagrees with the
recorded one -- bit rot, a torn write that still unpickles, a tampered
file -- is moved to ``<root>/.quarantine/`` and reported as a store miss,
so the caller falls through to re-simulation and the poisoned bytes can
never be served.  Unpickleable files are quarantined the same way.

Invalidation: bump :data:`RESULTS_FORMAT_VERSION` whenever replay
accounting changes (the database's own ``DB_FORMAT_VERSION`` already covers
model/database changes), or delete ``<cache_dir>/results/``; the
``--no-result-cache`` CLI flag and ``REPRO_NO_RESULT_CACHE=1`` bypass the
store without touching it.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading

from repro.scenarios.events import Scenario, ScenarioEvent
from repro.simulation.database import SimulationDatabase, _config_digest
from repro.simulation.metrics import RunResult, run_result_digest
from repro.workloads.mixes import Workload

__all__ = [
    "ResultsStore",
    "InflightRegistry",
    "run_key",
    "database_digest",
    "RESULTS_FORMAT_VERSION",
]

#: Bump to invalidate stored run results when replay accounting changes.
#: v2: entries are ``{"v", "digest", "result"}`` dicts, digest-verified on
#: every load (bare-``RunResult`` v1 pickles are never looked up again).
RESULTS_FORMAT_VERSION = 2

#: Fault-injection seam (see :mod:`repro.service.faults`, which installs
#: its plan's ``fire`` here).  The simulation layer never imports the
#: service layer, so the hook is a plain module attribute: a callable
#: ``(site: str) -> rule-or-None``; ``None`` (the default) disables every
#: injection check.  Site spellings must match ``repro.service.faults``.
FAULT_HOOK = None


def database_digest(db: SimulationDatabase) -> str:
    """Content digest of the database a run replays against.

    Reuses the database's own cache key (system geometry, benchmark set,
    trace density, ``DB_FORMAT_VERSION``), so anything that would rebuild
    the database also invalidates every run keyed against it.
    """
    accesses_per_set = int(db.build_params.get("accesses_per_set", 0))
    return _config_digest(db.system, tuple(sorted(db.records)), accesses_per_set)


def _workload_token(wl: Workload) -> str:
    return "wl;{};{};{};{}".format(
        wl.name, ",".join(wl.apps), ",".join(repr(s) for s in wl.slack), wl.tag
    )


def _event_token(ev: ScenarioEvent) -> str:
    return f"{ev.kind}@{ev.time_ns!r}>{ev.core}:{ev.app}:{ev.slack!r}"


def _scenario_token(sc: Scenario) -> str:
    return "sc;{};{};h{};a{};[{}]".format(
        sc.name,
        _workload_token(sc.workload),
        sc.horizon_intervals,
        ",".join("1" if a else "0" for a in sc.active),
        "|".join(_event_token(ev) for ev in sc.events),
    )


def run_key(
    system,
    db: SimulationDatabase,
    item: Workload | Scenario,
    spec,
    max_slices: int | None,
) -> str:
    """Content hash identifying one (system, database, workload/scenario,
    manager, fidelity) replay.

    ``system`` is the *replay* platform, hashed in full: it usually equals
    the database's build platform, but replay-only fields -- the QoS anchor
    (``qos_baseline_ghz``), transition-overhead constants, interval length
    -- change results without changing the database (E7 moves the anchor
    against one database), so the database digest alone is not enough.
    ``spec`` is any object with a stable, complete ``repr`` -- in practice
    a frozen ``ManagerSpec`` dataclass."""
    token = _scenario_token(item) if isinstance(item, Scenario) else _workload_token(item)
    parts = [
        f"rv{RESULTS_FORMAT_VERSION}",
        database_digest(db),
        repr(system),
        token,
        repr(spec),
        f"ms{max_slices}",
    ]
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:24]


class ResultsStore:
    """One directory of digest-verified pickled results, one file per run key.

    Reads tolerate missing files (misses) and *verify* present ones: each
    entry records the canonical content digest of its result at put time,
    and a load whose recomputed digest disagrees -- or that does not
    unpickle into the expected shape at all -- is quarantined (moved to
    ``<root>/.quarantine/``) and reported as a miss, so cached rot falls
    through to re-simulation instead of being served.  Writes are atomic
    (tmp + rename), so concurrent experiment processes sharing one cache
    directory can only ever observe complete results.
    """

    #: Quarantine subdirectory for entries that failed load verification.
    QUARANTINE_DIR = ".quarantine"

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.puts = 0
        #: Entries moved to quarantine after failing digest/shape checks.
        self.quarantined = 0
        #: Optional ``callback(key)`` fired after each successful put; the
        #: replay service's job journal hooks this to record at-rest
        #: persistence.  Not pickled (see ``__getstate__``): a store shipped
        #: to a worker process carries its path, never the parent's hook.
        self.on_put = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["on_put"] = None
        return state

    def path(self, key: str) -> str:
        return os.path.join(self.root, f"run_{key}.pkl")

    def _quarantine(self, key: str) -> None:
        """Move a failed entry aside so it is never load-attempted again."""
        path = self.path(key)
        qdir = os.path.join(self.root, self.QUARANTINE_DIR)
        try:
            os.makedirs(qdir, exist_ok=True)
            os.replace(path, os.path.join(qdir, os.path.basename(path)))
        except OSError:
            # Racing quarantiners / read-only store: losing the move is
            # fine, the entry is already being treated as a miss.
            return
        self.quarantined += 1

    def get(self, key: str) -> RunResult | None:
        try:
            with open(self.path(key), "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        # Unpickling a truncated/corrupt/version-skewed file can raise far
        # more than UnpicklingError (EOFError, OverflowError, ValueError,
        # ImportError/AttributeError on renamed classes, ...); any failure
        # to load quarantines the entry and counts as a miss, never a crash.
        except Exception:
            self._quarantine(key)
            self.misses += 1
            return None
        result = payload.get("result") if isinstance(payload, dict) else None
        stored_digest = payload.get("digest") if isinstance(payload, dict) else None
        if FAULT_HOOK is not None and FAULT_HOOK("store.load_corrupt"):
            # Injected rot: tamper the recorded digest so the verification
            # and quarantine machinery below runs against a real file.
            stored_digest = f"rotten:{stored_digest}"
        if (
            not isinstance(result, RunResult)
            or not isinstance(stored_digest, str)
            or run_result_digest(result) != stored_digest
        ):
            self._quarantine(key)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> None:
        """Persist one result atomically.

        The entry is wrapped with its canonical content digest (verified
        on every later load).  The pickle lands in a uniquely named temp
        file in the same directory (``mkstemp``: unique even across
        *threads* sharing a pid, as the service worker pool does), is
        flushed and fsynced, and only then renamed over the final path.  A
        worker killed at any instant can therefore leave at most an
        orphaned ``.tmp`` file -- never a truncated pickle under a real key
        that would poison later reads.
        """
        if FAULT_HOOK is not None and FAULT_HOOK("store.put_fail"):
            raise OSError(f"injected results-store put failure for {key}")
        payload = {
            "v": RESULTS_FORMAT_VERSION,
            "digest": run_result_digest(result),
            "result": result,
        }
        os.makedirs(self.root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=f"run_{key}.", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1
        if self.on_put is not None:
            self.on_put(key)


class InflightRegistry:
    """In-flight run dedup: concurrent identical requests coalesce onto one.

    The persistent store dedups *finished* runs; this registry closes the
    window while a run is still executing.  The first claimant of a key
    becomes its owner and must eventually :meth:`publish` or :meth:`fail`;
    every later claimant of the same key gets the owner's ticket and waits
    on it instead of simulating.  The service worker pool
    (:mod:`repro.service.pool`) keys this registry with the same
    :func:`run_key` content hashes as the store, so "identical request"
    means identical (database, scenario, manager, fidelity) -- not merely an
    identical HTTP body.
    """

    class Ticket:
        """One in-flight run: waiters block on ``done`` and read the outcome."""

        __slots__ = ("key", "done", "result", "error", "waiters")

        def __init__(self, key: str) -> None:
            self.key = key
            self.done = threading.Event()
            self.result: RunResult | None = None
            self.error: BaseException | None = None
            self.waiters = 0

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[str, InflightRegistry.Ticket] = {}
        #: Requests coalesced onto an already-in-flight run (monotonic).
        self.coalesced = 0

    def claim(self, key: str) -> tuple[bool, "InflightRegistry.Ticket"]:
        """Return ``(owner, ticket)``: the first claimant owns the run."""
        with self._lock:
            ticket = self._inflight.get(key)
            if ticket is not None:
                ticket.waiters += 1
                self.coalesced += 1
                return False, ticket
            ticket = InflightRegistry.Ticket(key)
            self._inflight[key] = ticket
            return True, ticket

    def _settle(self, ticket: "InflightRegistry.Ticket") -> None:
        with self._lock:
            self._inflight.pop(ticket.key, None)
        ticket.done.set()

    def publish(self, ticket: "InflightRegistry.Ticket", result: RunResult) -> None:
        """Owner: the run finished; release every waiter with the result."""
        ticket.result = result
        self._settle(ticket)

    def fail(self, ticket: "InflightRegistry.Ticket", error: BaseException) -> None:
        """Owner: the run crashed; release every waiter with the error.

        The key is removed from the registry first, so a later identical
        request retries the run instead of inheriting the failure forever.
        """
        ticket.error = error
        self._settle(ticket)

    def inflight_count(self) -> int:
        with self._lock:
            return len(self._inflight)
