"""Persistent run-results store.

The paper's framework already amortises *detailed simulation* into one
on-disk database; this module does the same for the *replay* step.  A
finished :class:`~repro.simulation.metrics.RunResult` is a pure function of

* the simulation database (itself keyed by system configuration, benchmark
  set, trace density and ``DB_FORMAT_VERSION``),
* the workload or scenario being replayed (including slack vectors, event
  streams, horizon and starting tenancy),
* the manager specification (:class:`~repro.experiments.runner.ManagerSpec`),
* the trace-truncation fidelity knob (``max_slices``),

so :func:`run_key` hashes exactly those inputs and :class:`ResultsStore`
pickles results under ``<cache_dir>/results/`` next to the simulation
database.  Repeated experiment and benchmark invocations then skip replay
entirely and load bit-identical results from disk.

Invalidation: bump :data:`RESULTS_FORMAT_VERSION` whenever replay
accounting changes (the database's own ``DB_FORMAT_VERSION`` already covers
model/database changes), or delete ``<cache_dir>/results/``; the
``--no-result-cache`` CLI flag and ``REPRO_NO_RESULT_CACHE=1`` bypass the
store without touching it.
"""

from __future__ import annotations

import hashlib
import os
import pickle

from repro.scenarios.events import Scenario, ScenarioEvent
from repro.simulation.database import SimulationDatabase, _config_digest
from repro.simulation.metrics import RunResult
from repro.workloads.mixes import Workload

__all__ = ["ResultsStore", "run_key", "database_digest", "RESULTS_FORMAT_VERSION"]

#: Bump to invalidate stored run results when replay accounting changes.
RESULTS_FORMAT_VERSION = 1


def database_digest(db: SimulationDatabase) -> str:
    """Content digest of the database a run replays against.

    Reuses the database's own cache key (system geometry, benchmark set,
    trace density, ``DB_FORMAT_VERSION``), so anything that would rebuild
    the database also invalidates every run keyed against it.
    """
    accesses_per_set = int(db.build_params.get("accesses_per_set", 0))
    return _config_digest(db.system, tuple(sorted(db.records)), accesses_per_set)


def _workload_token(wl: Workload) -> str:
    return "wl;{};{};{};{}".format(
        wl.name, ",".join(wl.apps), ",".join(repr(s) for s in wl.slack), wl.tag
    )


def _event_token(ev: ScenarioEvent) -> str:
    return f"{ev.kind}@{ev.time_ns!r}>{ev.core}:{ev.app}:{ev.slack!r}"


def _scenario_token(sc: Scenario) -> str:
    return "sc;{};{};h{};a{};[{}]".format(
        sc.name,
        _workload_token(sc.workload),
        sc.horizon_intervals,
        ",".join("1" if a else "0" for a in sc.active),
        "|".join(_event_token(ev) for ev in sc.events),
    )


def run_key(
    system,
    db: SimulationDatabase,
    item: Workload | Scenario,
    spec,
    max_slices: int | None,
) -> str:
    """Content hash identifying one (system, database, workload/scenario,
    manager, fidelity) replay.

    ``system`` is the *replay* platform, hashed in full: it usually equals
    the database's build platform, but replay-only fields -- the QoS anchor
    (``qos_baseline_ghz``), transition-overhead constants, interval length
    -- change results without changing the database (E7 moves the anchor
    against one database), so the database digest alone is not enough.
    ``spec`` is any object with a stable, complete ``repr`` -- in practice
    a frozen ``ManagerSpec`` dataclass."""
    token = _scenario_token(item) if isinstance(item, Scenario) else _workload_token(item)
    parts = [
        f"rv{RESULTS_FORMAT_VERSION}",
        database_digest(db),
        repr(system),
        token,
        repr(spec),
        f"ms{max_slices}",
    ]
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:24]


class ResultsStore:
    """One directory of pickled :class:`RunResult`s, one file per run key.

    Reads tolerate missing or corrupt files (treated as misses); writes are
    atomic (tmp + rename), so concurrent experiment processes sharing one
    cache directory can only ever observe complete results.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.puts = 0

    def path(self, key: str) -> str:
        return os.path.join(self.root, f"run_{key}.pkl")

    def get(self, key: str) -> RunResult | None:
        try:
            with open(self.path(key), "rb") as fh:
                result = pickle.load(fh)
        # Unpickling a truncated/corrupt/version-skewed file can raise far
        # more than UnpicklingError (EOFError, OverflowError, ValueError,
        # ImportError/AttributeError on renamed classes, ...); any failure
        # to load is a cache miss, never a crash.
        except Exception:
            self.misses += 1
            return None
        if not isinstance(result, RunResult):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> None:
        os.makedirs(self.root, exist_ok=True)
        tmp = self.path(key) + f".tmp{os.getpid()}"
        with open(tmp, "wb") as fh:
            pickle.dump(result, fh)
        os.replace(tmp, self.path(key))
        self.puts += 1
