"""The simulation-results database.

The paper performs detailed architectural simulation (Sniper + McPAT) of each
phase's representative slice over the full range of resource settings *once*,
stores the results, and then replays arbitrarily many RMA experiments against
the same database -- "the same simulation result database can be used for all
the experiments" (thesis Ch. 2).  This module is that database.

A :class:`PhaseRecord` holds, for one (benchmark, operational phase):

* ground-truth grids ``tpi[c,f,w]``, ``latency[c,f,w]``, ``epi[c,f,w]``;
* the full-trace miss curve and MLP grid (ground truth);
* the *sampled* ATD miss curve and quantised MLP-ATD table (what the RMA's
  online hardware reads -- the realistic models' inputs).

Records are duck-typed against :func:`repro.cpu.counters.observe_counters`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field

import numpy as np

from repro.config import Allocation, SystemConfig
from repro.cpu.counters import CounterSnapshot, observe_counters
from repro.util.parallel import parallel_map
from repro.util.validation import require
from repro.workloads.benchmarks import BENCHMARKS, get_benchmark

__all__ = ["PhaseRecord", "SimulationDatabase", "build_database", "DB_FORMAT_VERSION"]

#: Bump to invalidate on-disk caches when record layout or models change.
DB_FORMAT_VERSION = 4


@dataclass(frozen=True)
class PhaseRecord:
    """Detailed-simulation results for one phase's representative slice."""

    bench: str
    phase_key: int
    weight: float
    # phase-level observables
    apki: float
    epi_dyn: float
    base_cpi: float
    ilp_sensitivity: float
    mlp_sensitivity: float
    # ground truth
    mpki_full: np.ndarray     # (W,)
    mlp_full: np.ndarray      # (C, W)
    tpi: np.ndarray           # (C, F, W) ns/instr
    latency: np.ndarray       # (C, F, W) ns
    epi: np.ndarray           # (C, F, W) nJ/instr
    # online hardware readings (set-sampled, quantised)
    mpki_sampled: np.ndarray  # (W,)
    mlp_sampled: np.ndarray   # (C, W)

    def observe(self, system: SystemConfig, alloc: Allocation) -> CounterSnapshot:
        """Hardware-counter snapshot of one interval at ``alloc``."""
        return observe_counters(system, self, alloc)

    def tpi_at(self, alloc: Allocation) -> float:
        return float(self.tpi[alloc.core, alloc.freq, alloc.ways - 1])

    def epi_at(self, alloc: Allocation) -> float:
        return float(self.epi[alloc.core, alloc.freq, alloc.ways - 1])


@dataclass
class SimulationDatabase:
    """All phase records plus each benchmark's operational phase trace."""

    system: SystemConfig
    records: dict[str, dict[int, PhaseRecord]]
    traces: dict[str, tuple[int, ...]]
    build_params: dict = field(default_factory=dict)

    def record(self, bench: str, phase_key: int) -> PhaseRecord:
        return self.records[bench][phase_key]

    def phase_sequence(self, bench: str) -> tuple[int, ...]:
        return self.traces[bench]

    def benchmarks(self) -> list[str]:
        return sorted(self.records)

    def weighted_mpki_curve(self, bench: str) -> np.ndarray:
        """Benchmark-level MPKI(w), weighted by phase weights (full-trace)."""
        recs = self.records[bench].values()
        return np.sum([r.weight * r.mpki_full for r in recs], axis=0)

    def weighted_mlp_grid(self, bench: str) -> np.ndarray:
        """Benchmark-level MLP[c, w], weighted by phase weights."""
        recs = self.records[bench].values()
        return np.sum([r.weight * r.mlp_full for r in recs], axis=0)

    def baseline_tpi(self, bench: str, phase_key: int) -> float:
        return self.record(bench, phase_key).tpi_at(self.system.baseline_allocation())


def _config_digest(system: SystemConfig, names: tuple[str, ...], accesses_per_set: int) -> str:
    """Stable cache key over every input that changes database contents."""
    parts = [
        f"v{DB_FORMAT_VERSION}",
        f"n{system.ncores}",
        f"ways{system.llc.ways}",
        f"sets{system.llc.model_sets}",
        f"samp{system.llc.atd_sampled_sets}",
        f"vf{system.vf.freqs_ghz}{system.vf.v0}{system.vf.kv}",
        f"cores{[(c.name, c.rob, c.width, c.mshrs, c.epi_factor, c.leak_factor, c.ilp_speedup, c.ilp_floor) for c in system.core_sizes]}",
        f"mem{system.mem}",
        f"leak{system.core_leak_w}cache{system.llc_way_static_w},{system.llc_access_energy_nj}",
        f"aps{accesses_per_set}",
        ",".join(names),
    ]
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


def build_database(
    system: SystemConfig,
    names: list[str] | None = None,
    accesses_per_set: int = 1200,
    processes: int | None = None,
    cache_dir: str | None = None,
) -> SimulationDatabase:
    """Run the detailed-simulation step for ``names`` (default: full suite).

    Per-benchmark work (SimPoint + per-phase characterisation) is independent
    and fanned out over worker processes, mirroring the paper's observation
    that this step parallelises trivially.  With ``cache_dir`` set, the
    finished database is pickled to disk and reused across runs.
    """
    from repro.simulation.detailed import analyze_benchmark  # local: avoid cycle

    all_names = tuple(sorted(names if names is not None else BENCHMARKS))
    for n in all_names:
        get_benchmark(n)  # fail fast on unknown names

    cache_path = None
    if cache_dir:
        digest = _config_digest(system, all_names, accesses_per_set)
        cache_path = os.path.join(cache_dir, f"simdb_{digest}.pkl")
        if os.path.exists(cache_path):
            with open(cache_path, "rb") as fh:
                db = pickle.load(fh)
            require(isinstance(db, SimulationDatabase), "corrupt database cache")
            return db

    work = [(name, system, accesses_per_set) for name in all_names]
    results = parallel_map(_analyze_one, work, processes=processes)

    records: dict[str, dict[int, PhaseRecord]] = {}
    traces: dict[str, tuple[int, ...]] = {}
    for name, recs, trace in results:
        records[name] = recs
        traces[name] = trace
    db = SimulationDatabase(
        system=system,
        records=records,
        traces=traces,
        build_params={"accesses_per_set": accesses_per_set},
    )
    if cache_path:
        os.makedirs(cache_dir, exist_ok=True)
        tmp = cache_path + f".tmp{os.getpid()}"
        with open(tmp, "wb") as fh:
            pickle.dump(db, fh)
        os.replace(tmp, cache_path)
    return db


def _analyze_one(args: tuple) -> tuple:
    """Picklable worker wrapper for :func:`parallel_map`."""
    from repro.simulation.detailed import analyze_benchmark

    name, system, accesses_per_set = args
    recs, trace = analyze_benchmark(system, name, accesses_per_set=accesses_per_set)
    return name, recs, trace
