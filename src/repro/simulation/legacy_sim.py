"""Frozen pre-refactor RMA simulator (golden reference).

This is the monolithic event loop that :mod:`repro.simulation.engine`
replaced, kept verbatim as the executable specification of the accounting
semantics.  The golden equivalence suite
(``tests/test_engine_equivalence.py``) replays fixed workloads and dynamic
scenarios through both implementations and asserts bit-identical
:class:`~repro.simulation.metrics.RunResult` numbers, and
``tools/bench_engine_speedup.py`` measures the engine's speedup against it.

Do not "fix" or optimise this module: its value is that it never changes.
New behaviour belongs in :mod:`repro.simulation.engine`; if semantics must
change, update the engine and regenerate the golden expectations in one
reviewed step.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass

from repro.config import Allocation, SystemConfig
from repro.core.managers import ResourceManager, StaticBaselineManager
from repro.scenarios.events import Scenario, ScenarioEvent
from repro.simulation.database import PhaseRecord, SimulationDatabase
from repro.simulation.metrics import AppResult, IntervalSample, RunResult
from repro.simulation.overheads import WARMUP_MLP, transition_cost
from repro.util.validation import require
from repro.workloads.mixes import Workload

__all__ = ["LegacyRMASimulator"]

#: Hard cap on simulated events (runaway-manager guard).
MAX_EVENTS = 1_000_000

#: Completion tolerance (instructions) absorbing float accumulation error.
EPS_INSTR = 1e-3


@dataclass
class _CoreRun:
    """Mutable execution state of one core."""

    core_id: int
    app: str
    seq: tuple[int, ...]
    slack: float
    alloc: Allocation
    slice_idx: int = 0
    instr_done: float = 0.0
    pending_stall_ns: float = 0.0
    energy_nj: float = 0.0
    intervals: int = 0
    rounds: int = 0
    interval_start_ns: float = 0.0
    first_round_time_ns: float | None = None
    first_round_energy_nj: float | None = None
    last_snapshot: object = None
    last_record: PhaseRecord | None = None
    active: bool = True
    energy_interval_start_nj: float = 0.0

    @property
    def done_first_round(self) -> bool:
        return self.first_round_time_ns is not None


class LegacyRMASimulator:
    """The pre-refactor monolithic simulator (reference semantics)."""

    def __init__(
        self,
        system: SystemConfig,
        db: SimulationDatabase,
        workload: Workload,
        manager: ResourceManager,
        max_slices: int | None = None,
        collect_interval_samples: bool = True,
        scenario: Scenario | None = None,
    ) -> None:
        require(workload.ncores == system.ncores, "workload size must match core count")
        for app in workload.apps:
            require(app in db.records, f"database has no benchmark {app!r}")
        if scenario is not None:
            require(scenario.workload == workload,
                    "scenario workload must match the workload being simulated")
            for ev in scenario.events:
                if ev.kind == "swap":
                    require(ev.app in db.records,
                            f"database has no benchmark {ev.app!r} (scenario event)")
        self.system = system
        self.db = db
        self.workload = workload
        self.manager = manager
        self.collect_interval_samples = collect_interval_samples
        self.scenario = scenario
        self.max_slices = max_slices
        base = system.baseline_allocation()
        self.cores: list[_CoreRun] = []
        for j, app in enumerate(workload.apps):
            seq = db.phase_sequence(app)
            if max_slices is not None:
                seq = seq[:max_slices]
            active = scenario.active[j] if scenario is not None else True
            self.cores.append(
                _CoreRun(core_id=j, app=app, seq=seq, slack=workload.slack[j],
                         alloc=base, active=active)
            )
        self._pending: list[deque[ScenarioEvent]] = [
            deque(scenario.events_for(j)) if scenario is not None else deque()
            for j in range(system.ncores)
        ]
        self.time_ns = 0.0
        self.total_intervals = 0
        self.interval_samples: list[IntervalSample] = []

    # ---- manager-facing API -------------------------------------------------
    def slack(self, core_id: int) -> float:
        return self.cores[core_id].slack

    def current_alloc(self, core_id: int) -> Allocation:
        return self.cores[core_id].alloc

    def is_active(self, core_id: int) -> bool:
        return self.cores[core_id].active

    def completed_snapshot(self, core_id: int):
        return self.cores[core_id].last_snapshot

    def completed_record(self, core_id: int) -> PhaseRecord:
        rec = self.cores[core_id].last_record
        require(rec is not None, "no completed interval yet")
        return rec

    def upcoming_record(self, core_id: int) -> PhaseRecord:
        core = self.cores[core_id]
        return self.db.record(core.app, core.seq[core.slice_idx])

    # ---- internals -----------------------------------------------------------
    def _current_record(self, core: _CoreRun) -> PhaseRecord:
        return self.db.record(core.app, core.seq[core.slice_idx])

    def _remaining_ns(self, core: _CoreRun) -> float:
        if not core.active:
            return math.inf
        tpi = self._current_record(core).tpi_at(core.alloc)
        left = self.system.interval_instructions - core.instr_done
        return core.pending_stall_ns + left * tpi

    def _advance(self, core: _CoreRun, dt: float) -> None:
        if dt <= 0.0 or not core.active:
            return
        if core.pending_stall_ns > 0.0:
            served = min(core.pending_stall_ns, dt)
            core.pending_stall_ns -= served
            dt -= served
            if dt <= 0.0:
                return
        rec = self._current_record(core)
        tpi = rec.tpi_at(core.alloc)
        instr = dt / tpi
        core.instr_done += instr
        core.energy_nj += instr * rec.epi_at(core.alloc)

    def _complete_interval(self, core: _CoreRun) -> None:
        system = self.system
        rec = self._current_record(core)
        core.instr_done = 0.0
        core.intervals += 1
        core.last_record = rec
        core.last_snapshot = rec.observe(system, core.alloc)

        if self.collect_interval_samples and (self.scenario is not None or core.rounds == 0):
            duration = self.time_ns - core.interval_start_ns
            baseline_ns = system.interval_instructions * rec.tpi_at(
                system.baseline_allocation()
            )
            self.interval_samples.append(
                IntervalSample(
                    core=core.core_id,
                    phase_key=core.seq[core.slice_idx],
                    duration_ns=duration,
                    baseline_ns=baseline_ns,
                    slack=core.slack,
                )
            )
        core.interval_start_ns = self.time_ns
        core.energy_interval_start_nj = core.energy_nj

        core.slice_idx += 1
        if core.slice_idx >= len(core.seq):
            if core.rounds == 0:
                core.first_round_time_ns = self.time_ns
                core.first_round_energy_nj = core.energy_nj
            core.rounds += 1
            core.slice_idx = 0

    def _apply(self, allocations: dict[int, Allocation]) -> None:
        system = self.system
        total = sum(a.ways for a in allocations.values())
        missing = [c for c in self.cores if c.core_id not in allocations]
        total += sum(c.alloc.ways for c in missing)
        require(
            total == system.llc.ways,
            f"manager allocated {total} ways, LLC has {system.llc.ways}",
        )
        for j, new in allocations.items():
            core = self.cores[j]
            if new == core.alloc:
                continue
            if not core.active:
                core.alloc = new
                continue
            cost = transition_cost(system, core.alloc, new)
            core.pending_stall_ns += cost.stall_ns
            core.energy_nj += cost.energy_nj
            core.alloc = new

    # ---- scenario event application -----------------------------------------
    def _apply_event(self, core: _CoreRun, ev: ScenarioEvent) -> None:
        if ev.kind == "slack":
            core.slack = float(ev.slack)
            return
        if ev.kind == "depart":
            core.active = False
            core.instr_done = 0.0
            core.pending_stall_ns = 0.0
            core.last_record = None
            core.last_snapshot = None
            self.manager.on_scenario_event(core.core_id, "depart")
            return
        seq = self.db.phase_sequence(ev.app)
        if self.max_slices is not None:
            seq = seq[: self.max_slices]
        core.app = ev.app
        core.seq = seq
        core.slice_idx = 0
        core.instr_done = 0.0
        core.rounds = 0
        core.active = True
        core.interval_start_ns = self.time_ns
        core.energy_interval_start_nj = core.energy_nj
        core.last_record = None
        core.last_snapshot = None
        misses = self.system.overheads.warmup_extra_misses(core.alloc.ways)
        core.pending_stall_ns += misses * self.system.mem.latency_ns / WARMUP_MLP
        core.energy_nj += misses * self.system.mem.energy_per_access_nj
        self.manager.on_scenario_event(core.core_id, "swap")

    def _apply_due_events(self, completed_core: int | None) -> bool:
        now = self.time_ns
        tenancy_changed = False
        for k, queue in enumerate(self._pending):
            core = self.cores[k]
            while queue and queue[0].time_ns <= now and (
                k == completed_core or not core.active
            ):
                ev = queue.popleft()
                self._apply_event(core, ev)
                if k == completed_core and ev.kind in ("swap", "depart"):
                    tenancy_changed = True
        return tenancy_changed

    def _finished(self) -> bool:
        if self.scenario is not None:
            return self.total_intervals >= self.scenario.horizon_intervals
        return all(c.done_first_round for c in self.cores)

    def run(self) -> RunResult:
        t0 = time.perf_counter()
        self.manager.attach(self)
        events = 0
        while not self._finished():
            events += 1
            require(events <= MAX_EVENTS, "event cap exceeded (manager thrashing?)")
            if self.scenario is not None and not any(c.active for c in self.cores):
                heads = [q[0].time_ns for q in self._pending if q]
                require(bool(heads), "all cores idle with no pending scenario events")
                self.time_ns = max(self.time_ns, min(heads))
                self._apply_due_events(completed_core=None)
                continue
            remaining = [self._remaining_ns(c) for c in self.cores]
            j = min(range(len(remaining)), key=remaining.__getitem__)
            dt = remaining[j]
            for core in self.cores:
                if core.core_id == j:
                    rec = self._current_record(core)
                    left = self.system.interval_instructions - core.instr_done
                    core.energy_nj += left * rec.epi_at(core.alloc)
                    core.pending_stall_ns = 0.0
                else:
                    self._advance(core, dt)
            self.time_ns += dt
            core = self.cores[j]
            self._complete_interval(core)
            self.total_intervals += 1
            invoke_manager = True
            if self.scenario is not None:
                invoke_manager = not self._apply_due_events(completed_core=j)
            if invoke_manager:
                new_allocs = self.manager.on_interval(j)
                if new_allocs:
                    self._apply(new_allocs)

        if self.scenario is not None:
            apps = [
                AppResult(
                    app=c.app,
                    core=c.core_id,
                    time_ns=self.time_ns,
                    energy_nj=c.energy_interval_start_nj,
                    intervals=c.intervals,
                    slack=c.slack,
                )
                for c in self.cores
            ]
            run_name = self.scenario.name
        else:
            apps = [
                AppResult(
                    app=c.app,
                    core=c.core_id,
                    time_ns=float(c.first_round_time_ns),
                    energy_nj=float(c.first_round_energy_nj),
                    intervals=len(c.seq),
                    slack=c.slack,
                )
                for c in self.cores
            ]
            run_name = self.workload.name
        return RunResult(
            workload=run_name,
            manager=self.manager.name,
            apps=apps,
            interval_samples=self.interval_samples,
            rma_invocations=self.manager.meter.invocations,
            rma_instructions=self.manager.meter.instructions,
            sim_wall_s=time.perf_counter() - t0,
        )
