"""SimPoint-style phase analysis: k-means over per-slice feature vectors.

The paper's framework runs SimPoint on whole-program Pinballs: the
instruction stream is cut into fixed-size slices, each slice is summarised by
a feature vector (basic-block vectors in SimPoint; program statistics here),
the vectors are clustered with k-means, and each cluster becomes a *phase*
with one representative slice (the medoid), a weight, and a phase trace (the
per-slice cluster labels).

We implement the same procedure: k-means++ initialisation, Lloyd iterations,
and SimPoint's BIC-based model selection (smallest k whose BIC reaches a
fixed fraction of the best BIC over the sweep).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import rng_for
from repro.util.validation import require
from repro.workloads.benchmarks import Benchmark
from repro.workloads.phases import FEATURE_DIM, SliceFeatures

__all__ = ["SimPointResult", "run_simpoint", "slice_features", "kmeans", "bic_score"]

#: SimPoint's BIC threshold: pick the smallest k scoring >= this fraction of
#: the best BIC in the sweep.
BIC_FRACTION = 0.9

#: Measurement noise on slice features (profiling jitter between slices of
#: the same phase).
FEATURE_NOISE = 0.015


@dataclass(frozen=True)
class SimPointResult:
    """Output of phase analysis for one benchmark."""

    labels: np.ndarray              # (nslices,) cluster id per slice
    representatives: tuple[int, ...]  # slice index of each cluster's medoid
    weights: tuple[float, ...]      # fraction of slices per cluster
    centroids: np.ndarray           # (k, FEATURE_DIM)

    @property
    def k(self) -> int:
        return len(self.representatives)

    def phase_sequence(self) -> tuple[int, ...]:
        """The operational phase trace (cluster label per slice)."""
        return tuple(int(x) for x in self.labels)


def slice_features(bench: Benchmark, noise: float = FEATURE_NOISE) -> SliceFeatures:
    """Per-slice feature matrix: phase feature vector plus profiling noise."""
    trace = bench.phase_trace()
    rng = rng_for("slice-features", bench.name)
    rows = np.empty((trace.nslices, FEATURE_DIM), dtype=float)
    base = {spec.phase_id: spec.feature_vector() for spec in bench.phases}
    for i, pid in enumerate(trace.sequence):
        rows[i] = base[pid] + rng.normal(0.0, noise, size=FEATURE_DIM)
    return SliceFeatures(matrix=rows)


def _kmeans_pp_init(x: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding."""
    n = len(x)
    centroids = np.empty((k, x.shape[1]))
    centroids[0] = x[rng.integers(n)]
    d2 = np.sum((x - centroids[0]) ** 2, axis=1)
    for j in range(1, k):
        probs = d2 / d2.sum() if d2.sum() > 0 else np.full(n, 1.0 / n)
        centroids[j] = x[rng.choice(n, p=probs)]
        d2 = np.minimum(d2, np.sum((x - centroids[j]) ** 2, axis=1))
    return centroids


def kmeans(
    x: np.ndarray, k: int, rng: np.random.Generator, iters: int = 60
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm; returns (labels, centroids)."""
    require(k >= 1, "k must be >= 1")
    require(len(x) >= k, "need at least k points")
    centroids = _kmeans_pp_init(x, k, rng)
    labels = np.zeros(len(x), dtype=int)
    for _ in range(iters):
        d2 = np.sum((x[:, None, :] - centroids[None, :, :]) ** 2, axis=2)
        new_labels = np.argmin(d2, axis=1)
        if np.array_equal(new_labels, labels) and _ != 0:
            break
        labels = new_labels
        for j in range(k):
            members = x[labels == j]
            if len(members):
                centroids[j] = members.mean(axis=0)
    return labels, centroids


def bic_score(x: np.ndarray, labels: np.ndarray, centroids: np.ndarray) -> float:
    """BIC of a spherical-Gaussian mixture fit (SimPoint's model selection).

    Higher is better.  Variance is pooled over clusters with the standard
    (n - k) degrees-of-freedom correction.
    """
    n, d = x.shape
    k = len(centroids)
    if n <= k:
        return -np.inf
    resid = x - centroids[labels]
    ss = float(np.sum(resid * resid))
    variance = max(ss / (d * (n - k)), 1e-12)
    loglik = 0.0
    for j in range(k):
        nj = int(np.sum(labels == j))
        if nj == 0:
            continue
        loglik += (
            nj * np.log(nj / n)
            - 0.5 * nj * d * np.log(2.0 * np.pi * variance)
            - 0.5 * d * (nj - (nj / n))
        )
    nparams = k * (d + 1)
    return loglik - 0.5 * nparams * np.log(n)


def run_simpoint(
    features: SliceFeatures,
    max_k: int = 8,
    seed_parts: tuple = (),
) -> SimPointResult:
    """Cluster slices into phases and pick representatives (medoids)."""
    x = features.matrix
    max_k = min(max_k, len(x))
    rng = rng_for("simpoint", *seed_parts)
    fits = []
    for k in range(1, max_k + 1):
        labels, centroids = kmeans(x, k, rng)
        fits.append((k, labels, centroids, bic_score(x, labels, centroids)))
    best_bic = max(f[3] for f in fits)
    # BIC can be negative; SimPoint's rule uses the score range over the sweep.
    worst_bic = min(f[3] for f in fits if np.isfinite(f[3]))
    span = max(best_bic - worst_bic, 1e-12)
    chosen = next(
        f for f in fits if (f[3] - worst_bic) >= BIC_FRACTION * span
    )
    k, labels, centroids, _ = chosen

    # Drop empty clusters and relabel compactly.
    used = sorted(set(int(l) for l in labels))
    remap = {old: new for new, old in enumerate(used)}
    labels = np.array([remap[int(l)] for l in labels], dtype=int)
    centroids = centroids[used]

    reps = []
    weights = []
    n = len(x)
    for j in range(len(used)):
        members = np.flatnonzero(labels == j)
        d2 = np.sum((x[members] - centroids[j]) ** 2, axis=1)
        reps.append(int(members[np.argmin(d2)]))
        weights.append(len(members) / n)
    return SimPointResult(
        labels=labels,
        representatives=tuple(reps),
        weights=tuple(weights),
        centroids=centroids,
    )
