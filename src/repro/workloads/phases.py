"""Program phases: the generative unit of synthetic benchmark behaviour.

A benchmark is a sequence of 100 M-instruction *slices*; SimPoint groups the
slices into *phases* and the detailed simulator characterises one
representative slice per phase (thesis Chapter 2).  Here a phase is described
by a :class:`PhaseSpec` -- a small generative model from which the address
trace, dependence chains and execution profile of its representative slice
are synthesised deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import require, require_positive, require_prob

__all__ = ["PhaseSpec", "PhaseTrace", "SliceFeatures", "FEATURE_DIM"]

#: Dimensionality of the per-slice feature vector fed to SimPoint clustering
#: (a stand-in for SimPoint's basic-block vectors).
FEATURE_DIM = 8


@dataclass(frozen=True)
class PhaseSpec:
    """Generative description of one program phase.

    Attributes
    ----------
    base_cpi:
        Execution (non-memory) cycles per instruction on the *medium* core.
    ilp_sensitivity:
        0 = CPI insensitive to core size; 1 = fully tracks the core's
        ``ilp_speedup`` / window scaling.  Drives Paper II's
        parallelism-sensitive (PS) versus insensitive (PI) categories together
        with ``mlp_sensitivity``.
    apki:
        LLC accesses per kilo-instruction (i.e. L2 misses reaching the LLC).
        Drives the paper's memory-intensive (MI) category.
    working_sets:
        Mixture of reuse pools, each ``(lines_per_set, probability)``: a pool
        of ``lines_per_set`` distinct lines per cache set accessed uniformly.
        Pools smaller than the way allocation hit; larger ones thrash.  The
        shape of this mixture is what makes a phase cache-sensitive.
    streaming_frac:
        Fraction of accesses that touch a never-reused line (always miss).
    chain_break_prob:
        Probability that an access starts a new dependence chain.  Misses on
        distinct chains may overlap (MLP); misses on one chain serialise.
        High values model array/streaming codes, low values pointer chasing.
    mlp_sensitivity:
        0 = realised MLP ignores core size (saturates in a small window);
        1 = realised MLP fully tracks the core's ROB/MSHR resources.
    epi_dyn:
        Dynamic core energy per instruction (nJ) on the medium core at Vnom.
    """

    phase_id: int
    base_cpi: float
    ilp_sensitivity: float
    apki: float
    working_sets: tuple[tuple[int, float], ...]
    streaming_frac: float
    chain_break_prob: float
    mlp_sensitivity: float
    epi_dyn: float

    def __post_init__(self) -> None:
        require_positive(self.base_cpi, "base_cpi")
        require_positive(self.apki, "apki")
        require_positive(self.epi_dyn, "epi_dyn")
        require_prob(self.ilp_sensitivity, "ilp_sensitivity")
        require_prob(self.streaming_frac, "streaming_frac")
        require_prob(self.chain_break_prob, "chain_break_prob")
        require_prob(self.mlp_sensitivity, "mlp_sensitivity")
        require(len(self.working_sets) >= 1, "need at least one working set")
        total_p = sum(p for _, p in self.working_sets)
        require(abs(total_p - 1.0) < 1e-9, f"working-set probabilities must sum to 1, got {total_p}")
        for size, _ in self.working_sets:
            require_positive(size, "working-set size")

    def feature_vector(self) -> np.ndarray:
        """Noise-free slice feature vector (SimPoint's BBV stand-in).

        The features are observable program statistics -- not the spec's
        internal labels -- scaled to comparable ranges so k-means distances
        are meaningful.
        """
        sizes = np.array([s for s, _ in self.working_sets], dtype=float)
        probs = np.array([p for _, p in self.working_sets], dtype=float)
        mean_ws = float(np.dot(sizes, probs))
        spread_ws = float(np.sqrt(np.dot((sizes - mean_ws) ** 2, probs)))
        return np.array(
            [
                self.base_cpi,
                np.log10(self.apki),
                mean_ws / 8.0,
                spread_ws / 8.0,
                self.streaming_frac,
                self.chain_break_prob,
                self.ilp_sensitivity,
                self.mlp_sensitivity,
            ],
            dtype=float,
        )


@dataclass(frozen=True)
class PhaseTrace:
    """Ground-truth phase structure of a benchmark's full execution.

    ``sequence[i]`` is the phase id of slice ``i``; SimPoint reconstructs an
    operational version of this from slice features.
    """

    sequence: tuple[int, ...]

    def __post_init__(self) -> None:
        require(len(self.sequence) >= 1, "phase trace cannot be empty")

    @property
    def nslices(self) -> int:
        return len(self.sequence)

    def weights(self) -> dict[int, float]:
        """Fraction of slices belonging to each phase id."""
        counts: dict[int, int] = {}
        for pid in self.sequence:
            counts[pid] = counts.get(pid, 0) + 1
        return {pid: n / len(self.sequence) for pid, n in counts.items()}


@dataclass(frozen=True)
class SliceFeatures:
    """Per-slice feature matrix handed to SimPoint (with measurement noise)."""

    matrix: np.ndarray  # (nslices, FEATURE_DIM)

    def __post_init__(self) -> None:
        require(self.matrix.ndim == 2, "feature matrix must be 2-D")
        require(self.matrix.shape[1] == FEATURE_DIM, f"feature dim must be {FEATURE_DIM}")


def block_phase_sequence(
    weights: dict[int, float],
    nslices: int,
    rng: np.random.Generator,
    mean_segment: float = 18.0,
) -> tuple[int, ...]:
    """Draw a block-structured phase sequence honouring ``weights``.

    Real programs execute phases in contiguous segments rather than i.i.d.
    draws; we sample segment lengths geometrically (mean ``mean_segment``
    slices) and pick each segment's phase with probability proportional to
    the *remaining deficit* of that phase, so realised weights track the
    requested ones even for short traces.
    """
    require(nslices >= 1, "nslices must be >= 1")
    ids = sorted(weights)
    target = np.array([weights[i] for i in ids], dtype=float)
    require(abs(target.sum() - 1.0) < 1e-9, "phase weights must sum to 1")
    produced = np.zeros(len(ids), dtype=float)
    seq: list[int] = []

    def emit(k: int) -> None:
        seg = 1 + int(rng.geometric(1.0 / mean_segment))
        seg = max(1, min(seg, nslices - len(seq)))
        seq.extend([ids[k]] * seg)
        produced[k] += seg

    # Every phase gets at least one segment (SimPoint phases are, by
    # construction, phases that occur), in random order, while room remains.
    for k in rng.permutation(len(ids)):
        if len(seq) >= nslices:
            break
        emit(int(k))
    while len(seq) < nslices:
        deficit = np.maximum(target * nslices - produced, 1e-9)
        k = int(rng.choice(len(ids), p=deficit / deficit.sum()))
        emit(k)
    return tuple(seq)
