"""Workload mixes: the multi-programmed workloads of both papers' evaluations.

Paper I builds "several 4-core and 8-core workloads ... based on different
combinations of these categories" (MI/CP x CS/CI): we generate 20 four-core
and 10 eight-core workloads from fixed category patterns with deterministic
benchmark draws, matching the paper's 80-app totals (20*4 and 10*8).

Paper II analyses "all possible combinations of application categories": the
16 ordered pairs of the four types A..D, grouped into the paper's four
scenarios.  ``scenario_of_mix`` encodes the grouping logic:

* Scenario 1 -- a cache-sensitive app *and* a parallelism-sensitive app are
  present: cache trades work (RM2) and core reconfiguration adds a lot (RM3).
* Scenario 2 -- cache-sensitive apps but no parallelism-sensitive ones: RM2
  and RM3 perform similarly.
* Scenario 3 -- no cache sensitivity but parallelism-sensitive apps: only RM3
  (core resizing at reduced VF) can save energy.
* Scenario 4 -- neither: no RMA is effective.

This yields RM3 substantially ahead in the 12 of 16 mixes containing an A- or
C-type app, matching the paper's count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.rng import rng_for
from repro.util.validation import require
from repro.workloads.benchmarks import benchmark_names

__all__ = [
    "Workload",
    "paper1_workloads",
    "paper2_workloads",
    "paper2_mixes",
    "scenario_of_mix",
    "PAPER1_PATTERNS_4CORE",
    "PAPER1_PATTERNS_8CORE",
]


@dataclass(frozen=True)
class Workload:
    """A multi-programmed workload: one benchmark per core.

    ``slack`` is the per-app QoS relaxation (0.0 = strict baseline QoS); the
    relaxation experiments (E5/E6) override it.
    """

    name: str
    apps: tuple[str, ...]
    slack: tuple[float, ...] = field(default=())
    tag: str = ""

    def __post_init__(self) -> None:
        require(len(self.apps) >= 1, "workload needs at least one app")
        if not self.slack:
            object.__setattr__(self, "slack", tuple(0.0 for _ in self.apps))
        require(len(self.slack) == len(self.apps), "slack/apps length mismatch")

    @property
    def ncores(self) -> int:
        return len(self.apps)

    def with_slack(self, slack: float | tuple[float, ...]) -> "Workload":
        if isinstance(slack, (int, float)):
            slack = tuple(float(slack) for _ in self.apps)
        return Workload(name=self.name, apps=self.apps, slack=tuple(slack), tag=self.tag)


# Category patterns: (pattern name, [category] * ncores). Two instances are
# drawn per pattern with different benchmark picks.
PAPER1_PATTERNS_4CORE = [
    ("4xMICS", ["MI-CS"] * 4),
    ("2MICS_2MICI", ["MI-CS", "MI-CS", "MI-CI", "MI-CI"]),
    ("2MICS_2CPCI", ["MI-CS", "MI-CS", "CP-CI", "CP-CI"]),
    ("2MICS_2CPCS", ["MI-CS", "MI-CS", "CP-CS", "CP-CS"]),
    ("1MICS_3CPCI", ["MI-CS", "CP-CI", "CP-CI", "CP-CI"]),
    ("2MICI_2CPCI", ["MI-CI", "MI-CI", "CP-CI", "CP-CI"]),
    ("4xMICI", ["MI-CI"] * 4),
    ("2CPCS_2CPCI", ["CP-CS", "CP-CS", "CP-CI", "CP-CI"]),
    ("4xCPCS", ["CP-CS"] * 4),
    ("4xCPCI", ["CP-CI"] * 4),
]

PAPER1_PATTERNS_8CORE = [
    ("8xMICS", ["MI-CS"] * 8),
    ("4MICS_4MICI", ["MI-CS"] * 4 + ["MI-CI"] * 4),
    ("4MICS_4CPCI", ["MI-CS"] * 4 + ["CP-CI"] * 4),
    ("2MICS_2MICI_2CPCS_2CPCI", ["MI-CS", "MI-CS", "MI-CI", "MI-CI", "CP-CS", "CP-CS", "CP-CI", "CP-CI"]),
    ("8xCPCI", ["CP-CI"] * 8),
]


def _draw_apps(categories: list[str], instance: int, pattern: str) -> tuple[str, ...]:
    """Deterministically pick one benchmark per requested category.

    Picks avoid duplicates within a workload when the category pool allows,
    cycling through each pool in a per-(pattern, instance) shuffled order.
    """
    rng = rng_for("workload-draw", pattern, instance)
    pools: dict[str, list[str]] = {}
    cursor: dict[str, int] = {}
    apps = []
    for cat in categories:
        if cat not in pools:
            pool = benchmark_names(paper1_category=cat)
            require(bool(pool), f"no benchmarks in category {cat}")
            order = list(rng.permutation(len(pool)))
            pools[cat] = [pool[i] for i in order]
            cursor[cat] = 0
        pool = pools[cat]
        apps.append(pool[cursor[cat] % len(pool)])
        cursor[cat] += 1
    return tuple(apps)


def paper1_workloads(ncores: int = 4) -> list[Workload]:
    """The Paper I evaluation workloads (20 four-core or 10 eight-core)."""
    if ncores == 4:
        patterns = PAPER1_PATTERNS_4CORE
    elif ncores == 8:
        patterns = PAPER1_PATTERNS_8CORE
    else:
        raise ValueError("Paper I evaluates 4- and 8-core systems")
    out = []
    for pattern, cats in patterns:
        for instance in range(2):
            apps = _draw_apps(cats, instance, pattern)
            out.append(
                Workload(
                    name=f"W{len(out):02d}_{pattern}_i{instance}",
                    apps=apps,
                    tag=pattern,
                )
            )
    return out


# ---------------------------------------------------------------------------
# Paper II: 16 ordered type-pair mixes and the 4 scenarios.
# ---------------------------------------------------------------------------

TYPES = ("A", "B", "C", "D")


def scenario_of_mix(types: tuple[str, ...]) -> int:
    """Scenario (1..4) of a mix given the Paper II types it contains."""
    has_cs = any(t in ("A", "B") for t in types)
    has_ps = any(t in ("A", "C") for t in types)
    if has_cs and has_ps:
        return 1
    if has_cs:
        return 2
    if has_ps:
        return 3
    return 4


def paper2_mixes() -> list[tuple[str, str]]:
    """All 16 ordered pairs of application types."""
    return [(t1, t2) for t1 in TYPES for t2 in TYPES]


def paper2_workloads(ncores: int = 4) -> list[Workload]:
    """One workload per ordered type pair: ``ncores/2`` apps of each type."""
    require(ncores % 2 == 0, "Paper II mixes pair two types; ncores must be even")
    half = ncores // 2
    out = []
    for idx, (t1, t2) in enumerate(paper2_mixes()):
        rng = rng_for("paper2-workload", t1, t2, ncores)
        apps: list[str] = []
        for t, k in ((t1, half), (t2, half)):
            pool = benchmark_names(paper2_type=t)
            order = [pool[i] for i in rng.permutation(len(pool))]
            apps.extend(order[i % len(order)] for i in range(k))
        out.append(
            Workload(
                name=f"M{idx:02d}_{t1}{t2}",
                apps=tuple(apps),
                tag=f"{t1}{t2}",
            )
        )
    return out
