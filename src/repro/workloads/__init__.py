"""Benchmark substrate: synthetic SPEC-like programs, phases and workloads.

This package replaces the paper's SPEC CPU2006 Pinballs with generative
benchmark models whose observable behaviour (cache-miss curves, MLP, ILP,
memory intensity) spans the category grids that drive every result in the
paper.  See DESIGN.md section 2 for the substitution rationale.
"""

from repro.workloads.phases import PhaseSpec, PhaseTrace, SliceFeatures
from repro.workloads.benchmarks import (
    Benchmark,
    BENCHMARKS,
    benchmark_names,
    get_benchmark,
)
from repro.workloads.simpoint import SimPointResult, run_simpoint
from repro.workloads.classification import (
    AppCategories,
    classify_paper1,
    classify_paper2,
)
from repro.workloads.mixes import (
    Workload,
    paper1_workloads,
    paper2_workloads,
    scenario_of_mix,
)

__all__ = [
    "PhaseSpec",
    "PhaseTrace",
    "SliceFeatures",
    "Benchmark",
    "BENCHMARKS",
    "benchmark_names",
    "get_benchmark",
    "SimPointResult",
    "run_simpoint",
    "AppCategories",
    "classify_paper1",
    "classify_paper2",
    "Workload",
    "paper1_workloads",
    "paper2_workloads",
    "scenario_of_mix",
]
