"""The synthetic benchmark catalogue (SPEC CPU2006 stand-in).

Each benchmark is a generative program model: a set of
:class:`~repro.workloads.phases.PhaseSpec` with weights, a block-structured
phase trace, and a slice count.  Benchmarks are built from behavioural
*archetypes* with per-benchmark deterministic jitter, and each carries the
category the paper's experiments need:

Paper I (2x2): memory-intensive (MI) / compute-intensive (CP)  x
cache-sensitive (CS) / cache-insensitive (CI).

Paper II (2x2): cache-sensitive (CS/CI) x parallelism-sensitive (PS/PI),
giving the four types A = CS+PS, B = CS+PI, C = CI+PS, D = CI+PI.

The *intended* categories below are design targets; the classification module
re-derives categories from simulated behaviour, and the test-suite asserts
the two agree -- i.e. the catalogue is self-validating against the paper's
own classification criteria (MPKI thresholds, MPKI variation, MLP variation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import rng_for
from repro.util.validation import require
from repro.workloads.phases import PhaseSpec, PhaseTrace, block_phase_sequence

__all__ = ["Benchmark", "BENCHMARKS", "benchmark_names", "get_benchmark"]


@dataclass(frozen=True)
class Benchmark:
    """A synthetic benchmark: phases, weights and full-execution phase trace."""

    name: str
    phases: tuple[PhaseSpec, ...]
    weights: tuple[float, ...]
    nslices: int
    paper1_category: str  # "MI-CS" | "MI-CI" | "CP-CS" | "CP-CI"
    paper2_type: str      # "A" (CS+PS) | "B" (CS+PI) | "C" (CI+PS) | "D" (CI+PI)

    def __post_init__(self) -> None:
        require(len(self.phases) == len(self.weights), "phases/weights mismatch")
        require(abs(sum(self.weights) - 1.0) < 1e-9, "weights must sum to 1")
        require(self.nslices >= len(self.phases), "need at least one slice per phase")

    def phase_trace(self) -> PhaseTrace:
        """Ground-truth block-structured phase sequence of the full run."""
        rng = rng_for("phase-trace", self.name)
        weights = {spec.phase_id: w for spec, w in zip(self.phases, self.weights)}
        return PhaseTrace(block_phase_sequence(weights, self.nslices, rng))

    def spec_of(self, phase_id: int) -> PhaseSpec:
        for spec in self.phases:
            if spec.phase_id == phase_id:
                return spec
        raise KeyError(f"{self.name} has no phase {phase_id}")


# ---------------------------------------------------------------------------
# Archetype phase builders.  `level` scales memory intensity across a
# benchmark's phases so phase changes are consequential; `rng` adds
# deterministic per-benchmark diversity.
# ---------------------------------------------------------------------------

def _jit(rng: np.random.Generator, value: float, rel: float) -> float:
    return float(value * (1.0 + rng.uniform(-rel, rel)))


def _ws(*pairs: tuple[float, float]) -> tuple[tuple[int, float], ...]:
    """Normalise a working-set mixture, rounding sizes to >= 1 line."""
    total = sum(p for _, p in pairs)
    return tuple((max(1, int(round(s))), p / total) for s, p in pairs)


def _pointer_chase(rng: np.random.Generator, pid: int, level: float) -> PhaseSpec:
    """MI + CS + PI: dependent misses over a straddling working set (mcf-ish)."""
    return PhaseSpec(
        phase_id=pid,
        base_cpi=_jit(rng, 1.15, 0.12),
        ilp_sensitivity=_jit(rng, 0.25, 0.3),
        apki=_jit(rng, 30.0 * level, 0.15),
        working_sets=_ws(
            (_jit(rng, 4.0, 0.25), 0.48),
            (_jit(rng, 10.0, 0.2), 0.38),
            (64.0, 0.05),
        ),
        streaming_frac=_jit(rng, 0.09, 0.3),
        chain_break_prob=_jit(rng, 0.18, 0.35),
        mlp_sensitivity=_jit(rng, 0.12, 0.5),
        epi_dyn=_jit(rng, 1.25, 0.1),
    )


def _cs_parallel(rng: np.random.Generator, pid: int, level: float) -> PhaseSpec:
    """MI + CS + PS: cache-sensitive with independent misses (soplex-ish)."""
    return PhaseSpec(
        phase_id=pid,
        base_cpi=_jit(rng, 0.85, 0.12),
        ilp_sensitivity=_jit(rng, 0.55, 0.2),
        apki=_jit(rng, 28.0 * level, 0.15),
        working_sets=_ws(
            (_jit(rng, 4.5, 0.25), 0.44),
            (_jit(rng, 11.0, 0.2), 0.37),
            (80.0, 0.05),
        ),
        streaming_frac=_jit(rng, 0.14, 0.3),
        chain_break_prob=_jit(rng, 0.80, 0.1),
        mlp_sensitivity=_jit(rng, 0.85, 0.1),
        epi_dyn=_jit(rng, 1.25, 0.1),
    )


def _streaming(rng: np.random.Generator, pid: int, level: float) -> PhaseSpec:
    """MI + CI + PS: streaming with high miss parallelism (libquantum-ish)."""
    return PhaseSpec(
        phase_id=pid,
        base_cpi=_jit(rng, 0.62, 0.15),
        ilp_sensitivity=_jit(rng, 0.35, 0.3),
        apki=_jit(rng, 34.0 * level, 0.15),
        working_sets=_ws((1.0, 1.0)),
        streaming_frac=_jit(rng, 0.985, 0.01),
        chain_break_prob=_jit(rng, 0.90, 0.06),
        mlp_sensitivity=_jit(rng, 0.85, 0.1),
        epi_dyn=_jit(rng, 0.90, 0.1),
    )


def _compute_cs(rng: np.random.Generator, pid: int, level: float) -> PhaseSpec:
    """CP + CS + PI: low traffic but a working-set knee in range (astar-ish)."""
    return PhaseSpec(
        phase_id=pid,
        base_cpi=_jit(rng, 0.80, 0.12),
        ilp_sensitivity=_jit(rng, 0.50, 0.25),
        apki=_jit(rng, 10.0 * level, 0.2),
        working_sets=_ws(
            (_jit(rng, 4.0, 0.25), 0.50),
            (_jit(rng, 9.0, 0.2), 0.40),
            (40.0, 0.10),
        ),
        streaming_frac=_jit(rng, 0.05, 0.4),
        chain_break_prob=_jit(rng, 0.30, 0.3),
        mlp_sensitivity=_jit(rng, 0.15, 0.5),
        epi_dyn=_jit(rng, 1.15, 0.1),
    )


def _compute_ci(rng: np.random.Generator, pid: int, level: float) -> PhaseSpec:
    """CP + CI + PI: cache-resident compute (povray-ish)."""
    return PhaseSpec(
        phase_id=pid,
        base_cpi=_jit(rng, 0.58, 0.15),
        ilp_sensitivity=_jit(rng, 0.55, 0.3),
        apki=_jit(rng, 2.0 * level, 0.3),
        working_sets=_ws((1.0, 1.0)),
        streaming_frac=_jit(rng, 0.95, 0.03),
        chain_break_prob=_jit(rng, 0.50, 0.3),
        mlp_sensitivity=_jit(rng, 0.10, 0.5),
        epi_dyn=_jit(rng, 1.25, 0.1),
    )


_ARCHETYPES = {
    "pointer_chase": _pointer_chase,
    "cs_parallel": _cs_parallel,
    "streaming": _streaming,
    "compute_cs": _compute_cs,
    "compute_ci": _compute_ci,
}

# (name, archetype, paper1 category, paper2 type, intensity levels per phase)
# Levels spread each benchmark across meaningfully different phases; a level
# far from 1.0 models init/IO phases whose behaviour departs from the core
# character (the source of phase-lag modelling error).
_CATALOGUE = [
    # -- memory-intensive, cache-sensitive, parallelism-insensitive (B) -----
    ("mcf_like",        "pointer_chase", "MI-CS", "B", (1.25, 1.0, 0.75, 0.3)),
    ("omnetpp_like",    "pointer_chase", "MI-CS", "B", (1.1, 0.9, 0.55)),
    ("xalancbmk_like",  "pointer_chase", "MI-CS", "B", (1.0, 0.8, 0.45, 0.25)),
    # -- memory-intensive, cache-sensitive, parallelism-sensitive (A) -------
    ("soplex_like",     "cs_parallel",   "MI-CS", "A", (1.2, 1.0, 0.6)),
    ("sphinx3_like",    "cs_parallel",   "MI-CS", "A", (1.1, 0.85, 0.5, 0.3)),
    ("gems_like",       "cs_parallel",   "MI-CS", "A", (1.3, 1.0, 0.7)),
    ("dealII_like",     "cs_parallel",   "MI-CS", "A", (0.95, 0.75, 0.45)),
    # -- memory-intensive, cache-insensitive, parallelism-sensitive (C) -----
    ("libquantum_like", "streaming",     "MI-CI", "C", (1.2, 1.0, 0.85)),
    ("lbm_like",        "streaming",     "MI-CI", "C", (1.15, 0.95, 0.6)),
    ("milc_like",       "streaming",     "MI-CI", "C", (1.05, 0.9, 0.5, 0.35)),
    ("bwaves_like",     "streaming",     "MI-CI", "C", (1.25, 1.0, 0.7)),
    ("leslie3d_like",   "streaming",     "MI-CI", "C", (1.1, 0.85, 0.55)),
    # -- compute-intensive, cache-sensitive (B-flavoured) -------------------
    ("astar_like",      "compute_cs",    "CP-CS", "B", (1.2, 1.0, 0.6)),
    ("bzip2_like",      "compute_cs",    "CP-CS", "B", (1.1, 0.9, 0.5)),
    ("gcc_like",        "compute_cs",    "CP-CS", "B", (1.3, 1.0, 0.65, 0.4)),
    ("h264_like",       "compute_cs",    "CP-CS", "B", (1.0, 0.8, 0.5)),
    # -- compute-intensive, cache-insensitive (D) ---------------------------
    ("povray_like",     "compute_ci",    "CP-CI", "D", (1.1, 1.0, 0.8)),
    ("namd_like",       "compute_ci",    "CP-CI", "D", (1.05, 0.9, 0.7)),
    ("sjeng_like",      "compute_ci",    "CP-CI", "D", (1.2, 1.0, 0.6)),
    ("gamess_like",     "compute_ci",    "CP-CI", "D", (1.0, 0.85, 0.65)),
    ("gobmk_like",      "compute_ci",    "CP-CI", "D", (1.15, 0.95, 0.7)),
    ("hmmer_like",      "compute_ci",    "CP-CI", "D", (1.1, 0.9, 0.75)),
    ("calculix_like",   "compute_ci",    "CP-CI", "D", (1.05, 0.9, 0.6)),
    ("tonto_like",      "compute_ci",    "CP-CI", "D", (1.0, 0.8, 0.55)),
]


def _build_benchmark(name: str, archetype: str, p1: str, p2: str, levels: tuple) -> Benchmark:
    rng = rng_for("benchmark", name)
    builder = _ARCHETYPES[archetype]
    phases = tuple(builder(rng, pid, level) for pid, level in enumerate(levels))
    # Dominant early phases, small tail weights (typical SimPoint histograms).
    raw = rng.dirichlet(np.linspace(3.0, 1.0, len(levels)))
    weights = tuple(float(x) for x in raw / raw.sum())
    nslices = int(rng.integers(96, 200))
    return Benchmark(
        name=name,
        phases=phases,
        weights=weights,
        nslices=nslices,
        paper1_category=p1,
        paper2_type=p2,
    )


BENCHMARKS: dict[str, Benchmark] = {
    name: _build_benchmark(name, arch, p1, p2, levels)
    for name, arch, p1, p2, levels in _CATALOGUE
}


def benchmark_names(paper1_category: str | None = None, paper2_type: str | None = None) -> list[str]:
    """Benchmark names, optionally filtered by intended category."""
    names = []
    for name, bench in BENCHMARKS.items():
        if paper1_category and bench.paper1_category != paper1_category:
            continue
        if paper2_type and bench.paper2_type != paper2_type:
            continue
        names.append(name)
    return names


def get_benchmark(name: str) -> Benchmark:
    try:
        return BENCHMARKS[name]
    except KeyError as exc:
        raise KeyError(f"unknown benchmark {name!r}; see benchmark_names()") from exc
