"""Application classification per the paper's criteria.

Paper I categorises SPEC CPU2006 by *memory intensity* (baseline MPKI above a
threshold) and *cache sensitivity* (MPKI variation across allocations around
the baseline above a threshold).  Paper II replaces memory intensity with
*parallelism sensitivity* (MLP variation across core sizes above a
threshold).  These functions apply the same criteria to measured behaviour
(weighted per-benchmark curves from the simulation database), so the
catalogue's intended categories are validated rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import require

__all__ = [
    "AppCategories",
    "classify_paper1",
    "classify_paper2",
    "MPKI_THRESHOLD",
    "CACHE_SENSITIVITY_THRESHOLD",
    "MLP_SENSITIVITY_THRESHOLD",
]

#: Baseline-allocation MPKI above which an app is memory-intensive.
MPKI_THRESHOLD = 8.0

#: MPKI swing (half to double the baseline ways) above which an app is
#: cache-sensitive.
CACHE_SENSITIVITY_THRESHOLD = 2.0

#: Relative MLP swing (smallest to largest core) above which an app is
#: parallelism-sensitive.
MLP_SENSITIVITY_THRESHOLD = 0.20


@dataclass(frozen=True)
class AppCategories:
    """Derived categories of one application."""

    memory_intensive: bool
    cache_sensitive: bool
    parallelism_sensitive: bool

    @property
    def paper1_category(self) -> str:
        a = "MI" if self.memory_intensive else "CP"
        b = "CS" if self.cache_sensitive else "CI"
        return f"{a}-{b}"

    @property
    def paper2_type(self) -> str:
        if self.cache_sensitive:
            return "A" if self.parallelism_sensitive else "B"
        return "C" if self.parallelism_sensitive else "D"


def classify_paper1(
    mpki_curve: np.ndarray,
    baseline_ways: int,
    mpki_threshold: float = MPKI_THRESHOLD,
    sensitivity_threshold: float = CACHE_SENSITIVITY_THRESHOLD,
) -> tuple[bool, bool]:
    """(memory_intensive, cache_sensitive) from a weighted MPKI curve."""
    require(1 <= baseline_ways <= len(mpki_curve), "baseline ways out of range")
    mi = float(mpki_curve[baseline_ways - 1]) > mpki_threshold
    lo = max(1, baseline_ways // 2)
    hi = min(len(mpki_curve), baseline_ways * 2)
    swing = float(mpki_curve[lo - 1] - mpki_curve[hi - 1])
    cs = swing > sensitivity_threshold
    return mi, cs


def classify_paper2(
    mpki_curve: np.ndarray,
    mlp_grid: np.ndarray,
    baseline_ways: int,
    sensitivity_threshold: float = CACHE_SENSITIVITY_THRESHOLD,
    mlp_threshold: float = MLP_SENSITIVITY_THRESHOLD,
) -> tuple[bool, bool]:
    """(cache_sensitive, parallelism_sensitive) per Paper II's criteria.

    ``mlp_grid`` is ``MLP[core_size, ways]``; parallelism sensitivity is the
    relative MLP change from the smallest to the largest core size at the
    baseline allocation.
    """
    _, cs = classify_paper1(mpki_curve, baseline_ways, sensitivity_threshold=sensitivity_threshold)
    base_col = mlp_grid[:, baseline_ways - 1]
    small, large = float(base_col[0]), float(base_col[-1])
    ps = (large - small) / max(small, 1e-9) > mlp_threshold
    return cs, ps


def categories_from_curves(
    mpki_curve: np.ndarray, mlp_grid: np.ndarray, baseline_ways: int
) -> AppCategories:
    """Full :class:`AppCategories` from measured curves."""
    mi, cs = classify_paper1(mpki_curve, baseline_ways)
    _, ps = classify_paper2(mpki_curve, mlp_grid, baseline_ways)
    return AppCategories(memory_intensive=mi, cache_sensitive=cs, parallelism_sensitive=ps)
