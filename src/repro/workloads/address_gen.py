"""Synthetic address-trace generation for a phase's representative slice.

The detailed-simulation step of the paper characterises each phase by running
its representative 100 M-instruction slice through Sniper.  Our substitute
generates, from the :class:`~repro.workloads.phases.PhaseSpec`, the stream of
LLC accesses that slice would issue:

* a cache **set** per access (uniform over the modelled sets),
* a **line** id drawn from the phase's working-set mixture (or a fresh,
  never-reused line for the streaming fraction),
* the **instruction position** of the access (exponential gaps with mean
  ``1000 / apki``),
* a **dependence-chain** id -- misses on the same chain serialise, misses on
  different chains may overlap (this is what the MLP-aware ATD of Paper II
  measures).

Everything is vectorised and deterministic given the seed parts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import rng_for
from repro.util.validation import require
from repro.workloads.phases import PhaseSpec

__all__ = ["AccessTrace", "generate_trace", "STREAM_BASE"]

#: Line ids at or above this value are unique streaming lines (never reused).
STREAM_BASE = 1 << 40


@dataclass(frozen=True)
class AccessTrace:
    """LLC access stream of one representative slice (column arrays)."""

    set_ids: np.ndarray      # (n,) int32 -- model set index
    line_ids: np.ndarray     # (n,) int64 -- line id, namespaced per set
    instr_pos: np.ndarray    # (n,) float64 -- committed-instruction position
    chain_ids: np.ndarray    # (n,) int64 -- dependence-chain id
    instructions: float      # instructions represented by the slice sample

    def __post_init__(self) -> None:
        n = len(self.set_ids)
        require(
            len(self.line_ids) == n and len(self.instr_pos) == n and len(self.chain_ids) == n,
            "trace columns must have equal length",
        )

    @property
    def n_accesses(self) -> int:
        return int(len(self.set_ids))

    def restrict_to_sets(self, nsets: int) -> "AccessTrace":
        """Sub-trace touching sets ``0..nsets-1`` (ATD set sampling).

        The instruction span is preserved so rates (APKI, MPKI) computed from
        the sub-trace estimate the full-trace rates after scaling by the
        sampled-set fraction -- exactly how sampled ATD hardware extrapolates.
        """
        mask = self.set_ids < nsets
        return AccessTrace(
            set_ids=self.set_ids[mask],
            line_ids=self.line_ids[mask],
            instr_pos=self.instr_pos[mask],
            chain_ids=self.chain_ids[mask],
            instructions=self.instructions,
        )


def generate_trace(
    spec: PhaseSpec,
    nsets: int,
    accesses_per_set: int = 1200,
    seed_parts: tuple = (),
) -> AccessTrace:
    """Synthesise the representative-slice access trace for ``spec``.

    Parameters
    ----------
    spec:
        The phase's generative model.
    nsets:
        Number of cache sets modelled (``LLCGeometry.model_sets``).
    accesses_per_set:
        Average trace density; total accesses ``= nsets * accesses_per_set``.
    seed_parts:
        Extra seed components (benchmark name, phase id) for determinism.
    """
    rng = rng_for("trace", *seed_parts, spec.phase_id)
    n = int(nsets * accesses_per_set)
    require(n >= 1, "trace must contain at least one access")

    set_ids = rng.integers(0, nsets, size=n, dtype=np.int32)

    # --- line ids from the working-set mixture -----------------------------
    sizes = np.array([s for s, _ in spec.working_sets], dtype=np.int64)
    probs = np.array([p for _, p in spec.working_sets], dtype=float)
    probs = probs * (1.0 - spec.streaming_frac)
    pool_probs = np.append(probs, spec.streaming_frac)
    pool_choice = rng.choice(len(pool_probs), size=n, p=pool_probs / pool_probs.sum())
    offsets = np.concatenate(([0], np.cumsum(sizes)))[:-1]

    line_ids = np.empty(n, dtype=np.int64)
    for k, size in enumerate(sizes):
        mask = pool_choice == k
        cnt = int(mask.sum())
        if cnt:
            line_ids[mask] = offsets[k] + rng.integers(0, size, size=cnt)
    stream_mask = pool_choice == len(sizes)
    n_stream = int(stream_mask.sum())
    if n_stream:
        # Each streaming access touches a fresh line: ids are unique.
        line_ids[stream_mask] = STREAM_BASE + np.arange(n_stream, dtype=np.int64)

    # --- instruction positions ---------------------------------------------
    # Two-state (bursty) gap process: memory accesses cluster into dense
    # bursts separated by long compute stretches, as in real programs.  The
    # factors keep the overall mean at ``1000 / apki`` while concentrating
    # misses in time -- which is what lets late (deep) misses still overlap
    # inside the ROB window even when the overall miss rate is low.
    mean_gap = 1000.0 / spec.apki
    burst = rng.random(n) < 0.8
    state = np.where(burst, 0.3, 3.8)
    gaps = rng.exponential(mean_gap, size=n) * state + 1.0
    instr_pos = np.cumsum(gaps)
    instructions = float(instr_pos[-1])

    # --- dependence chains ---------------------------------------------------
    # Pool accesses follow the phase's dependence structure; streaming
    # accesses (scans) carry no data dependence and always start a new chain.
    # This matters for the MLP-vs-ways profile: the deep misses that survive
    # a large allocation are streaming-dominated and therefore *more*
    # parallel, as in real scan-heavy applications.
    breaks = (rng.random(n) < spec.chain_break_prob) | stream_mask
    breaks[0] = True
    chain_ids = np.cumsum(breaks).astype(np.int64) - 1

    return AccessTrace(
        set_ids=set_ids,
        line_ids=line_ids,
        instr_pos=instr_pos,
        chain_ids=chain_ids,
        instructions=instructions,
    )
