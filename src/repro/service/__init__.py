"""Scenario-replay service: the step from "fast library" to "fast service".

Wraps :class:`~repro.experiments.runner.ExperimentContext` in a long-lived
service so many concurrent clients can drive the vectorised replay engine
over HTTP:

* :mod:`repro.service.jobs` -- the request/job model: a replay request
  names a scenario shape (S1-S7, or a fixed workload), its generator
  parameters, the system size and a
  :class:`~repro.experiments.runner.ManagerSpec`; the job id *is* the
  results-store content hash of that request, so identical requests are
  identical jobs by construction.
* :mod:`repro.service.pool` -- :class:`ReplayService`: worker threads
  draining a bounded two-lane (``interactive``/``bulk``) admission queue
  over the runner's spawn-safe ``parallel_map`` machinery, sharing one
  simulation database and one ``.sim_cache`` results store, with in-flight
  dedup (concurrent identical submissions coalesce onto one run) and
  service metrics.
* :mod:`repro.service.executor` -- where a job's replay actually runs: in
  the worker thread, or on a persistent per-system-size process pool with
  results flowing back through the content-addressed store.
* :mod:`repro.service.journal` -- an fsync'd append-only JSONL write-ahead
  log of job transitions, replayed on boot so queued and in-flight jobs
  survive a crash or restart.
* :mod:`repro.service.api` -- a thin stdlib HTTP surface: submit / poll /
  fetch results / stream interval samples as server-sent batches, plus
  ``/healthz`` (the ``healthy``/``degraded``/``draining`` state machine)
  and ``/metrics``; full queues answer ``429`` + ``Retry-After``; client
  disconnects are swallowed, not traceback'd.
* :mod:`repro.service.faults` -- deterministic fault injection: a seeded
  :class:`FaultPlan` decides, as a pure function of
  ``(seed, site, invocation)``, where worker crashes, hangs, store
  corruption, journal write faults and client disconnects strike -- the
  substrate of the chaos harness (``tools/chaos_smoke.py``) and the
  self-healing paths above (retries with deterministic backoff, the
  per-attempt watchdog, the process-executor circuit breaker, store
  quarantine).

Start one from the command line with ``tools/serve.py``.
"""

from repro.service.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    SITES as FAULT_SITES,
    clear as clear_faults,
    install as install_faults,
    installed as faults_installed,
)
from repro.service.jobs import (
    JobSpec,
    SCENARIO_SHAPES,
    WORKLOAD_SHAPE,
    build_item,
    job_spec_from_json,
    split_submission,
)
from repro.service.executor import (
    EXECUTOR_KINDS,
    CircuitBreaker,
    FailoverExecutor,
    make_executor,
)
from repro.service.journal import JobJournal, JournalRecord
from repro.service.pool import (
    LANES,
    Job,
    QueueFullError,
    ReplayService,
    WatchdogTimeout,
)
from repro.service.api import make_server

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "FAULT_SITES",
    "install_faults",
    "clear_faults",
    "faults_installed",
    "JobSpec",
    "SCENARIO_SHAPES",
    "WORKLOAD_SHAPE",
    "build_item",
    "job_spec_from_json",
    "split_submission",
    "EXECUTOR_KINDS",
    "CircuitBreaker",
    "FailoverExecutor",
    "make_executor",
    "JobJournal",
    "JournalRecord",
    "LANES",
    "Job",
    "QueueFullError",
    "ReplayService",
    "WatchdogTimeout",
    "make_server",
]
