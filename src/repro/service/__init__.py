"""Scenario-replay service: the step from "fast library" to "fast service".

Wraps :class:`~repro.experiments.runner.ExperimentContext` in a long-lived
service so many concurrent clients can drive the vectorised replay engine
over HTTP:

* :mod:`repro.service.jobs` -- the request/job model: a replay request
  names a scenario shape (S1-S7, or a fixed workload), its generator
  parameters, the system size and a
  :class:`~repro.experiments.runner.ManagerSpec`; the job id *is* the
  results-store content hash of that request, so identical requests are
  identical jobs by construction.
* :mod:`repro.service.pool` -- :class:`ReplayService`: a thread worker
  pool over the runner's spawn-safe ``parallel_map`` machinery, sharing
  one simulation database and one ``.sim_cache`` results store, with
  in-flight dedup (concurrent identical submissions coalesce onto one
  run) and service metrics.
* :mod:`repro.service.api` -- a thin stdlib HTTP surface: submit / poll /
  fetch results / stream interval samples as server-sent batches, plus
  ``/healthz`` and ``/metrics``.

Start one from the command line with ``tools/serve.py``.
"""

from repro.service.jobs import (
    JobSpec,
    SCENARIO_SHAPES,
    WORKLOAD_SHAPE,
    build_item,
    job_spec_from_json,
)
from repro.service.pool import Job, ReplayService
from repro.service.api import make_server

__all__ = [
    "JobSpec",
    "SCENARIO_SHAPES",
    "WORKLOAD_SHAPE",
    "build_item",
    "job_spec_from_json",
    "Job",
    "ReplayService",
    "make_server",
]
