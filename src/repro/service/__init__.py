"""Scenario-replay service: the step from "fast library" to "fast service".

Wraps :class:`~repro.experiments.runner.ExperimentContext` in a long-lived
service so many concurrent clients can drive the vectorised replay engine
over HTTP:

* :mod:`repro.service.jobs` -- the request/job model: a replay request
  names a scenario shape (S1-S7, or a fixed workload), its generator
  parameters, the system size and a
  :class:`~repro.experiments.runner.ManagerSpec`; the job id *is* the
  results-store content hash of that request, so identical requests are
  identical jobs by construction.
* :mod:`repro.service.pool` -- :class:`ReplayService`: worker threads
  draining a bounded two-lane (``interactive``/``bulk``) admission queue
  over the runner's spawn-safe ``parallel_map`` machinery, sharing one
  simulation database and one ``.sim_cache`` results store, with in-flight
  dedup (concurrent identical submissions coalesce onto one run) and
  service metrics.
* :mod:`repro.service.executor` -- where a job's replay actually runs: in
  the worker thread, or on a persistent per-system-size process pool with
  results flowing back through the content-addressed store.
* :mod:`repro.service.journal` -- an fsync'd append-only JSONL write-ahead
  log of job transitions, replayed on boot so queued and in-flight jobs
  survive a crash or restart.
* :mod:`repro.service.api` -- a thin stdlib HTTP surface: submit / poll /
  fetch results / stream interval samples as server-sent batches, plus
  ``/healthz`` and ``/metrics``; full queues answer ``429`` +
  ``Retry-After``.

Start one from the command line with ``tools/serve.py``.
"""

from repro.service.jobs import (
    JobSpec,
    SCENARIO_SHAPES,
    WORKLOAD_SHAPE,
    build_item,
    job_spec_from_json,
)
from repro.service.executor import EXECUTOR_KINDS, make_executor
from repro.service.journal import JobJournal, JournalRecord
from repro.service.pool import LANES, Job, QueueFullError, ReplayService
from repro.service.api import make_server

__all__ = [
    "JobSpec",
    "SCENARIO_SHAPES",
    "WORKLOAD_SHAPE",
    "build_item",
    "job_spec_from_json",
    "EXECUTOR_KINDS",
    "make_executor",
    "JobJournal",
    "JournalRecord",
    "LANES",
    "Job",
    "QueueFullError",
    "ReplayService",
    "make_server",
]
