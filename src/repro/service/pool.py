"""The replay worker pool: lanes, admission, dedup, execution, durability.

:class:`ReplayService` owns one :class:`~repro.experiments.runner.
ExperimentContext` per requested system size (all sharing one simulation
database cache and one ``.sim_cache`` results store) and N worker threads
draining a two-lane admission queue.  Each job executes through a
pluggable executor (:mod:`repro.service.executor`): the ``thread``
executor replays in the worker thread via the runner's spawn-safe
``parallel_map`` protocol, the ``process`` executor dispatches to a
persistent process pool built on the *same* protocol -- which is why the
service path is bit-identical to the library path under either.

Dedup happens at three tiers, all keyed by the same content hash
(:func:`~repro.service.jobs.job_key` == the results-store
:func:`~repro.simulation.results_store.run_key`):

1. **submit time** -- an identical request while a job is queued/running/
   done returns the *same* job (``submissions`` counts the coalesced
   clients);
2. **in flight** -- the results store's
   :class:`~repro.simulation.results_store.InflightRegistry` guards the
   window between store miss and store put, so even independently created
   executors sharing one store run a key at most once;
3. **at rest** -- the persistent results store serves finished runs across
   service restarts.

Production hardening on top of the PR-6 pool:

* **Admission control** -- the queue is bounded (``max_queue``); an
  overflowing submission raises :class:`QueueFullError`, which the HTTP
  layer maps to ``429`` + ``Retry-After``.  Dedup coalescing is always
  admitted (it adds no work).
* **Priority lanes** -- ``interactive`` jobs dequeue strictly before
  ``bulk`` ones, except that after ``bulk_escape_every`` consecutive
  skips of a waiting bulk job one bulk job is dequeued (starvation
  escape), bounding bulk wait without letting sweeps delay QoS traffic.
* **Durability** -- with a :class:`~repro.service.journal.JobJournal`
  attached, every submitted/claimed/retrying/published/failed transition
  is fsync'd to the write-ahead log before it is acknowledged, and
  :meth:`ReplayService.recover` re-submits unsettled journalled jobs on
  boot (resuming their journalled retry budgets), so a SIGKILL'd service
  resumes its queue.  Settled records are auto-compacted away once they
  dominate the live backlog (:meth:`~repro.service.journal.JobJournal.
  maybe_compact`).

Self-healing (PR 9) on top of that:

* **Retries with deterministic backoff** -- a failed attempt is requeued
  up to ``max_retries`` times with capped exponential backoff whose
  jitter is a pure hash of ``(job_id, attempt)``
  (:func:`~repro.util.backoff.backoff_delay`), so a replayed fault storm
  reproduces the exact same schedule.  The attempt count is journalled
  (``retrying`` records), so recovery resumes the budget instead of
  resetting it -- a crash loop cannot retry forever across restarts.
* **Watchdog** -- with ``job_timeout_s`` set, each attempt runs on a
  disposable thread; an attempt that exceeds the deadline is abandoned
  (:class:`WatchdogTimeout` -> normal retry path) and
  ``executor.recycle(ctx)`` tears down the wedged worker/pool so the
  retry gets a fresh one.
* **Circuit breaker** -- the default ``process`` executor is wrapped in a
  :class:`~repro.service.executor.FailoverExecutor`: consecutive worker
  deaths trip a breaker and jobs degrade to the in-process thread path
  (bit-identical results, reduced isolation) until a half-open probe
  succeeds.
* **Health states** -- :meth:`ReplayService.health` folds all of the
  above into ``healthy`` / ``degraded`` / ``draining`` for ``/healthz``;
  :meth:`metrics` exposes the same signals as numeric gauges.

A job that exhausts its retry budget is marked ``failed`` (with the
error) and releases any coalesced waiters -- it never hangs clients, and
a later identical submission retries cleanly.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.experiments.runner import (
    ExperimentContext,
    ManagerSpec,
    _init_worker,
    _run_one,
    _run_one_scenario,
    get_context,
)
from repro.scenarios.events import Scenario
from repro.service.executor import make_executor
from repro.service.jobs import (
    JobSpec,
    build_item,
    job_key,
    job_spec_from_json,
    split_submission,
)
from repro.service.journal import JobJournal
from repro.simulation.metrics import RunResult, run_result_digest
from repro.simulation.results_store import InflightRegistry
from repro.util.backoff import backoff_delay
from repro.util.parallel import parallel_map
from repro.workloads.mixes import Workload

__all__ = [
    "Job",
    "ReplayService",
    "QueueFullError",
    "WatchdogTimeout",
    "JOB_STATES",
    "LANES",
    "DEFAULT_LANE",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_BULK_ESCAPE_EVERY",
    "DEFAULT_MAX_RETRIES",
]

JOB_STATES = ("queued", "running", "done", "failed")

#: Admission lanes, in strict dequeue-priority order.
LANES = ("interactive", "bulk")

#: Lane assumed when a request names none: unlabelled clients are latency
#: traffic; sweeps opt into ``bulk`` explicitly.
DEFAULT_LANE = "interactive"

#: Default bound on queued (not yet running) jobs before 429s start.
DEFAULT_MAX_QUEUE = 1024

#: A waiting bulk job is dequeued after this many consecutive interactive
#: dequeues skipped it (the starvation-avoidance escape).
DEFAULT_BULK_ESCAPE_EVERY = 8

#: Default retry budget: a job gets ``1 + max_retries`` attempts total.
DEFAULT_MAX_RETRIES = 2


class WatchdogTimeout(Exception):
    """An attempt exceeded ``job_timeout_s``; the worker was recycled.

    Raised *in the service worker thread* after the attempt thread is
    abandoned, so it flows through the normal retry/fail path like any
    other attempt failure.
    """


class QueueFullError(Exception):
    """Raised at submit time when the admission queue is at capacity.

    ``retry_after_s`` is the service's estimate of when capacity frees up
    (queue depth times observed job latency over the worker count); the
    HTTP layer surfaces it as a ``Retry-After`` header on the 429.
    """

    def __init__(self, depth: int, max_queue: int, retry_after_s: float) -> None:
        super().__init__(
            f"admission queue is full ({depth}/{max_queue} jobs queued); "
            f"retry in ~{retry_after_s:.0f}s"
        )
        self.depth = depth
        self.max_queue = max_queue
        self.retry_after_s = retry_after_s


def _execute_replay(
    ctx: ExperimentContext, item: Scenario | Workload, manager: ManagerSpec
) -> RunResult:
    """Run one replay through the runner's spawn-safe worker machinery.

    Module-level so the crash tests can monkeypatch it (both executors'
    thread paths route through this name); routed through ``parallel_map``
    with the pool initializer, the exact protocol
    ``ExperimentContext._resolve`` uses for batch fan-out.
    """
    worker = _run_one_scenario if isinstance(item, Scenario) else _run_one
    task = (item, manager, ctx.max_slices)
    return parallel_map(worker, [task], processes=1, initializer=_init_worker, initargs=(ctx,))[0]


class _LaneQueue:
    """Two-lane strict-priority FIFO with a bulk starvation escape.

    ``interactive`` dequeues first whenever both lanes hold jobs, but each
    such dequeue that skips a waiting bulk job increments a starvation
    counter; once it reaches ``bulk_escape_every`` the next dequeue takes
    one bulk job and resets the counter.  The invariant (property-tested in
    ``tests/test_service_journal.py``): while an interactive job waits, at
    most ``1 + interactive_dequeues_during_wait // bulk_escape_every`` bulk
    jobs are dequeued -- and symmetrically, a waiting bulk job is never
    skipped more than ``bulk_escape_every`` times in a row.
    """

    def __init__(self, bulk_escape_every: int = DEFAULT_BULK_ESCAPE_EVERY) -> None:
        if bulk_escape_every < 1:
            raise ValueError("bulk_escape_every must be at least 1")
        self.bulk_escape_every = bulk_escape_every
        self._cv = threading.Condition()
        self._lanes: dict[str, deque] = {lane: deque() for lane in LANES}
        self._sentinels = 0
        self._starve = 0

    def put(self, job: "Job") -> None:
        """Enqueue one job on its lane."""
        with self._cv:
            self._lanes[job.lane].append(job)
            self._cv.notify()

    def put_sentinel(self) -> None:
        """Enqueue one shutdown sentinel (dequeued only once jobs drain)."""
        with self._cv:
            self._sentinels += 1
            self._cv.notify()

    def depths(self) -> dict[str, int]:
        """Queued-job count per lane (snapshot)."""
        with self._cv:
            return {lane: len(q) for lane, q in self._lanes.items()}

    def depth(self) -> int:
        """Total queued jobs across lanes (snapshot)."""
        with self._cv:
            return sum(len(q) for q in self._lanes.values())

    def get(self) -> "Job | None":
        """Dequeue the next job by lane policy; ``None`` means shut down."""
        with self._cv:
            while True:
                interactive = self._lanes["interactive"]
                bulk = self._lanes["bulk"]
                if interactive and bulk:
                    if self._starve >= self.bulk_escape_every:
                        self._starve = 0
                        return bulk.popleft()
                    self._starve += 1
                    return interactive.popleft()
                if interactive:
                    # No bulk job is waiting, so nothing is being starved.
                    self._starve = 0
                    return interactive.popleft()
                if bulk:
                    self._starve = 0
                    return bulk.popleft()
                if self._sentinels:
                    self._sentinels -= 1
                    return None
                self._cv.wait()


@dataclass
class Job:
    """One submitted replay job; ``job_id`` is the run's content hash."""

    job_id: str
    spec: JobSpec
    item: Scenario | Workload
    lane: str = DEFAULT_LANE
    status: str = "queued"
    submitted_s: float = 0.0
    started_s: float | None = None
    finished_s: float | None = None
    error: str | None = None
    result: RunResult | None = None
    result_hash: str | None = None
    #: Total client submissions coalesced onto this job (>= 1).
    submissions: int = 1
    #: True when the result was served from the persistent store.
    cache_hit: bool = False
    #: True when the job was re-submitted from the journal on boot.
    recovered: bool = False
    #: Completed (failed) attempts so far; recovery seeds this from the
    #: journal so the retry budget survives a restart.
    attempts: int = 0
    finished: threading.Event = field(default_factory=threading.Event, repr=False)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job settles (done or failed); False on timeout."""
        return self.finished.wait(timeout)

    def summary(self) -> dict:
        """Status view returned by the poll endpoint."""
        out = {
            "job_id": self.job_id,
            "status": self.status,
            "shape": self.spec.shape,
            "ncores": self.spec.ncores,
            "name": self.spec.name,
            "manager": self.spec.manager.name or self.spec.manager.kind,
            "lane": self.lane,
            "submissions": self.submissions,
            "cache_hit": self.cache_hit,
            "recovered": self.recovered,
            "attempts": self.attempts,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.result_hash is not None:
            out["result_hash"] = self.result_hash
        return out


class ReplayService:
    """Long-lived scenario-replay service: submit, poll, fetch, metrics.

    ``context_factory(ncores)`` builds the per-size experiment context
    (defaults to :func:`~repro.experiments.runner.get_context`, i.e. the
    shared ``.sim_cache`` database + results store); contexts are memoised
    per size for the service's lifetime.

    ``executor`` selects where replays run: ``"thread"`` (in the worker
    thread, the default), ``"process"`` (persistent per-size process
    pools; ``processes`` bounds each pool, defaulting to ``workers``), or
    any pre-built executor object.  ``max_queue`` bounds the admission
    queue (:class:`QueueFullError` on overflow); ``journal`` -- a
    :class:`~repro.service.journal.JobJournal` or a directory path --
    makes queued and in-flight jobs survive a crash (call
    :meth:`recover` on boot).  Use as a context manager or call
    :meth:`close` to drain and join the workers.

    Self-healing knobs: ``max_retries`` bounds the retry budget per job
    (``1 + max_retries`` attempts total, counted *across restarts* via
    the journal); ``job_timeout_s`` arms the per-attempt watchdog (None
    disables it); ``backoff_base_s``/``backoff_cap_s`` shape the
    deterministic retry backoff.  ``autostart=False`` defers the worker
    threads until :meth:`start` -- the chaos harness uses this to get a
    deterministic journal order (submit everything, then run).
    """

    def __init__(
        self,
        context_factory=get_context,
        workers: int = 2,
        *,
        executor: str | object = "thread",
        processes: int | None = None,
        max_queue: int = DEFAULT_MAX_QUEUE,
        bulk_escape_every: int = DEFAULT_BULK_ESCAPE_EVERY,
        journal: JobJournal | str | None = None,
        start_method: str | None = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        job_timeout_s: float | None = None,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        autostart: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("service needs at least one worker")
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if job_timeout_s is not None and job_timeout_s <= 0:
            raise ValueError("job_timeout_s must be positive (or None)")
        self._context_factory = context_factory
        self._contexts: dict[int, ExperimentContext] = {}
        self._jobs: dict[str, Job] = {}
        self._queue = _LaneQueue(bulk_escape_every=bulk_escape_every)
        self._lock = threading.Lock()
        self.max_queue = max_queue
        self.max_retries = max_retries
        self.job_timeout_s = job_timeout_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        if isinstance(executor, str):
            executor = make_executor(
                executor,
                processes=processes if processes is not None else workers,
                start_method=start_method,
            )
        self.executor = executor
        self.journal = JobJournal(journal) if isinstance(journal, str) else journal
        self.inflight = InflightRegistry()
        self.started_s = time.monotonic()
        # Counters (all under self._lock; read via metrics()).
        self.simulations = 0
        self.jobs_done = 0
        self.jobs_failed = 0
        self.dedup_hits = 0
        self.jobs_rejected = 0
        self.jobs_recovered = 0
        self.jobs_retried = 0
        self.attempts_total = 0
        self.watchdog_timeouts = 0
        self.store_put_errors = 0
        self.client_disconnects = 0
        self._latencies_s: dict[str, list[float]] = {lane: [] for lane in LANES}
        self._draining = False
        self._started = False
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"replay-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        if autostart:
            self.start()

    # ---- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "ReplayService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def start(self) -> None:
        """Start the worker threads (idempotent; implicit unless
        ``autostart=False``)."""
        if self._started:
            return
        self._started = True
        for t in self._workers:
            t.start()

    def close(self) -> None:
        """Drain queued jobs, join the workers, release executor/journal.

        Sets the draining flag first: jobs that fail during shutdown are
        settled as ``failed`` instead of being requeued, so close cannot
        be held up by a retry loop.
        """
        self._draining = True
        self.start()  # a never-started service still drains its queue
        for _ in self._workers:
            self._queue.put_sentinel()
        for t in self._workers:
            t.join(timeout=60.0)
        self.executor.close()
        if self.journal is not None:
            self.journal.close()

    # ---- contexts -----------------------------------------------------------
    def ctx_for(self, ncores: int) -> ExperimentContext:
        """The (memoised) experiment context serving ``ncores`` jobs."""
        with self._lock:
            ctx = self._contexts.get(ncores)
        if ctx is not None:
            return ctx
        # Build outside the lock: database construction can take seconds
        # and must not stall submits for other (already-built) sizes.
        ctx = self._context_factory(ncores)
        with self._lock:
            ctx = self._contexts.setdefault(ncores, ctx)
        if self.journal is not None and ctx.results_store is not None:
            # Journal hook: record at-rest persistence of each run, so the
            # log carries the full durability trail (results written by
            # process-pool workers land via their own store clone and are
            # journalled by the owning service thread on publish instead).
            ctx.results_store.on_put = self._journal_stored
        return ctx

    def _journal_stored(self, key: str) -> None:
        if self.journal is not None:
            self.journal.append("stored", key)

    # ---- submission ---------------------------------------------------------
    def submit(self, request: JobSpec | dict, lane: str | None = None) -> Job:
        """Register one replay request; identical requests share one job.

        Accepts a parsed :class:`JobSpec` or a raw JSON mapping (the wire
        form; an optional ``"lane"`` key routes it to the ``interactive``
        or ``bulk`` lane).  Returns the job -- possibly an existing one: a
        request whose content hash matches a queued, running or finished
        job coalesces onto it (``submissions`` increments).  A previously
        *failed* job is retried with a fresh job record under the same id.
        Raises :class:`QueueFullError` when the admission queue is at
        capacity.
        """
        return self.submit_info(request, lane=lane)[0]

    def submit_info(
        self,
        request: JobSpec | dict,
        lane: str | None = None,
        *,
        _admitted: bool = False,
        _recovered: bool = False,
        _attempts: int = 0,
    ) -> tuple[Job, bool]:
        """Like :meth:`submit`, also reporting whether the request coalesced
        onto an existing job (the HTTP layer surfaces this as ``deduped``)."""
        if isinstance(request, JobSpec):
            spec = request
        else:
            attrs, spec_fields = split_submission(request)
            if lane is None:
                lane = attrs.get("lane")
            spec = job_spec_from_json(spec_fields)
        if lane is None:
            lane = DEFAULT_LANE
        if lane not in LANES:
            raise ValueError(f"unknown lane {lane!r}; known: {', '.join(LANES)}")
        ctx = self.ctx_for(spec.ncores)
        item = build_item(spec, ctx.db.benchmarks())
        key = job_key(spec, ctx)
        with self._lock:
            job = self._jobs.get(key)
            if job is not None and job.status != "failed":
                job.submissions += 1
                self.dedup_hits += 1
                return job, True
            if not _admitted:
                depth = self._queue.depth()
                if depth >= self.max_queue:
                    self.jobs_rejected += 1
                    raise QueueFullError(depth, self.max_queue, self._retry_after_s(depth))
            job = Job(
                job_id=key,
                spec=spec,
                item=item,
                lane=lane,
                submitted_s=time.monotonic(),
                recovered=_recovered,
                attempts=_attempts,
            )
            self._jobs[key] = job
        # Journal before enqueue: once a client is told "accepted", the job
        # must survive a crash -- the reverse order could lose it.
        if self.journal is not None:
            self.journal.append("submitted", key, lane=lane, spec=spec.to_json())
        self._queue.put(job)
        return job, False

    def _retry_after_s(self, depth: int) -> float:
        """Estimated seconds until the queue frees a slot (>= 1)."""
        latencies = [v for vals in self._latencies_s.values() for v in vals[-32:]]
        per_job = (sum(latencies) / len(latencies)) if latencies else 2.0
        return max(1.0, math.ceil(per_job * (depth + 1) / len(self._workers)))

    def get_job(self, job_id: str) -> Job | None:
        """Look one job up by id (None when unknown)."""
        with self._lock:
            return self._jobs.get(job_id)

    # ---- recovery -----------------------------------------------------------
    def recover(self) -> list[Job]:
        """Re-submit every unsettled journalled job (call once, on boot,
        before external submissions start).

        Replays the write-ahead log, compacts it down to the pending
        records (atomic rewrite), then re-submits each pending spec
        through the normal path -- bypassing admission control, since
        journalled jobs were already admitted once.  A pending record
        whose spec no longer validates, or whose content hash no longer
        matches (the database or replay semantics changed across the
        restart), is settled as ``failed`` in the journal so it cannot be
        re-recovered forever.  Returns the recovered jobs.
        """
        if self.journal is None:
            return []
        pending = self.journal.pending()
        self.journal.compact(pending)
        recovered: list[Job] = []
        for old_id, record in pending.items():
            body = dict(record.spec)
            try:
                job, _ = self.submit_info(
                    body,
                    lane=record.lane,
                    _admitted=True,
                    _recovered=True,
                    _attempts=record.attempt or 0,
                )
            except ValueError as exc:
                self.journal.append("failed", old_id, error=f"unrecoverable journalled job: {exc}")
                continue
            if job.job_id != old_id:
                # The request re-keyed (code/database change across the
                # restart): settle the stale id so it is never re-recovered.
                self.journal.append("failed", old_id, error=f"re-keyed on recovery to {job.job_id}")
            recovered.append(job)
        with self._lock:
            self.jobs_recovered += len(recovered)
        return recovered

    # ---- execution ----------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._run_job(job)

    def _execute_attempt(self, ctx: ExperimentContext, job: Job) -> RunResult:
        """One executor dispatch, under the watchdog when armed.

        With ``job_timeout_s`` set the dispatch runs on a disposable
        daemon thread; if it misses the deadline the thread is abandoned
        (it holds no service state -- claim/publish stay in the worker
        thread), the executor recycles the wedged worker/pool, and
        :class:`WatchdogTimeout` feeds the normal retry path.
        """
        if self.job_timeout_s is None:
            return self.executor.run(ctx, job.job_id, job.item, job.spec.manager)
        box: dict[str, object] = {}
        done = threading.Event()

        def _attempt() -> None:
            try:
                box["result"] = self.executor.run(ctx, job.job_id, job.item, job.spec.manager)
            except BaseException as exc:  # delivered to the worker thread
                box["error"] = exc
            finally:
                done.set()

        thread = threading.Thread(target=_attempt, name=f"attempt-{job.job_id[:8]}", daemon=True)
        thread.start()
        if not done.wait(self.job_timeout_s):
            with self._lock:
                self.watchdog_timeouts += 1
            recycle = getattr(self.executor, "recycle", None)
            if recycle is not None:
                recycle(ctx)
            raise WatchdogTimeout(
                f"attempt exceeded job_timeout_s={self.job_timeout_s}; worker recycled"
            )
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _run_job(self, job: Job) -> None:
        job.status = "running"
        if job.started_s is None:
            job.started_s = time.monotonic()
        attempt = job.attempts + 1
        if self.journal is not None:
            self.journal.append("claimed", job.job_id, attempt=attempt)
        ctx = self.ctx_for(job.spec.ncores)
        owner, ticket = self.inflight.claim(job.job_id)
        with self._lock:
            self.attempts_total += 1
        try:
            if not owner:
                # Another executor sharing this store is already running the
                # key (submit-time dedup makes this rare in-process): wait
                # for its outcome instead of simulating again.
                ticket.done.wait()
                if ticket.error is not None:
                    raise ticket.error
                result = ticket.result
                job.cache_hit = True
            else:
                store = ctx.results_store
                result = store.get(job.job_id) if store is not None else None
                if result is not None:
                    job.cache_hit = True
                else:
                    result = self._execute_attempt(ctx, job)
                    with self._lock:
                        self.simulations += 1
                    if store is not None and not self.executor.stores_results:
                        try:
                            store.put(job.job_id, result)
                        except OSError:
                            # The run succeeded; a failed persist degrades
                            # the cache, never the answer.
                            with self._lock:
                                self.store_put_errors += 1
                self.inflight.publish(ticket, result)
        except Exception as exc:
            if owner:
                self.inflight.fail(ticket, exc)
            job.attempts = attempt
            job.error = f"{type(exc).__name__}: {exc}"
            if attempt <= self.max_retries and not self._draining:
                # Journal the failed attempt *before* requeueing, so a
                # crash between the two cannot reset the retry budget.
                if self.journal is not None:
                    self.journal.append("retrying", job.job_id, attempt=attempt, error=job.error)
                with self._lock:
                    self.jobs_retried += 1
                time.sleep(
                    backoff_delay(
                        attempt,
                        base_s=self.backoff_base_s,
                        cap_s=self.backoff_cap_s,
                        key=(job.job_id,),
                    )
                )
                job.status = "queued"
                self._queue.put(job)  # re-admission is unconditional
                return
            job.status = "failed"
            job.finished_s = time.monotonic()
            with self._lock:
                self.jobs_failed += 1
            if self.journal is not None:
                self.journal.append("failed", job.job_id, error=job.error, attempt=attempt)
                self.journal.maybe_compact(self._queue.depth())
            job.finished.set()
            return
        job.attempts = attempt
        job.error = None
        job.result = result
        job.result_hash = run_result_digest(result)
        job.status = "done"
        job.finished_s = time.monotonic()
        with self._lock:
            self.jobs_done += 1
            self._latencies_s[job.lane].append(job.finished_s - job.submitted_s)
        if self.journal is not None:
            self.journal.append("published", job.job_id, result_hash=job.result_hash)
            self.journal.maybe_compact(self._queue.depth())
        job.finished.set()

    # ---- health / metrics ---------------------------------------------------
    def note_client_disconnect(self) -> None:
        """Record one mid-response client disconnect (HTTP layer hook)."""
        with self._lock:
            self.client_disconnects += 1

    def _breaker_state(self) -> str:
        breaker = getattr(self.executor, "breaker", None)
        return breaker.state if breaker is not None else "none"

    def _store_quarantined(self) -> int:
        with self._lock:
            return sum(
                ctx.results_store.quarantined
                for ctx in self._contexts.values()
                if ctx.results_store is not None
            )

    def health(self) -> dict:
        """The service health state machine, as served by ``/healthz``.

        ``status`` is one of:

        * ``healthy`` -- serving normally;
        * ``degraded`` -- still serving, but a self-healing mechanism is
          engaged: the circuit breaker is open/half-open (jobs run on the
          fallback executor), the journal has absorbed append failures
          (durability is best-effort), or the admission queue is
          saturated (submissions are being 429'd);
        * ``draining`` -- :meth:`close` has begun; failures no longer
          retry.

        The accompanying fields name *why*: breaker state, queue depth,
        journal backlog/error counters, retry/watchdog/quarantine/
        disconnect totals.  :meth:`metrics` exposes the same signals as
        numeric gauges for scraping.
        """
        depth = self._queue.depth()
        breaker_state = self._breaker_state()
        journal = self.journal
        append_failures = journal.append_failures if journal is not None else 0
        if self._draining:
            status = "draining"
        elif (
            breaker_state in ("open", "half_open")
            or append_failures > 0
            or depth >= self.max_queue
        ):
            status = "degraded"
        else:
            status = "healthy"
        with self._lock:
            retried = self.jobs_retried
            watchdog = self.watchdog_timeouts
            disconnects = self.client_disconnects
            put_errors = self.store_put_errors
        return {
            "status": status,
            "workers": len(self._workers),
            "uptime_s": max(time.monotonic() - self.started_s, 1e-9),
            "breaker_state": breaker_state,
            "queue_depth": depth,
            "queue_capacity": self.max_queue,
            "journal_backlog": journal.settled_since_compact if journal is not None else 0,
            "journal_write_errors": journal.write_errors if journal is not None else 0,
            "journal_append_failures": append_failures,
            "jobs_retried": retried,
            "watchdog_timeouts": watchdog,
            "store_put_errors": put_errors,
            "store_quarantined": self._store_quarantined(),
            "client_disconnects": disconnects,
        }

    @staticmethod
    def _percentile(sorted_values: list[float], q: float) -> float:
        if not sorted_values:
            return 0.0
        idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
        return sorted_values[idx]

    #: Health/breaker states as numeric gauge codes (``/metrics`` values
    #: must parse as floats; the strings live in ``/healthz`` JSON).
    _HEALTH_CODES = {"healthy": 0, "degraded": 1, "draining": 2}
    _BREAKER_CODES = {"none": 0, "closed": 0, "half_open": 1, "open": 2}

    def metrics(self) -> dict:
        """One snapshot of the service's operational counters."""
        health = self.health()
        with self._lock:
            per_lane = {lane: sorted(vals) for lane, vals in self._latencies_s.items()}
            stores = [
                ctx.results_store
                for ctx in self._contexts.values()
                if ctx.results_store is not None
            ]
            hits = sum(s.hits for s in stores)
            misses = sum(s.misses for s in stores)
            puts = sum(s.puts for s in stores)
            quarantined = sum(s.quarantined for s in stores)
            done, failed = self.jobs_done, self.jobs_failed
            dedup = self.dedup_hits
            sims = self.simulations
            rejected = self.jobs_rejected
            recovered = self.jobs_recovered
            retried = self.jobs_retried
            attempts = self.attempts_total
            watchdog = self.watchdog_timeouts
            put_errors = self.store_put_errors
            disconnects = self.client_disconnects
        breaker = getattr(self.executor, "breaker", None)
        latencies = sorted(v for vals in per_lane.values() for v in vals)
        depths = self._queue.depths()
        uptime_s = max(time.monotonic() - self.started_s, 1e-9)
        lookups = hits + misses
        out = {
            "uptime_s": uptime_s,
            "workers": len(self._workers),
            "executor_processes": getattr(self.executor, "processes", 0),
            "queue_depth": sum(depths.values()),
            "queue_capacity": self.max_queue,
            "jobs_done": done,
            "jobs_failed": failed,
            "jobs_rejected": rejected,
            "jobs_recovered": recovered,
            "jobs_deduped": dedup,
            "jobs_retried": retried,
            "attempts_total": attempts,
            "watchdog_timeouts": watchdog,
            "jobs_inflight_coalesced": self.inflight.coalesced,
            "journal_appends": self.journal.appends if self.journal is not None else 0,
            "journal_write_errors": health["journal_write_errors"],
            "journal_append_failures": health["journal_append_failures"],
            "journal_compactions": self.journal.compactions if self.journal is not None else 0,
            "health_state": self._HEALTH_CODES[health["status"]],
            "breaker_state": self._BREAKER_CODES[health["breaker_state"]],
            "breaker_trips": breaker.trips if breaker is not None else 0,
            "executor_fallback_runs": getattr(self.executor, "fallback_runs", 0),
            "store_put_errors": put_errors
            + getattr(self.executor, "store_put_errors", 0),
            "store_quarantined": quarantined,
            "client_disconnects": disconnects,
            "simulations": sims,
            "store_hits": hits,
            "store_misses": misses,
            "store_puts": puts,
            "cache_hit_rate": (hits / lookups) if lookups else 0.0,
            "jobs_per_sec": done / uptime_s,
            "job_latency_p50_s": self._percentile(latencies, 0.50),
            "job_latency_p95_s": self._percentile(latencies, 0.95),
        }
        for lane in LANES:
            out[f"queue_depth_{lane}"] = depths[lane]
            out[f"lane_latency_{lane}_p50_s"] = self._percentile(per_lane[lane], 0.50)
            out[f"lane_latency_{lane}_p95_s"] = self._percentile(per_lane[lane], 0.95)
        return out
