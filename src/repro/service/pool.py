"""The replay worker pool: queue, dedup, execution, metrics.

:class:`ReplayService` owns one :class:`~repro.experiments.runner.
ExperimentContext` per requested system size (all sharing one simulation
database cache and one ``.sim_cache`` results store) and N worker threads
draining a submit queue.  Each job executes through the runner's
spawn-safe ``parallel_map`` worker protocol
(:func:`~repro.util.parallel.parallel_map` with
``_init_worker``/``_run_one_scenario``), i.e. exactly the machinery the
batch experiment drivers fan out over -- which is why the service path is
bit-identical to the library path.

Dedup happens at three tiers, all keyed by the same content hash
(:func:`~repro.service.jobs.job_key` == the results-store
:func:`~repro.simulation.results_store.run_key`):

1. **submit time** -- an identical request while a job is queued/running/
   done returns the *same* job (``submissions`` counts the coalesced
   clients);
2. **in flight** -- the results store's
   :class:`~repro.simulation.results_store.InflightRegistry` guards the
   window between store miss and store put, so even independently created
   executors sharing one store run a key at most once;
3. **at rest** -- the persistent results store serves finished runs across
   service restarts.

A worker crash mid-job marks the job ``failed`` (with the error) and
releases any coalesced waiters -- it never hangs clients, and a later
identical submission retries cleanly.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from repro.experiments.runner import (
    ExperimentContext,
    ManagerSpec,
    _init_worker,
    _run_one,
    _run_one_scenario,
    get_context,
)
from repro.scenarios.events import Scenario
from repro.service.jobs import JobSpec, build_item, job_key, job_spec_from_json
from repro.simulation.metrics import RunResult, run_result_digest
from repro.simulation.results_store import InflightRegistry
from repro.util.parallel import parallel_map
from repro.workloads.mixes import Workload

__all__ = ["Job", "ReplayService", "JOB_STATES"]

JOB_STATES = ("queued", "running", "done", "failed")


def _execute_replay(
    ctx: ExperimentContext, item: Scenario | Workload, manager: ManagerSpec
) -> RunResult:
    """Run one replay through the runner's spawn-safe worker machinery.

    Module-level so the crash tests can monkeypatch it; routed through
    ``parallel_map`` with the pool initializer, the exact protocol
    ``ExperimentContext._resolve`` uses for batch fan-out.
    """
    worker = _run_one_scenario if isinstance(item, Scenario) else _run_one
    task = (item, manager, ctx.max_slices)
    return parallel_map(
        worker, [task], processes=1, initializer=_init_worker, initargs=(ctx,)
    )[0]


@dataclass
class Job:
    """One submitted replay job; ``job_id`` is the run's content hash."""

    job_id: str
    spec: JobSpec
    item: Scenario | Workload
    status: str = "queued"
    submitted_s: float = 0.0
    started_s: float | None = None
    finished_s: float | None = None
    error: str | None = None
    result: RunResult | None = None
    result_hash: str | None = None
    #: Total client submissions coalesced onto this job (>= 1).
    submissions: int = 1
    #: True when the result was served from the persistent store.
    cache_hit: bool = False
    finished: threading.Event = field(default_factory=threading.Event, repr=False)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job settles (done or failed); False on timeout."""
        return self.finished.wait(timeout)

    def summary(self) -> dict:
        """Status view returned by the poll endpoint."""
        out = {
            "job_id": self.job_id,
            "status": self.status,
            "shape": self.spec.shape,
            "ncores": self.spec.ncores,
            "name": self.spec.name,
            "manager": self.spec.manager.name or self.spec.manager.kind,
            "submissions": self.submissions,
            "cache_hit": self.cache_hit,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.result_hash is not None:
            out["result_hash"] = self.result_hash
        return out


class ReplayService:
    """Long-lived scenario-replay service: submit, poll, fetch, metrics.

    ``context_factory(ncores)`` builds the per-size experiment context
    (defaults to :func:`~repro.experiments.runner.get_context`, i.e. the
    shared ``.sim_cache`` database + results store); contexts are memoised
    per size for the service's lifetime.  Use as a context manager or call
    :meth:`close` to drain and join the workers.
    """

    def __init__(self, context_factory=get_context, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError("service needs at least one worker")
        self._context_factory = context_factory
        self._contexts: dict[int, ExperimentContext] = {}
        self._jobs: dict[str, Job] = {}
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._lock = threading.Lock()
        self.inflight = InflightRegistry()
        self.started_s = time.monotonic()
        # Counters (all under self._lock; read via metrics()).
        self.simulations = 0
        self.jobs_done = 0
        self.jobs_failed = 0
        self.dedup_hits = 0
        self._latencies_s: list[float] = []
        self._workers = [
            threading.Thread(
                target=self._worker_loop, name=f"replay-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for t in self._workers:
            t.start()

    # ---- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "ReplayService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Stop accepting work and join the worker threads."""
        for _ in self._workers:
            self._queue.put(None)
        for t in self._workers:
            t.join(timeout=60.0)

    # ---- contexts -----------------------------------------------------------
    def ctx_for(self, ncores: int) -> ExperimentContext:
        """The (memoised) experiment context serving ``ncores`` jobs."""
        with self._lock:
            ctx = self._contexts.get(ncores)
        if ctx is not None:
            return ctx
        # Build outside the lock: database construction can take seconds
        # and must not stall submits for other (already-built) sizes.
        ctx = self._context_factory(ncores)
        with self._lock:
            return self._contexts.setdefault(ncores, ctx)

    # ---- submission ---------------------------------------------------------
    def submit(self, request: JobSpec | dict) -> Job:
        """Register one replay request; identical requests share one job.

        Accepts a parsed :class:`JobSpec` or a raw JSON mapping (the wire
        form).  Returns the job -- possibly an existing one: a request
        whose content hash matches a queued, running or finished job
        coalesces onto it (``submissions`` increments).  A previously
        *failed* job is retried with a fresh job record under the same id.
        """
        return self.submit_info(request)[0]

    def submit_info(self, request: JobSpec | dict) -> tuple[Job, bool]:
        """Like :meth:`submit`, also reporting whether the request coalesced
        onto an existing job (the HTTP layer surfaces this as ``deduped``)."""
        spec = request if isinstance(request, JobSpec) else job_spec_from_json(request)
        ctx = self.ctx_for(spec.ncores)
        item = build_item(spec, ctx.db.benchmarks())
        key = job_key(spec, ctx)
        with self._lock:
            job = self._jobs.get(key)
            if job is not None and job.status != "failed":
                job.submissions += 1
                self.dedup_hits += 1
                return job, True
            job = Job(
                job_id=key, spec=spec, item=item, submitted_s=time.monotonic()
            )
            self._jobs[key] = job
        self._queue.put(job)
        return job, False

    def get_job(self, job_id: str) -> Job | None:
        """Look one job up by id (None when unknown)."""
        with self._lock:
            return self._jobs.get(job_id)

    # ---- execution ----------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        job.status = "running"
        job.started_s = time.monotonic()
        ctx = self.ctx_for(job.spec.ncores)
        owner, ticket = self.inflight.claim(job.job_id)
        try:
            if not owner:
                # Another executor sharing this store is already running the
                # key (submit-time dedup makes this rare in-process): wait
                # for its outcome instead of simulating again.
                ticket.done.wait()
                if ticket.error is not None:
                    raise ticket.error
                result = ticket.result
                job.cache_hit = True
            else:
                store = ctx.results_store
                result = store.get(job.job_id) if store is not None else None
                if result is not None:
                    job.cache_hit = True
                else:
                    result = _execute_replay(ctx, job.item, job.spec.manager)
                    with self._lock:
                        self.simulations += 1
                    if store is not None:
                        store.put(job.job_id, result)
                self.inflight.publish(ticket, result)
        except Exception as exc:
            if owner:
                self.inflight.fail(ticket, exc)
            job.error = f"{type(exc).__name__}: {exc}"
            job.status = "failed"
            job.finished_s = time.monotonic()
            with self._lock:
                self.jobs_failed += 1
            job.finished.set()
            return
        job.result = result
        job.result_hash = run_result_digest(result)
        job.status = "done"
        job.finished_s = time.monotonic()
        with self._lock:
            self.jobs_done += 1
            self._latencies_s.append(job.finished_s - job.submitted_s)
        job.finished.set()

    # ---- metrics ------------------------------------------------------------
    @staticmethod
    def _percentile(sorted_values: list[float], q: float) -> float:
        if not sorted_values:
            return 0.0
        idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
        return sorted_values[idx]

    def metrics(self) -> dict:
        """One snapshot of the service's operational counters."""
        with self._lock:
            latencies = sorted(self._latencies_s)
            stores = [
                ctx.results_store
                for ctx in self._contexts.values()
                if ctx.results_store is not None
            ]
            hits = sum(s.hits for s in stores)
            misses = sum(s.misses for s in stores)
            puts = sum(s.puts for s in stores)
            done, failed = self.jobs_done, self.jobs_failed
            dedup = self.dedup_hits
            sims = self.simulations
        uptime_s = max(time.monotonic() - self.started_s, 1e-9)
        lookups = hits + misses
        return {
            "uptime_s": uptime_s,
            "workers": len(self._workers),
            "queue_depth": self._queue.qsize(),
            "jobs_done": done,
            "jobs_failed": failed,
            "jobs_deduped": dedup,
            "jobs_inflight_coalesced": self.inflight.coalesced,
            "simulations": sims,
            "store_hits": hits,
            "store_misses": misses,
            "store_puts": puts,
            "cache_hit_rate": (hits / lookups) if lookups else 0.0,
            "jobs_per_sec": done / uptime_s,
            "job_latency_p50_s": self._percentile(latencies, 0.50),
            "job_latency_p95_s": self._percentile(latencies, 0.95),
        }
