"""Request/job model for the scenario-replay service.

A replay request (:class:`JobSpec`) is a *value*: a scenario shape id
(``S1``-``S7``, or ``FIXED`` for a static workload), the generator
parameters, the system size and a
:class:`~repro.experiments.runner.ManagerSpec`.  Two requests with equal
values are the same job -- the job id handed back to clients is the
results-store content hash (:func:`~repro.simulation.results_store.run_key`)
of the materialised (system, database, scenario/workload, manager,
fidelity) tuple, so service-level dedup, the in-flight registry and the
persistent store all agree on what "identical" means.

The wire format is plain JSON::

    {"shape": "S1", "ncores": 4,
     "params": {"rate_per_interval": 0.25, "horizon_intervals": 48, "seed": 0},
     "manager": {"kind": "coordinated", "name": "rm2-combined"},
     "name": "smoke-s1"}

``params`` are forwarded to the shape's generator (unknown keys are
rejected at submit time, not deep in a worker); ``manager`` fields default
to the :class:`ManagerSpec` defaults; ``name`` seeds the scenario RNG and
defaults to a canonical shape-derived name.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, fields as dataclass_fields

from repro.experiments.runner import ExperimentContext, ManagerSpec
from repro.scenarios import (
    burst_load,
    churn,
    cluster_churn,
    poisson_arrivals,
    qos_ramp,
    skewed_load,
)
from repro.scenarios.events import Scenario
from repro.simulation.results_store import run_key
from repro.util.validation import require
from repro.workloads.mixes import Workload

__all__ = [
    "JobSpec",
    "SCENARIO_SHAPES",
    "WORKLOAD_SHAPE",
    "SUBMISSION_ATTRS",
    "job_spec_from_json",
    "build_item",
    "job_key",
    "split_submission",
]

#: Shape id -> scenario generator.  S7 (the scaling experiment) replays the
#: same cluster-churn shape as S5 at the production-default cluster size;
#: as a *service* request it is simply that generator at the caller's N.
SCENARIO_SHAPES = {
    "S1": poisson_arrivals,
    "S2": qos_ramp,
    "S3": churn,
    "S4": burst_load,
    "S5": cluster_churn,
    "S6": skewed_load,
    "S7": cluster_churn,
}

#: Shape id for a static multi-programmed workload (the papers' E-series
#: setting): ``params`` carry ``apps`` (one benchmark per core) and an
#: optional ``slack`` (scalar or per-core list).
WORKLOAD_SHAPE = "FIXED"

#: Request attributes that describe *delivery*, not the run's identity:
#: they never enter the job hash, so the same run requested on different
#: lanes still dedups onto one job.
SUBMISSION_ATTRS = ("lane",)


def split_submission(payload: dict) -> tuple[dict, dict]:
    """Split a raw submit body into ``(delivery_attrs, spec_fields)``.

    ``delivery_attrs`` holds the :data:`SUBMISSION_ATTRS` keys present in
    the body (e.g. the admission lane); ``spec_fields`` is what remains --
    the identity of the run, fed to :func:`job_spec_from_json`.  The input
    mapping is not mutated.
    """
    require(isinstance(payload, dict), "request body must be a JSON object")
    spec_fields = dict(payload)
    attrs = {key: spec_fields.pop(key) for key in SUBMISSION_ATTRS if key in spec_fields}
    return attrs, spec_fields


_SCALARS = (bool, int, float, str)


def _canonical_value(value, *, key: str):
    """Normalise one params value to a hashable canonical form."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(v, key=key) for v in value)
    raise ValueError(
        f"param {key!r} has unsupported type {type(value).__name__}; "
        "params must be JSON scalars or lists of them"
    )


def _allowed_params(shape: str) -> set[str]:
    if shape == WORKLOAD_SHAPE:
        return {"apps", "slack"}
    sig = inspect.signature(SCENARIO_SHAPES[shape])
    # name/ncores/apps come from the spec and the service context.
    return set(sig.parameters) - {"name", "ncores", "apps"}


@dataclass(frozen=True)
class JobSpec:
    """One scenario-replay request, canonicalised and hashable.

    ``params`` is a sorted tuple of ``(key, value)`` pairs (values are
    scalars or nested tuples), so equal requests compare and hash equal no
    matter what order the client sent the keys in.
    """

    shape: str
    ncores: int
    manager: ManagerSpec
    params: tuple[tuple[str, object], ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        require(
            self.shape in SCENARIO_SHAPES or self.shape == WORKLOAD_SHAPE,
            f"unknown shape {self.shape!r}; known: "
            f"{', '.join([*SCENARIO_SHAPES, WORKLOAD_SHAPE])}",
        )
        require(self.ncores >= 1, "ncores must be at least 1")
        allowed = _allowed_params(self.shape)
        canon = []
        for key, value in sorted(dict(self.params).items()):
            require(
                key in allowed,
                f"shape {self.shape} does not accept param {key!r}; "
                f"allowed: {', '.join(sorted(allowed))}",
            )
            canon.append((key, _canonical_value(value, key=key)))
        object.__setattr__(self, "params", tuple(canon))
        if not self.name:
            object.__setattr__(self, "name", f"{self.shape.lower()}-svc")

    def param_dict(self) -> dict:
        """The params as a plain dict (generator kwargs)."""
        return dict(self.params)

    def canonical(self) -> str:
        """Stable textual form of the request value (pre-database hashing).

        This is the context-free half of the job-hash canonicalisation:
        equal canonical strings produce equal job ids against any one
        service context.  Floats are rendered with ``repr`` (shortest
        round-trip form), so no precision is folded away.
        """
        pairs = ",".join(f"{k}={v!r}" for k, v in self.params)
        return (
            f"shape={self.shape};n={self.ncores};name={self.name};"
            f"params[{pairs}];mgr={self.manager!r}"
        )

    def to_json(self) -> dict:
        """The wire form: JSON-serialisable, round-trips through
        :func:`job_spec_from_json` to an equal spec."""

        def plain(value):
            return list(plain(v) for v in value) if isinstance(value, tuple) else value

        return {
            "shape": self.shape,
            "ncores": self.ncores,
            "name": self.name,
            "params": {k: plain(v) for k, v in self.params},
            "manager": {
                f.name: getattr(self.manager, f.name)
                for f in dataclass_fields(ManagerSpec)
            },
        }


def _manager_from_json(payload) -> ManagerSpec:
    """Build a ManagerSpec from a JSON mapping, rejecting unknown fields."""
    require(isinstance(payload, dict), "manager must be a JSON object")
    known = {f.name for f in dataclass_fields(ManagerSpec)}
    unknown = set(payload) - known
    require(
        not unknown,
        f"unknown manager fields: {', '.join(sorted(unknown))}; "
        f"known: {', '.join(sorted(known))}",
    )
    require("kind" in payload, "manager needs a 'kind' field")
    kinds = ("baseline", "coordinated", "independent", "history")
    require(
        payload["kind"] in kinds,
        f"unknown manager kind {payload['kind']!r}; known: {', '.join(kinds)}",
    )
    try:
        return ManagerSpec(**payload)
    except TypeError as exc:  # defensive: field-level type surprises
        raise ValueError(f"bad manager spec: {exc}") from exc


def job_spec_from_json(payload) -> JobSpec:
    """Parse and validate one submit body into a canonical :class:`JobSpec`.

    Raises :class:`ValueError` with a client-actionable message on any
    malformed input (the HTTP layer maps that to a 400).
    """
    require(isinstance(payload, dict), "request body must be a JSON object")
    known = {"shape", "ncores", "params", "manager", "name"}
    unknown = set(payload) - known
    require(
        not unknown,
        f"unknown request fields: {', '.join(sorted(unknown))}; "
        f"known: {', '.join(sorted(known))}",
    )
    for field in ("shape", "ncores", "manager"):
        require(field in payload, f"request needs a {field!r} field")
    require(isinstance(payload["shape"], str), "shape must be a string")
    require(
        isinstance(payload["ncores"], int) and not isinstance(payload["ncores"], bool),
        "ncores must be an integer",
    )
    params = payload.get("params", {})
    require(isinstance(params, dict), "params must be a JSON object")
    name = payload.get("name", "")
    require(isinstance(name, str), "name must be a string")
    return JobSpec(
        shape=payload["shape"],
        ncores=payload["ncores"],
        manager=_manager_from_json(payload["manager"]),
        params=tuple(params.items()),
        name=name,
    )


def build_item(spec: JobSpec, apps: list[str]) -> Scenario | Workload:
    """Materialise the request into the scenario/workload it describes.

    ``apps`` is the service context's benchmark pool
    (``ctx.db.benchmarks()``); scenario generators draw tenants from it.
    Generator-level validation errors surface as :class:`ValueError` at
    submit time.
    """
    if spec.shape == WORKLOAD_SHAPE:
        params = spec.param_dict()
        require("apps" in params, "FIXED jobs need an 'apps' param")
        picked = params["apps"]
        require(
            isinstance(picked, tuple) and len(picked) == spec.ncores,
            f"FIXED 'apps' must list exactly ncores={spec.ncores} benchmarks",
        )
        missing = [a for a in picked if a not in apps]
        require(
            not missing,
            f"unknown benchmarks: {', '.join(missing)}; "
            f"database has: {', '.join(apps)}",
        )
        slack = params.get("slack", 0.0)
        wl = Workload(name=spec.name, apps=tuple(picked))
        return wl.with_slack(slack) if slack else wl
    builder = SCENARIO_SHAPES[spec.shape]
    return builder(spec.name, spec.ncores, apps, **spec.param_dict())


def job_key(spec: JobSpec, ctx: ExperimentContext) -> str:
    """The job id: the results-store content hash of the materialised run."""
    item = build_item(spec, ctx.db.benchmarks())
    return run_key(ctx.system, ctx.db, item, spec.manager, ctx.max_slices)
