"""Replay executors: where one accepted job's simulation actually runs.

The worker pool in :mod:`repro.service.pool` is N *threads* draining the
admission queue; an executor decides what those threads block on:

* :class:`ThreadExecutor` -- run the replay in the worker thread itself
  (through the runner's serial ``parallel_map`` path).  Zero setup cost,
  but concurrent CPU-bound replays share one GIL.
* :class:`ProcessPoolExecutor` -- dispatch the replay to a persistent
  ``multiprocessing`` pool (one pool per system size, built with the same
  spawn-safe ``_init_worker`` protocol every batch driver uses), so
  concurrent jobs get real CPU parallelism.  The worker process runs
  exactly ``_run_one`` / ``_run_one_scenario`` -- the library's own replay
  entry points -- and publishes the result **through the content-addressed
  results store**: it writes the atomic ``run_<key>.pkl`` and hands back
  only the canonical digest, the parent then loads the very bytes the
  worker persisted.  Bit-identity with the thread path is therefore
  structural, and a digest cross-check turns any disagreement into a loud
  failure instead of a silent drift.

Both executors are selected per service instance
(``ReplayService(executor=...)``, ``tools/serve.py --executor``) and
produce byte-identical results; ``tests/test_service_concurrency.py``
runs the 16-job S1-S7 storm through both and compares every hash.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading

from repro.experiments.runner import (
    ExperimentContext,
    ManagerSpec,
    _init_worker,
    _run_one,
    _run_one_scenario,
)
from repro.scenarios.events import Scenario
from repro.simulation.metrics import RunResult, run_result_digest
from repro.workloads.mixes import Workload

__all__ = ["ThreadExecutor", "ProcessPoolExecutor", "make_executor", "EXECUTOR_KINDS"]

EXECUTOR_KINDS = ("thread", "process")


class ThreadExecutor:
    """Run replays inline on the service worker thread (the PR-6 behaviour)."""

    name = "thread"
    #: The pool persists results itself after this executor returns.
    stores_results = False

    def run(
        self,
        ctx: ExperimentContext,
        job_id: str,
        item: Scenario | Workload,
        manager: ManagerSpec,
    ) -> RunResult:
        """Execute one replay in the calling thread.

        Routed through the *pool module's* ``_execute_replay`` global, so
        the crash-containment tests keep a single monkeypatch point no
        matter which executor the service was built with.
        """
        from repro.service import pool

        return pool._execute_replay(ctx, item, manager)

    def close(self) -> None:
        """Nothing to release: the executor owns no processes."""


def _execute_and_store(args: tuple) -> tuple:
    """Pool-worker entry point: replay one job, publish through the store.

    Runs inside a worker process whose context was installed by
    ``_init_worker`` (the spawn-safe protocol).  With a results store
    configured the result is persisted atomically and only the canonical
    digest crosses the process boundary; without one the result itself is
    pickled back.
    """
    task, job_id = args
    item = task[0]
    worker = _run_one_scenario if isinstance(item, Scenario) else _run_one
    result = worker(task)
    from repro.experiments.runner import _worker_ctx

    store = _worker_ctx().results_store
    if store is not None:
        store.put(job_id, result)
        return ("stored", run_result_digest(result))
    return ("inline", result)


class ProcessPoolExecutor:
    """Persistent per-system-size process pools for CPU-parallel replays.

    ``processes`` bounds each pool's worker count (defaults to the service
    worker-thread count, so every thread can be running a job at once);
    ``start_method`` follows :func:`repro.util.parallel.parallel_map`'s
    convention (``fork`` where available, else ``spawn``) -- the context is
    shipped to workers via pickled ``initargs`` either way, which is what
    makes the protocol spawn-safe.
    """

    name = "process"
    stores_results = True

    def __init__(self, processes: int = 2, start_method: str | None = None) -> None:
        if processes < 1:
            raise ValueError("process executor needs at least one process")
        self.processes = processes
        self.start_method = start_method or ("fork" if hasattr(os, "fork") else "spawn")
        self._pools: dict[int, mp.pool.Pool] = {}
        self._lock = threading.Lock()
        self._closed = False

    def _pool_for(self, ctx: ExperimentContext) -> mp.pool.Pool:
        key = ctx.system.ncores
        with self._lock:
            if self._closed:
                raise RuntimeError("process executor is closed")
            pool = self._pools.get(key)
            if pool is None:
                pool = mp.get_context(self.start_method).Pool(
                    processes=self.processes,
                    initializer=_init_worker,
                    initargs=(ctx,),
                )
                self._pools[key] = pool
        return pool

    def run(
        self,
        ctx: ExperimentContext,
        job_id: str,
        item: Scenario | Workload,
        manager: ManagerSpec,
    ) -> RunResult:
        """Dispatch one replay to the pool serving ``ctx``'s system size."""
        task = (item, manager, ctx.max_slices)
        kind, payload = self._pool_for(ctx).apply(_execute_and_store, ((task, job_id),))
        if kind == "inline":
            return payload
        store = ctx.results_store
        result = store.get(job_id) if store is not None else None
        if result is None:
            raise RuntimeError(
                f"process worker reported job {job_id} stored, but the parent "
                "could not load it back from the results store"
            )
        digest = run_result_digest(result)
        if digest != payload:
            raise RuntimeError(
                f"job {job_id}: stored digest {digest} != worker digest {payload} "
                "(results store raced or corrupted between processes)"
            )
        return result

    def close(self) -> None:
        """Terminate and join every pool (idempotent)."""
        with self._lock:
            self._closed = True
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.terminate()
            pool.join()


def make_executor(kind: str, *, processes: int = 2, start_method: str | None = None):
    """Build the executor named by ``kind`` (``thread`` or ``process``)."""
    if kind == "thread":
        return ThreadExecutor()
    if kind == "process":
        return ProcessPoolExecutor(processes=processes, start_method=start_method)
    raise ValueError(f"unknown executor kind {kind!r}; known: {', '.join(EXECUTOR_KINDS)}")
