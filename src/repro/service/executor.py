"""Replay executors: where one accepted job's simulation actually runs.

The worker pool in :mod:`repro.service.pool` is N *threads* draining the
admission queue; an executor decides what those threads block on:

* :class:`ThreadExecutor` -- run the replay in the worker thread itself
  (through the runner's serial ``parallel_map`` path).  Zero setup cost,
  but concurrent CPU-bound replays share one GIL.
* :class:`ProcessPoolExecutor` -- dispatch the replay to a persistent
  ``multiprocessing`` pool (one pool per system size, built with the same
  spawn-safe ``_init_worker`` protocol every batch driver uses), so
  concurrent jobs get real CPU parallelism.  The worker process runs
  exactly ``_run_one`` / ``_run_one_scenario`` -- the library's own replay
  entry points -- and publishes the result **through the content-addressed
  results store**: it writes the atomic ``run_<key>.pkl`` and hands back
  only the canonical digest, the parent then loads the very bytes the
  worker persisted.  Bit-identity with the thread path is therefore
  structural, and a digest cross-check turns any disagreement into a loud
  failure instead of a silent drift.

A third wrapper, :class:`FailoverExecutor`, adds the self-healing tier:
a :class:`CircuitBreaker` counts consecutive primary-executor failures
(worker deaths) and, after ``trip_after`` of them, *opens* -- routing jobs
to a fallback executor (the in-process :class:`ThreadExecutor`) so the
service degrades to single-process operation instead of feeding jobs to a
dying pool.  After ``cooldown_jobs`` fallback runs the breaker goes
*half-open* and probes the primary with one job: success closes the
circuit, failure re-opens it.  The breaker is deterministic in job counts
(no wall clock), so chaos storms reproduce its transitions exactly.
``make_executor("process")`` wraps the process pool in a failover by
default.

Both base executors are selected per service instance
(``ReplayService(executor=...)``, ``tools/serve.py --executor``) and
produce byte-identical results; ``tests/test_service_concurrency.py``
runs the 16-job S1-S7 storm through both and compares every hash.  Each
executor consults the active fault plan (:mod:`repro.service.faults`)
before dispatching: the ``executor.crash`` / ``executor.hang`` /
``executor.slow`` sites inject worker deaths, watchdog-tripping hangs and
bounded latency on the dispatching side of the process boundary.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time

from repro.experiments.runner import (
    ExperimentContext,
    ManagerSpec,
    _init_worker,
    _run_one,
    _run_one_scenario,
)
from repro.scenarios.events import Scenario
from repro.service import faults
from repro.simulation.metrics import RunResult, run_result_digest
from repro.workloads.mixes import Workload

__all__ = [
    "ThreadExecutor",
    "ProcessPoolExecutor",
    "FailoverExecutor",
    "CircuitBreaker",
    "make_executor",
    "EXECUTOR_KINDS",
]

EXECUTOR_KINDS = ("thread", "process")

#: Default hang duration (seconds) for ``executor.hang`` rules without an
#: explicit ``param`` -- comfortably past any sane watchdog timeout.
DEFAULT_HANG_S = 30.0


def _inject_dispatch_faults() -> None:
    """Consult the active fault plan at the executor dispatch sites.

    Order matters for determinism: crash, then hang, then slow -- a fired
    crash never consults the later sites for that dispatch, and the
    per-site invocation counters advance identically on every same-seed
    run.
    """
    rule = faults.fire(faults.EXECUTOR_CRASH)
    if rule is not None:
        raise faults.InjectedWorkerCrash("injected worker crash at dispatch")
    rule = faults.fire(faults.EXECUTOR_HANG)
    if rule is not None:
        time.sleep(rule.param or DEFAULT_HANG_S)
    rule = faults.fire(faults.EXECUTOR_SLOW)
    if rule is not None:
        time.sleep(rule.param or 0.05)


class ThreadExecutor:
    """Run replays inline on the service worker thread (the PR-6 behaviour)."""

    name = "thread"
    #: The pool persists results itself after this executor returns.
    stores_results = False

    def run(
        self,
        ctx: ExperimentContext,
        job_id: str,
        item: Scenario | Workload,
        manager: ManagerSpec,
    ) -> RunResult:
        """Execute one replay in the calling thread.

        Routed through the *pool module's* ``_execute_replay`` global, so
        the crash-containment tests keep a single monkeypatch point no
        matter which executor the service was built with.
        """
        from repro.service import pool

        _inject_dispatch_faults()
        return pool._execute_replay(ctx, item, manager)

    def recycle(self, ctx: ExperimentContext) -> None:
        """Nothing to recycle: the abandoned attempt thread *is* the worker."""

    def close(self) -> None:
        """Nothing to release: the executor owns no processes."""


def _execute_and_store(args: tuple) -> tuple:
    """Pool-worker entry point: replay one job, publish through the store.

    Runs inside a worker process whose context was installed by
    ``_init_worker`` (the spawn-safe protocol).  With a results store
    configured the result is persisted atomically and only the canonical
    digest crosses the process boundary; without one the result itself is
    pickled back.
    """
    task, job_id = args
    item = task[0]
    worker = _run_one_scenario if isinstance(item, Scenario) else _run_one
    result = worker(task)
    from repro.experiments.runner import _worker_ctx

    store = _worker_ctx().results_store
    if store is not None:
        store.put(job_id, result)
        return ("stored", run_result_digest(result))
    return ("inline", result)


class ProcessPoolExecutor:
    """Persistent per-system-size process pools for CPU-parallel replays.

    ``processes`` bounds each pool's worker count (defaults to the service
    worker-thread count, so every thread can be running a job at once);
    ``start_method`` follows :func:`repro.util.parallel.parallel_map`'s
    convention (``fork`` where available, else ``spawn``) -- the context is
    shipped to workers via pickled ``initargs`` either way, which is what
    makes the protocol spawn-safe.
    """

    name = "process"
    stores_results = True

    def __init__(self, processes: int = 2, start_method: str | None = None) -> None:
        if processes < 1:
            raise ValueError("process executor needs at least one process")
        self.processes = processes
        self.start_method = start_method or ("fork" if hasattr(os, "fork") else "spawn")
        self._pools: dict[int, mp.pool.Pool] = {}
        self._lock = threading.Lock()
        self._closed = False

    def _pool_for(self, ctx: ExperimentContext) -> mp.pool.Pool:
        key = ctx.system.ncores
        with self._lock:
            if self._closed:
                raise RuntimeError("process executor is closed")
            pool = self._pools.get(key)
            if pool is None:
                pool = mp.get_context(self.start_method).Pool(
                    processes=self.processes,
                    initializer=_init_worker,
                    initargs=(ctx,),
                )
                self._pools[key] = pool
        return pool

    def run(
        self,
        ctx: ExperimentContext,
        job_id: str,
        item: Scenario | Workload,
        manager: ManagerSpec,
    ) -> RunResult:
        """Dispatch one replay to the pool serving ``ctx``'s system size.

        Fault sites are consulted on the dispatching (parent) side: a
        fired ``executor.crash`` models the pool losing its worker before
        the result crosses back, a fired hang models a wedged worker the
        parent never hears from -- both are what the service's watchdog
        and retry machinery must absorb.
        """
        _inject_dispatch_faults()
        task = (item, manager, ctx.max_slices)
        kind, payload = self._pool_for(ctx).apply(_execute_and_store, ((task, job_id),))
        if kind == "inline":
            return payload
        store = ctx.results_store
        result = store.get(job_id) if store is not None else None
        if result is None:
            raise RuntimeError(
                f"process worker reported job {job_id} stored, but the parent "
                "could not load it back from the results store"
            )
        digest = run_result_digest(result)
        if digest != payload:
            raise RuntimeError(
                f"job {job_id}: stored digest {digest} != worker digest {payload} "
                "(results store raced or corrupted between processes)"
            )
        return result

    def recycle(self, ctx: ExperimentContext) -> None:
        """Tear down the pool serving ``ctx`` (hung worker recovery).

        Called by the service watchdog when an attempt timed out: the
        wedged pool is terminated and dropped, and the next dispatch for
        this system size lazily builds a fresh one -- the process-pool
        equivalent of recycling a hung worker.
        """
        key = ctx.system.ncores
        with self._lock:
            pool = self._pools.pop(key, None)
        if pool is not None:
            pool.terminate()
            pool.join()

    def close(self) -> None:
        """Terminate and join every pool (idempotent)."""
        with self._lock:
            self._closed = True
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.terminate()
            pool.join()


class CircuitBreaker:
    """Consecutive-failure circuit breaker, deterministic in job counts.

    States and transitions (``tests/test_faults.py`` pins them):

    * ``closed`` -- primary serves traffic; ``trip_after`` *consecutive*
      failures open the circuit (any success resets the streak).
    * ``open`` -- primary is bypassed; after ``cooldown_jobs`` bypassed
      runs the breaker moves to ``half_open``.
    * ``half_open`` -- exactly one probe is routed to the primary (other
      concurrent jobs keep bypassing); probe success closes the circuit,
      probe failure re-opens it with a fresh cooldown.

    The cooldown is measured in *jobs routed while open*, not wall-clock
    seconds, so breaker behaviour replays identically under a seeded
    chaos storm.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, trip_after: int = 3, cooldown_jobs: int = 8) -> None:
        if trip_after < 1:
            raise ValueError("trip_after must be at least 1")
        if cooldown_jobs < 1:
            raise ValueError("cooldown_jobs must be at least 1")
        self.trip_after = trip_after
        self.cooldown_jobs = cooldown_jobs
        self._lock = threading.Lock()
        self.state = self.CLOSED
        self._consecutive_failures = 0
        self._bypassed = 0
        self._probe_out = False
        #: Monotonic transition counters (metrics).
        self.trips = 0
        self.probes = 0

    def allow_primary(self) -> bool:
        """Route the next job: True -> primary, False -> fallback."""
        with self._lock:
            if self.state == self.CLOSED:
                return True
            if self.state == self.OPEN:
                self._bypassed += 1
                if self._bypassed >= self.cooldown_jobs:
                    self.state = self.HALF_OPEN
                    self._probe_out = True
                    self.probes += 1
                    return True
                return False
            # half_open: one probe at a time.
            if not self._probe_out:
                self._probe_out = True
                self.probes += 1
                return True
            return False

    def record_success(self) -> None:
        """A primary run completed (closes a half-open circuit)."""
        with self._lock:
            self.state = self.CLOSED
            self._consecutive_failures = 0
            self._bypassed = 0
            self._probe_out = False

    def record_failure(self) -> None:
        """A primary run failed (may trip or re-open the circuit)."""
        with self._lock:
            if self.state == self.HALF_OPEN:
                self.state = self.OPEN
                self._bypassed = 0
                self._probe_out = False
                self.trips += 1
                return
            self._consecutive_failures += 1
            if self.state == self.CLOSED and self._consecutive_failures >= self.trip_after:
                self.state = self.OPEN
                self._bypassed = 0
                self.trips += 1


class FailoverExecutor:
    """Primary executor guarded by a circuit breaker, with graceful fallback.

    Wraps a primary (typically the process pool) and a fallback (the
    in-process thread executor): while the breaker is closed every job
    runs on the primary; ``trip_after`` consecutive primary failures open
    it and jobs degrade to the fallback until a half-open probe succeeds.
    Results are byte-identical on either path (the cross-executor storm
    test pins this), so failover changes capacity, never answers.

    ``stores_results`` is declared True: when the executor that actually
    ran does not persist results itself (the thread fallback), this
    wrapper performs the store put, keeping the pool's persistence
    contract independent of which side of the breaker served the job.
    """

    name = "failover"
    stores_results = True

    def __init__(
        self,
        primary,
        fallback=None,
        *,
        trip_after: int = 3,
        cooldown_jobs: int = 8,
    ) -> None:
        self.primary = primary
        self.fallback = fallback if fallback is not None else ThreadExecutor()
        self.breaker = CircuitBreaker(trip_after=trip_after, cooldown_jobs=cooldown_jobs)
        #: Jobs served by the fallback while the circuit was not closed.
        self.fallback_runs = 0
        #: Store puts absorbed as failures (result still served).
        self.store_put_errors = 0

    @property
    def processes(self) -> int:
        """The primary's pool size (metrics surface)."""
        return getattr(self.primary, "processes", 0)

    def run(
        self,
        ctx: ExperimentContext,
        job_id: str,
        item: Scenario | Workload,
        manager: ManagerSpec,
    ) -> RunResult:
        """Route one replay through the breaker and persist its result."""
        use_primary = self.breaker.allow_primary()
        executor = self.primary if use_primary else self.fallback
        try:
            result = executor.run(ctx, job_id, item, manager)
        except Exception:
            if use_primary:
                self.breaker.record_failure()
            raise
        if use_primary:
            self.breaker.record_success()
        else:
            self.fallback_runs += 1
        if not executor.stores_results and ctx.results_store is not None:
            try:
                ctx.results_store.put(job_id, result)
            except OSError:
                # The replay itself succeeded; a failed persist degrades
                # the cache, not the answer.
                self.store_put_errors += 1
        return result

    def recycle(self, ctx: ExperimentContext) -> None:
        """Recycle the primary's hung worker (fallback has none)."""
        recycle = getattr(self.primary, "recycle", None)
        if recycle is not None:
            recycle(ctx)

    def close(self) -> None:
        """Release both sides."""
        self.primary.close()
        self.fallback.close()


def make_executor(
    kind: str,
    *,
    processes: int = 2,
    start_method: str | None = None,
    failover: bool = True,
    trip_after: int = 3,
    cooldown_jobs: int = 8,
):
    """Build the executor named by ``kind`` (``thread`` or ``process``).

    ``process`` executors are wrapped in a :class:`FailoverExecutor` by
    default (``failover=False`` opts out): ``trip_after`` consecutive
    worker deaths trip the breaker and jobs degrade to the in-process
    thread path until a half-open probe succeeds.
    """
    if kind == "thread":
        return ThreadExecutor()
    if kind == "process":
        primary = ProcessPoolExecutor(processes=processes, start_method=start_method)
        if not failover:
            return primary
        return FailoverExecutor(
            primary, ThreadExecutor(), trip_after=trip_after, cooldown_jobs=cooldown_jobs
        )
    raise ValueError(f"unknown executor kind {kind!r}; known: {', '.join(EXECUTOR_KINDS)}")
