"""Thin stdlib HTTP surface over :class:`~repro.service.pool.ReplayService`.

Endpoints (all JSON unless noted):

* ``POST /jobs`` -- submit a replay request (the :mod:`repro.service.jobs`
  wire format, plus an optional ``"lane"`` of ``interactive`` or ``bulk``);
  returns ``{job_id, status, deduped, lane}``.  Identical requests return
  the same ``job_id``.  When the admission queue is full the submission is
  rejected with ``429`` and a ``Retry-After`` header estimating when
  capacity frees up.
* ``GET /jobs/<id>`` -- poll one job's status.
* ``GET /jobs/<id>/result`` -- the finished run's scored numbers and
  canonical ``result_hash`` (409 while queued/running, 410 when failed).
* ``GET /jobs/<id>/stream`` -- the run's interval samples as *server-sent
  events*, batched (``?batch=N``, default 256 samples per event; waits up
  to ``?timeout=S``, default 60, for the job to finish first).
* ``GET /healthz`` -- the health state machine
  (:meth:`~repro.service.pool.ReplayService.health`): ``healthy`` /
  ``degraded`` / ``draining``, with the circuit-breaker state, journal
  backlog and error counters, and retry/watchdog/quarantine totals that
  explain *why*.
* ``GET /metrics`` -- Prometheus-style text exposition of the service
  counters (queue depth, cache hit rate, jobs/sec, latency percentiles,
  plus the health/breaker signals as numeric gauge codes).

A client that disconnects mid-response (``BrokenPipeError`` /
``ConnectionResetError``, common for SSE consumers that stop early) is
*swallowed*: the handler thread ends quietly, the service counts the
disconnect (``client_disconnects``), and no traceback reaches stderr.
The ``api.sse_disconnect`` fault site (:mod:`repro.service.faults`)
injects exactly this failure per server-sent event.

Built on :class:`http.server.ThreadingHTTPServer` -- no third-party web
framework is required, so the service runs anywhere the library does.
"""

from __future__ import annotations

import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.service import faults
from repro.service.pool import Job, QueueFullError, ReplayService

__all__ = ["make_server", "ReplayHTTPServer"]

#: Exceptions that mean "the client went away", never "the service broke".
_DISCONNECTS = (BrokenPipeError, ConnectionResetError)

#: Default interval samples per server-sent batch.
DEFAULT_STREAM_BATCH = 256

#: Default seconds ``/stream`` waits for an unfinished job.
DEFAULT_STREAM_TIMEOUT_S = 60.0


class ReplayHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`ReplayService`."""

    daemon_threads = True

    def __init__(self, address, service: ReplayService) -> None:
        super().__init__(address, _Handler)
        self.service = service

    def handle_error(self, request, client_address) -> None:
        """Swallow client disconnects; defer everything else to stdlib.

        ``socketserver`` prints a full traceback for any handler
        exception; a client dropping mid-SSE is routine, not an error, so
        it is counted and silenced instead.
        """
        exc = sys.exc_info()[1]
        if isinstance(exc, _DISCONNECTS):
            self.service.note_client_disconnect()
            return
        super().handle_error(request, client_address)


def make_server(service: ReplayService, host: str = "127.0.0.1", port: int = 0) -> ReplayHTTPServer:
    """Bind a server for ``service`` (``port=0`` picks a free port)."""
    return ReplayHTTPServer((host, port), service)


def _result_payload(job: Job) -> dict:
    """The scored numbers of a finished run, JSON-shaped."""
    run = job.result
    return {
        "job_id": job.job_id,
        "result_hash": job.result_hash,
        "workload": run.workload,
        "manager": run.manager,
        "total_energy_nj": run.total_energy_nj,
        "max_time_ns": run.max_time_ns,
        "rma_invocations": run.rma_invocations,
        "rma_instructions": run.rma_instructions,
        "n_interval_samples": len(run.interval_samples),
        "cache_hit": job.cache_hit,
        "apps": [
            {
                "app": a.app,
                "core": a.core,
                "time_ns": a.time_ns,
                "energy_nj": a.energy_nj,
                "intervals": a.intervals,
                "slack": a.slack,
            }
            for a in run.apps
        ],
    }


def _metrics_text(metrics: dict) -> str:
    """Prometheus text exposition (gauge per counter, stable order)."""
    lines = []
    for key in sorted(metrics):
        name = f"repro_service_{key}"
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {metrics[key]}")
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the bound service; errors become JSON bodies."""

    server: ReplayHTTPServer
    protocol_version = "HTTP/1.1"

    # ---- plumbing -----------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr chatter (metrics cover observability)."""

    def _send_json(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _job_or_404(self, job_id: str) -> Job | None:
        job = self.server.service.get_job(job_id)
        if job is None:
            self._send_error_json(404, f"unknown job {job_id!r}")
        return job

    # ---- POST ---------------------------------------------------------------
    def do_POST(self) -> None:
        """``POST /jobs``: parse, validate, submit, report the job id."""
        if urlparse(self.path).path != "/jobs":
            self._send_error_json(404, f"no such endpoint: POST {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length)
            payload = json.loads(raw.decode() or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_error_json(400, f"malformed JSON body: {exc}")
            return
        try:
            job, deduped = self.server.service.submit_info(payload)
        except QueueFullError as exc:
            body = json.dumps(
                {
                    "error": str(exc),
                    "queue_depth": exc.depth,
                    "queue_capacity": exc.max_queue,
                    "retry_after_s": exc.retry_after_s,
                }
            ).encode()
            self.send_response(429)
            self.send_header("Content-Type", "application/json")
            self.send_header("Retry-After", str(max(1, int(exc.retry_after_s))))
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        except ValueError as exc:
            self._send_error_json(400, str(exc))
            return
        self._send_json(
            202 if not deduped else 200,
            {
                "job_id": job.job_id,
                "status": job.status,
                "deduped": deduped,
                "lane": job.lane,
                "submissions": job.submissions,
            },
        )

    # ---- GET ----------------------------------------------------------------
    def do_GET(self) -> None:
        """Route ``GET`` endpoints (status, result, stream, health, metrics)."""
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if url.path == "/healthz":
            self._send_json(200, self.server.service.health())
        elif url.path == "/metrics":
            body = _metrics_text(self.server.service.metrics()).encode()
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif len(parts) == 2 and parts[0] == "jobs":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._send_json(200, job.summary())
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            job = self._job_or_404(parts[1])
            if job is None:
                return
            if job.status == "failed":
                self._send_error_json(410, job.error or "job failed")
            elif job.status != "done":
                self._send_error_json(409, f"job is {job.status}; poll until done")
            else:
                self._send_json(200, _result_payload(job))
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "stream":
            job = self._job_or_404(parts[1])
            if job is not None:
                self._stream_samples(job, parse_qs(url.query))
        else:
            self._send_error_json(404, f"no such endpoint: GET {self.path}")

    # ---- SSE ----------------------------------------------------------------
    def _sse_event(self, event: str, payload: dict) -> None:
        """Emit one server-sent event (the per-event disconnect fault site).

        An injected or real disconnect raises a ``BrokenPipeError``
        subtype; it propagates to :meth:`ReplayHTTPServer.handle_error`,
        which counts and silences it.
        """
        if faults.fire(faults.SSE_DISCONNECT) is not None:
            raise faults.InjectedDisconnect("injected client disconnect mid-SSE")
        self.wfile.write(f"event: {event}\ndata: {json.dumps(payload)}\n\n".encode())

    def _stream_samples(self, job: Job, query: dict) -> None:
        """Stream a run's interval samples as server-sent batches.

        Waits (bounded) for an in-flight job, then emits ``batch`` events
        of up to ``?batch=N`` samples each and a final ``done`` event with
        the canonical result hash -- so a client can consume per-interval
        QoS data incrementally instead of one result blob.
        """
        try:
            batch = max(1, int(query.get("batch", [DEFAULT_STREAM_BATCH])[0]))
            timeout = float(query.get("timeout", [DEFAULT_STREAM_TIMEOUT_S])[0])
        except ValueError:
            self._send_error_json(400, "batch/timeout must be numeric")
            return
        if not job.wait(timeout):
            self._send_error_json(409, f"job still {job.status} after {timeout}s")
            return
        if job.status == "failed":
            self._send_error_json(410, job.error or "job failed")
            return
        samples = job.result.interval_samples
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        # SSE is an open-ended body: close delimits it (Connection: close
        # keeps HTTP/1.1 keep-alive from waiting on a length we never send).
        self.send_header("Connection", "close")
        self.end_headers()
        for start in range(0, len(samples), batch):
            chunk = samples[start : start + batch]
            self._sse_event(
                "batch",
                {
                    "offset": start,
                    "samples": [
                        {
                            "core": s.core,
                            "phase_key": s.phase_key,
                            "duration_ns": s.duration_ns,
                            "baseline_ns": s.baseline_ns,
                            "slack": s.slack,
                        }
                        for s in chunk
                    ],
                },
            )
        self._sse_event(
            "done",
            {
                "job_id": job.job_id,
                "result_hash": job.result_hash,
                "n_interval_samples": len(samples),
            },
        )
        self.close_connection = True
