"""Deterministic fault injection for the replay service.

A :class:`FaultPlan` decides, at each *injection site* the service passes
through, whether to induce a failure there.  The decision is a pure
function of ``(seed, site, invocation_count)`` -- no wall clock, no
``random`` global, no process state -- so a storm replayed under the same
plan takes byte-identical fault decisions, which is what lets
``tools/chaos_smoke.py`` assert that two runs with one seed produce
identical journal event sequences while still exercising every failure
path.

Injection sites (the constants below) live where production failures
would strike:

* ``executor.crash`` / ``executor.hang`` / ``executor.slow`` -- consulted
  by both executors in :mod:`repro.service.executor` before a replay
  dispatch: a crash raises :class:`InjectedWorkerCrash`, a hang sleeps
  past the pool watchdog, a slow-return adds bounded latency.
* ``store.load_corrupt`` / ``store.put_fail`` -- consulted by
  :class:`~repro.simulation.results_store.ResultsStore` through the
  module-level ``FAULT_HOOK`` seam (the simulation layer never imports the
  service layer; :func:`install` plugs the hook in): a corrupt load
  tampers the stored digest so the verify-and-quarantine path runs for
  real, a failed put raises ``OSError`` before any byte is written.
* ``journal.torn_write`` / ``journal.fsync`` -- consulted by
  :class:`~repro.service.journal.JobJournal.append`: a torn write leaves a
  half-record in the WAL (exactly what a crash mid-``write`` leaves), an
  fsync error fails the durability barrier.
* ``api.sse_disconnect`` -- consulted per server-sent event in
  :mod:`repro.service.api`: raises :class:`InjectedDisconnect` (a
  ``BrokenPipeError`` subclass), driving the same swallow path a real
  client disconnect takes.

Every rule carries a ``rate`` (fire probability per invocation) and a
``max_fires`` budget.  Budgets are what make chaos storms *provably*
settle: keep the total crash+hang budget at or below the service's
``max_retries`` and no job can exhaust its retry allowance no matter how
adversarially the seed lands (the property ``tests/test_service_chaos.py``
checks for arbitrary seeds).

Plans are installed process-globally (:func:`install` / :func:`clear` /
the :func:`installed` context manager) because injection points span
layers with no shared constructor; with no plan installed every site is a
single ``None``-check.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field

from repro.simulation import results_store as _results_store
from repro.util.rng import seed_for

__all__ = [
    "FaultRule",
    "FaultPlan",
    "InjectedFault",
    "InjectedWorkerCrash",
    "InjectedJournalError",
    "InjectedDisconnect",
    "SITES",
    "EXECUTOR_CRASH",
    "EXECUTOR_HANG",
    "EXECUTOR_SLOW",
    "STORE_LOAD_CORRUPT",
    "STORE_PUT_FAIL",
    "JOURNAL_TORN_WRITE",
    "JOURNAL_FSYNC",
    "SSE_DISCONNECT",
    "install",
    "clear",
    "installed",
    "active",
    "fire",
]

# ---- sites -------------------------------------------------------------------

EXECUTOR_CRASH = "executor.crash"
EXECUTOR_HANG = "executor.hang"
EXECUTOR_SLOW = "executor.slow"
#: ``results_store.py`` (simulation layer) names these two sites by string
#: literal rather than importing this module -- keep the spellings in sync.
STORE_LOAD_CORRUPT = "store.load_corrupt"
STORE_PUT_FAIL = "store.put_fail"
JOURNAL_TORN_WRITE = "journal.torn_write"
JOURNAL_FSYNC = "journal.fsync"
SSE_DISCONNECT = "api.sse_disconnect"

#: Every known injection site (plans reject unknown sites at build time).
SITES = (
    EXECUTOR_CRASH,
    EXECUTOR_HANG,
    EXECUTOR_SLOW,
    STORE_LOAD_CORRUPT,
    STORE_PUT_FAIL,
    JOURNAL_TORN_WRITE,
    JOURNAL_FSYNC,
    SSE_DISCONNECT,
)

# ---- injected failures -------------------------------------------------------


class InjectedFault(Exception):
    """Base class for failures raised by fault injection (never in prod)."""


class InjectedWorkerCrash(InjectedFault, RuntimeError):
    """A worker death induced at ``executor.crash``."""


class InjectedJournalError(InjectedFault, OSError):
    """A torn write or fsync failure induced in the job journal."""


class InjectedDisconnect(InjectedFault, BrokenPipeError):
    """A mid-SSE client disconnect; subclasses ``BrokenPipeError`` so the
    production swallow path handles it exactly like the real thing."""


# ---- plan --------------------------------------------------------------------

#: Scale of a 64-bit seed, used to map hashes onto [0, 1).
_U64 = float(2**64)


@dataclass(frozen=True)
class FaultRule:
    """One site's injection policy.

    ``rate`` is the per-invocation fire probability; ``max_fires`` bounds
    the total fires over the plan's lifetime (``None`` = unbounded --
    avoid for failure-inducing sites, see the module docstring on settle
    guarantees); ``param`` carries a site-specific knob (hang/slow
    duration in seconds).
    """

    site: str
    rate: float
    max_fires: int | None = None
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(f"unknown fault site {self.site!r}; known: {', '.join(SITES)}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("fault rate must be within [0, 1]")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError("max_fires must be non-negative")


@dataclass
class _SiteState:
    invocations: int = 0
    fires: int = 0


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s with per-site invocation counters.

    :meth:`fire` is thread-safe; the decision for invocation *n* of a site
    is ``seed_for(seed, site, n) / 2**64 < rate`` (subject to the fire
    budget), so it depends only on the seed and how many times that site
    has been consulted -- never on wall clock or interleaving with other
    sites.
    """

    def __init__(self, seed: int, rules: list[FaultRule] | tuple[FaultRule, ...] = ()) -> None:
        self.seed = seed
        self.rules: dict[str, FaultRule] = {}
        for rule in rules:
            if rule.site in self.rules:
                raise ValueError(f"duplicate rule for site {rule.site!r}")
            self.rules[rule.site] = rule
        self._lock = threading.Lock()
        self._state: dict[str, _SiteState] = {site: _SiteState() for site in self.rules}

    def fire(self, site: str) -> FaultRule | None:
        """Consult the plan at ``site``; the rule when a fault fires, else None."""
        rule = self.rules.get(site)
        if rule is None:
            return None
        with self._lock:
            state = self._state[site]
            count = state.invocations
            state.invocations += 1
            if rule.max_fires is not None and state.fires >= rule.max_fires:
                return None
            u = seed_for(self.seed, site, count) / _U64
            if u >= rule.rate:
                return None
            state.fires += 1
        return rule

    def report(self) -> dict[str, dict[str, int]]:
        """Per-site ``{invocations, fires}`` counters (snapshot)."""
        with self._lock:
            return {
                site: {"invocations": s.invocations, "fires": s.fires}
                for site, s in self._state.items()
            }

    def total_fires(self) -> int:
        """Faults fired so far across every site."""
        with self._lock:
            return sum(s.fires for s in self._state.values())

    #: Convenience used by tests to express "this plan cannot exhaust a
    #: retry budget": the summed budget of attempt-failing sites.
    def failure_budget(self) -> int | None:
        """Total crash+hang fire budget, or None if any is unbounded."""
        budget = 0
        for site in (EXECUTOR_CRASH, EXECUTOR_HANG):
            rule = self.rules.get(site)
            if rule is None:
                continue
            if rule.max_fires is None:
                return None
            budget += rule.max_fires
        return budget


# ---- process-global installation --------------------------------------------

_ACTIVE: FaultPlan | None = None
_INSTALL_LOCK = threading.Lock()


def install(plan: FaultPlan) -> None:
    """Make ``plan`` the process's active plan and plug the store seam."""
    global _ACTIVE
    with _INSTALL_LOCK:
        _ACTIVE = plan
        _results_store.FAULT_HOOK = plan.fire


def clear() -> None:
    """Remove any active plan (all sites become no-ops again)."""
    global _ACTIVE
    with _INSTALL_LOCK:
        _ACTIVE = None
        _results_store.FAULT_HOOK = None


def active() -> FaultPlan | None:
    """The currently installed plan, if any."""
    return _ACTIVE


@contextlib.contextmanager
def installed(plan: FaultPlan):
    """Context manager: install ``plan`` for the block, then clear it."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


def fire(site: str) -> FaultRule | None:
    """Consult the active plan at ``site`` (no-op without a plan)."""
    plan = _ACTIVE
    if plan is None:
        return None
    return plan.fire(site)
