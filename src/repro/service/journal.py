"""Durable job journal: an append-only JSONL write-ahead log.

The at-rest results store already makes *finished* runs survive a restart;
this module does the same for **queued and in-flight** jobs.  Every state
transition of a journalled job appends one JSON line to
``<journal_dir>/journal.jsonl``:

* ``submitted`` -- carries the full wire-form :class:`~repro.service.jobs.
  JobSpec` and the admission lane, so the job can be rebuilt from the
  journal alone;
* ``claimed`` -- a worker started executing the job (advisory: a claimed
  job is still recovered, because the claimant may have died mid-run);
  carries the 1-based attempt number;
* ``retrying`` -- an attempt failed and the job was requeued with backoff;
  carries the failed attempt count, so recovery resumes the retry budget
  where it left off instead of resetting it;
* ``stored`` -- the content-addressed results store persisted the run's
  bytes (appended through the store's ``on_put`` hook);
* ``published`` / ``failed`` -- the job settled; settled jobs are not
  recovered.

Appends are **fsync'd** before the submit path acknowledges a job, so a
SIGKILL at any instant loses at most work the client was never told was
accepted.  A torn final line (the crash happened mid-append) is tolerated
on replay: every complete record before it is recovered, the fragment is
dropped, and :attr:`JobJournal.torn_lines` counts the drop.

Write faults self-heal: a failed append (torn write or fsync error --
injectable via :mod:`repro.service.faults`) is retried once on a freshly
opened handle, with a leading newline isolating any half-written fragment
so replay drops it; a second failure is *absorbed* (counted in
:attr:`JobJournal.append_failures`, surfaced as ``degraded`` by the
service health endpoint) rather than failing the job -- availability
degrades to best-effort durability instead of refusing traffic.

On boot, :meth:`JobJournal.pending` folds the log into the set of
unsettled jobs (each carrying its latest attempt count) and
:meth:`JobJournal.compact` atomically rewrites the file to just those
records (tmp + fsync + ``os.replace``).  The service also auto-compacts a
long-running journal: :meth:`maybe_compact` triggers once settled records
since the last compaction exceed ``compact_factor`` times the pending
backlog (with a floor), so the WAL stays proportional to the live queue
instead of growing with service lifetime.  The journal assumes a single
writing service per directory -- run one ``tools/serve.py`` per journal
dir.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import threading
from dataclasses import dataclass

from repro.service.faults import InjectedJournalError
from repro.service.faults import fire as _fire

__all__ = ["JobJournal", "JournalRecord", "JOURNAL_EVENTS", "JOURNAL_FORMAT_VERSION"]

#: Bump when the record schema changes incompatibly; older journals are
#: then ignored (their jobs are re-submitted by clients, never corrupted).
JOURNAL_FORMAT_VERSION = 1

#: The journalled job-state transitions, in lifecycle order.
JOURNAL_EVENTS = ("submitted", "claimed", "retrying", "stored", "published", "failed")

#: Events that settle a job (it will not be recovered afterwards).
_SETTLED = frozenset({"published", "failed"})


@dataclass(frozen=True)
class JournalRecord:
    """One journalled transition; ``spec``/``lane`` are set on ``submitted``,
    ``attempt`` on ``claimed``/``retrying`` (and on compacted ``submitted``
    records, preserving the retry budget across recovery)."""

    event: str
    job_id: str
    lane: str | None = None
    spec: dict | None = None
    result_hash: str | None = None
    error: str | None = None
    attempt: int | None = None

    def to_json(self) -> dict:
        """The JSONL wire form (versioned, ``None`` fields omitted)."""
        payload = {"v": JOURNAL_FORMAT_VERSION, "event": self.event, "job_id": self.job_id}
        for field in ("lane", "spec", "result_hash", "error", "attempt"):
            value = getattr(self, field)
            if value is not None:
                payload[field] = value
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "JournalRecord":
        """Parse one decoded line; raises ``ValueError`` on schema drift."""
        if not isinstance(payload, dict):
            raise ValueError("journal record must be a JSON object")
        if payload.get("v") != JOURNAL_FORMAT_VERSION:
            raise ValueError(f"unsupported journal format version {payload.get('v')!r}")
        event = payload.get("event")
        if event not in JOURNAL_EVENTS:
            raise ValueError(f"unknown journal event {event!r}")
        job_id = payload.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise ValueError("journal record needs a job_id")
        return cls(
            event=event,
            job_id=job_id,
            lane=payload.get("lane"),
            spec=payload.get("spec"),
            result_hash=payload.get("result_hash"),
            error=payload.get("error"),
            attempt=payload.get("attempt"),
        )


class JobJournal:
    """Append-only, fsync'd JSONL write-ahead log of job transitions.

    Thread-safe: the service's submit path and every worker thread append
    through one lock, and each record is written as a single ``write()``
    call followed by ``flush`` + ``fsync`` -- a crash can tear at most the
    final line, never interleave two records.
    """

    FILENAME = "journal.jsonl"

    def __init__(
        self,
        root: str,
        *,
        compact_factor: int = 4,
        compact_min_settled: int = 64,
    ) -> None:
        if compact_factor < 1:
            raise ValueError("compact_factor must be at least 1")
        self.root = root
        self.path = os.path.join(root, self.FILENAME)
        self.compact_factor = compact_factor
        self.compact_min_settled = compact_min_settled
        self._lock = threading.Lock()
        self._fh = None
        #: Records appended by this process (monotonic, for metrics).
        self.appends = 0
        #: Malformed lines dropped by the last :meth:`records` call.
        self.torn_lines = 0
        #: Write faults healed by the reopen-and-rewrite retry.
        self.write_errors = 0
        #: Appends abandoned after the retry also failed (degraded mode).
        self.append_failures = 0
        #: Settled (published/failed) records since the last compaction --
        #: the auto-compaction trigger input.
        self.settled_since_compact = 0
        #: Compactions performed by this process (explicit + automatic).
        self.compactions = 0

    # ---- writing ------------------------------------------------------------
    def _ensure_open(self):
        if self._fh is None:
            os.makedirs(self.root, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def _write_line(self, line: str) -> None:
        """One write+flush+fsync barrier, with injectable write faults."""
        fh = self._ensure_open()
        if _fire("journal.torn_write"):
            # Leave exactly what a crash mid-write leaves: a prefix of the
            # record with no terminating newline.
            fh.write(line[: max(1, len(line) // 2)])
            fh.flush()
            raise InjectedJournalError("injected torn journal write")
        fh.write(line)
        fh.flush()
        if _fire("journal.fsync"):
            raise InjectedJournalError("injected journal fsync failure")
        os.fsync(fh.fileno())

    def append(
        self,
        event: str,
        job_id: str,
        *,
        lane: str | None = None,
        spec: dict | None = None,
        result_hash: str | None = None,
        error: str | None = None,
        attempt: int | None = None,
    ) -> JournalRecord:
        """Durably append one transition (fsync'd before returning).

        A failed write self-heals: the handle is reopened and the record
        rewritten once, prefixed with a newline so any half-written
        fragment is isolated on its own (malformed, hence dropped) line.
        A second failure is absorbed into :attr:`append_failures` -- the
        service keeps running with degraded durability rather than failing
        the job, and reports it via ``/healthz``.
        """
        record = JournalRecord(
            event=event,
            job_id=job_id,
            lane=lane,
            spec=spec,
            result_hash=result_hash,
            error=error,
            attempt=attempt,
        )
        line = json.dumps(record.to_json(), sort_keys=True) + "\n"
        with self._lock:
            try:
                self._write_line(line)
            except OSError:
                self.write_errors += 1
                try:
                    if self._fh is not None:
                        self._fh.close()
                        self._fh = None
                    self._write_line("\n" + line)
                except OSError:
                    self.append_failures += 1
                    return record
            self.appends += 1
            if record.event in _SETTLED:
                self.settled_since_compact += 1
        return record

    def close(self) -> None:
        """Close the append handle (reopened automatically on next append)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # ---- replay -------------------------------------------------------------
    def records(self) -> list[JournalRecord]:
        """Every well-formed record, in append order.

        Tolerates a torn final line (crash mid-append) and any malformed
        line generally: such lines are dropped and counted in
        :attr:`torn_lines` rather than poisoning recovery.
        """
        self.torn_lines = 0
        out: list[JournalRecord] = []
        try:
            with open(self.path, encoding="utf-8") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return out
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                out.append(JournalRecord.from_json(json.loads(line)))
            except ValueError:
                self.torn_lines += 1
        return out

    def pending(self) -> dict[str, JournalRecord]:
        """The unsettled jobs: submitted (or re-submitted) but never
        published/failed, folded in append order.

        Returns ``{job_id: submitted-record}`` -- each value carries the
        wire-form spec, lane, and the latest journalled attempt count (so
        recovery resumes the retry budget instead of resetting it).  A
        ``claimed`` transition does *not* settle a job (its claimant may
        have died mid-run), which is exactly what makes in-flight jobs
        recoverable.
        """
        live: dict[str, JournalRecord] = {}
        for record in self.records():
            if record.event == "submitted" and record.spec is not None:
                live[record.job_id] = record
            elif record.event == "retrying" and record.attempt is not None:
                held = live.get(record.job_id)
                if held is not None and (held.attempt or 0) < record.attempt:
                    live[record.job_id] = dataclasses.replace(held, attempt=record.attempt)
            elif record.event in _SETTLED:
                live.pop(record.job_id, None)
        return live

    def compact(self, pending: dict[str, JournalRecord] | None = None) -> int:
        """Atomically rewrite the journal down to its pending records.

        Writes the surviving ``submitted`` records to a temp file in the
        journal directory, fsyncs it, and ``os.replace``s it over the
        journal -- a crash at any instant leaves either the old or the new
        journal, never a truncated one.  Returns the surviving record
        count.
        """
        if pending is None:
            pending = self.pending()
        with self._lock:
            self.settled_since_compact = 0
            self.compactions += 1
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            os.makedirs(self.root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(prefix="journal.", suffix=".tmp", dir=self.root)
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    for record in pending.values():
                        fh.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        return len(pending)

    def maybe_compact(self, pending_hint: int = 0) -> bool:
        """Auto-compact once settled records dominate the live backlog.

        ``pending_hint`` is the caller's cheap estimate of unsettled jobs
        (the service passes its queue depth).  Compaction triggers when
        settled records since the last compaction exceed
        ``max(compact_min_settled, compact_factor * max(1, pending_hint))``
        -- i.e. the journal is mostly dead weight -- and is skipped
        otherwise, so the hot append path never pays a full-file rewrite.
        Returns True when a compaction ran.
        """
        threshold = max(self.compact_min_settled, self.compact_factor * max(1, pending_hint))
        if self.settled_since_compact < threshold:
            return False
        self.compact()
        return True
