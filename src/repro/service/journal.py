"""Durable job journal: an append-only JSONL write-ahead log.

The at-rest results store already makes *finished* runs survive a restart;
this module does the same for **queued and in-flight** jobs.  Every state
transition of a journalled job appends one JSON line to
``<journal_dir>/journal.jsonl``:

* ``submitted`` -- carries the full wire-form :class:`~repro.service.jobs.
  JobSpec` and the admission lane, so the job can be rebuilt from the
  journal alone;
* ``claimed`` -- a worker started executing the job (advisory: a claimed
  job is still recovered, because the claimant may have died mid-run);
* ``stored`` -- the content-addressed results store persisted the run's
  bytes (appended through the store's ``on_put`` hook);
* ``published`` / ``failed`` -- the job settled; settled jobs are not
  recovered.

Appends are **fsync'd** before the submit path acknowledges a job, so a
SIGKILL at any instant loses at most work the client was never told was
accepted.  A torn final line (the crash happened mid-append) is tolerated
on replay: every complete record before it is recovered, the fragment is
dropped, and :attr:`JobJournal.torn_lines` counts the drop.

On boot, :meth:`JobJournal.pending` folds the log into the set of
unsettled jobs and :meth:`JobJournal.compact` atomically rewrites the file
to just those records (tmp + fsync + ``os.replace``), so the journal stays
proportional to the live queue instead of growing with service lifetime.
The journal assumes a single writing service per directory -- run one
``tools/serve.py`` per journal dir.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass

__all__ = ["JobJournal", "JournalRecord", "JOURNAL_EVENTS", "JOURNAL_FORMAT_VERSION"]

#: Bump when the record schema changes incompatibly; older journals are
#: then ignored (their jobs are re-submitted by clients, never corrupted).
JOURNAL_FORMAT_VERSION = 1

#: The journalled job-state transitions, in lifecycle order.
JOURNAL_EVENTS = ("submitted", "claimed", "stored", "published", "failed")

#: Events that settle a job (it will not be recovered afterwards).
_SETTLED = frozenset({"published", "failed"})


@dataclass(frozen=True)
class JournalRecord:
    """One journalled transition; ``spec``/``lane`` are set on ``submitted``."""

    event: str
    job_id: str
    lane: str | None = None
    spec: dict | None = None
    result_hash: str | None = None
    error: str | None = None

    def to_json(self) -> dict:
        """The JSONL wire form (versioned, ``None`` fields omitted)."""
        payload = {"v": JOURNAL_FORMAT_VERSION, "event": self.event, "job_id": self.job_id}
        for field in ("lane", "spec", "result_hash", "error"):
            value = getattr(self, field)
            if value is not None:
                payload[field] = value
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "JournalRecord":
        """Parse one decoded line; raises ``ValueError`` on schema drift."""
        if not isinstance(payload, dict):
            raise ValueError("journal record must be a JSON object")
        if payload.get("v") != JOURNAL_FORMAT_VERSION:
            raise ValueError(f"unsupported journal format version {payload.get('v')!r}")
        event = payload.get("event")
        if event not in JOURNAL_EVENTS:
            raise ValueError(f"unknown journal event {event!r}")
        job_id = payload.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise ValueError("journal record needs a job_id")
        return cls(
            event=event,
            job_id=job_id,
            lane=payload.get("lane"),
            spec=payload.get("spec"),
            result_hash=payload.get("result_hash"),
            error=payload.get("error"),
        )


class JobJournal:
    """Append-only, fsync'd JSONL write-ahead log of job transitions.

    Thread-safe: the service's submit path and every worker thread append
    through one lock, and each record is written as a single ``write()``
    call followed by ``flush`` + ``fsync`` -- a crash can tear at most the
    final line, never interleave two records.
    """

    FILENAME = "journal.jsonl"

    def __init__(self, root: str) -> None:
        self.root = root
        self.path = os.path.join(root, self.FILENAME)
        self._lock = threading.Lock()
        self._fh = None
        #: Records appended by this process (monotonic, for metrics).
        self.appends = 0
        #: Malformed lines dropped by the last :meth:`records` call.
        self.torn_lines = 0

    # ---- writing ------------------------------------------------------------
    def _ensure_open(self):
        if self._fh is None:
            os.makedirs(self.root, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def append(
        self,
        event: str,
        job_id: str,
        *,
        lane: str | None = None,
        spec: dict | None = None,
        result_hash: str | None = None,
        error: str | None = None,
    ) -> JournalRecord:
        """Durably append one transition (fsync'd before returning)."""
        record = JournalRecord(
            event=event,
            job_id=job_id,
            lane=lane,
            spec=spec,
            result_hash=result_hash,
            error=error,
        )
        line = json.dumps(record.to_json(), sort_keys=True) + "\n"
        with self._lock:
            fh = self._ensure_open()
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
            self.appends += 1
        return record

    def close(self) -> None:
        """Close the append handle (reopened automatically on next append)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    # ---- replay -------------------------------------------------------------
    def records(self) -> list[JournalRecord]:
        """Every well-formed record, in append order.

        Tolerates a torn final line (crash mid-append) and any malformed
        line generally: such lines are dropped and counted in
        :attr:`torn_lines` rather than poisoning recovery.
        """
        self.torn_lines = 0
        out: list[JournalRecord] = []
        try:
            with open(self.path, encoding="utf-8") as fh:
                raw = fh.read()
        except FileNotFoundError:
            return out
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                out.append(JournalRecord.from_json(json.loads(line)))
            except ValueError:
                self.torn_lines += 1
        return out

    def pending(self) -> dict[str, JournalRecord]:
        """The unsettled jobs: submitted (or re-submitted) but never
        published/failed, folded in append order.

        Returns ``{job_id: submitted-record}`` -- each value carries the
        wire-form spec and lane needed to re-submit the job.  A ``claimed``
        transition does *not* settle a job (its claimant may have died
        mid-run), which is exactly what makes in-flight jobs recoverable.
        """
        live: dict[str, JournalRecord] = {}
        for record in self.records():
            if record.event == "submitted" and record.spec is not None:
                live[record.job_id] = record
            elif record.event in _SETTLED:
                live.pop(record.job_id, None)
        return live

    def compact(self, pending: dict[str, JournalRecord] | None = None) -> int:
        """Atomically rewrite the journal down to its pending records.

        Writes the surviving ``submitted`` records to a temp file in the
        journal directory, fsyncs it, and ``os.replace``s it over the
        journal -- a crash at any instant leaves either the old or the new
        journal, never a truncated one.  Returns the surviving record
        count.
        """
        if pending is None:
            pending = self.pending()
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            os.makedirs(self.root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(prefix="journal.", suffix=".tmp", dir=self.root)
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    for record in pending.values():
                        fh.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        return len(pending)
