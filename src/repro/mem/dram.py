"""DRAM timing: fixed service latency plus bandwidth-driven queueing.

The thesis assumes the memory controller "equally partitions the available
bandwidth among the cores", so each core owns a private share and its
effective latency depends only on its *own* utilisation of that share:

``L_eff = L * (1 + q * U^2)``, ``U = min(demanded_bw / share, U_CAP)``.

The quadratic term is a standard M/D/1-flavoured congestion approximation;
the cap keeps the fixed-point iteration in the timing model stable.
"""

from __future__ import annotations

import numpy as np

from repro.config import MemoryConfig

__all__ = ["demanded_bandwidth_gbps", "effective_latency_ns", "U_CAP"]

#: Utilisation cap: past this point a real controller would throttle requests.
U_CAP = 0.97


def demanded_bandwidth_gbps(mpi: np.ndarray, tpi_ns: np.ndarray, line_bytes: int) -> np.ndarray:
    """Bandwidth demanded by a core: bytes per instruction over time per instruction.

    ``mpi`` (misses/instruction) and ``tpi_ns`` broadcast; bytes/ns == GB/s.
    """
    return mpi * line_bytes / np.maximum(tpi_ns, 1e-9)


def effective_latency_ns(
    mem: MemoryConfig,
    per_core_share_gbps: float,
    mpi: np.ndarray,
    tpi_ns: np.ndarray,
    line_bytes: int,
) -> np.ndarray:
    """Effective per-miss latency given the core's own bandwidth pressure."""
    bw = demanded_bandwidth_gbps(mpi, tpi_ns, line_bytes)
    u = np.minimum(bw / per_core_share_gbps, U_CAP)
    return mem.latency_ns * (1.0 + mem.queue_coeff * u * u)
