"""Memory-level parallelism from miss streams: the leading-miss model.

The execution time impact of a cache miss depends on whether it overlaps
earlier outstanding misses.  Following the leading-loads literature the paper
builds on (Su et al., USENIX ATC'14; Miftakhutdinov et al., MICRO'12), only
the *leading* miss of each overlap group contributes a full memory latency;
misses that issue while a group is outstanding are hidden.

A miss can join the current group only if

* it falls inside the leader's instruction window (ROB of the core size),
* a miss register (MSHR) is free, and
* it does not *depend* on a miss already in the group (same dependence
  chain) -- a dependent load cannot issue before its parent returns.

``MLP = misses / groups`` is then the overlap factor the timing model divides
the miss latency by.  Paper II's parallelism-sensitivity arises here: the
effective window/MSHR resources interpolate between the baseline core and the
actual core size with weight ``mlp_sensitivity``.
"""

from __future__ import annotations

import numpy as np

from repro.config import CoreSize, SystemConfig
from repro.util.validation import require

__all__ = ["leading_miss_groups", "mlp_of_misses", "mlp_grid", "effective_window"]

#: Cap on misses examined per (c, w) point; beyond this the estimate has
#: converged and extra work is wasted (the hardware, likewise, samples).
MAX_MISSES_SAMPLED = 6000


def leading_miss_groups(
    instr_pos: np.ndarray,
    chain_ids: np.ndarray,
    window: float,
    mshrs: int,
) -> int:
    """Number of leading-miss groups in a miss stream (greedy grouping)."""
    require(mshrs >= 1, "mshrs must be >= 1")
    n = len(instr_pos)
    if n == 0:
        return 0
    pos = instr_pos.tolist()
    chains = chain_ids.tolist()
    groups = 0
    i = 0
    while i < n:
        groups += 1
        window_end = pos[i] + window
        group_chains = {chains[i]}
        count = 1
        j = i + 1
        while j < n and pos[j] < window_end and count < mshrs:
            if chains[j] in group_chains:
                break  # dependent miss: must wait for its parent to return
            group_chains.add(chains[j])
            count += 1
            j += 1
        i = j
    return groups


def mlp_of_misses(instr_pos: np.ndarray, chain_ids: np.ndarray, window: float, mshrs: int) -> float:
    """Average MLP of a miss stream; 1.0 for an empty stream."""
    n = len(instr_pos)
    if n == 0:
        return 1.0
    if n > MAX_MISSES_SAMPLED:
        instr_pos = instr_pos[:MAX_MISSES_SAMPLED]
        chain_ids = chain_ids[:MAX_MISSES_SAMPLED]
        n = MAX_MISSES_SAMPLED
    groups = leading_miss_groups(instr_pos, chain_ids, window, mshrs)
    return float(n) / float(max(groups, 1))


def effective_window(core: CoreSize, baseline: CoreSize, mlp_sensitivity: float) -> tuple[float, int]:
    """(window, mshrs) a phase actually exploits on ``core``.

    A parallelism-insensitive phase (sensitivity 0) saturates the baseline
    core's resources -- its realised MLP does not change with core size; a
    fully sensitive phase (1) tracks the core's ROB/MSHRs linearly.
    """
    s = mlp_sensitivity
    window = (1.0 - s) * baseline.rob + s * core.rob
    mshrs = max(1, round((1.0 - s) * baseline.mshrs + s * core.mshrs))
    return float(window), int(mshrs)


def mlp_grid(
    system: SystemConfig,
    dists: np.ndarray,
    instr_pos: np.ndarray,
    chain_ids: np.ndarray,
    mlp_sensitivity: float,
) -> np.ndarray:
    """Ground-truth ``MLP[c, w]`` for one phase trace.

    ``dists`` are the per-access stack distances (:mod:`repro.cache.atd`);
    the miss stream at allocation ``w`` is the subsequence with distance
    ``> w``, evaluated under each core size's effective window/MSHRs.
    """
    ways = system.llc.ways
    baseline = system.core_sizes[system.baseline_core_index]
    out = np.ones((system.ncore_sizes, ways), dtype=float)
    for w in range(1, ways + 1):
        mask = dists > w
        pos_w = instr_pos[mask]
        chains_w = chain_ids[mask]
        for ci, core in enumerate(system.core_sizes):
            window, mshrs = effective_window(core, baseline, mlp_sensitivity)
            out[ci, w - 1] = mlp_of_misses(pos_w, chains_w, window, mshrs)
    return out
