"""Memory substrate: DRAM latency/bandwidth model and miss-overlap (MLP)."""

from repro.mem.dram import effective_latency_ns, demanded_bandwidth_gbps
from repro.mem.mlp import leading_miss_groups, mlp_of_misses, mlp_grid

__all__ = [
    "effective_latency_ns",
    "demanded_bandwidth_gbps",
    "leading_miss_groups",
    "mlp_of_misses",
    "mlp_grid",
]
