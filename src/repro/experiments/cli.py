"""Command-line entry point: regenerate paper artefacts.

Usage::

    repro-experiments list
    repro-experiments run E1 E3 ...       # or: run all
    repro-experiments run S1 S2 S3 S4     # dynamic-scenario experiments
    repro-experiments run all --markdown EXPERIMENTS.md

Fidelity knobs via environment: ``REPRO_MAX_SLICES`` (truncate traces),
``REPRO_ACCESSES_PER_SET`` (trace density), ``REPRO_PROCESSES`` (workers).

Finished runs are served from the persistent results store under
``.sim_cache/results/``; pass ``--no-result-cache`` (or set
``REPRO_NO_RESULT_CACHE=1``) to force re-simulation.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, get_experiment

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-experiments", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run_p = sub.add_parser("run", help="run experiments and print their tables")
    run_p.add_argument("ids", nargs="+", help="experiment ids (e.g. E1 E9) or 'all'")
    run_p.add_argument("--markdown", metavar="PATH", default=None,
                       help="append markdown blocks to PATH")
    run_p.add_argument("--no-result-cache", action="store_true",
                       help="bypass the persistent run-results store and "
                            "re-simulate every run (the store itself is "
                            "left untouched)")
    args = parser.parse_args(argv)

    if args.command == "list":
        for entry in EXPERIMENTS.values():
            print(f"{entry.experiment_id:4s} paper {entry.paper:8s} {entry.artefact}")
        return 0

    if args.no_result_cache:
        from repro.experiments.runner import set_result_cache

        set_result_cache(False)

    ids = list(EXPERIMENTS) if [i.lower() for i in args.ids] == ["all"] else args.ids
    blocks = []
    for eid in ids:
        entry = get_experiment(eid)
        t0 = time.perf_counter()
        result = entry.run()
        dt = time.perf_counter() - t0
        print(result.render())
        print(f"[{eid} completed in {dt:.1f}s]")
        print()
        blocks.append(result.markdown())
    if args.markdown:
        with open(args.markdown, "a", encoding="utf-8") as fh:
            fh.write("\n".join(blocks))
        print(f"appended {len(blocks)} experiment blocks to {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
