"""Paper II experiment drivers: E9 .. E16.

Covers the trade-off/scenario analysis, the per-scenario energy savings of
RM1/RM2/RM3, the Model 1/2/3 accuracy comparison, and the RM3 overhead
scaling across core counts.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import ExperimentResult
from repro.experiments.runner import (
    RM1,
    RM2,
    RM3,
    ExperimentContext,
    get_context,
    rm3_with_model,
)
from repro.simulation.metrics import interval_violation_stats
from repro.util.stats import weighted_mean
from repro.workloads.mixes import paper2_workloads, scenario_of_mix

__all__ = [
    "e9_scenario_analysis",
    "e10_scenario1",
    "e11_scenario2",
    "e12_scenario3",
    "e13_scenario4",
    "e14_model_accuracy",
    "e15_savings_by_model",
    "e16_overhead_scaling",
]

#: RM3 counts as "substantially better" than RM2 above this margin
#: (percentage points of system energy).
SUBSTANTIAL_PP = 1.5


_MATRIX_CACHE: dict[int, tuple] = {}


def _scenario_matrix(ctx: ExperimentContext):
    """The (workloads x {RM1, RM2, RM3}) matrix, memoised per context.

    E9 and the four scenario experiments (E10..E13) all read the same runs;
    computing them once mirrors the paper's single evaluation campaign.
    """
    key = id(ctx)
    if key not in _MATRIX_CACHE:
        workloads = paper2_workloads(ctx.system.ncores)
        matrix = ctx.run_matrix(workloads, [RM1, RM2, RM3])
        _MATRIX_CACHE[key] = (workloads, matrix)
    return _MATRIX_CACHE[key]


def e9_scenario_analysis(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Paper II table: the 16 type mixes, their scenarios, and RM1/RM2/RM3."""
    ctx = ctx or get_context(4)
    workloads, matrix = _scenario_matrix(ctx)
    rows = []
    substantial = 0
    for wl in workloads:
        s1 = matrix[(wl.name, RM1.name)].savings_pct
        s2 = matrix[(wl.name, RM2.name)].savings_pct
        s3 = matrix[(wl.name, RM3.name)].savings_pct
        scen = scenario_of_mix(tuple(wl.tag))
        better = s3 - s2 > SUBSTANTIAL_PP
        substantial += int(better)
        rows.append([wl.tag, scen, s1, s2, s3, better])
    return ExperimentResult(
        experiment_id="E9",
        title="Trade-off analysis: 16 application-type mixes, 4 scenarios",
        headers=["mix", "scenario", "rm1 %", "rm2 %", "rm3 %", "rm3 substantially better"],
        rows=rows,
        summary={"mixes where RM3 substantially better": float(substantial)},
        paper={"mixes where RM3 substantially better": 12},
        notes="Scenario rule: 1 = CS & PS present, 2 = CS only, 3 = PS only, 4 = neither.",
    )


def _scenario_result(
    ctx: ExperimentContext, scenario: int, experiment_id: str,
    paper: dict, title: str,
) -> ExperimentResult:
    workloads, matrix = _scenario_matrix(ctx)
    rows = []
    rm2_vals, rm3_vals = [], []
    for wl in workloads:
        if scenario_of_mix(tuple(wl.tag)) != scenario:
            continue
        s2 = matrix[(wl.name, RM2.name)].savings_pct
        s3 = matrix[(wl.name, RM3.name)].savings_pct
        rows.append([wl.tag, s2, s3])
        rm2_vals.append(s2)
        rm3_vals.append(s3)
    rows.append(["mean", float(np.mean(rm2_vals)), float(np.mean(rm3_vals))])
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=["mix", "rm2 %", "rm3 %"],
        rows=rows,
        summary={
            "rm3 avg %": float(np.mean(rm3_vals)),
            "rm3 max %": float(np.max(rm3_vals)),
            "rm2 avg %": float(np.mean(rm2_vals)),
        },
        paper=paper,
    )


def e10_scenario1(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Scenario 1: RM3 considerably improves on RM2."""
    return _scenario_result(
        ctx or get_context(4), 1, "E10",
        paper={"rm3 avg %": 14.0, "rm3 max %": 17.6, "rm2 avg %": "up to 60% smaller"},
        title="Scenario 1 (cache-sensitive + parallelism-sensitive apps)",
    )


def e11_scenario2(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Scenario 2: RM2 and RM3 comparable."""
    return _scenario_result(
        ctx or get_context(4), 2, "E11",
        paper={"rm3 avg %": 5.0, "rm3 max %": 10.0, "rm2 avg %": "similar to RM3"},
        title="Scenario 2 (cache-sensitive, no parallelism-sensitive apps)",
    )


def e12_scenario3(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Scenario 3: only RM3 is effective."""
    return _scenario_result(
        ctx or get_context(4), 3, "E12",
        paper={"rm3 avg %": 8.5, "rm3 max %": 11.0, "rm2 avg %": "not effective"},
        title="Scenario 3 (no cache sensitivity, parallelism-sensitive apps)",
    )


def e13_scenario4(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Scenario 4: neither RM2 nor RM3 is effective."""
    return _scenario_result(
        ctx or get_context(4), 4, "E13",
        paper={"rm3 avg %": "~0", "rm3 max %": "~0", "rm2 avg %": "~0"},
        title="Scenario 4 (neither cache- nor parallelism-sensitive apps)",
    )


def e14_model_accuracy(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Paper II table: interval-level QoS violation statistics per model."""
    ctx = ctx or get_context(4)
    workloads = paper2_workloads(4)
    specs = [rm3_with_model(m) for m in ("model1", "model2", "model3")]
    rows = []
    stats_by_model = {}
    for spec in specs:
        samples = []
        for run in ctx.run_many(workloads, spec):
            samples.extend(run.interval_samples)
        stats = interval_violation_stats(samples)
        stats_by_model[spec.mlp_model] = stats
        rows.append(
            [spec.mlp_model, stats["n"], stats["probability"],
             stats["expected_value"], stats["std"]]
        )
    p3 = stats_by_model["model3"]["probability"]
    p2 = stats_by_model["model2"]["probability"]
    p1 = stats_by_model["model1"]["probability"]
    return ExperimentResult(
        experiment_id="E14",
        title="Per-interval QoS violation statistics by memory-stall model (RM3)",
        headers=["model", "intervals", "P(violation) %", "E[violation] %", "std %"],
        rows=rows,
        summary={
            "model3 P %": p3,
            "P reduction vs model2 %": (1 - p3 / p2) * 100 if p2 else 0.0,
            "P reduction vs model1 %": (1 - p3 / p1) * 100 if p1 else 0.0,
            "E[v] reduction vs model2 %": (
                (1 - stats_by_model["model3"]["expected_value"]
                 / stats_by_model["model2"]["expected_value"]) * 100
                if stats_by_model["model2"]["expected_value"] else 0.0
            ),
        },
        paper={
            "model3 P %": 3.0,
            "P reduction vs model2 %": 32.0,
            "P reduction vs model1 %": 46.0,
            "E[v] reduction vs model2 %": 49.0,
        },
    )


def e15_savings_by_model(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Paper II figure: weighted average energy savings per model."""
    ctx = ctx or get_context(4)
    workloads = paper2_workloads(4)
    # weight scenarios by their mix counts (as the paper's weighted average)
    rows = []
    summary = {}
    for model in ("model1", "model2", "model3"):
        spec = rm3_with_model(model)
        matrix = ctx.run_matrix(workloads, [spec])
        vals = [matrix[(wl.name, spec.name)].savings_pct for wl in workloads]
        avg = float(weighted_mean(vals, np.ones(len(vals))))
        rows.append([model, avg, float(np.max(vals))])
        summary[f"{model} avg %"] = avg
    return ExperimentResult(
        experiment_id="E15",
        title="Energy savings by memory-stall model (RM3, all 16 mixes)",
        headers=["model", "avg savings %", "max savings %"],
        rows=rows,
        summary=summary,
        paper={"model1 avg %": 5.0, "model2 avg %": 7.0, "model3 avg %": 10.0},
    )


def e16_overhead_scaling(
    ctx2: ExperimentContext | None = None,
    ctx4: ExperimentContext | None = None,
    ctx8: ExperimentContext | None = None,
) -> ExperimentResult:
    """Paper II table: RM3 overhead for 2-, 4- and 8-core systems."""
    rows = []
    summary = {}
    contexts = {2: ctx2, 4: ctx4, 8: ctx8}
    for ncores in (2, 4, 8):
        ctx = contexts[ncores] or get_context(ncores)
        wls = paper2_workloads(ncores)[:3]
        per_inv = []
        for wl in wls:
            run = ctx.run(wl, RM3)
            per_inv.append(run.rma_instructions / max(run.rma_invocations, 1))
        mean_inv = float(np.mean(per_inv))
        frac = mean_inv / ctx.system.interval_instructions * 100.0
        rows.append([f"{ncores}-core", mean_inv, f"{frac:.4f}%"])
        summary[f"{ncores}-core instr"] = mean_inv
    return ExperimentResult(
        experiment_id="E16",
        title="RM3 overhead scaling with core count",
        headers=["system", "instructions / invocation", "fraction of interval"],
        rows=rows,
        summary=summary,
        paper={"2-core instr": 18_000, "4-core instr": 40_000, "8-core instr": 67_000},
        notes="Shape target: near-linear growth, well under 0.1% of an interval.",
    )
