"""Dynamic-scenario experiment drivers: S1 .. S7.

The papers evaluate static workloads; these experiments drive the scenario
engine (:mod:`repro.scenarios`) end-to-end under the same managers,
answering the question the journal extension (arXiv:1911.05101) and the
S-NUCA scheduling follow-up (arXiv:2505.23351) pose: does coordinated
DVFS + partitioning (+ core resizing) still pay off when tenancy, load and
QoS targets vary over time?

* **S1** -- open-system Poisson arrivals preempting cores;
* **S2** -- QoS-target schedules ramping slack down (hardening SLOs) and up;
* **S3** -- application churn with idle (power-gated) gaps between tenants;
* **S4** -- a burst load: one tenant, a full-system burst, a drain;
* **S5** -- many-core cluster churn: whole clusters drain and refill
  (hierarchical vs flat coordinated management);
* **S6** -- many-core skewed load: a hot strictly-QoS'd minority amid a
  relaxed majority (inter-cluster way redistribution);
* **S7** -- the scaling experiment: flat vs clustered RM2 across system
  sizes (energy gap, modelled RMA overhead, replay wall-clock).

Scoring: every run executes the same fixed interval horizon (the same
instruction count), so energy savings are measured against the
static-baseline manager's run of the *same scenario*; QoS is scored per
interval (:func:`repro.simulation.metrics.interval_violation_stats`), which
stays well-defined under tenancy churn where whole-run app slowdowns are
not.  Events fire at wall-clock times on each run's own timeline, so -- as
in a real open system -- a slower manager absorbs slightly more of the
arrival stream before finishing the same work; QoS slack bounds that
divergence.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import ExperimentResult
from repro.experiments.runner import (
    BASELINE,
    RM2,
    RM3,
    ExperimentContext,
    ManagerSpec,
    get_context,
    rm2_clustered,
)
from repro.scenarios import (
    Scenario,
    burst_load,
    churn,
    cluster_churn,
    poisson_arrivals,
    qos_ramp,
    skewed_load,
)
from repro.simulation.metrics import (
    energy_savings_pct,
    interval_violation_stats,
)

__all__ = [
    "s1_poisson_arrivals",
    "s2_qos_ramp",
    "s3_churn",
    "s4_burst_load",
    "s5_cluster_churn",
    "s6_skewed_load",
    "s7_scaling",
]

#: System size of the many-core scenario experiments (S5/S6): large enough
#: for several clusters, small enough for the benchmark harness;
#: ``tools/bench_scaling.py`` carries the same shapes to 64 cores.
MANYCORE_NCORES = 16

#: Cluster size of the hierarchical manager in S5/S6: four clusters at 16
#: cores, chosen so the per-cluster way caps *bind* (at the production
#: default of 8 a 16-core system's caps equal the full associativity and
#: the hierarchy degenerates to the flat tree -- correct, but not an
#: interesting experiment).
MANYCORE_CLUSTER = 4

#: The production-default cluster size, used by the S7 scaling sweep.
DEFAULT_CLUSTER = 8

#: Interval horizon per core: every scenario simulates ``ncores *
#: HORIZON_PER_CORE`` intervals of work so systems of different sizes run
#: comparably long wall-clock spans.
HORIZON_PER_CORE = 16


def _horizon(ctx: ExperimentContext) -> int:
    return HORIZON_PER_CORE * ctx.system.ncores


def _scenario_table(
    ctx: ExperimentContext,
    scenarios: list[Scenario],
    experiment_id: str,
    title: str,
    notes: str,
    specs: tuple[ManagerSpec, ...] = (RM2, RM3),
) -> ExperimentResult:
    """Run scenarios under baseline + specs; tabulate savings and violations."""
    runs = ctx.run_scenarios(scenarios, [BASELINE, *specs])
    rows = []
    savings: dict[str, list[float]] = {spec.name: [] for spec in specs}
    probs: dict[str, list[float]] = {spec.name: [] for spec in specs}
    for sc in scenarios:
        base = runs[(sc.name, BASELINE.name)]
        counts = sc.counts()
        row: list = [
            sc.name,
            f"{counts['swap']}/{counts['depart']}/{counts['slack']}",
        ]
        for spec in specs:
            run = runs[(sc.name, spec.name)]
            pct = energy_savings_pct(base, run)
            stats = interval_violation_stats(run.interval_samples)
            savings[spec.name].append(pct)
            probs[spec.name].append(stats["probability"])
            row += [pct, stats["probability"]]
        rows.append(row)
    headers = ["scenario", "events (swap/depart/slack)"]
    for spec in specs:
        headers += [f"{spec.name} savings %", f"{spec.name} P(viol) %"]
    summary = {}
    for spec in specs:
        summary[f"{spec.name} avg savings %"] = float(np.mean(savings[spec.name]))
        summary[f"{spec.name} avg P(viol) %"] = float(np.mean(probs[spec.name]))
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=headers,
        rows=rows,
        summary=summary,
        notes=notes,
    )


def s1_poisson_arrivals(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """S1: open-system Poisson arrivals preempt cores mid-run."""
    ctx = ctx or get_context(4)
    ncores, apps = ctx.system.ncores, ctx.db.benchmarks()
    horizon = _horizon(ctx)
    scenarios = [
        poisson_arrivals(
            f"s1-rate{rate:g}-seed{seed}", ncores, apps,
            rate_per_interval=rate, horizon_intervals=horizon, seed=seed,
        )
        for rate in (0.15, 0.35)
        for seed in (0, 1)
    ]
    return _scenario_table(
        ctx, scenarios, "S1",
        "Open-system Poisson arrivals (time-varying tenancy)",
        "Extension beyond the papers' static mixes: arrivals preempt the "
        "least-recently-retenanted core; incoming tenants pay a cold-cache "
        "warm-up, run at most one interval on the inherited allocation, and "
        "are then pinned at the baseline share until their first interval "
        "statistics arrive (the paper's no-statistics protocol).",
    )


def s2_qos_ramp(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """S2: per-app QoS-target schedules tighten / relax over time."""
    ctx = ctx or get_context(4)
    ncores, apps = ctx.system.ncores, ctx.db.benchmarks()
    horizon = _horizon(ctx)
    scenarios = [
        qos_ramp(
            f"s2-{label}-seed{seed}", ncores, apps,
            start_slack=start, end_slack=end,
            steps=4, horizon_intervals=horizon, seed=seed,
        )
        for label, start, end in (("tighten", 0.4, 0.0), ("relax", 0.0, 0.4))
        for seed in (0, 1)
    ]
    return _scenario_table(
        ctx, scenarios, "S2",
        "QoS-target schedules (slack ramps down / up mid-run)",
        "Slack moves linearly in 4 steps; savings track the time-average "
        "slack, mirroring the static relaxation sweep (E5) dynamically.",
    )


def s3_churn(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """S3: application churn -- tenants depart, cores idle, replacements arrive."""
    ctx = ctx or get_context(4)
    ncores, apps = ctx.system.ncores, ctx.db.benchmarks()
    horizon = _horizon(ctx)
    scenarios = [
        churn(
            f"s3-seed{seed}", ncores, apps,
            cycles=2 * ncores, idle_intervals=1.5,
            horizon_intervals=horizon, seed=seed,
        )
        for seed in (0, 1, 2)
    ]
    return _scenario_table(
        ctx, scenarios, "S3",
        "Application churn (departures leave power-gated idle cores)",
        "Managers must discard departed tenants' curves and re-derive them: "
        "idle cores release LLC ways to the active tenants.",
    )


def s4_burst_load(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """S4: a load burst fills every core, then drains back to one tenant."""
    ctx = ctx or get_context(4)
    ncores, apps = ctx.system.ncores, ctx.db.benchmarks()
    horizon = _horizon(ctx)
    scenarios = [
        burst_load(
            f"s4-burst{int(length)}-seed{seed}", ncores, apps,
            burst_start_intervals=3.0, burst_length_intervals=length,
            horizon_intervals=horizon, seed=seed,
        )
        for length in (8.0, 20.0)
        for seed in (0, 1)
    ]
    return _scenario_table(
        ctx, scenarios, "S4",
        "Burst load (ramp to full occupancy, then drain)",
        "The canonical diurnal-peak shape: co-location pressure rises and "
        "falls, exercising partition hand-back on departures.  Burst "
        "arrivals land on the minimal partition idle cores retain, so their "
        "first interval shows as a violation tail until re-provisioned.",
    )


def s5_cluster_churn(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """S5: whole clusters drain and refill on a many-core system."""
    ctx = ctx or get_context(MANYCORE_NCORES)
    ncores, apps = ctx.system.ncores, ctx.db.benchmarks()
    horizon = _horizon(ctx)
    scenarios = [
        cluster_churn(
            f"s5-seed{seed}", ncores, apps,
            cluster_size=MANYCORE_CLUSTER, cycles=max(4, ncores // 4),
            idle_intervals=1.5, horizon_intervals=horizon, seed=seed,
        )
        for seed in (0, 1)
    ]
    return _scenario_table(
        ctx, scenarios, "S5",
        f"Many-core cluster churn ({ncores} cores, whole clusters drain/refill)",
        "Group scheduling at many-core scale: entire clusters empty out "
        "(power-gated) and later refill with fresh tenants.  The "
        "hierarchical manager must collapse a departing cluster's aggregate "
        "curve to idle leaves and rebuild it on refill while keeping every "
        "other cluster's subtree cached; its savings should track the flat "
        "manager's closely (the bounded-gap contract).",
        specs=(RM2, rm2_clustered(MANYCORE_CLUSTER)),
    )


def s6_skewed_load(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """S6: a hot strictly-QoS'd minority amid a slack-rich majority."""
    ctx = ctx or get_context(MANYCORE_NCORES)
    ncores, apps = ctx.system.ncores, ctx.db.benchmarks()
    horizon = _horizon(ctx)
    scenarios = [
        skewed_load(
            f"s6-seed{seed}", ncores, apps,
            hot_fraction=0.25, swaps_per_hot_core=3,
            hot_slack=0.0, cold_slack=0.3,
            horizon_intervals=horizon, seed=seed,
        )
        for seed in (0, 1)
    ]
    return _scenario_table(
        ctx, scenarios, "S6",
        f"Many-core skewed load ({ncores} cores, hot minority / relaxed majority)",
        "A few latency-critical tenants churn under strict QoS while the "
        "majority runs with generous slack: cold clusters' energy curves "
        "are nearly flat in ways, so the second-level combine must hand "
        "their LLC capacity to the hot clusters -- the inter-cluster "
        "redistribution the hierarchy exists for.",
        specs=(RM2, rm2_clustered(MANYCORE_CLUSTER)),
    )


def s7_scaling(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """S7: flat vs clustered RM2 across system sizes (the scaling curve).

    For each system size the same cluster-churn scenario replays under the
    static baseline, flat incremental RM2 and clustered RM2.  The table
    reports each manager's energy savings, the clustered-vs-flat energy gap
    (the price of the cluster way caps), the *modelled* RMA overhead per
    invocation (deterministic, machine-independent) and the replay
    wall-clock (indicative, machine-specific).  ``ctx`` is ignored -- the
    driver builds one context per system size; 64-256-core points live in
    ``tools/bench_scaling.py`` where they are tracked by the bench gate.
    """
    del ctx  # one context per size; the shared fixture cannot provide that
    rows = []
    flat_spec, clus_spec = RM2, rm2_clustered(DEFAULT_CLUSTER)
    for ncores in (8, 16, 32):
        size_ctx = get_context(ncores)
        apps = size_ctx.db.benchmarks()
        horizon = _horizon(size_ctx)
        sc = cluster_churn(
            f"s7-n{ncores}", ncores, apps,
            cluster_size=DEFAULT_CLUSTER, cycles=max(4, ncores // 4),
            idle_intervals=1.5, horizon_intervals=horizon, seed=0,
        )
        runs = size_ctx.run_scenarios([sc], [BASELINE, flat_spec, clus_spec])
        base = runs[(sc.name, BASELINE.name)]
        flat = runs[(sc.name, flat_spec.name)]
        clus = runs[(sc.name, clus_spec.name)]
        gap = (
            100.0 * (clus.total_energy_nj - flat.total_energy_nj)
            / flat.total_energy_nj
        )
        rows.append([
            ncores,
            energy_savings_pct(base, flat),
            energy_savings_pct(base, clus),
            gap,
            flat.rma_instructions / max(1, flat.rma_invocations),
            clus.rma_instructions / max(1, clus.rma_invocations),
            flat.sim_wall_s,
            clus.sim_wall_s,
        ])
    gaps = [abs(r[3]) for r in rows]
    return ExperimentResult(
        experiment_id="S7",
        title="Scaling: flat vs clustered RM2 (cluster churn, growing N)",
        headers=[
            "ncores",
            "flat savings %", "clustered savings %", "energy gap %",
            "flat RMA instr/invocation", "clustered RMA instr/invocation",
            "flat wall s", "clustered wall s",
        ],
        rows=rows,
        summary={
            "max |energy gap| %": float(np.max(gaps)),
            "clustered overhead ratio at max N":
                float(rows[-1][5] / rows[-1][4]),
        },
        notes=(
            "The flat manager's modelled per-invocation overhead grows "
            "superlinearly with N (the top min-plus combines widen with the "
            "full associativity); the clustered manager's grows with the "
            "cluster size plus a second-level term.  Wall-clock columns are "
            "machine-specific and indicative only; the committed scaling "
            "trajectory lives in BENCH_scaling.json via "
            "tools/bench_scaling.py."
        ),
    )
