"""Ablation experiments for the design choices DESIGN.md calls out.

* A1 -- DVFS-only control under strict QoS (the paper: "cannot save energy
  without degrading the performance").
* A2 -- the value of coordination: the coordinated RM2 versus independent
  controllers (miss-minimising UCP partitioning + a separate per-core DVFS
  governor), the strawman the paper argues against.
* A3 -- ATD set-sampling sensitivity: how the number of sampled sets affects
  savings and QoS violations.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.experiments.report import ExperimentResult
from repro.experiments.runner import (
    DVFS_ONLY,
    RM2,
    ExperimentContext,
    ManagerSpec,
    get_context,
)
from repro.simulation.database import build_database
from repro.workloads.mixes import Workload, paper1_workloads

__all__ = [
    "a1_dvfs_only",
    "a2_coordination_value",
    "a3_atd_sampling",
    "a4_phase_history",
    "a5_colocation",
]

INDEPENDENT = ManagerSpec(kind="independent", name="independent-ucp-dvfs")


def a1_dvfs_only(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """A1: DVFS-only saves ~nothing under strict per-app QoS constraints."""
    ctx = ctx or get_context(4)
    workloads = paper1_workloads(4)
    matrix = ctx.run_matrix(workloads, [DVFS_ONLY, RM2])
    rows = []
    dvfs_vals, rm2_vals = [], []
    for wl in workloads:
        d = matrix[(wl.name, DVFS_ONLY.name)].savings_pct
        c = matrix[(wl.name, RM2.name)].savings_pct
        rows.append([wl.name, wl.tag, d, c])
        dvfs_vals.append(d)
        rm2_vals.append(c)
    rows.append(["mean", "", float(np.mean(dvfs_vals)), float(np.mean(rm2_vals))])
    return ExperimentResult(
        experiment_id="A1",
        title="DVFS-only control under strict QoS (ablation)",
        headers=["workload", "pattern", "dvfs-only %", "rm2-combined %"],
        rows=rows,
        summary={
            "dvfs-only avg %": float(np.mean(dvfs_vals)),
            "rm2 avg %": float(np.mean(rm2_vals)),
        },
        paper={"dvfs-only avg %": "~0 (cannot save without degrading QoS)"},
        notes="With the QoS target anchored at the baseline VF, any frequency cut degrades predicted performance.",
    )


def a2_coordination_value(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """A2: coordinated RM2 vs independent UCP + DVFS controllers."""
    ctx = ctx or get_context(4)
    workloads = [wl for wl in paper1_workloads(4) if "MICS" in wl.tag][:8]
    matrix = ctx.run_matrix(workloads, [INDEPENDENT, RM2])
    rows = []
    ind_viol, rm2_viol = 0, 0
    ind_vals, rm2_vals = [], []
    for wl in workloads:
        ind = matrix[(wl.name, INDEPENDENT.name)]
        rm2 = matrix[(wl.name, RM2.name)]
        rows.append(
            [wl.name, ind.savings_pct, ind.n_violations, rm2.savings_pct, rm2.n_violations]
        )
        ind_vals.append(ind.savings_pct)
        rm2_vals.append(rm2.savings_pct)
        ind_viol += ind.n_violations
        rm2_viol += rm2.n_violations
    return ExperimentResult(
        experiment_id="A2",
        title="Coordination vs independent controllers (UCP + DVFS)",
        headers=["workload", "indep %", "indep violations", "rm2 %", "rm2 violations"],
        rows=rows,
        summary={
            "independent avg %": float(np.mean(ind_vals)),
            "independent violations": float(ind_viol),
            "rm2 avg %": float(np.mean(rm2_vals)),
            "rm2 violations": float(rm2_viol),
        },
        paper={
            "independent violations": "many (UCP ignores per-app QoS)",
            "rm2 violations": "few",
        },
        notes="UCP strips cache-sensitive apps of ways to minimise total misses; no frequency can buy the performance back.",
    )


def a3_atd_sampling(
    sampled_sets: tuple[int, ...] = (4, 16, 64),
) -> ExperimentResult:
    """A3: sensitivity of RM2 to the number of ATD-sampled sets."""
    parent = get_context(4)
    base_system = parent.system
    workloads = paper1_workloads(4)[:6]
    rows = []
    summary = {}
    for sample in sampled_sets:
        system = replace(base_system, llc=replace(base_system.llc, atd_sampled_sets=sample))
        db = build_database(
            system,
            names=sorted({a for wl in workloads for a in wl.apps}),
            accesses_per_set=400,
        )
        # Full traces (max_slices=None), as this ablation has always run;
        # each sampled-sets variant hashes to distinct run keys (different
        # system and database digests), so the parent store is shared.
        sub_ctx = ExperimentContext(system=system, db=db, max_slices=None,
                                    results_store=parent.results_store)
        vals, nviol = [], 0
        for wl in workloads:
            cmp = sub_ctx.compare(wl, RM2)
            vals.append(cmp.savings_pct)
            nviol += cmp.n_violations
        rows.append([sample, float(np.mean(vals)), nviol])
        summary[f"{sample} sets avg %"] = float(np.mean(vals))
    return ExperimentResult(
        experiment_id="A3",
        title="ATD set-sampling sensitivity (RM2)",
        headers=["sampled sets", "avg savings %", "violations"],
        rows=rows,
        summary=summary,
        paper={"trend": "sampling noise costs little until very few sets are sampled"},
    )

HISTORY_RM2 = ManagerSpec(kind="history", name="rm2-history")


def a4_phase_history(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """A4: the thesis's future-work #1 -- phase history + Markov prediction.

    Compares the stock RM2 (assume next interval = last interval) against the
    history-aware variant on the Paper I suite: savings and end-to-end QoS
    violations.  The history attacks the phase-lag error, the realistic
    models' dominant error source.
    """
    ctx = ctx or get_context(4)
    workloads = paper1_workloads(4)
    matrix = ctx.run_matrix(workloads, [RM2, HISTORY_RM2])
    rows = []
    stock_vals, hist_vals = [], []
    stock_viol, hist_viol = [], []
    for wl in workloads:
        s = matrix[(wl.name, RM2.name)]
        h = matrix[(wl.name, HISTORY_RM2.name)]
        rows.append([wl.name, s.savings_pct, s.n_violations, h.savings_pct, h.n_violations])
        stock_vals.append(s.savings_pct)
        hist_vals.append(h.savings_pct)
        stock_viol.append(s.n_violations)
        hist_viol.append(h.n_violations)
    rows.append([
        "total/mean",
        float(np.mean(stock_vals)), int(np.sum(stock_viol)),
        float(np.mean(hist_vals)), int(np.sum(hist_viol)),
    ])
    return ExperimentResult(
        experiment_id="A4",
        title="Phase history + next-phase prediction (future-work extension)",
        headers=["workload", "rm2 %", "rm2 violations", "history %", "history violations"],
        rows=rows,
        summary={
            "rm2 avg %": float(np.mean(stock_vals)),
            "history avg %": float(np.mean(hist_vals)),
            "rm2 violations": float(np.sum(stock_viol)),
            "history violations": float(np.sum(hist_viol)),
        },
        paper={"status": "future work in the thesis; no reference numbers"},
        notes="History smooths sampled-ATD noise on revisits and predicts segment transitions.",
    )


def a5_colocation(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """A5: the thesis's future-work #2 -- scheduler co-location guidance.

    Takes a pool of eight characterised applications, forms 4-core machines
    three ways -- advisor-guided, adversarial (receivers together, donors
    together), and interleaved -- and measures the total RM2 savings the RMA
    can then extract.  The advisor should dominate because it surrounds
    cache-hungry apps with cheap donors.
    """
    from repro.core.colocation import suggest_colocation

    ctx = ctx or get_context(4)
    pool = [
        "mcf_like", "soplex_like",              # receivers (cache-sensitive)
        "libquantum_like", "lbm_like",          # flat streaming donors
        "povray_like", "namd_like",             # compute donors
        "omnetpp_like", "milc_like",            # one more of each flavour
    ]
    guided = suggest_colocation(ctx.system, ctx.db, pool)
    adversarial = [
        ("mcf_like", "soplex_like", "omnetpp_like", "milc_like"),
        ("libquantum_like", "lbm_like", "povray_like", "namd_like"),
    ]
    interleaved = [tuple(pool[i::2]) for i in range(2)]

    rows = []
    summary = {}
    for label, groups in (
        ("advisor", guided), ("adversarial", adversarial), ("interleaved", interleaved)
    ):
        total_base = 0.0
        total_run = 0.0
        for gi, apps in enumerate(groups):
            wl = Workload(name=f"a5-{label}-{gi}", apps=tuple(apps))
            base = ctx.baseline_run(wl)
            run = ctx.run(wl, RM2)
            total_base += base.total_energy_nj
            total_run += run.total_energy_nj
        savings = (1.0 - total_run / total_base) * 100.0
        rows.append([label, " | ".join(",".join(g) for g in groups), savings])
        summary[f"{label} %"] = savings
    return ExperimentResult(
        experiment_id="A5",
        title="Scheduler co-location guidance (future-work extension)",
        headers=["grouping", "machines", "pool-wide savings %"],
        rows=rows,
        summary=summary,
        paper={"status": "future work in the thesis; no reference numbers"},
        notes="Savings of the same RMA over the same app pool depend strongly on grouping.",
    )

