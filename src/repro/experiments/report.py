"""Experiment result container and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.tables import render_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """One regenerated paper artefact.

    ``headers``/``rows`` are the table (or figure series) itself;
    ``summary`` holds headline scalars; ``paper`` holds the values the paper
    reports for the same quantities, so EXPERIMENTS.md can juxtapose them.
    """

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    summary: dict[str, float] = field(default_factory=dict)
    paper: dict[str, float | str] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        out = [render_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}")]
        if self.summary:
            out.append("")
            out.append("measured: " + ", ".join(f"{k}={_fmt(v)}" for k, v in self.summary.items()))
        if self.paper:
            out.append("paper:    " + ", ".join(f"{k}={_fmt(v)}" for k, v in self.paper.items()))
        if self.notes:
            out.append(f"note: {self.notes}")
        return "\n".join(out)

    def markdown(self) -> str:
        """GitHub-flavoured markdown block for EXPERIMENTS.md."""
        lines = [f"### {self.experiment_id} — {self.title}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
        if self.summary or self.paper:
            lines.append("")
            lines.append("| quantity | paper | measured |")
            lines.append("|---|---|---|")
            keys = list(self.summary) if self.summary else list(self.paper)
            for k in keys:
                p = _fmt(self.paper.get(k, "—"))
                m = _fmt(self.summary.get(k, "—"))
                lines.append(f"| {k} | {p} | {m} |")
        if self.notes:
            lines.append("")
            lines.append(f"*{self.notes}*")
        lines.append("")
        return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.2f}"
    return str(v)
