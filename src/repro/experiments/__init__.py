"""Experiment drivers: one per table/figure of the papers' evaluations.

``EXPERIMENTS`` maps experiment ids (E1..E16 plus ablations) to drivers; each
driver returns an :class:`~repro.experiments.report.ExperimentResult` whose
rows correspond to the rows/series of the paper artefact and whose summary
records the paper-reported reference values next to the measured ones.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import ExperimentContext, get_context

__all__ = [
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "ExperimentResult",
    "ExperimentContext",
    "get_context",
]
