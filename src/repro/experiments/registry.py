"""Experiment registry: id -> driver, with paper references.

``EXPERIMENTS`` is the per-experiment index DESIGN.md documents: every table
and figure of the two papers plus the ablations, each mapped to the driver
that regenerates it and the benchmark module that wraps it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments import ablations, paper1, paper2, scenarios
from repro.experiments.report import ExperimentResult

__all__ = ["ExperimentEntry", "EXPERIMENTS", "get_experiment", "list_experiments"]


@dataclass(frozen=True)
class ExperimentEntry:
    experiment_id: str
    paper: str            # "I", "II" or "ablation"
    artefact: str         # which table/figure this regenerates
    driver: Callable[..., ExperimentResult]
    bench_module: str     # the pytest-benchmark wrapper

    def run(self, **kwargs) -> ExperimentResult:
        return self.driver(**kwargs)


EXPERIMENTS: dict[str, ExperimentEntry] = {
    e.experiment_id: e
    for e in [
        ExperimentEntry("E1", "I", "fig: energy savings, 4-core",
                        paper1.e1_savings_4core, "benchmarks/bench_e1_savings_4core.py"),
        ExperimentEntry("E2", "I", "fig: energy savings, 8-core",
                        paper1.e2_savings_8core, "benchmarks/bench_e2_savings_8core.py"),
        ExperimentEntry("E3", "I", "table: QoS violations",
                        paper1.e3_qos_violations, "benchmarks/bench_e3_qos_violations.py"),
        ExperimentEntry("E4", "I", "fig: perfect vs realistic models",
                        paper1.e4_perfect_models, "benchmarks/bench_e4_perfect_models.py"),
        ExperimentEntry("E5", "I", "fig: QoS relaxation sweep",
                        paper1.e5_relaxation_sweep, "benchmarks/bench_e5_relaxation.py"),
        ExperimentEntry("E6", "I", "fig: partial relaxation",
                        paper1.e6_partial_relaxation, "benchmarks/bench_e6_partial_relaxation.py"),
        ExperimentEntry("E7", "I", "fig: baseline-VF sensitivity",
                        paper1.e7_baseline_vf_sensitivity, "benchmarks/bench_e7_baseline_vf.py"),
        ExperimentEntry("E8", "I", "table: RMA overhead",
                        paper1.e8_rma_overhead, "benchmarks/bench_e8_overhead.py"),
        ExperimentEntry("E9", "II", "table: trade-off analysis (16 mixes)",
                        paper2.e9_scenario_analysis, "benchmarks/bench_e9_scenarios.py"),
        ExperimentEntry("E10", "II", "fig: scenario 1 savings",
                        paper2.e10_scenario1, "benchmarks/bench_e10_scenario1.py"),
        ExperimentEntry("E11", "II", "fig: scenario 2 savings",
                        paper2.e11_scenario2, "benchmarks/bench_e11_scenario2.py"),
        ExperimentEntry("E12", "II", "fig: scenario 3 savings",
                        paper2.e12_scenario3, "benchmarks/bench_e12_scenario3.py"),
        ExperimentEntry("E13", "II", "fig: scenario 4 savings",
                        paper2.e13_scenario4, "benchmarks/bench_e13_scenario4.py"),
        ExperimentEntry("E14", "II", "table: model accuracy",
                        paper2.e14_model_accuracy, "benchmarks/bench_e14_model_accuracy.py"),
        ExperimentEntry("E15", "II", "fig: savings by model",
                        paper2.e15_savings_by_model, "benchmarks/bench_e15_savings_by_model.py"),
        ExperimentEntry("E16", "II", "table: overhead scaling",
                        paper2.e16_overhead_scaling, "benchmarks/bench_e16_overhead_scaling.py"),
        ExperimentEntry("A1", "ablation", "DVFS-only under strict QoS",
                        ablations.a1_dvfs_only, "benchmarks/bench_a1_dvfs_only.py"),
        ExperimentEntry("A2", "ablation", "coordination vs independent control",
                        ablations.a2_coordination_value, "benchmarks/bench_a2_coordination.py"),
        ExperimentEntry("A3", "ablation", "ATD set-sampling sensitivity",
                        ablations.a3_atd_sampling, "benchmarks/bench_a3_atd_sampling.py"),
        ExperimentEntry("A4", "extension", "phase history + next-phase prediction",
                        ablations.a4_phase_history, "benchmarks/bench_a4_phase_history.py"),
        ExperimentEntry("A5", "extension", "scheduler co-location guidance",
                        ablations.a5_colocation, "benchmarks/bench_a5_colocation.py"),
        ExperimentEntry("S1", "scenario", "dynamic: Poisson arrival process",
                        scenarios.s1_poisson_arrivals, "benchmarks/bench_s1_poisson_arrivals.py"),
        ExperimentEntry("S2", "scenario", "dynamic: QoS-target ramps",
                        scenarios.s2_qos_ramp, "benchmarks/bench_s2_qos_ramp.py"),
        ExperimentEntry("S3", "scenario", "dynamic: application churn",
                        scenarios.s3_churn, "benchmarks/bench_s3_churn.py"),
        ExperimentEntry("S4", "scenario", "dynamic: burst load ramp/drain",
                        scenarios.s4_burst_load, "benchmarks/bench_s4_burst_load.py"),
        ExperimentEntry("S5", "scenario", "many-core: whole-cluster churn",
                        scenarios.s5_cluster_churn, "benchmarks/bench_s5_cluster_churn.py"),
        ExperimentEntry("S6", "scenario", "many-core: skewed hot/cold load",
                        scenarios.s6_skewed_load, "benchmarks/bench_s6_skewed_load.py"),
        ExperimentEntry("S7", "scenario", "scaling: flat vs clustered manager",
                        scenarios.s7_scaling, "benchmarks/bench_s7_scaling.py"),
    ]
}


def get_experiment(experiment_id: str) -> ExperimentEntry:
    try:
        return EXPERIMENTS[experiment_id.upper()]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENTS)}"
        ) from exc


def list_experiments() -> list[str]:
    return list(EXPERIMENTS)
