"""Shared experiment machinery: databases, baselines and batched runs.

An :class:`ExperimentContext` owns the simulation database for a system size
and memoises baseline runs (the paper's framework reuses one database for all
experiments).  ``run_matrix`` fans (workload x manager) runs out over worker
processes; results are deterministic regardless of the process count.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.config import SystemConfig, default_system
from repro.core.managers import (
    CoordinatedManager,
    StaticBaselineManager,
)
from repro.scenarios.events import Scenario
from repro.simulation.database import SimulationDatabase, build_database
from repro.simulation.metrics import RunResult, WorkloadComparison, compare_runs
from repro.simulation.rma_sim import simulate_scenario, simulate_workload
from repro.util.parallel import parallel_map
from repro.workloads.mixes import Workload

__all__ = ["ExperimentContext", "get_context", "ManagerSpec", "DEFAULT_CACHE_DIR"]

# Normalised so the on-disk cache is one stable location regardless of the
# process's working directory or how the package path was assembled.
DEFAULT_CACHE_DIR = os.path.normpath(
    os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..", "..", ".sim_cache")
    )
)

#: Experiment fidelity knobs; EXPERIMENTS.md records the values used.
ACCESSES_PER_SET = int(os.environ.get("REPRO_ACCESSES_PER_SET", "600"))
MAX_SLICES_ENV = os.environ.get("REPRO_MAX_SLICES", "")
MAX_SLICES: int | None = int(MAX_SLICES_ENV) if MAX_SLICES_ENV else None


@dataclass(frozen=True)
class ManagerSpec:
    """Picklable description of a manager (factories are reconstructed in
    worker processes)."""

    kind: str                 # "baseline" | "coordinated" | "independent"
    name: str = ""
    control_dvfs: bool = True
    control_core_size: bool = False
    control_partitioning: bool = True
    mlp_model: str = "model2"
    oracle: bool = False

    def build(self):
        if self.kind == "baseline":
            return StaticBaselineManager()
        if self.kind == "independent":
            from repro.core.managers import IndependentManager

            return IndependentManager(mlp_model=self.mlp_model)
        if self.kind == "history":
            from repro.core.history import HistoryAwareManager

            return HistoryAwareManager(
                name=self.name or "rm2-history",
                control_core_size=self.control_core_size,
                mlp_model=self.mlp_model,
            )
        return CoordinatedManager(
            name=self.name,
            control_dvfs=self.control_dvfs,
            control_core_size=self.control_core_size,
            control_partitioning=self.control_partitioning,
            mlp_model=self.mlp_model,
            oracle=self.oracle,
        )


BASELINE = ManagerSpec(kind="baseline", name="baseline")
RM1 = ManagerSpec(kind="coordinated", name="rm1-partitioning", control_dvfs=False)
RM2 = ManagerSpec(kind="coordinated", name="rm2-combined")
RM3 = ManagerSpec(
    kind="coordinated", name="rm3-core-adaptive", control_core_size=True, mlp_model="model3"
)
DVFS_ONLY = ManagerSpec(kind="coordinated", name="dvfs-only", control_partitioning=False)


def rm2_oracle() -> ManagerSpec:
    return ManagerSpec(kind="coordinated", name="rm2-oracle", oracle=True)


def rm3_with_model(model: str) -> ManagerSpec:
    return ManagerSpec(
        kind="coordinated",
        name=f"rm3-{model}",
        control_core_size=True,
        mlp_model=model,
    )


# Worker-process context (inherited over fork; rebuilt lazily under spawn).
_WORKER: dict = {}


def _run_one(task: tuple) -> RunResult:
    workload, spec, max_slices = task
    ctx: ExperimentContext = _WORKER["ctx"]
    return simulate_workload(
        ctx.system, ctx.db, workload, spec.build(), max_slices=max_slices
    )


def _run_one_scenario(task: tuple) -> RunResult:
    scenario, spec, max_slices = task
    ctx: ExperimentContext = _WORKER["ctx"]
    return simulate_scenario(
        ctx.system, ctx.db, scenario, spec.build(), max_slices=max_slices
    )


@dataclass
class ExperimentContext:
    """Database + memoised baseline runs for one system size."""

    system: SystemConfig
    db: SimulationDatabase
    max_slices: int | None = MAX_SLICES
    _baselines: dict[str, RunResult] = field(default_factory=dict)

    def baseline_run(self, workload: Workload) -> RunResult:
        key = workload.name + "/" + ",".join(workload.apps)
        if key not in self._baselines:
            self._baselines[key] = simulate_workload(
                self.system, self.db, workload, StaticBaselineManager(),
                max_slices=self.max_slices,
            )
        return self._baselines[key]

    def run(self, workload: Workload, spec: ManagerSpec) -> RunResult:
        return simulate_workload(
            self.system, self.db, workload, spec.build(), max_slices=self.max_slices
        )

    def compare(self, workload: Workload, spec: ManagerSpec) -> WorkloadComparison:
        return compare_runs(self.baseline_run(workload), self.run(workload, spec))

    def run_many(
        self,
        workloads: list[Workload],
        spec: ManagerSpec,
        processes: int | None = None,
    ) -> list[RunResult]:
        """Run one manager over many workloads in parallel (raw results)."""
        _WORKER["ctx"] = self
        tasks = [(wl, spec, self.max_slices) for wl in workloads]
        return parallel_map(_run_one, tasks, processes=processes)

    def run_scenario(self, scenario: Scenario, spec: ManagerSpec) -> RunResult:
        """Simulate one dynamic scenario under one manager."""
        return simulate_scenario(
            self.system, self.db, scenario, spec.build(), max_slices=self.max_slices
        )

    def run_scenarios(
        self,
        scenarios: list[Scenario],
        specs: list[ManagerSpec],
        processes: int | None = None,
    ) -> dict[tuple[str, str], RunResult]:
        """Run every (scenario, manager) pair in parallel.

        Returns ``{(scenario name, manager name): RunResult}``.  Scenario
        runs execute a fixed interval horizon, so comparisons against the
        baseline manager's run of the same scenario are energy at equal
        instruction counts (wall-clock event exposure follows each run's own
        timeline, as in a real open system); results are bit-identical for
        any ``processes`` count because the event streams are pre-generated
        and the replay is deterministic.
        """
        _WORKER["ctx"] = self
        tasks = [(sc, spec, self.max_slices) for sc in scenarios for spec in specs]
        results = parallel_map(_run_one_scenario, tasks, processes=processes)
        return {
            (sc.name, spec.name): run
            for (sc, spec, _), run in zip(tasks, results)
        }

    def run_matrix(
        self,
        workloads: list[Workload],
        specs: list[ManagerSpec],
        processes: int | None = None,
    ) -> dict[tuple[str, str], WorkloadComparison]:
        """Run every (workload, manager) pair, plus baselines, in parallel.

        Returns ``{(workload name, manager name): comparison}``.
        """
        _WORKER["ctx"] = self
        tasks = [(wl, BASELINE, self.max_slices) for wl in workloads]
        tasks += [(wl, spec, self.max_slices) for wl in workloads for spec in specs]
        results = parallel_map(_run_one, tasks, processes=processes)

        by_wl: dict[str, RunResult] = {}
        for (wl, spec, _), run in zip(tasks, results):
            if spec.kind == "baseline":
                by_wl[wl.name] = run
                self._baselines.setdefault(
                    wl.name + "/" + ",".join(wl.apps), run
                )
        out: dict[tuple[str, str], WorkloadComparison] = {}
        for (wl, spec, _), run in zip(tasks, results):
            if spec.kind == "baseline":
                continue
            out[(wl.name, spec.name)] = compare_runs(by_wl[wl.name], run)
        return out


_CONTEXTS: dict[int, ExperimentContext] = {}


def get_context(
    ncores: int = 4,
    cache_dir: str | None = DEFAULT_CACHE_DIR,
    names: list[str] | None = None,
) -> ExperimentContext:
    """Build (or reuse) the experiment context for an ``ncores`` system."""
    if ncores in _CONTEXTS and names is None:
        return _CONTEXTS[ncores]
    system = default_system(ncores)
    db = build_database(
        system,
        names=names,
        accesses_per_set=ACCESSES_PER_SET,
        cache_dir=cache_dir,
    )
    ctx = ExperimentContext(system=system, db=db)
    if names is None:
        _CONTEXTS[ncores] = ctx
    return ctx
