"""Shared experiment machinery: databases, baselines and batched runs.

An :class:`ExperimentContext` owns the simulation database for a system size
and memoises baseline runs (the paper's framework reuses one database for all
experiments).  ``run_matrix`` fans (workload x manager) runs out over worker
processes; results are deterministic regardless of the process count.

On top of the in-memory memo, a context built by :func:`get_context` carries
a persistent :class:`~repro.simulation.results_store.ResultsStore` under
``<cache_dir>/results/``: every finished run is content-addressed by
(database digest, workload/scenario, manager spec, ``max_slices``) and
repeated experiment or benchmark invocations load it from disk instead of
re-simulating.  Disable with ``REPRO_NO_RESULT_CACHE=1`` or the CLI's
``--no-result-cache`` flag.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

from repro.config import SystemConfig, default_system
from repro.core.managers import (
    CoordinatedManager,
    StaticBaselineManager,
)
from repro.scenarios.events import Scenario
from repro.simulation.database import SimulationDatabase, build_database
from repro.simulation.metrics import RunResult, WorkloadComparison, compare_runs
from repro.simulation.results_store import ResultsStore, run_key
from repro.simulation.rma_sim import simulate_scenario, simulate_workload
from repro.util.parallel import parallel_map
from repro.workloads.mixes import Workload

__all__ = [
    "ExperimentContext",
    "get_context",
    "ManagerSpec",
    "DEFAULT_CACHE_DIR",
    "set_result_cache",
    "result_cache_enabled",
]

# Normalised so the on-disk cache is one stable location regardless of the
# process's working directory or how the package path was assembled.
DEFAULT_CACHE_DIR = os.path.normpath(
    os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..", "..", ".sim_cache")
    )
)

#: Experiment fidelity knobs; EXPERIMENTS.md records the values used.
ACCESSES_PER_SET = int(os.environ.get("REPRO_ACCESSES_PER_SET", "600"))
MAX_SLICES_ENV = os.environ.get("REPRO_MAX_SLICES", "")
MAX_SLICES: int | None = int(MAX_SLICES_ENV) if MAX_SLICES_ENV else None

#: Result-store kill switch (``--no-result-cache`` flips it at runtime).
_RESULT_CACHE_ENABLED = os.environ.get(
    "REPRO_NO_RESULT_CACHE", ""
).strip().lower() not in ("1", "true", "yes", "on")


def set_result_cache(enabled: bool) -> None:
    """Enable/disable the persistent run-results store for new contexts."""
    global _RESULT_CACHE_ENABLED
    _RESULT_CACHE_ENABLED = bool(enabled)


def result_cache_enabled() -> bool:
    return _RESULT_CACHE_ENABLED


@dataclass(frozen=True)
class ManagerSpec:
    """Picklable description of a manager (factories are reconstructed in
    worker processes)."""

    kind: str                 # "baseline" | "coordinated" | "independent"
    name: str = ""
    control_dvfs: bool = True
    control_core_size: bool = False
    control_partitioning: bool = True
    mlp_model: str = "model2"
    oracle: bool = False
    # False selects the recompute-everything reference pipeline (the
    # executable specification the batched/incremental default is verified
    # against); results are bit-identical either way.
    incremental: bool = True
    # A non-None cluster size selects the hierarchical ClusteredManager
    # (per-cluster reduction trees + second-level combine) instead of the
    # flat coordinated manager; overprovision scales the per-cluster way cap.
    cluster_size: int | None = None
    overprovision: float = 2.0

    def build(self):
        """Reconstruct the described manager (used inside worker processes)."""
        if self.kind == "baseline":
            return StaticBaselineManager()
        if self.kind == "independent":
            from repro.core.managers import IndependentManager

            return IndependentManager(mlp_model=self.mlp_model)
        if self.kind == "history":
            from repro.core.history import HistoryAwareManager

            return HistoryAwareManager(
                name=self.name or "rm2-history",
                control_core_size=self.control_core_size,
                mlp_model=self.mlp_model,
            )
        if self.cluster_size is not None:
            from repro.core.managers import ClusteredManager
            from repro.util.validation import require

            require(
                self.incremental,
                "clustered specs exist only on the incremental pipeline "
                "(no recompute-everything reference for the hierarchy)",
            )
            return ClusteredManager(
                name=self.name,
                cluster_size=self.cluster_size,
                overprovision=self.overprovision,
                control_dvfs=self.control_dvfs,
                control_core_size=self.control_core_size,
                control_partitioning=self.control_partitioning,
                mlp_model=self.mlp_model,
                oracle=self.oracle,
            )
        return CoordinatedManager(
            name=self.name,
            control_dvfs=self.control_dvfs,
            control_core_size=self.control_core_size,
            control_partitioning=self.control_partitioning,
            mlp_model=self.mlp_model,
            oracle=self.oracle,
            incremental=self.incremental,
        )


BASELINE = ManagerSpec(kind="baseline", name="baseline")
RM1 = ManagerSpec(kind="coordinated", name="rm1-partitioning", control_dvfs=False)
RM2 = ManagerSpec(kind="coordinated", name="rm2-combined")
RM3 = ManagerSpec(
    kind="coordinated", name="rm3-core-adaptive", control_core_size=True, mlp_model="model3"
)
DVFS_ONLY = ManagerSpec(kind="coordinated", name="dvfs-only", control_partitioning=False)


def rm2_oracle() -> ManagerSpec:
    """Spec for RM2 under perfect ("oracle") models."""
    return ManagerSpec(kind="coordinated", name="rm2-oracle", oracle=True)


def rm2_clustered(cluster_size: int = 8, overprovision: float = 2.0) -> ManagerSpec:
    """Spec for the hierarchical RM2 variant (the many-core cluster tier)."""
    return ManagerSpec(
        kind="coordinated",
        name=f"rm2-combined-c{cluster_size}",
        cluster_size=cluster_size,
        overprovision=overprovision,
    )


def rm3_clustered(cluster_size: int = 8, overprovision: float = 2.0) -> ManagerSpec:
    """Spec for the hierarchical RM3 variant (core resizing + cluster tier)."""
    return ManagerSpec(
        kind="coordinated",
        name=f"rm3-core-adaptive-c{cluster_size}",
        control_core_size=True,
        mlp_model="model3",
        cluster_size=cluster_size,
        overprovision=overprovision,
    )


def rm3_with_model(model: str) -> ManagerSpec:
    return ManagerSpec(
        kind="coordinated",
        name=f"rm3-{model}",
        control_core_size=True,
        mlp_model=model,
    )


# Worker context.  Under the fork start method it is inherited; under spawn
# the workers start clean, so every fan-out passes ``_init_worker`` as the
# pool initializer, which rebuilds this state from pickled initargs in each
# worker (and in-process on the serial path).  It is a *thread local*, not a
# plain dict: pool worker processes run initializer and tasks on one thread,
# but the replay service drives serial-path fan-outs from several threads at
# once, and a shared mapping would let one thread's context (say, the 16-core
# system) leak into another thread's 4-core job.
_WORKER = threading.local()


def _init_worker(ctx: "ExperimentContext") -> None:
    """Pool initializer: install the experiment context in this worker."""
    _WORKER.ctx = ctx


def _worker_ctx() -> "ExperimentContext":
    ctx = getattr(_WORKER, "ctx", None)
    if ctx is None:
        raise RuntimeError(
            "worker has no experiment context; fan out through parallel_map "
            "with initializer=_init_worker (required under the spawn start "
            "method, where module state is not inherited)"
        )
    return ctx


def _run_one(task: tuple) -> RunResult:
    workload, spec, max_slices = task
    ctx = _worker_ctx()
    return simulate_workload(
        ctx.system, ctx.db, workload, spec.build(), max_slices=max_slices
    )


def _run_one_scenario(task: tuple) -> RunResult:
    scenario, spec, max_slices = task
    ctx = _worker_ctx()
    return simulate_scenario(
        ctx.system, ctx.db, scenario, spec.build(), max_slices=max_slices
    )


@dataclass
class ExperimentContext:
    """Database + memoised baseline runs for one system size."""

    system: SystemConfig
    db: SimulationDatabase
    max_slices: int | None = MAX_SLICES
    results_store: ResultsStore | None = None
    _baselines: dict[str, RunResult] = field(default_factory=dict)

    # ---- results-store plumbing ---------------------------------------------
    def _key(self, item: Workload | Scenario, spec: ManagerSpec) -> str | None:
        if self.results_store is None:
            return None
        return run_key(self.system, self.db, item, spec, self.max_slices)

    def _lookup(self, key: str | None) -> RunResult | None:
        if key is None:
            return None
        return self.results_store.get(key)

    def _resolve(
        self,
        items: list[tuple[Workload | Scenario, ManagerSpec]],
        worker,
        processes: int | None,
    ) -> list[RunResult]:
        """Serve each (item, spec) pair from the results store where possible;
        fan the misses out over worker processes and persist them."""
        keys = [self._key(item, spec) for item, spec in items]
        results: list[RunResult | None] = [self._lookup(k) for k in keys]
        todo = [i for i, r in enumerate(results) if r is None]
        tasks = [(items[i][0], items[i][1], self.max_slices) for i in todo]
        fresh = parallel_map(
            worker, tasks, processes=processes,
            initializer=_init_worker, initargs=(self,),
        )
        for i, run in zip(todo, fresh):
            results[i] = run
            if keys[i] is not None:
                self.results_store.put(keys[i], run)
        return results

    @staticmethod
    def _baseline_memo_key(workload: Workload) -> str:
        return workload.name + "/" + ",".join(workload.apps)

    # ---- single runs --------------------------------------------------------
    def baseline_run(self, workload: Workload) -> RunResult:
        key = self._baseline_memo_key(workload)
        if key not in self._baselines:
            self._baselines[key] = self.run(workload, BASELINE)
        return self._baselines[key]

    def run(self, workload: Workload, spec: ManagerSpec) -> RunResult:
        return self._resolve([(workload, spec)], _run_one, processes=1)[0]

    def compare(self, workload: Workload, spec: ManagerSpec) -> WorkloadComparison:
        return compare_runs(self.baseline_run(workload), self.run(workload, spec))

    def run_scenario(self, scenario: Scenario, spec: ManagerSpec) -> RunResult:
        """Simulate one dynamic scenario under one manager."""
        return self._resolve([(scenario, spec)], _run_one_scenario, processes=1)[0]

    # ---- batched runs -------------------------------------------------------
    def run_many(
        self,
        workloads: list[Workload],
        spec: ManagerSpec,
        processes: int | None = None,
    ) -> list[RunResult]:
        """Run one manager over many workloads in parallel (raw results)."""
        return self._resolve([(wl, spec) for wl in workloads], _run_one, processes)

    def run_scenarios(
        self,
        scenarios: list[Scenario],
        specs: list[ManagerSpec],
        processes: int | None = None,
    ) -> dict[tuple[str, str], RunResult]:
        """Run every (scenario, manager) pair in parallel.

        Returns ``{(scenario name, manager name): RunResult}``.  Scenario
        runs execute a fixed interval horizon, so comparisons against the
        baseline manager's run of the same scenario are energy at equal
        instruction counts (wall-clock event exposure follows each run's own
        timeline, as in a real open system); results are bit-identical for
        any ``processes`` count because the event streams are pre-generated
        and the replay is deterministic.
        """
        pairs = [(sc, spec) for sc in scenarios for spec in specs]
        results = self._resolve(pairs, _run_one_scenario, processes)
        return {
            (sc.name, spec.name): run for (sc, spec), run in zip(pairs, results)
        }

    def run_matrix(
        self,
        workloads: list[Workload],
        specs: list[ManagerSpec],
        processes: int | None = None,
    ) -> dict[tuple[str, str], WorkloadComparison]:
        """Run every (workload, manager) pair, plus baselines, in parallel.

        Baselines already memoised (from earlier ``baseline_run`` /
        ``run_matrix`` calls) or present in the results store are reused
        rather than re-simulated.  Returns ``{(workload name, manager name):
        comparison}``.
        """
        pairs: list[tuple[Workload, ManagerSpec]] = [
            (wl, BASELINE)
            for wl in workloads
            if self._baseline_memo_key(wl) not in self._baselines
        ]
        pairs += [(wl, spec) for wl in workloads for spec in specs]
        results = self._resolve(pairs, _run_one, processes)

        for (wl, spec), run in zip(pairs, results):
            if spec.kind == "baseline":
                self._baselines.setdefault(self._baseline_memo_key(wl), run)
        out: dict[tuple[str, str], WorkloadComparison] = {}
        for (wl, spec), run in zip(pairs, results):
            if spec.kind == "baseline":
                continue
            base = self._baselines[self._baseline_memo_key(wl)]
            out[(wl.name, spec.name)] = compare_runs(base, run)
        return out


# Contexts are memoised per (ncores, cache directory): a second call with a
# different cache_dir builds against *that* cache instead of silently
# reusing a context keyed to the first one.
_CONTEXTS: dict[tuple[int, str | None], ExperimentContext] = {}


def _normalize_dir(path: str | None) -> str | None:
    return os.path.normpath(os.path.abspath(path)) if path else None


def get_context(
    ncores: int = 4,
    cache_dir: str | None = DEFAULT_CACHE_DIR,
    names: list[str] | None = None,
) -> ExperimentContext:
    """Build (or reuse) the experiment context for an ``ncores`` system."""
    cache_key = (ncores, _normalize_dir(cache_dir))
    if names is None and cache_key in _CONTEXTS:
        return _CONTEXTS[cache_key]
    system = default_system(ncores)
    db = build_database(
        system,
        names=names,
        accesses_per_set=ACCESSES_PER_SET,
        cache_dir=cache_dir,
    )
    store = None
    if cache_dir and result_cache_enabled():
        store = ResultsStore(os.path.join(_normalize_dir(cache_dir), "results"))
    ctx = ExperimentContext(system=system, db=db, results_store=store)
    if names is None:
        _CONTEXTS[cache_key] = ctx
    return ctx
