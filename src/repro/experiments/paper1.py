"""Paper I experiment drivers (IPDPS 2019): E1 .. E8.

Each driver regenerates one table/figure of the paper's evaluation; the
returned :class:`ExperimentResult` carries the measured headline numbers next
to the values the paper reports (thesis §3.1).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.report import ExperimentResult
from repro.experiments.runner import (
    RM1,
    RM2,
    ExperimentContext,
    ManagerSpec,
    get_context,
    rm2_oracle,
)
from repro.simulation.metrics import WorkloadComparison
from repro.util.stats import summarize
from repro.workloads.mixes import paper1_workloads

__all__ = [
    "e1_savings_4core",
    "e2_savings_8core",
    "e3_qos_violations",
    "e4_perfect_models",
    "e5_relaxation_sweep",
    "e6_partial_relaxation",
    "e7_baseline_vf_sensitivity",
    "e8_rma_overhead",
]


def _savings_by_workload(
    ctx: ExperimentContext, ncores: int, specs: list[ManagerSpec]
) -> tuple[list, dict[str, dict[str, WorkloadComparison]]]:
    workloads = paper1_workloads(ncores)
    matrix = ctx.run_matrix(workloads, specs)
    rows = []
    per_wl: dict[str, dict[str, WorkloadComparison]] = {}
    for wl in workloads:
        row = [wl.name, wl.tag]
        per_wl[wl.name] = {}
        for spec in specs:
            cmp = matrix[(wl.name, spec.name)]
            per_wl[wl.name][spec.name] = cmp
            row.append(cmp.savings_pct)
        rows.append(row)
    return rows, per_wl


def e1_savings_4core(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Paper I figure: energy savings per 4-core workload, RM2 vs RM1."""
    ctx = ctx or get_context(4)
    rows, per_wl = _savings_by_workload(ctx, 4, [RM1, RM2])
    rm1 = [r[2] for r in rows]
    rm2 = [r[3] for r in rows]
    rows.append(["mean", "", float(np.mean(rm1)), float(np.mean(rm2))])
    return ExperimentResult(
        experiment_id="E1",
        title="Energy savings, 4-core workloads (Combined vs Partitioning RMA)",
        headers=["workload", "pattern", "rm1-partitioning %", "rm2-combined %"],
        rows=rows,
        summary={
            "rm2 avg %": float(np.mean(rm2)),
            "rm2 max %": float(np.max(rm2)),
            "rm1 avg %": float(np.mean(rm1)),
        },
        paper={"rm2 avg %": 6.0, "rm2 max %": 18.0, "rm1 avg %": 1.0},
        notes="Combined RMA is most effective on workloads containing a cache-sensitive application.",
    )


def e2_savings_8core(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Paper I figure: energy savings per 8-core workload."""
    ctx = ctx or get_context(8)
    rows, _ = _savings_by_workload(ctx, 8, [RM1, RM2])
    rm1 = [r[2] for r in rows]
    rm2 = [r[3] for r in rows]
    rows.append(["mean", "", float(np.mean(rm1)), float(np.mean(rm2))])
    return ExperimentResult(
        experiment_id="E2",
        title="Energy savings, 8-core workloads (Combined vs Partitioning RMA)",
        headers=["workload", "pattern", "rm1-partitioning %", "rm2-combined %"],
        rows=rows,
        summary={
            "rm2 avg %": float(np.mean(rm2)),
            "rm2 max %": float(np.max(rm2)),
            "rm1 avg %": float(np.mean(rm1)),
        },
        paper={"rm2 avg %": 6.0, "rm2 max %": 14.0, "rm1 avg %": 2.0},
    )


def e3_qos_violations(
    ctx4: ExperimentContext | None = None, ctx8: ExperimentContext | None = None
) -> ExperimentResult:
    """Paper I table: QoS violations of the realistic combined RMA."""
    rows = []
    summary: dict[str, float] = {}
    for ncores, ctx in ((4, ctx4 or get_context(4)), (8, ctx8 or get_context(8))):
        workloads = paper1_workloads(ncores)
        matrix = ctx.run_matrix(workloads, [RM2])
        violations = []
        total_apps = 0
        for wl in workloads:
            cmp = matrix[(wl.name, RM2.name)]
            total_apps += len(cmp.violations)
            violations.extend(cmp.violation_values_pct())
        stats = summarize(violations)
        rows.append(
            [f"{ncores}-core", len(violations), total_apps, stats.mean, stats.maximum]
        )
        summary[f"{ncores}-core violations"] = float(len(violations))
        summary[f"{ncores}-core avg %"] = stats.mean
        summary[f"{ncores}-core max %"] = stats.maximum
    return ExperimentResult(
        experiment_id="E3",
        title="QoS violations under realistic models (Combined RMA)",
        headers=["system", "violations", "apps", "avg violation %", "max violation %"],
        rows=rows,
        summary=summary,
        paper={
            "4-core violations": 13, "4-core avg %": 3.0, "4-core max %": 9.0,
            "8-core violations": 15, "8-core avg %": 3.0, "8-core max %": 7.0,
        },
        notes=(
            "Violations below 1% are negligible per the paper's criterion. "
            "The tail violations are the constant-MLP (Model 2) anchor error "
            "Paper II identifies; rerunning the violating workloads with the "
            "MLP-ATD (Model 3) removes them entirely (see E14/E15)."
        ),
    )


def e4_perfect_models(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Paper I figure: perfect (oracle) models vs realistic analytical models."""
    ctx = ctx or get_context(4)
    workloads = paper1_workloads(4)
    matrix = ctx.run_matrix(workloads, [RM2, rm2_oracle()])
    rows = []
    real, perfect = [], []
    for wl in workloads:
        r = matrix[(wl.name, RM2.name)].savings_pct
        p = matrix[(wl.name, "rm2-oracle")].savings_pct
        rows.append([wl.name, wl.tag, r, p])
        real.append(r)
        perfect.append(p)
    rows.append(["mean", "", float(np.mean(real)), float(np.mean(perfect))])
    return ExperimentResult(
        experiment_id="E4",
        title="Energy savings: realistic vs perfect models (4-core)",
        headers=["workload", "pattern", "realistic %", "perfect %"],
        rows=rows,
        summary={
            "realistic avg %": float(np.mean(real)),
            "perfect avg %": float(np.mean(perfect)),
        },
        paper={"realistic avg %": 6.0, "perfect avg %": 8.0},
        notes="Perfect models bound the cost of analytical-model error.",
    )


def e5_relaxation_sweep(
    ctx: ExperimentContext | None = None,
    slacks: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8),
) -> ExperimentResult:
    """Paper I figure: energy savings vs QoS relaxation (perfect models)."""
    ctx = ctx or get_context(4)
    workloads = paper1_workloads(4)
    rows = []
    best_avg = 0.0
    avg_at_040 = 0.0
    max_at_040 = 0.0
    for slack in slacks:
        relaxed = [wl.with_slack(slack) for wl in workloads]
        matrix = ctx.run_matrix(relaxed, [rm2_oracle()])
        vals = [matrix[(wl.name, "rm2-oracle")].savings_pct for wl in relaxed]
        avg, mx = float(np.mean(vals)), float(np.max(vals))
        rows.append([f"{slack * 100:.0f}%", avg, mx])
        best_avg = max(best_avg, avg)
        if abs(slack - 0.4) < 1e-9:
            avg_at_040, max_at_040 = avg, mx
    return ExperimentResult(
        experiment_id="E5",
        title="Energy savings vs QoS relaxation (perfect models, 4-core)",
        headers=["allowed slowdown", "avg savings %", "max savings %"],
        rows=rows,
        summary={"avg % @40% slack": avg_at_040, "max % @40% slack": max_at_040},
        paper={"avg % @40% slack": 17.0, "max % @40% slack": 29.0},
        notes="Savings saturate once memory-bound apps reach the bottom of the VF table.",
    )


def e6_partial_relaxation(
    ctx: ExperimentContext | None = None, slack: float = 0.4
) -> ExperimentResult:
    """Paper I figure: relaxing the QoS target for subsets of the workload."""
    ctx = ctx or get_context(4)
    # a representative mixed workload: 2 memory-intensive CS + 2 compute apps
    wl = next(w for w in paper1_workloads(4) if w.tag == "2MICS_2CPCI")
    mi_mask = (slack, slack, 0.0, 0.0)
    cp_mask = (0.0, 0.0, slack, slack)
    scenarios = [
        ("none relaxed", wl.with_slack(0.0)),
        ("MI apps relaxed", wl.with_slack(mi_mask)),
        ("CP apps relaxed", wl.with_slack(cp_mask)),
        ("all relaxed", wl.with_slack(slack)),
    ]
    rows = []
    values = {}
    for name, w in scenarios:
        cmp = ctx.compare(w, rm2_oracle())
        rows.append([name, cmp.savings_pct, cmp.n_violations])
        values[name] = cmp.savings_pct
    return ExperimentResult(
        experiment_id="E6",
        title=f"Partial QoS relaxation ({slack * 100:.0f}% slack on subsets)",
        headers=["scenario", "savings %", "violations"],
        rows=rows,
        summary={
            "none %": values["none relaxed"],
            "MI-only %": values["MI apps relaxed"],
            "all %": values["all relaxed"],
        },
        paper={"none %": "baseline", "MI-only %": "between", "all %": "highest"},
        notes="Relaxing memory-bound apps recovers most of the full-relaxation savings.",
    )


def e7_baseline_vf_sensitivity(
    ctx: ExperimentContext | None = None,
    anchors_ghz: tuple[float, ...] = (1.6, 2.0, 2.4),
) -> ExperimentResult:
    """Paper I figure: sensitivity of savings to the baseline VF choice."""
    from dataclasses import replace

    ctx = ctx or get_context(4)
    workloads = paper1_workloads(4)[:10]
    rows = []
    values = []
    for anchor in anchors_ghz:
        system = replace(ctx.system, qos_baseline_ghz=anchor)
        # The anchored system is hashed into every run key, so the parent's
        # results store can be shared safely across anchors.
        sub_ctx = ExperimentContext(system=system, db=ctx.db, max_slices=ctx.max_slices,
                                    results_store=ctx.results_store)
        matrix = sub_ctx.run_matrix(workloads, [RM2])
        vals = [matrix[(wl.name, RM2.name)].savings_pct for wl in workloads]
        rows.append([f"{anchor:.1f} GHz", float(np.mean(vals)), float(np.max(vals))])
        values.append(float(np.mean(vals)))
    return ExperimentResult(
        experiment_id="E7",
        title="Sensitivity to the baseline VF anchor (4-core, RM2)",
        headers=["baseline f0", "avg savings %", "max savings %"],
        rows=rows,
        summary={f"avg % @{a:.1f}GHz": v for a, v in zip(anchors_ghz, values)},
        paper={"trend": "higher baseline VF leaves more headroom to save"},
        notes="The QoS anchor moves; the platform (and database) are unchanged.",
    )


def e8_rma_overhead(ctx: ExperimentContext | None = None) -> ExperimentResult:
    """Paper I table: RMA software overhead in executed instructions."""
    ctx = ctx or get_context(4)
    workloads = paper1_workloads(4)[:6]
    per_inv = []
    worst = 0.0
    for wl in workloads:
        run = ctx.run(wl, RM2)
        per_inv.append(run.rma_instructions / max(run.rma_invocations, 1))
        worst = max(worst, per_inv[-1])
    mean_inv = float(np.mean(per_inv))
    frac = mean_inv / ctx.system.interval_instructions * 100.0
    rows = [
        ["instructions / invocation (avg)", mean_inv],
        ["instructions / invocation (max)", worst],
        ["fraction of 100M-instr interval", f"{frac:.4f}%"],
    ]
    return ExperimentResult(
        experiment_id="E8",
        title="Overhead of the Combined RMA (instruction-equivalents)",
        headers=["quantity", "value"],
        rows=rows,
        summary={"instr/invocation": mean_inv, "fraction %": frac},
        paper={"instr/invocation": "< 40000", "fraction %": 0.04},
        notes="Counted via the overhead meter: cost constants per model evaluation and DP cell.",
    )
