"""System configuration: the hardware the paper's resource manager controls.

The configuration space has three per-core dimensions (Paper II; Paper I fixes
the core size at the baseline):

* ``f`` -- the DVFS operating point, one of :attr:`VFTable.freqs_ghz`;
* ``w`` -- the number of LLC ways allocated to the core (way-partitioning);
* ``c`` -- the micro-architectural core size (ROB / issue width / MSHRs).

All energy constants live here so the "McPAT" side (:mod:`repro.cpu.power`)
and the RMA's analytical energy model (:mod:`repro.core.energy_model`) share
one source of truth, exactly as the paper's RMA is calibrated against the
platform it manages.

Units
-----
frequency GHz, voltage V, time ns, energy nJ, power W (= nJ/ns * 1e-0... W is
J/s; we track energy in nJ and time in ns, so power constants expressed in W
convert 1:1: 1 W = 1 nJ/ns * 1e-9/1e-9 = 1 nJ per ns * 1.0e0 / 1.0e0 -- i.e.
``P[W] * t[ns] = E[nJ]`` holds exactly.)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.util.validation import require, require_positive

__all__ = [
    "VFTable",
    "CoreSize",
    "LLCGeometry",
    "MemoryConfig",
    "OverheadConfig",
    "SystemConfig",
    "Allocation",
    "AllocationMap",
    "default_system",
    "CORE_SIZES",
    "SMALL",
    "MEDIUM",
    "LARGE",
]


@dataclass(frozen=True)
class VFTable:
    """Discrete DVFS operating points with a linear voltage law.

    ``V(f) = v0 + kv * f``; dynamic energy scales with ``(V/Vnom)^2`` and
    leakage power with ``(V/Vnom)`` (first-order models, same granularity as
    McPAT gives the paper).
    """

    freqs_ghz: tuple[float, ...] = tuple(np.round(np.arange(0.8, 3.21, 0.1), 2))
    v0: float = 0.55
    kv: float = 0.25
    nominal_ghz: float = 2.0

    def __post_init__(self) -> None:
        require(len(self.freqs_ghz) >= 2, "VF table needs at least two points")
        require(
            all(b > a for a, b in zip(self.freqs_ghz, self.freqs_ghz[1:])),
            "VF table frequencies must be strictly increasing",
        )
        require(self.nominal_ghz in self.freqs_ghz, "nominal frequency must be an operating point")

    @property
    def nlevels(self) -> int:
        return len(self.freqs_ghz)

    @property
    def nominal_index(self) -> int:
        return self.freqs_ghz.index(self.nominal_ghz)

    def voltage(self, f_ghz: float) -> float:
        """Supply voltage at frequency ``f_ghz``."""
        return self.v0 + self.kv * f_ghz

    @property
    def vnom(self) -> float:
        return self.voltage(self.nominal_ghz)

    def freqs_array(self) -> np.ndarray:
        return np.asarray(self.freqs_ghz, dtype=float)

    def voltages_array(self) -> np.ndarray:
        return self.v0 + self.kv * self.freqs_array()

    def index_of(self, f_ghz: float) -> int:
        """Index of the operating point equal to ``f_ghz`` (exact match)."""
        try:
            return self.freqs_ghz.index(round(f_ghz, 6))
        except ValueError as exc:
            raise ValueError(f"{f_ghz} GHz is not an operating point") from exc


@dataclass(frozen=True)
class CoreSize:
    """One micro-architectural configuration of the re-configurable core.

    Paper II power-gates sections of the ROB / issue queue / MSHR file; each
    size carries its ILP window, memory-level-parallelism resources and
    area-driven energy factors (relative to the medium, baseline, size).
    """

    name: str
    rob: int                # instruction window for miss overlap
    width: int              # issue width (bounds achievable ILP)
    mshrs: int              # outstanding-miss registers (bounds MLP)
    epi_factor: float       # dynamic energy/instruction multiplier vs medium
    leak_factor: float      # leakage power multiplier vs medium
    ilp_speedup: float      # execution-CPI multiplier applied at ilp_sensitivity=1
    ilp_floor: float        # execution-CPI multiplier applied at ilp_sensitivity=0

    def __post_init__(self) -> None:
        require_positive(self.rob, "rob")
        require_positive(self.width, "width")
        require_positive(self.mshrs, "mshrs")
        require_positive(self.epi_factor, "epi_factor")
        require_positive(self.leak_factor, "leak_factor")


SMALL = CoreSize(
    name="small", rob=48, width=2, mshrs=4,
    epi_factor=0.80, leak_factor=0.66,
    ilp_speedup=1.70, ilp_floor=1.32,
)
MEDIUM = CoreSize(
    name="medium", rob=128, width=4, mshrs=10,
    epi_factor=1.0, leak_factor=1.0,
    ilp_speedup=1.0, ilp_floor=1.0,
)
LARGE = CoreSize(
    name="large", rob=256, width=6, mshrs=24,
    epi_factor=1.18, leak_factor=1.30,
    ilp_speedup=0.80, ilp_floor=0.97,
)

CORE_SIZES: tuple[CoreSize, ...] = (SMALL, MEDIUM, LARGE)


@dataclass(frozen=True)
class LLCGeometry:
    """Shared last-level cache geometry.

    ``model_sets`` is the number of sets the ground-truth trace simulation
    models (a sampled image of the real cache, standard ATD practice);
    ``atd_sampled_sets`` is the subset the *online* ATD observes, which is the
    source of the RMA's cache-curve sampling error.
    """

    ways: int = 16
    model_sets: int = 64
    atd_sampled_sets: int = 16
    line_bytes: int = 64

    def __post_init__(self) -> None:
        require(self.ways >= 2, "LLC needs at least 2 ways")
        require(
            1 <= self.atd_sampled_sets <= self.model_sets,
            "sampled sets must be a non-empty subset of model sets",
        )


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip memory: fixed service latency plus bandwidth queueing.

    The thesis assumes "a memory controller that equally partitions the
    available bandwidth among the cores"; each core therefore sees a private
    share ``peak_bw_gbps / ncores`` and a queueing term that grows with its
    own utilisation of that share.
    """

    latency_ns: float = 85.0
    peak_bw_gbps: float = 51.2          # e.g. dual-channel DDR4-3200
    queue_coeff: float = 0.85           # latency inflation at full utilisation
    energy_per_access_nj: float = 16.0  # 64B line transfer + activate share
    background_power_w: float = 0.8     # DRAM refresh/standby, whole system


@dataclass(frozen=True)
class OverheadConfig:
    """Costs of applying a new resource setting (added by the RMA simulator).

    The paper adds "the corresponding overheads ... for each core depending on
    the change in their resource allocations"; these are the standard costs:
    a DVFS transition stall, a core-resize drain/power-gate stall, and a cache
    warm-up penalty proportional to the number of ways gained.
    """

    dvfs_transition_us: float = 20.0
    resize_transition_us: float = 25.0
    # Extra misses while refilling each newly gained way, expressed as a
    # fraction of one way's worth of lines (real sets, scaled from model sets).
    warmup_miss_fraction: float = 0.7
    real_sets: int = 4096

    def warmup_extra_misses(self, ways_gained: int) -> float:
        """Extra DRAM fetches caused by warming ``ways_gained`` new ways."""
        if ways_gained <= 0:
            return 0.0
        return self.warmup_miss_fraction * ways_gained * self.real_sets


@dataclass(frozen=True)
class SystemConfig:
    """Everything the detailed simulator and the RMA need to know.

    The *baseline* allocation -- the paper's QoS anchor -- is the nominal
    frequency, the medium core size and an equal split of the LLC ways.
    """

    ncores: int = 4
    vf: VFTable = field(default_factory=VFTable)
    core_sizes: tuple[CoreSize, ...] = CORE_SIZES
    llc: LLCGeometry = field(default_factory=LLCGeometry)
    mem: MemoryConfig = field(default_factory=MemoryConfig)
    overheads: OverheadConfig = field(default_factory=OverheadConfig)
    interval_instructions: int = 100_000_000
    # Core static power of the medium core at Vnom, and per-way LLC static
    # power (budgeted per core share in the energy model).
    core_leak_w: float = 0.26
    llc_way_static_w: float = 0.008
    llc_access_energy_nj: float = 0.40
    baseline_core: str = "medium"
    min_ways_per_core: int = 1
    # QoS anchor frequency; None means the VF table's nominal point.  Kept
    # separate from ``vf.nominal_ghz`` (the energy-normalisation point) so the
    # baseline-VF sensitivity experiment can move the anchor without changing
    # the physical platform (and hence without rebuilding the database).
    qos_baseline_ghz: float | None = None

    def __post_init__(self) -> None:
        require(self.ncores >= 1, "need at least one core")
        require(
            self.llc.ways >= self.ncores * self.min_ways_per_core,
            "LLC must have at least min_ways_per_core ways per core",
        )
        require(
            any(c.name == self.baseline_core for c in self.core_sizes),
            f"baseline core size {self.baseline_core!r} not in core_sizes",
        )

    # -- baseline allocation ------------------------------------------------
    @property
    def baseline_core_index(self) -> int:
        return next(i for i, c in enumerate(self.core_sizes) if c.name == self.baseline_core)

    @property
    def baseline_freq_index(self) -> int:
        if self.qos_baseline_ghz is not None:
            return self.vf.index_of(self.qos_baseline_ghz)
        return self.vf.nominal_index

    @property
    def baseline_ways(self) -> int:
        return self.llc.ways // self.ncores

    def baseline_allocation(self) -> "Allocation":
        return Allocation(
            core=self.baseline_core_index,
            freq=self.baseline_freq_index,
            ways=self.baseline_ways,
        )

    # -- derived ------------------------------------------------------------
    @property
    def ncore_sizes(self) -> int:
        return len(self.core_sizes)

    @property
    def per_core_bw_gbps(self) -> float:
        return self.mem.peak_bw_gbps / self.ncores

    def with_ncores(self, ncores: int) -> "SystemConfig":
        """A copy resized to ``ncores`` cores with a proportionally sized LLC.

        Doubling the core count doubles LLC ways (16 ways for 4 cores, 32 for
        8) so the baseline per-core share stays constant -- matching the
        paper's 4-core/8-core setups.
        """
        ways = self.llc.ways * ncores // self.ncores
        llc = replace(self.llc, ways=ways)
        return replace(self, ncores=ncores, llc=llc)


@dataclass(frozen=True)
class Allocation:
    """One core's resource setting: (core-size index, VF index, LLC ways)."""

    core: int
    freq: int
    ways: int

    def __post_init__(self) -> None:
        require(self.ways >= 1, "an allocation needs at least one way")


class AllocationMap(dict):
    """An allocation map annotated with its change set.

    ``delta`` lists the ``(core_id, allocation)`` entries that differ from
    the previous map the manager returned (``None`` = unknown, scan all).
    The kernel's apply loop walks only the delta when one is present:
    entries outside it are object-identical to an already-applied map, so
    re-probing them is a guaranteed no-op.  Plain dicts stay valid manager
    output -- the kernel treats them as delta-less maps.
    """

    __slots__ = ("delta",)

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.delta: list[tuple[int, "Allocation"]] | None = None


def default_system(ncores: int = 4) -> SystemConfig:
    """The paper's default platform scaled to ``ncores`` cores."""
    return SystemConfig().with_ncores(ncores)
