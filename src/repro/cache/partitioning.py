"""LLC way-partitioning: bit-masks and repartition bookkeeping.

The RMA's output is a per-core way allocation ``{w_j}`` with
``sum(w_j) == associativity``; the hardware applies it as per-core way
bit-masks (as in Figure 3.2 of the thesis).  This module materialises the
masks and computes the per-core way deltas the overhead model charges for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require

__all__ = ["Partition", "partition_masks", "repartition_delta"]


@dataclass(frozen=True)
class Partition:
    """A complete LLC partition: one way count per core."""

    ways: tuple[int, ...]
    total_ways: int

    def __post_init__(self) -> None:
        require(all(w >= 1 for w in self.ways), "every core needs >= 1 way")
        require(
            sum(self.ways) == self.total_ways,
            f"partition {self.ways} does not use exactly {self.total_ways} ways",
        )

    @property
    def ncores(self) -> int:
        return len(self.ways)


def partition_masks(partition: Partition) -> tuple[int, ...]:
    """Contiguous way bit-masks for each core (LSB = way 0).

    Contiguous assignment is what commercial way-partitioning (e.g. Intel CAT)
    uses; the specific bit layout does not affect strict-partition behaviour.
    """
    masks = []
    base = 0
    for w in partition.ways:
        masks.append(((1 << w) - 1) << base)
        base += w
    return tuple(masks)


def repartition_delta(old: Partition, new: Partition) -> tuple[int, ...]:
    """Per-core signed way change (positive = ways gained, to be warmed up)."""
    require(old.ncores == new.ncores, "partitions must cover the same cores")
    require(old.total_ways == new.total_ways, "total ways must match")
    return tuple(n - o for o, n in zip(old.ways, new.ways))
