"""Utility-based cache partitioning (Qureshi & Patt, MICRO 2006).

The classic miss-minimising partitioner, included as the reference point the
paper contrasts with: UCP maximises total hits with no notion of QoS or
energy, which is exactly why independent cache control "loses its
effectiveness" under per-application performance constraints (thesis §3.1).

``ucp_lookahead`` implements the paper's greedy lookahead algorithm;
``ucp_optimal`` is an exact dynamic program used by the tests to bound the
greedy solution's quality and by the RM1 analysis.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import require

__all__ = ["ucp_lookahead", "ucp_optimal"]


def _max_marginal_utility(hit_curve: np.ndarray, have: int, remaining: int) -> tuple[float, int]:
    """Best (utility/way, ways) pair for one app in the lookahead step."""
    best_mu = -1.0
    best_k = 1
    base = hit_curve[have - 1] if have >= 1 else 0.0
    for k in range(1, remaining + 1):
        gain = hit_curve[have + k - 1] - base
        mu = gain / k
        if mu > best_mu:
            best_mu = mu
            best_k = k
    return best_mu, best_k


def ucp_lookahead(hit_curves: list[np.ndarray], total_ways: int, min_ways: int = 1) -> tuple[int, ...]:
    """Greedy lookahead partitioning maximising total hits.

    Parameters
    ----------
    hit_curves:
        Per-app cumulative hit counts indexed by allocated ways (1-based via
        index ``w-1``), e.g. ``ATDProfile.hit_curve()``.
    total_ways:
        LLC associativity to distribute.
    min_ways:
        Minimum ways per app (the paper's RMAs guarantee 1).
    """
    napps = len(hit_curves)
    require(napps >= 1, "need at least one app")
    require(total_ways >= napps * min_ways, "not enough ways for the minimum allocation")
    for curve in hit_curves:
        require(len(curve) >= total_ways - (napps - 1) * min_ways, "hit curve too short")

    alloc = [min_ways] * napps
    remaining = total_ways - sum(alloc)
    while remaining > 0:
        best_app, best_mu, best_k = -1, -1.0, 1
        for a, curve in enumerate(hit_curves):
            mu, k = _max_marginal_utility(curve, alloc[a], remaining)
            if mu > best_mu:
                best_app, best_mu, best_k = a, mu, k
        alloc[best_app] += best_k
        remaining -= best_k
    return tuple(alloc)


def ucp_optimal(hit_curves: list[np.ndarray], total_ways: int, min_ways: int = 1) -> tuple[int, ...]:
    """Exact hit-maximising partition by dynamic programming.

    State: best total hits using the first ``a`` apps and ``s`` ways.  Used as
    the oracle in tests and analyses; complexity ``O(napps * total_ways^2)``.
    """
    napps = len(hit_curves)
    require(total_ways >= napps * min_ways, "not enough ways for the minimum allocation")
    neg = -np.inf
    best = np.full((napps + 1, total_ways + 1), neg)
    choice = np.zeros((napps + 1, total_ways + 1), dtype=int)
    best[0, 0] = 0.0
    for a in range(1, napps + 1):
        curve = hit_curves[a - 1]
        max_w = total_ways - (napps - a) * min_ways
        for s in range(a * min_ways, max_w + 1):
            for w in range(min_ways, s - (a - 1) * min_ways + 1):
                prev = best[a - 1, s - w]
                if prev == neg:
                    continue
                val = prev + curve[w - 1]
                if val > best[a, s]:
                    best[a, s] = val
                    choice[a, s] = w
    alloc = []
    s = total_ways
    for a in range(napps, 0, -1):
        w = int(choice[a, s])
        alloc.append(w)
        s -= w
    alloc.reverse()
    return tuple(alloc)
