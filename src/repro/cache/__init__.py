"""Cache substrate: LRU model, Auxiliary Tag Directory, partitioning, UCP."""

from repro.cache.lru import LRUSetCache, simulate_partitioned
from repro.cache.atd import ATDProfile, stack_distances, atd_profile, miss_curve_mpki
from repro.cache.mlp_atd import MLPTable, mlp_table_from_trace
from repro.cache.partitioning import Partition, partition_masks, repartition_delta
from repro.cache.ucp import ucp_lookahead

__all__ = [
    "LRUSetCache",
    "simulate_partitioned",
    "ATDProfile",
    "stack_distances",
    "atd_profile",
    "miss_curve_mpki",
    "MLPTable",
    "mlp_table_from_trace",
    "Partition",
    "partition_masks",
    "repartition_delta",
    "ucp_lookahead",
]
