"""MLP-aware ATD: Paper II's hardware extension.

While the original ATD counts total misses per way allocation, Paper II adds
a heuristic unit that *detects and ignores overlapping cache misses* for a
range of core sizes and cache allocations, so the RMA can predict memory
stall time as ``leading_misses * latency`` instead of ``misses * latency``.

We realise the same design: the sampled ATD sets' miss streams are run
through the leading-miss grouping of :mod:`repro.mem.mlp` for every
``(core size, way allocation)`` pair, and the resulting MLP factors are
stored in a small fixed-point table.  The fixed-point quantisation (4
fractional bits) models the paper's "< 300 bytes per core" hardware budget:
``ncore_sizes * ways`` entries of one byte each, plus the stock ATD counters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SystemConfig
from repro.mem.mlp import mlp_grid
from repro.util.validation import require
from repro.workloads.address_gen import AccessTrace
from repro.cache.atd import stack_distances

__all__ = ["MLPTable", "mlp_table_from_trace", "QUANT_STEPS"]

#: Fixed-point resolution of the hardware MLP counters (1/16 steps).
QUANT_STEPS = 16


@dataclass(frozen=True)
class MLPTable:
    """Quantised ``MLP[c, w]`` estimates as read from the MLP-aware ATD."""

    values: np.ndarray  # (ncore_sizes, ways)

    def __post_init__(self) -> None:
        require(self.values.ndim == 2, "MLP table must be 2-D (core sizes x ways)")
        require(bool(np.all(self.values >= 1.0 - 1e-9)), "MLP cannot be below 1")

    def at(self, core_index: int, ways: int) -> float:
        """MLP estimate for ``ways`` allocated ways on core size ``core_index``."""
        return float(self.values[core_index, ways - 1])

    @property
    def storage_bytes(self) -> int:
        """Hardware storage for the table at one byte per entry."""
        return int(self.values.size)


def quantize(values: np.ndarray) -> np.ndarray:
    """Round MLP factors to the hardware's fixed-point grid (>= 1.0)."""
    return np.maximum(np.round(values * QUANT_STEPS) / QUANT_STEPS, 1.0)


def mlp_table_from_trace(
    system: SystemConfig,
    trace: AccessTrace,
    mlp_sensitivity: float,
    sampled_sets: int | None = None,
) -> MLPTable:
    """Build the MLP-ATD reading for one phase.

    ``sampled_sets`` restricts the observation to the hardware's sampled sets
    (default: the system's ``atd_sampled_sets``), which -- together with the
    fixed-point quantisation -- is the Model 3 estimation error.  Pass
    ``system.llc.model_sets`` for a full-trace (ground-truth) table.
    """
    nsets = system.llc.model_sets
    sample = system.llc.atd_sampled_sets if sampled_sets is None else sampled_sets
    sub = trace.restrict_to_sets(sample) if sample < nsets else trace
    dists = stack_distances(sub, system.llc.ways, nsets)
    grid = mlp_grid(system, dists, sub.instr_pos, sub.chain_ids, mlp_sensitivity)
    return MLPTable(values=quantize(grid))
