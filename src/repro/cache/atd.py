"""Auxiliary Tag Directory: stack-distance profiling of an access trace.

The ATD (Qureshi & Patt, MICRO 2006) shadows the tags of the LLC and counts,
for each access, the LRU *stack distance* -- the position the line would
occupy in a fully-provisioned set.  By the LRU inclusion property, the hit
count for a ``w``-way allocation is the number of accesses with distance
``<= w``; a single pass therefore yields the complete miss curve
``misses(w)``, which is the input to the paper's performance model.

Real ATDs sample a few dozen sets to keep hardware cost negligible; the
online reading the RMA sees is produced by :func:`atd_profile` on the
set-restricted sub-trace (see ``AccessTrace.restrict_to_sets``), which is the
paper's (and our) source of cache-curve sampling error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import require
from repro.workloads.address_gen import AccessTrace

__all__ = ["ATDProfile", "stack_distances", "atd_profile", "miss_curve_mpki"]

#: Stack distance assigned to cold misses / distances beyond the tracked ways.
COLD = np.iinfo(np.int32).max


def stack_distances(trace: AccessTrace, max_ways: int, nsets: int) -> np.ndarray:
    """Per-access LRU stack distances (1-based; ``COLD`` for misses at any w).

    Implemented with per-set MRU-first lists truncated at ``max_ways``:
    distances beyond the largest allocation of interest are misses for every
    allocation, so deeper tracking would be wasted work (this mirrors the
    hardware, whose ATD has exactly ``max_ways`` ways).
    """
    require(max_ways >= 1, "max_ways must be >= 1")
    dists = np.full(trace.n_accesses, COLD, dtype=np.int32)
    stacks: list[list[int]] = [[] for _ in range(nsets)]
    set_list = trace.set_ids.tolist()
    line_list = trace.line_ids.tolist()
    for i, (s, line) in enumerate(zip(set_list, line_list)):
        stack = stacks[s]
        try:
            idx = stack.index(line)
        except ValueError:
            stack.insert(0, line)
            if len(stack) > max_ways:
                stack.pop()
            continue
        dists[i] = idx + 1
        stack.pop(idx)
        stack.insert(0, line)
    return dists


@dataclass(frozen=True)
class ATDProfile:
    """Way-hit counters plus the derived miss curve for one phase's trace.

    Attributes
    ----------
    hits_at_distance:
        ``hits_at_distance[d-1]`` = accesses whose stack distance is exactly
        ``d`` (the hardware's per-way hit counters).
    misses:
        ``misses[w-1]`` = misses with a ``w``-way allocation.
    accesses:
        Total accesses profiled.
    instructions:
        Instructions spanned by the profiled trace (for MPKI conversion).
    """

    hits_at_distance: np.ndarray  # (max_ways,)
    misses: np.ndarray            # (max_ways,)
    accesses: int
    instructions: float

    def __post_init__(self) -> None:
        require(len(self.hits_at_distance) == len(self.misses), "length mismatch")

    @property
    def max_ways(self) -> int:
        return int(len(self.misses))

    def mpki(self) -> np.ndarray:
        """Misses per kilo-instruction as a function of way allocation."""
        return self.misses / self.instructions * 1000.0

    def apki(self) -> float:
        """LLC accesses per kilo-instruction."""
        return self.accesses / self.instructions * 1000.0

    def hit_curve(self) -> np.ndarray:
        """Hits as a function of way allocation (non-decreasing)."""
        return np.cumsum(self.hits_at_distance)


def atd_profile(
    dists: np.ndarray,
    max_ways: int,
    instructions: float,
    scale: float = 1.0,
) -> ATDProfile:
    """Build an :class:`ATDProfile` from per-access stack distances.

    ``scale`` extrapolates sampled-set counts to the full cache (the hardware
    multiplies its counters by ``total_sets / sampled_sets``; rates like MPKI
    are invariant to it because instructions are not scaled -- we scale the
    *instructions* down instead so both counts and rates stay consistent).
    """
    clipped = np.where(dists == COLD, max_ways + 1, dists)
    hist = np.bincount(clipped, minlength=max_ways + 2)
    hits_at_distance = hist[1 : max_ways + 1].astype(np.int64)
    n = int(len(dists))
    misses = n - np.cumsum(hits_at_distance)
    return ATDProfile(
        hits_at_distance=hits_at_distance,
        misses=misses.astype(np.int64),
        accesses=n,
        instructions=instructions * scale,
    )


def miss_curve_mpki(trace: AccessTrace, max_ways: int, nsets: int) -> np.ndarray:
    """Convenience: MPKI(w) for ``trace`` in one call."""
    dists = stack_distances(trace, max_ways, nsets)
    return atd_profile(dists, max_ways, trace.instructions).mpki()
