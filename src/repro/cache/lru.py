"""Set-associative LRU cache model with way-partition enforcement.

This is the functional model of the shared LLC: a directly simulatable cache
used by tests and by the warm-up/repartition overhead analysis.  The
stack-distance machinery that the ATD uses lives in :mod:`repro.cache.atd`;
by the LRU *inclusion property* a single ATD pass yields hit counts for every
way allocation at once, and the tests cross-validate the two models against
each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.validation import require

__all__ = ["LRUSetCache", "simulate_partitioned"]


@dataclass
class LRUSetCache:
    """A cache with ``nsets`` sets of ``ways`` ways, true-LRU replacement.

    Lines are identified by ``(set_id, line_id)``; each set keeps an MRU-first
    list.  ``access`` returns True on hit.
    """

    nsets: int
    ways: int
    _sets: list[list[int]] = field(init=False, repr=False)
    hits: int = field(init=False, default=0)
    misses: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        require(self.nsets >= 1, "nsets must be >= 1")
        require(self.ways >= 1, "ways must be >= 1")
        self._sets = [[] for _ in range(self.nsets)]

    def access(self, set_id: int, line_id: int) -> bool:
        """Access a line, updating LRU state; returns True on a hit."""
        stack = self._sets[set_id]
        try:
            idx = stack.index(line_id)
        except ValueError:
            self.misses += 1
            stack.insert(0, line_id)
            if len(stack) > self.ways:
                stack.pop()
            return False
        self.hits += 1
        stack.pop(idx)
        stack.insert(0, line_id)
        return True

    def resident_lines(self, set_id: int) -> tuple[int, ...]:
        """Lines currently resident in ``set_id`` (MRU first)."""
        return tuple(self._sets[set_id])

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0


def simulate_partitioned(
    set_ids: np.ndarray,
    line_ids: np.ndarray,
    owner: np.ndarray,
    ways_per_owner: dict[int, int],
    nsets: int,
) -> dict[int, tuple[int, int]]:
    """Replay an interleaved multi-owner access stream under way partitioning.

    Each owner gets a private LRU region of ``ways_per_owner[o]`` ways in
    every set (strict partitioning, as the paper's framework requires).
    Returns ``{owner: (hits, misses)}``.

    This models the *effect* of partition bit-masks: with strict masks an
    owner's lines never evict another owner's, so per-owner behaviour equals a
    private cache of its allocated ways -- the property the RMA's per-core
    miss curves rely on, and which the tests verify.
    """
    require(len(set_ids) == len(line_ids) == len(owner), "column length mismatch")
    caches = {o: LRUSetCache(nsets, w) for o, w in ways_per_owner.items()}
    for s, l, o in zip(set_ids.tolist(), line_ids.tolist(), owner.tolist()):
        caches[o].access(s, l)
    return {o: (c.hits, c.misses) for o, c in caches.items()}
