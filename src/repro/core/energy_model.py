"""The RMA's analytical energy model: ``E_hat(c, f, w)`` from counters.

Mirrors the platform's energy structure (:mod:`repro.cpu.power`) but is fed
exclusively with online-observable estimates: the counter-calibrated dynamic
EPI, the sampled ATD miss curve, and the performance model's predicted TPI
(for the time-integrated static terms).  It captures "the energy consumption
of the core and main memory accesses" as the paper specifies.
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.cpu.counters import CounterSnapshot
from repro.cpu.dvfs import voltage_ratio, voltage_ratio_sq
from repro.util.identity_memo import identity_memo

__all__ = ["predict_epi_grid", "predict_epi_grid_batch"]

#: Per-system model constants (voltage ratios, core-size factors), memoised
#: by object identity: they are pure functions of the immutable
#: SystemConfig and were rebuilt on every grid prediction.
_CONSTS: dict[int, tuple] = {}


def _build_constants(system: SystemConfig) -> tuple:
    freqs = system.vf.freqs_array()
    vr = voltage_ratio(system.vf, freqs)
    vr2 = voltage_ratio_sq(system.vf, freqs)
    epi_factors = np.array([c.epi_factor for c in system.core_sizes])
    leak_factors = np.array([c.leak_factor for c in system.core_sizes])
    return vr, vr2, epi_factors, leak_factors


def _system_constants(system: SystemConfig) -> tuple:
    return identity_memo(_CONSTS, system, _build_constants)


def predict_epi_grid(
    system: SystemConfig,
    snapshot: CounterSnapshot,
    mpki_hat: np.ndarray,
    tpi_hat: np.ndarray,
) -> np.ndarray:
    """Predicted ``EPI[c, f, w]`` (nJ/instr) for the next interval."""
    vr, vr2, epi_factors, leak_factors = _system_constants(system)
    ways = np.arange(1, len(mpki_hat) + 1, dtype=float)
    mpi = np.asarray(mpki_hat, dtype=float) / 1000.0
    api = snapshot.llc_accesses / snapshot.instructions

    core_dyn = snapshot.epi_dyn_est_nj * epi_factors[:, None, None] * vr2[None, :, None]
    leak_w = system.core_leak_w * leak_factors[:, None, None] * vr[None, :, None]
    core_static = leak_w * tpi_hat
    llc = (
        system.llc_access_energy_nj * api
        + system.llc_way_static_w * ways[None, None, :] * tpi_hat
    )
    dram = (
        system.mem.energy_per_access_nj * mpi[None, None, :]
        + (system.mem.background_power_w / system.ncores) * tpi_hat
    )
    return core_dyn + core_static + llc + dram


def predict_epi_grid_batch(
    system: SystemConfig,
    snapshots: list[CounterSnapshot],
    mpki_batch: np.ndarray,
    tpi_batch: np.ndarray,
) -> np.ndarray:
    """Batched :func:`predict_epi_grid`: ``EPI[n, c, f, w]`` for ``N`` cores.

    Mirrors the per-core expressions term by term with a leading batch axis,
    so every ``[n]`` slice is bit-identical to the scalar call.
    """
    vr, vr2, epi_factors, leak_factors = _system_constants(system)
    ways = np.arange(1, mpki_batch.shape[1] + 1, dtype=float)
    mpi = np.asarray(mpki_batch, dtype=float) / 1000.0               # (N, W)
    epi_dyn = np.array([s.epi_dyn_est_nj for s in snapshots])
    api = np.array([s.llc_accesses for s in snapshots]) / np.array(
        [s.instructions for s in snapshots]
    )

    core_dyn = (
        epi_dyn[:, None, None, None]
        * epi_factors[None, :, None, None]
        * vr2[None, None, :, None]
    )
    leak_w = (
        system.core_leak_w
        * leak_factors[None, :, None, None]
        * vr[None, None, :, None]
    )
    core_static = leak_w * tpi_batch
    llc = (
        (system.llc_access_energy_nj * api)[:, None, None, None]
        + system.llc_way_static_w * ways[None, None, None, :] * tpi_batch
    )
    dram = (
        system.mem.energy_per_access_nj * mpi[:, None, None, :]
        + (system.mem.background_power_w / system.ncores) * tpi_batch
    )
    return core_dyn + core_static + llc + dram
