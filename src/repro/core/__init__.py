"""The paper's contribution: the coordinated QoS-driven resource manager.

Structure mirrors Figure 3.1/3.2 of the thesis:

counters + ATD -> performance model -> QoS pruning (local optimisation)
-> per-core energy curves -> global optimisation (recursive reduction)
-> optimum system setting {w*, f*, c*}.
"""

from repro.core.curves import EnergyCurve
from repro.core.models import Model1, Model2, Model3, MLP_MODELS
from repro.core.perf_model import predict_tpi_grid, predict_tpi_grid_batch
from repro.core.energy_model import predict_epi_grid, predict_epi_grid_batch
from repro.core.qos import qos_target_tpi
from repro.core.local_opt import DimSpec, local_optimize, local_optimize_batch
from repro.core.global_opt import (
    ReductionTree,
    cluster_way_caps,
    global_optimize,
    partition_clusters,
)
from repro.core.batch_opt import analytical_curves_batch, oracle_curves_batch
from repro.core.overhead_meter import OverheadMeter
from repro.core.managers import (
    ResourceManager,
    StaticBaselineManager,
    CoordinatedManager,
    ClusteredManager,
    IndependentManager,
    rm1_partitioning_only,
    rm2_combined,
    rm3_core_adaptive,
    dvfs_only,
)
from repro.core.history import HistoryAwareManager, rm2_history, rm3_history
from repro.core.colocation import profile_app, suggest_colocation

__all__ = [
    "EnergyCurve",
    "Model1",
    "Model2",
    "Model3",
    "MLP_MODELS",
    "predict_tpi_grid",
    "predict_tpi_grid_batch",
    "predict_epi_grid",
    "predict_epi_grid_batch",
    "qos_target_tpi",
    "DimSpec",
    "local_optimize",
    "local_optimize_batch",
    "global_optimize",
    "ReductionTree",
    "partition_clusters",
    "cluster_way_caps",
    "analytical_curves_batch",
    "oracle_curves_batch",
    "OverheadMeter",
    "ResourceManager",
    "StaticBaselineManager",
    "CoordinatedManager",
    "ClusteredManager",
    "IndependentManager",
    "HistoryAwareManager",
    "rm2_history",
    "rm3_history",
    "profile_app",
    "suggest_colocation",
    "rm1_partitioning_only",
    "rm2_combined",
    "rm3_core_adaptive",
    "dvfs_only",
]
