"""The resource managers evaluated in the papers.

All managers share one engine (:class:`CoordinatedManager`): analytical
models -> QoS-pruned local optimisation -> global curve reduction.  The
papers' schemes are restrictions of its dimension set:

* ``rm1_partitioning_only`` -- LLC partitioning at fixed baseline VF/core
  (Paper I's "Partitioning RMA" / Paper II's RM1);
* ``rm2_combined`` -- per-core DVFS + LLC partitioning (Paper I's proposal,
  Paper II's RM2);
* ``rm3_core_adaptive`` -- core size + DVFS + LLC partitioning (Paper II's
  proposal, RM3);
* ``dvfs_only`` -- per-core DVFS at the fixed equal LLC split (the scheme
  the paper notes "cannot save energy without degrading the performance"
  under strict QoS);
* :class:`StaticBaselineManager` -- the QoS anchor: never reconfigures.

Realistic managers decide from the invoking core's last-interval counters and
sampled ATD readings, holding other cores' curves from their own last
invocations (exactly the paper's protocol, including keeping the baseline
setting until a core has statistics).  ``oracle=True`` gives every decision
error-free statistics for the *upcoming* interval of every core -- the
paper's "perfect models" configuration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.config import Allocation, SystemConfig
from repro.core.curves import EnergyCurve
from repro.core.energy_model import predict_epi_grid
from repro.core.global_opt import global_optimize
from repro.core.local_opt import DimSpec, local_optimize
from repro.core.models import MLP_MODELS
from repro.core.overhead_meter import OverheadMeter
from repro.core.perf_model import predict_tpi_grid
from repro.core.qos import qos_target_tpi

__all__ = [
    "ResourceManager",
    "StaticBaselineManager",
    "CoordinatedManager",
    "IndependentManager",
    "rm1_partitioning_only",
    "rm2_combined",
    "rm3_core_adaptive",
    "dvfs_only",
]


class ResourceManager(ABC):
    """Interface the RMA simulator drives.

    ``attach`` is called once per simulation run and must reset all run
    state; ``on_interval`` is called on the core that just completed an
    execution interval and may return a full new allocation map.
    """

    name: str = "manager"

    def __init__(self) -> None:
        self.meter = OverheadMeter()
        self.sim = None

    def attach(self, sim) -> None:
        self.sim = sim
        self.meter = OverheadMeter()

    def on_scenario_event(self, core_id: int, kind: str) -> None:
        """The co-location set changed on ``core_id`` (scenario swap/depart).

        Managers holding per-core state derived from the departed tenant --
        energy curves, phase history, cache profiles -- must discard it here
        and re-derive from the new tenant's statistics.
        """
        return None

    @abstractmethod
    def on_interval(self, core_id: int) -> dict[int, Allocation] | None:
        """Decide new allocations after ``core_id`` finished an interval."""


class StaticBaselineManager(ResourceManager):
    """The baseline: every core keeps the baseline allocation forever."""

    name = "baseline"

    def on_interval(self, core_id: int) -> None:
        return None


class CoordinatedManager(ResourceManager):
    """The paper's coordinated RMA engine (configurable dimensions)."""

    def __init__(
        self,
        name: str,
        control_dvfs: bool = True,
        control_core_size: bool = False,
        control_partitioning: bool = True,
        mlp_model: str = "model2",
        oracle: bool = False,
    ) -> None:
        super().__init__()
        self.name = name
        self.control_dvfs = control_dvfs
        self.control_core_size = control_core_size
        self.control_partitioning = control_partitioning
        self.model = MLP_MODELS[mlp_model]
        self.oracle = oracle
        self.curves: dict[int, EnergyCurve] = {}

    def attach(self, sim) -> None:
        super().attach(sim)
        self.curves = {}

    def on_scenario_event(self, core_id: int, kind: str) -> None:
        # The cached curve models the departed tenant; the new one (or the
        # idle core) is pinned until fresh statistics arrive.
        self.curves.pop(core_id, None)

    # -- dimension restrictions ---------------------------------------------
    def _dims(self, system: SystemConfig) -> DimSpec:
        cores = None if self.control_core_size else (system.baseline_core_index,)
        freqs = None if self.control_dvfs else (system.baseline_freq_index,)
        pin = None if self.control_partitioning else system.baseline_ways
        return DimSpec(core_indices=cores, freq_indices=freqs, pin_ways=pin)

    # -- curve construction ---------------------------------------------------
    def _oracle_curve(self, core_id: int) -> EnergyCurve:
        sim, system = self.sim, self.sim.system
        rec = sim.upcoming_record(core_id)
        target = qos_target_tpi(system, rec.tpi, sim.slack(core_id))
        return local_optimize(
            system, core_id, rec.tpi, rec.epi, target, self._dims(system), self.meter
        )

    def _analytical_curve(self, core_id: int) -> EnergyCurve:
        sim, system = self.sim, self.sim.system
        snap = sim.completed_snapshot(core_id)
        rec = sim.completed_record(core_id)
        mlp_hat = self.model.mlp_hat(system, snap, rec.mlp_sampled)
        tpi = predict_tpi_grid(system, snap, rec.mpki_sampled, mlp_hat)
        epi = predict_epi_grid(system, snap, rec.mpki_sampled, tpi)
        target = qos_target_tpi(system, tpi, sim.slack(core_id))
        return local_optimize(
            system, core_id, tpi, epi, target, self._dims(system), self.meter
        )

    def _pinned_curve(self, core_id: int) -> EnergyCurve:
        """Baseline-pinned curve for a core without statistics yet."""
        system = self.sim.system
        base = system.baseline_allocation()
        return EnergyCurve.pinned(
            core_id,
            ways=base.ways,
            core_idx=base.core,
            freq_idx=base.freq,
            max_ways=system.llc.ways,
        )

    def _idle_curve(self, core_id: int) -> EnergyCurve:
        """Curve for an idle (power-gated) core: release all but the minimum ways.

        Idle tenancy is the one case where shrinking a partition is free, so
        the global optimiser hands the freed capacity to the active tenants.
        """
        system = self.sim.system
        return EnergyCurve.pinned(
            core_id,
            ways=system.min_ways_per_core,
            core_idx=system.baseline_core_index,
            freq_idx=system.baseline_freq_index,
            max_ways=system.llc.ways,
        )

    def _curve_for(self, core_id: int) -> EnergyCurve:
        if not self.sim.is_active(core_id):
            return self._idle_curve(core_id)
        if self.oracle:
            return self._oracle_curve(core_id)
        if core_id in self.curves:
            return self.curves[core_id]
        return self._pinned_curve(core_id)

    # -- the decision ----------------------------------------------------------
    def on_interval(self, core_id: int) -> dict[int, Allocation] | None:
        sim, system = self.sim, self.sim.system
        self.meter.begin_invocation()

        if not self.oracle:
            self.curves[core_id] = self._analytical_curve(core_id)
        curves = [self._curve_for(j) for j in range(system.ncores)]

        assignment = global_optimize(
            curves,
            total_ways=system.llc.ways,
            min_ways=system.min_ways_per_core,
            meter=self.meter,
        )
        if assignment is None:
            return None
        return {
            j: Allocation(core=c, freq=f, ways=w)
            for j, (c, f, w) in assignment.items()
        }


def rm1_partitioning_only(oracle: bool = False, mlp_model: str = "model2") -> CoordinatedManager:
    """RM1: LLC partitioning only, at baseline VF and core size."""
    return CoordinatedManager(
        name="rm1-partitioning",
        control_dvfs=False,
        control_core_size=False,
        control_partitioning=True,
        mlp_model=mlp_model,
        oracle=oracle,
    )


def rm2_combined(oracle: bool = False, mlp_model: str = "model2") -> CoordinatedManager:
    """RM2: coordinated per-core DVFS + LLC partitioning (Paper I)."""
    return CoordinatedManager(
        name="rm2-combined",
        control_dvfs=True,
        control_core_size=False,
        control_partitioning=True,
        mlp_model=mlp_model,
        oracle=oracle,
    )


def rm3_core_adaptive(oracle: bool = False, mlp_model: str = "model3") -> CoordinatedManager:
    """RM3: core size + DVFS + LLC partitioning (Paper II)."""
    return CoordinatedManager(
        name="rm3-core-adaptive",
        control_dvfs=True,
        control_core_size=True,
        control_partitioning=True,
        mlp_model=mlp_model,
        oracle=oracle,
    )


def dvfs_only(oracle: bool = False, mlp_model: str = "model2") -> CoordinatedManager:
    """Per-core DVFS at the fixed equal LLC split (ablation)."""
    return CoordinatedManager(
        name="dvfs-only",
        control_dvfs=True,
        control_core_size=False,
        control_partitioning=False,
        mlp_model=mlp_model,
        oracle=oracle,
    )

class IndependentManager(ResourceManager):
    """Uncoordinated controllers: UCP cache partitioning + per-core DVFS.

    The strawman the paper argues against (thesis §3.1): the cache controller
    partitions to *minimise total misses* (Qureshi-Patt UCP) with no notion of
    per-application QoS; a separate DVFS controller then tries to hold each
    core's QoS at whatever allocation it was handed.  When UCP strips a
    cache-sensitive application of its ways, no frequency can recover the lost
    performance (the memory term is frequency-independent) and the QoS
    constraint is violated -- the precise failure mode that motivates
    coordinated management.
    """

    name = "independent-ucp-dvfs"

    def __init__(self, mlp_model: str = "model2") -> None:
        super().__init__()
        self.model = MLP_MODELS[mlp_model]
        self.hit_curves: dict[int, object] = {}
        self.snapshots: dict[int, object] = {}

    def attach(self, sim) -> None:
        super().attach(sim)
        self.hit_curves = {}
        self.snapshots = {}

    def on_scenario_event(self, core_id: int, kind: str) -> None:
        self.hit_curves.pop(core_id, None)
        self.snapshots.pop(core_id, None)

    def on_interval(self, core_id: int) -> dict[int, Allocation] | None:
        import numpy as np

        from repro.cache.ucp import ucp_lookahead

        sim, system = self.sim, self.sim.system
        self.meter.begin_invocation()
        snap = sim.completed_snapshot(core_id)
        rec = sim.completed_record(core_id)
        # per-way hits/kilo-instruction from the sampled ATD
        self.hit_curves[core_id] = rec.apki - np.asarray(rec.mpki_sampled)
        self.snapshots[core_id] = (snap, rec)

        active = [j for j in range(system.ncores) if sim.is_active(j)]
        if any(j not in self.hit_curves for j in active):
            return None  # UCP waits until every active core has a profile

        # Unprofiled (idle) cores keep their current ways; UCP partitions
        # the remainder among the profiled cores.
        order = sorted(self.hit_curves)
        held = sum(
            sim.current_alloc(j).ways
            for j in range(system.ncores)
            if j not in self.hit_curves
        )
        alloc_ways = ucp_lookahead(
            [self.hit_curves[j] for j in order],
            total_ways=system.llc.ways - held,
            min_ways=system.min_ways_per_core,
        )
        self.meter.charge_dp(system.llc.ways * system.ncores)

        out: dict[int, Allocation] = {}
        for j, ways in zip(order, alloc_ways):
            snap_j, rec_j = self.snapshots[j]
            mlp_hat = self.model.mlp_hat(system, snap_j, rec_j.mlp_sampled)
            tpi = predict_tpi_grid(system, snap_j, rec_j.mpki_sampled, mlp_hat)
            epi = predict_epi_grid(system, snap_j, rec_j.mpki_sampled, tpi)
            target = qos_target_tpi(system, tpi, sim.slack(j))
            dims = DimSpec(core_indices=(system.baseline_core_index,), pin_ways=ways)
            curve = local_optimize(system, j, tpi, epi, target, dims, self.meter)
            if np.isfinite(curve.epi[ways - 1]):
                c, f, w = curve.setting_at(ways)
            else:
                # No frequency can hold QoS at this allocation: run flat out.
                c, f, w = system.baseline_core_index, system.vf.nlevels - 1, ways
            out[j] = Allocation(core=c, freq=f, ways=w)
        return out
