"""The resource managers evaluated in the papers.

All managers share one engine (:class:`CoordinatedManager`): analytical
models -> QoS-pruned local optimisation -> global curve reduction.  The
papers' schemes are restrictions of its dimension set:

* ``rm1_partitioning_only`` -- LLC partitioning at fixed baseline VF/core
  (Paper I's "Partitioning RMA" / Paper II's RM1);
* ``rm2_combined`` -- per-core DVFS + LLC partitioning (Paper I's proposal,
  Paper II's RM2);
* ``rm3_core_adaptive`` -- core size + DVFS + LLC partitioning (Paper II's
  proposal, RM3);
* ``dvfs_only`` -- per-core DVFS at the fixed equal LLC split (the scheme
  the paper notes "cannot save energy without degrading the performance"
  under strict QoS);
* :class:`StaticBaselineManager` -- the QoS anchor: never reconfigures.

Realistic managers decide from the invoking core's last-interval counters and
sampled ATD readings, holding other cores' curves from their own last
invocations (exactly the paper's protocol, including keeping the baseline
setting until a core has statistics).  ``oracle=True`` gives every decision
error-free statistics for the *upcoming* interval of every core -- the
paper's "perfect models" configuration.

Two execution pipelines produce bit-identical decisions and metered
overheads:

* the **batched incremental pipeline** (default, ``incremental=True``):
  curve construction runs through :mod:`repro.core.batch_opt`'s stacked
  ``(N, C, F, W)`` tensors, per-core curves are memoized on a digest of
  (counter snapshot, ATD miss curve, QoS slack), and the global reduction
  uses a persistent :class:`~repro.core.global_opt.ReductionTree` that only
  re-combines the ``O(log N)`` root path of leaves that actually changed;
* the **reference pipeline** (``incremental=False``): the original
  recompute-everything path, kept as the executable specification --
  ``tests/test_engine_equivalence.py`` replays both and compares with ``==``
  on every number, and ``tools/bench_manager_overhead.py`` measures the
  speedup against it.

For many-core systems (64-256 cores) the flat global reduction itself is
the scaling wall: the top combines of the min-plus tree widen with the full
LLC associativity, so every invocation pays a superlinear cost in the core
count.  :class:`ClusteredManager` adds a hierarchical tier above the same
machinery: cores are partitioned into clusters (``cluster_size``), each
cluster runs the batched local pipeline plus its own capped
:class:`~repro.core.global_opt.ReductionTree`, and a second-level tree
combines the per-cluster aggregate curves to redistribute LLC ways -- and
with them the power/slack headroom the QoS-pruned curves encode -- across
clusters.  With one cluster it is bit-identical to the flat incremental
manager; with many, it trades a bounded energy gap (the cluster way caps)
for per-invocation work that scales with the cluster size instead of the
system size.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

import numpy as np

from repro.config import Allocation, AllocationMap, SystemConfig
from repro.core.batch_opt import analytical_curves_batch, oracle_curves_batch
from repro.core.curves import EnergyCurve
from repro.core.energy_model import predict_epi_grid
from repro.core.global_opt import (
    ReductionTree,
    cluster_way_caps,
    global_optimize,
    partition_clusters,
)
from repro.core.local_opt import DimSpec, local_optimize
from repro.core.models import MLP_MODELS
from repro.core.packed_tree import PackedReduction, packed_enabled
from repro.core.overhead_meter import OverheadMeter
from repro.core.perf_model import predict_tpi_grid
from repro.core.qos import qos_target_tpi
from repro.util.validation import require

__all__ = [
    "ResourceManager",
    "StaticBaselineManager",
    "CoordinatedManager",
    "ClusteredManager",
    "IndependentManager",
    "rm1_partitioning_only",
    "rm2_combined",
    "rm3_core_adaptive",
    "dvfs_only",
]


class ResourceManager(ABC):
    """Interface the RMA simulator drives.

    ``attach`` is called once per simulation run and must reset all run
    state; ``on_interval`` is called on the core that just completed an
    execution interval and may return a full new allocation map.
    """

    name: str = "manager"

    def __init__(self) -> None:
        self.meter = OverheadMeter()
        self.sim = None
        self._stage_timer = None

    def attach(self, sim) -> None:
        """Bind the manager to a simulator run and reset its run state."""
        self.sim = sim
        self.meter = OverheadMeter()
        # Kernel-owned per-stage profiling (REPRO_PROFILE); None when off or
        # when the simulator bridge predates the hook.
        self._stage_timer = getattr(sim, "stage_timer", None)

    def on_scenario_event(self, core_id: int, kind: str) -> None:
        """The co-location set changed on ``core_id`` (scenario swap/depart).

        Managers holding per-core state derived from the departed tenant --
        energy curves, phase history, cache profiles -- must discard it here
        and re-derive from the new tenant's statistics.
        """
        return None

    @abstractmethod
    def on_interval(self, core_id: int) -> dict[int, Allocation] | None:
        """Decide new allocations after ``core_id`` finished an interval.

        The returned map is owned by the simulator from this point on and
        must not be mutated in place afterwards; a manager re-serving a
        fully cached decision may return the same dict object again, which
        the kernel recognises as already applied.
        """


class StaticBaselineManager(ResourceManager):
    """The baseline: every core keeps the baseline allocation forever."""

    name = "baseline"

    def on_interval(self, core_id: int) -> None:
        """Never reconfigure: the QoS anchor holds the baseline setting."""
        return None


#: Curve-memo entries per manager before the table is dropped wholesale
#: (phases x allocations x slack levels stays far below this in practice).
MEMO_CAP = 8192


class CoordinatedManager(ResourceManager):
    """The paper's coordinated RMA engine (configurable dimensions)."""

    def __init__(
        self,
        name: str,
        control_dvfs: bool = True,
        control_core_size: bool = False,
        control_partitioning: bool = True,
        mlp_model: str = "model2",
        oracle: bool = False,
        incremental: bool = True,
    ) -> None:
        super().__init__()
        self.name = name
        self.control_dvfs = control_dvfs
        self.control_core_size = control_core_size
        self.control_partitioning = control_partitioning
        self.model = MLP_MODELS[mlp_model]
        self.oracle = oracle
        self.incremental = incremental
        self.curves: dict[int, EnergyCurve] = {}
        self._tree: ReductionTree | None = None
        self._memo: dict = {}
        self._memo_shared: dict = {}
        self._pinned_cache: dict[int, EnergyCurve] = {}
        self._idle_cache: dict[int, EnergyCurve] = {}
        self._alloc_cache: dict[tuple[int, int, int], Allocation] = {}
        self._alloc_out: tuple | None = None
        self._rec_digests: dict[tuple, tuple[bytes, bytes]] = {}

    def attach(self, sim) -> None:
        """Reset all run state and (re)build the incremental reduction trees."""
        super().attach(sim)
        self.curves = {}
        self._memo = {}
        self._memo_shared = {}
        self._pinned_cache = {}
        self._idle_cache = {}
        self._alloc_cache = {}
        self._alloc_out = None
        # Per-run: a reattached manager may face a different database whose
        # records reuse the same (bench, phase) identities.
        self._rec_digests = {}
        self._tree = None
        if self.incremental:
            self._init_trees(sim.system)

    def _init_trees(self, system: SystemConfig) -> None:
        """Build the persistent reduction structure for ``incremental=True``.

        The flat manager keeps one tree over all cores -- at many-core
        scale (:func:`~repro.core.packed_tree.packed_enabled`) the packed
        level-synchronous variant, below it the node-graph reference; both
        expose the same ``set_leaves``/``invalidate``/``solve`` surface and
        are bit-identical.  :class:`ClusteredManager` overrides this with
        the hierarchical tier.
        """
        if packed_enabled(system.ncores):
            self._tree = PackedReduction(
                (system.ncores,), (system.llc.ways,),
                system.llc.ways, system.min_ways_per_core,
            )
        else:
            self._tree = ReductionTree(
                system.ncores, system.llc.ways, system.min_ways_per_core
            )

    def on_scenario_event(self, core_id: int, kind: str) -> None:
        """Drop the departed tenant's curve and splice the tree leaf.

        The cached curve models the departed tenant; the new one (or the
        idle core) is pinned until fresh statistics arrive.  The reduction
        tree's leaf is spliced (forced dirty) so the next solve re-combines
        its root path even if the replacement curve compares equal.
        """
        self.curves.pop(core_id, None)
        if self._tree is not None:
            self._tree.invalidate(core_id)

    # -- dimension restrictions ---------------------------------------------
    def _dims(self, system: SystemConfig) -> DimSpec:
        cores = None if self.control_core_size else (system.baseline_core_index,)
        freqs = None if self.control_dvfs else (system.baseline_freq_index,)
        pin = None if self.control_partitioning else system.baseline_ways
        return DimSpec(core_indices=cores, freq_indices=freqs, pin_ways=pin)

    # -- curve construction ---------------------------------------------------
    def _oracle_curve(self, core_id: int) -> EnergyCurve:
        sim, system = self.sim, self.sim.system
        rec = sim.upcoming_record(core_id)
        target = qos_target_tpi(system, rec.tpi, sim.slack(core_id))
        return local_optimize(
            system, core_id, rec.tpi, rec.epi, target, self._dims(system), self.meter
        )

    def _analytical_curve(self, core_id: int) -> EnergyCurve:
        sim, system = self.sim, self.sim.system
        snap = sim.completed_snapshot(core_id)
        rec = sim.completed_record(core_id)
        mlp_hat = self.model.mlp_hat(system, snap, rec.mlp_sampled)
        tpi = predict_tpi_grid(system, snap, rec.mpki_sampled, mlp_hat)
        epi = predict_epi_grid(system, snap, rec.mpki_sampled, tpi)
        target = qos_target_tpi(system, tpi, sim.slack(core_id))
        return local_optimize(
            system, core_id, tpi, epi, target, self._dims(system), self.meter
        )

    def _pinned_curve(self, core_id: int) -> EnergyCurve:
        """Baseline-pinned curve for a core without statistics yet."""
        system = self.sim.system
        base = system.baseline_allocation()
        return EnergyCurve.pinned(
            core_id,
            ways=base.ways,
            core_idx=base.core,
            freq_idx=base.freq,
            max_ways=system.llc.ways,
        )

    def _idle_curve(self, core_id: int) -> EnergyCurve:
        """Curve for an idle (power-gated) core: release all but the minimum ways.

        Idle tenancy is the one case where shrinking a partition is free, so
        the global optimiser hands the freed capacity to the active tenants.
        """
        system = self.sim.system
        return EnergyCurve.pinned(
            core_id,
            ways=system.min_ways_per_core,
            core_idx=system.baseline_core_index,
            freq_idx=system.baseline_freq_index,
            max_ways=system.llc.ways,
        )

    def _curve_for(self, core_id: int) -> EnergyCurve:
        if not self.sim.is_active(core_id):
            return self._idle_curve(core_id)
        if self.oracle:
            return self._oracle_curve(core_id)
        if core_id in self.curves:
            return self.curves[core_id]
        return self._pinned_curve(core_id)

    # -- memoized / cached curve plumbing (batched pipeline) -------------------
    def _static_leaf(self, core_id: int, idle: bool) -> EnergyCurve:
        """Cached pinned/idle curve: constant per (core, run), reused so the
        reduction tree's identity check recognises unchanged leaves."""
        cache = self._idle_cache if idle else self._pinned_cache
        curve = cache.get(core_id)
        if curve is None:
            curve = self._idle_curve(core_id) if idle else self._pinned_curve(core_id)
            cache[core_id] = curve
        return curve

    def _memo_put(self, key, curve: EnergyCurve, grid_points: int) -> None:
        if len(self._memo) >= MEMO_CAP:
            self._memo.clear()
        self._memo[key] = (curve, grid_points)

    def _analytical_curve_memo(self, core_id: int) -> EnergyCurve:
        """Memoized `_analytical_curve`: phase-stable cores skip recomputation.

        The curve is a pure function of (counter snapshot, sampled ATD
        curves, QoS slack) for a fixed manager, so the digest key fully
        determines the output and a hit can never be stale: any QoS-ramp,
        swap or allocation change alters the key.  Hits replay the modelled
        grid cost so the metered overhead matches the recomputing reference.

        Memoization is two-level.  The per-core table serves repeat
        invocations with the *same object*, which is what lets the
        reduction tree recognise an unchanged leaf by identity.  Behind it,
        a content-keyed table is shared across cores: the digest determines
        the curve up to its ``core_id`` label (many-core scenario mixes run
        the same phases at the same settings on many cores), so a
        cross-core hit relabels the stored curve -- sharing its arrays --
        charges the same replayed grid cost, and is bit-identical to
        recomputing.  Subclasses that override ``_analytical_curve`` (e.g.
        the history-aware manager, whose curves also depend on accumulated
        phase tables) bypass memoization entirely.
        """
        if type(self)._analytical_curve is not CoordinatedManager._analytical_curve:
            return self._analytical_curve(core_id)
        sim = self.sim
        snap = sim.completed_snapshot(core_id)
        rec = sim.completed_record(core_id)
        # Database records are immutable, so their sampled-curve digests are
        # computed once per phase and reused (the key stays content-based:
        # the bytes themselves go into it, not the phase identity).
        digests = self._rec_digests.get((rec.bench, rec.phase_key))
        if digests is None:
            digests = (
                np.asarray(rec.mpki_sampled).tobytes(),
                np.asarray(rec.mlp_sampled).tobytes(),
            )
            self._rec_digests[(rec.bench, rec.phase_key)] = digests
        content = (snap, digests[0], digests[1], sim.slack(core_id))
        key = (core_id, content)
        hit = self._memo.get(key)
        if hit is not None:
            curve, points = hit
            self.meter.charge_replay(grid_points=points)
            return curve
        shared = self._memo_shared.get(content)
        if shared is not None:
            curve, points = shared
            if curve.core_id != core_id:
                curve = EnergyCurve(
                    core_id=core_id, epi=curve.epi,
                    freq_idx=curve.freq_idx, core_idx=curve.core_idx,
                )
            self._memo_put(key, curve, points)
            self.meter.charge_replay(grid_points=points)
            return curve
        before = self.meter.grid_points
        curve = self._analytical_curve(core_id)
        points = self.meter.grid_points - before
        self._memo_put(key, curve, points)
        if len(self._memo_shared) >= MEMO_CAP:
            self._memo_shared.clear()
        self._memo_shared[content] = (curve, points)
        return curve

    def _oracle_leaves(self) -> dict[int, EnergyCurve]:
        """Oracle curves for every active core: memo hits plus one batched
        pass over the misses (stacked grids, single ``local_optimize``)."""
        sim, system = self.sim, self.sim.system
        # Batched bridge reads where the simulator offers them; the frozen
        # legacy reference only has the per-core accessors.
        active_fn = getattr(sim, "active_core_ids", None)
        ids = (active_fn() if active_fn is not None
               else [j for j in range(system.ncores) if sim.is_active(j)])
        fetch = getattr(sim, "upcoming_records", None)
        recs = (fetch(ids) if fetch is not None
                else [sim.upcoming_record(j) for j in ids])
        leaves: dict[int, EnergyCurve] = {}
        miss_ids: list[int] = []
        miss_recs: list = []
        miss_slacks: list[float] = []
        for j, rec in zip(ids, recs):
            slack = sim.slack(j)
            key = (j, "oracle", rec.bench, rec.phase_key, slack)
            hit = self._memo.get(key)
            if hit is not None:
                leaves[j] = hit[0]
                self.meter.charge_replay(grid_points=hit[1])
            else:
                miss_ids.append(j)
                miss_recs.append(rec)
                miss_slacks.append(slack)
        if miss_ids:
            before = self.meter.grid_points
            curves = oracle_curves_batch(
                system, miss_ids, miss_recs, miss_slacks,
                self._dims(system), self.meter,
            )
            points = (self.meter.grid_points - before) // len(miss_ids)
            for j, rec, slack, curve in zip(miss_ids, miss_recs, miss_slacks, curves):
                self._memo_put((j, "oracle", rec.bench, rec.phase_key, slack),
                               curve, points)
                leaves[j] = curve
        return leaves

    # -- the decision ----------------------------------------------------------
    def _live_leaf(self, core_id: int, oracle_leaves) -> EnergyCurve:
        """The reduction-tree leaf for ``core_id`` this invocation.

        One selection rule shared by the flat and clustered incremental
        pipelines, so the two can never drift: the oracle curve (or the idle
        leaf) when running with perfect models, otherwise the held
        analytical curve, the idle leaf for a power-gated core, or the
        baseline-pinned leaf for a core without statistics yet.
        """
        if oracle_leaves is not None:
            curve = oracle_leaves.get(core_id)
            return curve if curve is not None else self._static_leaf(core_id, idle=True)
        if not self.sim.is_active(core_id):
            return self._static_leaf(core_id, idle=True)
        if core_id in self.curves:
            return self.curves[core_id]
        return self._static_leaf(core_id, idle=False)

    def _inactive_cores(self) -> frozenset[int]:
        """Ids of power-gated cores, read once per invocation.

        Uses the simulator's batched activity accessors where they exist
        (one vector read of the struct-of-arrays state); the frozen legacy
        reference only offers the per-core ``is_active`` probe.
        """
        sim = self.sim
        inactive_fn = getattr(sim, "inactive_core_ids", None)
        if inactive_fn is not None:
            return frozenset(inactive_fn())
        n = sim.system.ncores
        active_fn = getattr(sim, "active_core_ids", None)
        if active_fn is not None:
            active = active_fn()
            if len(active) == n:
                return frozenset()
            return frozenset(range(n)).difference(active)
        return frozenset(j for j in range(n) if not sim.is_active(j))

    def _live_leaves(self, core_ids, oracle_leaves, inactive) -> list[EnergyCurve]:
        """Batched :meth:`_live_leaf` over ``core_ids`` (same selection rule).

        ``inactive`` is the invocation-wide :meth:`_inactive_cores` set, so
        a system-wide leaf refresh performs one activity read instead of a
        per-core bridge round-trip.
        """
        if oracle_leaves is not None:
            return [
                curve if (curve := oracle_leaves.get(j)) is not None
                else self._static_leaf(j, idle=True)
                for j in core_ids
            ]
        curves = self.curves
        return [
            self._static_leaf(j, idle=True) if j in inactive
            else (held if (held := curves.get(j)) is not None
                  else self._static_leaf(j, idle=False))
            for j in core_ids
        ]

    def _begin_decision(self, core_id: int) -> dict[int, EnergyCurve] | None:
        """Shared invocation prologue: meter, curve refresh, oracle leaves."""
        self.meter.begin_invocation()
        if self.oracle:
            return self._oracle_leaves()
        self.curves[core_id] = self._analytical_curve_memo(core_id)
        return None

    def _to_allocations(self, assignment, touched=None) -> dict[int, Allocation] | None:
        """Convert a solved ``{core: (c, f, w)}`` map into allocations.

        Allocation objects are cached per setting, so a core whose setting
        did not change receives the *same* object as last invocation and
        the kernel's apply loop skips it on identity alone.  A fully cached
        solve (the reduction tree returning its previous assignment object)
        short-circuits to the previous allocation map -- the same dict
        object, which the kernel recognises as already applied.  Returned
        maps are treated as immutable by that contract.

        ``touched`` (the packed solver's rewritten core ids) upgrades the
        translation to a delta: every untouched entry of ``assignment`` is
        object-identical to the previous one, so the new map copies the
        previous map wholesale and re-translates only the touched cores,
        annotating the result (:class:`AllocationMap`) so the kernel's
        apply loop can skip the untouched entries as well.
        """
        if assignment is None:
            return None
        cached = self._alloc_out
        if cached is not None and cached[0] is assignment:
            return cached[1]
        cache = self._alloc_cache
        if (
            touched is not None
            and cached is not None
            and len(cached[1]) == len(assignment)
        ):
            prev_out = cached[1]
            out = AllocationMap(prev_out)
            delta: list[tuple[int, Allocation]] = []
            for j in touched:
                setting = assignment[j]
                alloc = cache.get(setting)
                if alloc is None:
                    c, f, w = setting
                    alloc = Allocation(core=c, freq=f, ways=w)
                    cache[setting] = alloc
                if prev_out[j] is not alloc:
                    out[j] = alloc
                    delta.append((j, alloc))
            out.delta = delta
            self._alloc_out = (assignment, out)
            return out
        out = AllocationMap()
        for j, setting in assignment.items():
            alloc = cache.get(setting)
            if alloc is None:
                c, f, w = setting
                alloc = Allocation(core=c, freq=f, ways=w)
                cache[setting] = alloc
            out[j] = alloc
        self._alloc_out = (assignment, out)
        return out

    def on_interval(self, core_id: int) -> dict[int, Allocation] | None:
        """Decide new allocations after ``core_id`` finished an interval."""
        if not self.incremental:
            return self._on_interval_reference(core_id)
        system = self.sim.system
        timer = self._stage_timer
        if timer is not None:
            t0 = time.perf_counter()
        oracle_leaves = self._begin_decision(core_id)
        if timer is not None:
            t1 = time.perf_counter()
            timer.add("manager.curves", t1 - t0)
        tree = self._tree
        tree.set_leaves(
            self._live_leaves(range(system.ncores), oracle_leaves,
                              self._inactive_cores())
        )
        assignment = tree.solve(self.meter)
        out = self._to_allocations(
            assignment, getattr(tree, "last_touched", None)
        )
        if timer is not None:
            timer.add("manager.reduce", time.perf_counter() - t1)
        return out

    def _on_interval_reference(self, core_id: int) -> dict[int, Allocation] | None:
        """The pre-batching decision path, verbatim (executable reference)."""
        sim, system = self.sim, self.sim.system
        self.meter.begin_invocation()

        if not self.oracle:
            self.curves[core_id] = self._analytical_curve(core_id)
        curves = [self._curve_for(j) for j in range(system.ncores)]

        assignment = global_optimize(
            curves,
            total_ways=system.llc.ways,
            min_ways=system.min_ways_per_core,
            meter=self.meter,
        )
        if assignment is None:
            return None
        return {
            j: Allocation(core=c, freq=f, ways=w)
            for j, (c, f, w) in assignment.items()
        }


class ClusteredManager(CoordinatedManager):
    """Hierarchical coordinated RMA for many-core systems (64-256 cores).

    Cores are partitioned into contiguous clusters of ``cluster_size``.
    Every cluster runs the flat manager's batched local pipeline -- the same
    memoized per-core energy curves -- into its own persistent
    :class:`~repro.core.global_opt.ReductionTree`, whose combines are capped
    at the cluster's way budget (``overprovision`` times its proportional
    LLC share, see :func:`~repro.core.global_opt.cluster_way_caps`).  A
    second-level tree then min-plus combines the per-cluster *aggregate*
    curves (the cluster roots, spliced in as leaves) to decide how many LLC
    ways each cluster receives; back-tracking the second-level solution
    recurses through the cluster roots down to per-core settings, so one
    walk yields the full system assignment.  Because the QoS-pruned curves
    already encode each core's energy/slack trade-off, redistributing ways
    between clusters is what moves power and slack budgets between them.

    Scenario events splice only ``O(log cluster_size)`` intra-cluster nodes
    plus ``O(log nclusters)`` second-level nodes: ``on_scenario_event``
    forces the affected cluster leaf dirty, and an unchanged cluster
    re-enters the second level as a clean cached aggregate.

    Equivalence contract: with ``cluster_size >= ncores`` (one cluster) the
    cap equals the full associativity and the second level is a
    pass-through, so decisions, energies and metered overheads are
    bit-identical to ``CoordinatedManager(incremental=True)`` --
    ``tests/test_clustered.py`` enforces this.  With several clusters the
    way caps bound each cluster's reach, giving results within a bounded
    energy gap of the flat manager in exchange for per-invocation work that
    scales with the cluster size, not the system size.
    """

    def __init__(
        self,
        name: str,
        cluster_size: int = 8,
        overprovision: float = 2.0,
        control_dvfs: bool = True,
        control_core_size: bool = False,
        control_partitioning: bool = True,
        mlp_model: str = "model2",
        oracle: bool = False,
    ) -> None:
        """Configure the hierarchy; dimension flags mirror the flat manager.

        The clustered manager exists only on the incremental pipeline (there
        is no recompute-everything reference for the hierarchy; the flat
        incremental manager, itself verified against the reference, is its
        anchor), so ``incremental`` is not a parameter.
        """
        super().__init__(
            name=name,
            control_dvfs=control_dvfs,
            control_core_size=control_core_size,
            control_partitioning=control_partitioning,
            mlp_model=mlp_model,
            oracle=oracle,
            incremental=True,
        )
        self.cluster_size = int(cluster_size)
        self.overprovision = float(overprovision)
        self._clusters: tuple[tuple[int, ...], ...] = ()
        self._cluster_trees: list[ReductionTree] = []
        self._cluster_of: dict[int, tuple[int, int]] = {}
        self._level2: ReductionTree | None = None
        # The many-core fast path: the whole hierarchy planned into one
        # level-synchronous PackedReduction (None below PACKED_MIN_CORES).
        self._packed: PackedReduction | None = None
        self._packed_base: list[int] = []
        # Clusters whose leaf inputs may have changed since their last
        # grouped refresh (see on_interval).
        self._stale_clusters: set[int] = set()
        # Per-cluster (root node, replay DP cells) of the last real refresh,
        # so clean clusters skip their tree walk wholesale.
        self._cluster_roots: list = []

    def _init_trees(self, system: SystemConfig) -> None:
        """Per-cluster capped trees plus the second-level combine tree.

        At many-core scale (:func:`~repro.core.packed_tree.packed_enabled`)
        the entire hierarchy is planned into one
        :class:`~repro.core.packed_tree.PackedReduction` instead: every
        cluster's combine levels and the second-level stage share the same
        packed matrices, so one invocation performs ~log N batched sweeps
        over all dirty clusters at once rather than per-node dispatches.
        Both paths are bit-identical (``tests/test_packed_tree.py``).
        """
        self._clusters = partition_clusters(system.ncores, self.cluster_size)
        caps = cluster_way_caps(
            system.llc.ways, system.ncores, self._clusters,
            system.min_ways_per_core, self.overprovision,
        )
        self._cluster_of = {
            j: (ci, local)
            for ci, members in enumerate(self._clusters)
            for local, j in enumerate(members)
        }
        self._stale_clusters = set(range(len(self._clusters)))
        if packed_enabled(system.ncores):
            self._packed = PackedReduction(
                tuple(len(members) for members in self._clusters),
                tuple(caps), system.llc.ways, system.min_ways_per_core,
            )
            bases, base = [], 0
            for members in self._clusters:
                bases.append(base)
                base += len(members)
            self._packed_base = bases
            self._cluster_trees = []
            self._level2 = None
            self._cluster_roots = []
            return
        self._packed = None
        self._packed_base = []
        self._cluster_trees = [
            ReductionTree(len(members), cap, system.min_ways_per_core)
            for members, cap in zip(self._clusters, caps)
        ]
        self._level2 = ReductionTree(
            len(self._clusters), system.llc.ways, system.min_ways_per_core
        )
        self._cluster_roots = [None] * len(self._clusters)

    def on_scenario_event(self, core_id: int, kind: str) -> None:
        """Splice the affected cluster leaf on a tenancy change."""
        # The base class drops the held curve (its flat-tree branch is a
        # no-op here: the hierarchy never installs self._tree).
        super().on_scenario_event(core_id, kind)
        if self._packed is not None:
            ci, local = self._cluster_of[core_id]
            self._packed.invalidate(self._packed_base[ci] + local)
            self._stale_clusters.add(ci)
        elif self._cluster_trees:
            ci, local = self._cluster_of[core_id]
            self._cluster_trees[ci].invalidate(local)
            self._stale_clusters.add(ci)

    def on_interval(self, core_id: int) -> dict[int, Allocation] | None:
        """Two-level decision: refresh cluster trees, combine their roots.

        Leaf refreshes are grouped: each cluster receives its member curves
        in one :meth:`~repro.core.global_opt.ReductionTree.set_leaves` call
        and one :meth:`~repro.core.global_opt.ReductionTree.refresh`, so a
        system-wide reallocation costs one grouped refresh per cluster (a
        fully clean cluster short-circuits to a single replay charge)
        instead of per-core tree walks.
        """
        if self._packed is not None:
            return self._on_interval_packed(core_id)
        oracle_leaves = self._begin_decision(core_id)
        level2 = self._level2
        meter = self.meter
        # A cluster's leaves are a pure function of the held/oracle curves
        # and the active set; both change only at the invoking core
        # (_begin_decision) or via on_scenario_event, so clusters outside
        # the stale set can skip leaf installation outright.  Oracle curves
        # additionally move with every phase boundary, so oracle mode
        # refreshes every cluster's leaves.
        stale = self._stale_clusters
        stale.add(self._cluster_of[core_id][0])
        if self.oracle:
            stale = set(range(len(self._clusters)))
        inactive = self._inactive_cores() if oracle_leaves is None else frozenset()
        roots = self._cluster_roots
        replay_cells = 0
        for ci, members in enumerate(self._clusters):
            cached = roots[ci]
            if ci not in stale and cached is not None:
                # Clean cluster: its root already sits in the second-level
                # tree; batch the replay charge its refresh would make
                # (exact integer DP-cell counts, so one summed charge is
                # bit-identical to the per-tree charges it replaces).
                replay_cells += cached[1]
                continue
            tree = self._cluster_trees[ci]
            tree.set_leaves(self._live_leaves(members, oracle_leaves, inactive))
            root, changed = tree.refresh(meter)
            level2.set_leaf_node(ci, root, changed)
            roots[ci] = (root, tree.replay_cells)
        if replay_cells:
            meter.charge_replay(dp_cells=replay_cells)
        self._stale_clusters = set()
        return self._to_allocations(level2.solve(meter))

    def _on_interval_packed(self, core_id: int) -> dict[int, Allocation] | None:
        """The many-core decision through the packed hierarchy.

        Stale-cluster bookkeeping mirrors the node-graph path exactly: a
        stale cluster re-installs its member leaves (identity-checked, so
        unchanged curves stay clean), then one packed solve recombines
        every dirty root path of every cluster -- cluster levels and the
        second-level combine alike -- in ~log N batched sweeps, charging
        the invocation's static DP total in a single integer-exact replay.
        """
        timer = self._stage_timer
        if timer is not None:
            t0 = time.perf_counter()
        oracle_leaves = self._begin_decision(core_id)
        if timer is not None:
            t1 = time.perf_counter()
            timer.add("manager.curves", t1 - t0)
        packed = self._packed
        stale = self._stale_clusters
        stale.add(self._cluster_of[core_id][0])
        if self.oracle:
            stale = range(len(self._clusters))
        inactive = self._inactive_cores() if oracle_leaves is None else frozenset()
        for ci in stale:
            packed.set_group_leaves(
                ci, self._live_leaves(self._clusters[ci], oracle_leaves, inactive)
            )
        self._stale_clusters = set()
        assignment = packed.solve(self.meter)
        out = self._to_allocations(assignment, packed.last_touched)
        if timer is not None:
            timer.add("manager.reduce", time.perf_counter() - t1)
        return out


def _make_manager(
    name: str,
    control_dvfs: bool,
    control_core_size: bool,
    control_partitioning: bool,
    mlp_model: str,
    oracle: bool,
    incremental: bool,
    cluster_size: int | None,
    overprovision: float,
) -> CoordinatedManager:
    """Build the flat or (when ``cluster_size`` is set) clustered variant."""
    if cluster_size is not None:
        require(
            incremental,
            "the clustered manager exists only on the incremental pipeline "
            "(there is no recompute-everything reference for the hierarchy); "
            "drop cluster_size or incremental=False",
        )
        return ClusteredManager(
            name=f"{name}-c{cluster_size}",
            cluster_size=cluster_size,
            overprovision=overprovision,
            control_dvfs=control_dvfs,
            control_core_size=control_core_size,
            control_partitioning=control_partitioning,
            mlp_model=mlp_model,
            oracle=oracle,
        )
    return CoordinatedManager(
        name=name,
        control_dvfs=control_dvfs,
        control_core_size=control_core_size,
        control_partitioning=control_partitioning,
        mlp_model=mlp_model,
        oracle=oracle,
        incremental=incremental,
    )


def rm1_partitioning_only(
    oracle: bool = False,
    mlp_model: str = "model2",
    incremental: bool = True,
    cluster_size: int | None = None,
    overprovision: float = 2.0,
) -> CoordinatedManager:
    """RM1: LLC partitioning only, at baseline VF and core size.

    ``cluster_size`` selects the hierarchical :class:`ClusteredManager`
    variant (many-core tier) instead of the flat manager.
    """
    return _make_manager(
        "rm1-partitioning", False, False, True, mlp_model, oracle,
        incremental, cluster_size, overprovision,
    )


def rm2_combined(
    oracle: bool = False,
    mlp_model: str = "model2",
    incremental: bool = True,
    cluster_size: int | None = None,
    overprovision: float = 2.0,
) -> CoordinatedManager:
    """RM2: coordinated per-core DVFS + LLC partitioning (Paper I).

    ``cluster_size`` selects the hierarchical :class:`ClusteredManager`
    variant (many-core tier) instead of the flat manager.
    """
    return _make_manager(
        "rm2-combined", True, False, True, mlp_model, oracle,
        incremental, cluster_size, overprovision,
    )


def rm3_core_adaptive(
    oracle: bool = False,
    mlp_model: str = "model3",
    incremental: bool = True,
    cluster_size: int | None = None,
    overprovision: float = 2.0,
) -> CoordinatedManager:
    """RM3: core size + DVFS + LLC partitioning (Paper II).

    ``cluster_size`` selects the hierarchical :class:`ClusteredManager`
    variant (many-core tier) instead of the flat manager.
    """
    return _make_manager(
        "rm3-core-adaptive", True, True, True, mlp_model, oracle,
        incremental, cluster_size, overprovision,
    )


def dvfs_only(
    oracle: bool = False,
    mlp_model: str = "model2",
    incremental: bool = True,
    cluster_size: int | None = None,
    overprovision: float = 2.0,
) -> CoordinatedManager:
    """Per-core DVFS at the fixed equal LLC split (ablation).

    ``cluster_size`` selects the hierarchical :class:`ClusteredManager`
    variant (many-core tier) instead of the flat manager.
    """
    return _make_manager(
        "dvfs-only", True, False, False, mlp_model, oracle,
        incremental, cluster_size, overprovision,
    )

class IndependentManager(ResourceManager):
    """Uncoordinated controllers: UCP cache partitioning + per-core DVFS.

    The strawman the paper argues against (thesis §3.1): the cache controller
    partitions to *minimise total misses* (Qureshi-Patt UCP) with no notion of
    per-application QoS; a separate DVFS controller then tries to hold each
    core's QoS at whatever allocation it was handed.  When UCP strips a
    cache-sensitive application of its ways, no frequency can recover the lost
    performance (the memory term is frequency-independent) and the QoS
    constraint is violated -- the precise failure mode that motivates
    coordinated management.
    """

    name = "independent-ucp-dvfs"

    def __init__(self, mlp_model: str = "model2") -> None:
        super().__init__()
        self.model = MLP_MODELS[mlp_model]
        self.hit_curves: dict[int, object] = {}
        self.snapshots: dict[int, object] = {}

    def attach(self, sim) -> None:
        """Reset the per-core UCP profiles for a fresh run."""
        super().attach(sim)
        self.hit_curves = {}
        self.snapshots = {}

    def on_scenario_event(self, core_id: int, kind: str) -> None:
        """Forget the departed tenant's hit curve and counter snapshot."""
        self.hit_curves.pop(core_id, None)
        self.snapshots.pop(core_id, None)

    def on_interval(self, core_id: int) -> dict[int, Allocation] | None:
        """UCP partitioning for misses, then per-core DVFS to hold QoS."""
        from repro.cache.ucp import ucp_lookahead

        sim, system = self.sim, self.sim.system
        self.meter.begin_invocation()
        snap = sim.completed_snapshot(core_id)
        rec = sim.completed_record(core_id)
        # per-way hits/kilo-instruction from the sampled ATD
        self.hit_curves[core_id] = rec.apki - np.asarray(rec.mpki_sampled)
        self.snapshots[core_id] = (snap, rec)

        active = [j for j in range(system.ncores) if sim.is_active(j)]
        if any(j not in self.hit_curves for j in active):
            return None  # UCP waits until every active core has a profile

        # Unprofiled (idle) cores keep their current ways; UCP partitions
        # the remainder among the profiled cores.
        order = sorted(self.hit_curves)
        held = sum(
            sim.current_alloc(j).ways
            for j in range(system.ncores)
            if j not in self.hit_curves
        )
        alloc_ways = ucp_lookahead(
            [self.hit_curves[j] for j in order],
            total_ways=system.llc.ways - held,
            min_ways=system.min_ways_per_core,
        )
        self.meter.charge_dp(system.llc.ways * system.ncores)

        # One batched pass over all profiled cores: the DVFS controller's
        # per-core model evaluations, stacked (bit-identical to the loop of
        # per-core predict/local_optimize invocations it replaces).
        dims = DimSpec(core_indices=(system.baseline_core_index,))
        snaps = [self.snapshots[j][0] for j in order]
        recs = [self.snapshots[j][1] for j in order]
        curves = analytical_curves_batch(
            system, self.model, list(order), snaps,
            [r.mpki_sampled for r in recs], [r.mlp_sampled for r in recs],
            [sim.slack(j) for j in order], dims, self.meter,
            pin_ways_per_core=list(alloc_ways),
        )
        out: dict[int, Allocation] = {}
        for j, ways, curve in zip(order, alloc_ways, curves):
            if np.isfinite(curve.epi[ways - 1]):
                c, f, w = curve.setting_at(ways)
            else:
                # No frequency can hold QoS at this allocation: run flat out.
                c, f, w = system.baseline_core_index, system.vf.nlevels - 1, ways
            out[j] = Allocation(core=c, freq=f, ways=w)
        return out
