"""The three memory-stall models compared in Paper II.

All three predict the per-instruction memory stall time as
``mpki(w)/1000 * L / MLP_hat(c, w)``; they differ in ``MLP_hat``:

* **Model 1** -- naive: every miss costs a full average memory access
  latency (``MLP_hat = 1``).  Overestimates stalls for overlap-rich phases.
* **Model 2** -- Paper I's assumption: the MLP observed over the last
  interval is constant across core sizes and way allocations.
* **Model 3** -- Paper II: per-``(c, w)`` MLP estimates from the MLP-aware
  ATD (set-sampled, fixed-point quantised).

Each model also owns the matching execution-CPI estimate: the stall cycles it
attributes to memory are subtracted from total cycles, so Model 1's
overestimation of stalls mechanically distorts its compute-side prediction
too -- the same coupling a real counter-based implementation would have.
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.cpu.counters import CounterSnapshot

__all__ = ["Model1", "Model2", "Model3", "MLP_MODELS"]


class Model1:
    """misses x average single-access latency (no overlap)."""

    name = "model1"

    @staticmethod
    def mlp_hat(system: SystemConfig, snapshot: CounterSnapshot, mlp_sampled: np.ndarray) -> np.ndarray:
        """Unit MLP estimate for every (core size, ways) point."""
        return np.ones((system.ncore_sizes, system.llc.ways), dtype=float)


class Model2:
    """Constant MLP: last interval's observed overlap everywhere (Paper I)."""

    name = "model2"

    @staticmethod
    def mlp_hat(system: SystemConfig, snapshot: CounterSnapshot, mlp_sampled: np.ndarray) -> np.ndarray:
        """Last interval's observed MLP, assumed constant across the grid."""
        return np.full((system.ncore_sizes, system.llc.ways), snapshot.mlp_observed, dtype=float)


class Model3:
    """Per-(core size, ways) MLP from the MLP-aware ATD (Paper II)."""

    name = "model3"

    @staticmethod
    def mlp_hat(system: SystemConfig, snapshot: CounterSnapshot, mlp_sampled: np.ndarray) -> np.ndarray:
        """The MLP-aware ATD's sampled per-(core size, ways) MLP table."""
        return np.asarray(mlp_sampled, dtype=float)


MLP_MODELS = {m.name: m for m in (Model1, Model2, Model3)}
