"""The RMA's analytical performance model: ``T_hat(c, f, w)`` from counters.

Implements the paper's prediction step: using the last interval's hardware
counters and the ATD miss curve, predict the time-per-instruction for *every*
candidate configuration:

``T_hat(c,f,w) = exec_cpi_hat(c) / f + mpki_hat(w)/1000 * L_hat / MLP_hat(c,w)``

Estimation structure (all inputs are online-observable):

* ``exec_cpi_hat`` -- total CPI minus the *measured* memory-stall CPI (a
  standard hardware counter: cycles with no retirement due to a pending
  last-level miss), rescaled across core sizes with the calibrated ILP
  factor at the counter-estimated ILP index.  All three memory-stall models
  share this decomposition; they differ only in how they predict stalls at
  *candidate* configurations;
* ``mpki_hat(w)`` -- the sampled ATD miss curve;
* ``L_hat`` -- the observed average memory latency (held constant across
  ``w``; ignoring the queueing change with allocation is a deliberate,
  realistic model simplification);
* ``MLP_hat`` -- per the chosen model (:mod:`repro.core.models`).
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.cpu.counters import CounterSnapshot
from repro.cpu.microarch import ilp_cpi_factor
from repro.util.identity_memo import identity_memo
from repro.util.validation import require

__all__ = [
    "predict_tpi_grid",
    "predict_tpi_grid_batch",
    "exec_cpi_estimate",
    "exec_cpi_estimate_batch",
]


def exec_cpi_estimate(
    system: SystemConfig,
    snapshot: CounterSnapshot,
) -> np.ndarray:
    """Estimated execution CPI per core size, ``shape (C,)``.

    Uses the measured stall-cycle counter for the compute/memory split (all
    models share it) and rescales across core sizes via the calibrated ILP
    factor at the counter-estimated ILP index.
    """
    cur_core = system.core_sizes[snapshot.core_index]
    cur_factor = ilp_cpi_factor(cur_core, snapshot.ilp_index_est)
    out = np.empty(system.ncore_sizes, dtype=float)
    for ci, core in enumerate(system.core_sizes):
        factor = ilp_cpi_factor(core, snapshot.ilp_index_est)
        exec_cpi = snapshot.exec_cpi * factor / cur_factor
        out[ci] = max(exec_cpi, 1.0 / core.width)
    return out


def exec_cpi_estimate_batch(
    system: SystemConfig,
    snapshots: list[CounterSnapshot],
) -> np.ndarray:
    """Batched :func:`exec_cpi_estimate`: ``shape (N, C)``, bit-identical rows.

    Evaluates the same elementwise expressions as the scalar path (same
    operation order, IEEE double throughout), so each row equals the
    per-snapshot call exactly.
    """
    floors = np.array([c.ilp_floor for c in system.core_sizes])
    speedups = np.array([c.ilp_speedup for c in system.core_sizes])
    inv_width = 1.0 / np.array([c.width for c in system.core_sizes])
    ilp = np.array([s.ilp_index_est for s in snapshots])
    # Same guard ilp_cpi_factor applies per scalar call: the batched and
    # scalar pipelines must reject invalid snapshots identically.
    require(
        bool(np.all((ilp >= 0.0) & (ilp <= 1.0))),
        "ilp_sensitivity must be in [0, 1]",
    )
    cur_index = np.array([s.core_index for s in snapshots], dtype=int)
    exec_cpi = np.array([s.exec_cpi for s in snapshots])
    factors = floors[None, :] + (speedups - floors)[None, :] * ilp[:, None]
    cur_factor = factors[np.arange(len(snapshots)), cur_index]
    out = exec_cpi[:, None] * factors / cur_factor[:, None]
    return np.maximum(out, inv_width[None, :])


#: Per-system frequency vector, memoised by object identity (pure function
#: of the immutable SystemConfig, rebuilt on every grid prediction
#: otherwise).
_FREQS: dict[int, tuple] = {}


def _freqs_of(system: SystemConfig) -> np.ndarray:
    return identity_memo(_FREQS, system, lambda s: s.vf.freqs_array())


def predict_tpi_grid(
    system: SystemConfig,
    snapshot: CounterSnapshot,
    mpki_hat: np.ndarray,
    mlp_hat: np.ndarray,
) -> np.ndarray:
    """Predicted ``TPI[c, f, w]`` (ns/instr) for the next interval."""
    freqs = _freqs_of(system)
    exec_cpi = exec_cpi_estimate(system, snapshot)               # (C,)
    mpi = np.asarray(mpki_hat, dtype=float) / 1000.0             # (W,)
    mem_tpi = (mpi[None, :] / mlp_hat) * snapshot.avg_mem_latency_ns  # (C, W)
    return (
        exec_cpi[:, None, None] / freqs[None, :, None]
        + mem_tpi[:, None, :]
    )


def predict_tpi_grid_batch(
    system: SystemConfig,
    snapshots: list[CounterSnapshot],
    mpki_batch: np.ndarray,
    mlp_batch: np.ndarray,
) -> np.ndarray:
    """Batched :func:`predict_tpi_grid`: ``TPI[n, c, f, w]`` for ``N`` cores.

    One vectorised pass over the stacked ``(N, W)`` miss curves and
    ``(N, C, W)`` MLP estimates; every ``[n]`` slice is bit-identical to the
    per-core call (same expressions, same order, a leading batch axis only).
    """
    freqs = _freqs_of(system)
    exec_cpi = exec_cpi_estimate_batch(system, snapshots)            # (N, C)
    mpi = np.asarray(mpki_batch, dtype=float) / 1000.0               # (N, W)
    latency = np.array([s.avg_mem_latency_ns for s in snapshots])
    mem_tpi = (mpi[:, None, :] / mlp_batch) * latency[:, None, None]  # (N, C, W)
    return (
        exec_cpi[:, :, None, None] / freqs[None, None, :, None]
        + mem_tpi[:, :, None, :]
    )
