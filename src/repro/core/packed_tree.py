"""Packed level-synchronous min-plus reduction: the many-core fast path.

:class:`~repro.core.global_opt.ReductionTree` walks its combine nodes one
at a time, so a 64-256-core invocation issues hundreds of small NumPy
dispatches (one padded-window add + argmin per node) and, at the top of
the tree, computes full ``O(ways^2)`` DP matrices of which the solve reads
a single column.  :class:`PackedReduction` keeps the *same* reduction --
identical pairing order, identical argmin tie-breaks, identical metered
DP-cell accounting -- in a packed struct-of-arrays layout:

* **level-synchronous storage** -- all combine nodes of one tree level
  live in one padded ``(nodes, ways)`` float64 matrix, and a hierarchy
  stacks every cluster's level-l nodes into the same matrix, so one
  refresh performs ~log N batched sliding-window min-plus convolutions
  instead of per-node dispatches.  Refresh stores *values only*: the
  back-track walk reads exactly one split index per visited row, so
  splits are recovered lazily (:meth:`PackedReduction._split_at`) from
  the still-valid children instead of materialising ``O(ways)`` argmins
  per row per refresh;
* **needed-range truncation** -- the root is only ever read at one way
  total ``S`` (the full associativity), so each node stores just the
  column range its computed ancestors can read, propagated top-down:
  ``child_needed = [max(child_lo, parent_lo - sibling_hi),
  min(child_hi, parent_hi - sibling_lo)]``.  The root's "matrix" is a
  single column; at 256 cores this removes over half the DP cells without
  changing any computed value (every in-range ``(sl, s - sl)`` pair a
  computed parent column reads lies inside both children's needed
  ranges, so the finite candidate set -- and the ascending-``sl``
  first-minimum tie-break -- is exactly the reference's);
* **static meter totals** -- the modelled RMA cost of one invocation is
  the sum of every combine node's *untruncated* DP-cell count, a constant
  of the tree shape, charged as one integer-exact
  :meth:`~repro.core.overhead_meter.OverheadMeter.charge_replay` per
  solve (bit-identical to the per-node charges of the node-graph path:
  integer DP-cell counts are exact in float64 and order-free).

The node-graph :class:`~repro.core.global_opt.ReductionTree` remains the
golden reference; managers dispatch on :func:`packed_enabled` (threshold
:data:`PACKED_MIN_CORES`, analogous to the engine's ``VECTOR_MIN_CORES``)
and ``tests/test_packed_tree.py`` asserts bit-identity -- assignments,
splits, meter charges -- across random widths, odd leaf counts, way caps
and splice orders.

Batched sweep layout (one tree level, ``m`` dirty rows)::

    L (m, NK+NB-1)  inf-filled; row i holds child-a energies, placed so
                    window t reads a[t + j - (NB-1) + k0]
    R (m, NB)       inf-filled; row i holds child-b energies reversed,
                    right-aligned (leading inf pads absorb width
                    heterogeneity across the rows of one level)
    windows         as_strided view of L, shape (m, NK, NB)
    totals          windows + R[:, None, :]; the min over axis 2 is every
                    (row, sum) cell's combined energy

Out-of-range candidates land on ``inf`` pads and can never win or tie a
finite minimum, exactly like the reference's padded single-node combine.
"""

from __future__ import annotations

import numpy as np

from repro.core.curves import EnergyCurve
from repro.core.global_opt import _arange, _dp_cell_count, _scratch
from repro.core.overhead_meter import OverheadMeter
from repro.util.validation import require

__all__ = ["PackedReduction", "PACKED_MIN_CORES", "packed_enabled"]

#: Core count at or above which the managers build a :class:`PackedReduction`
#: instead of per-node :class:`~repro.core.global_opt.ReductionTree`s.  Below
#: it the node-graph path is at least as fast (the packed sweep's per-level
#: gather/scatter overhead needs several rows per level to pay off); both are
#: bit-identical, so -- like the engine's ``VECTOR_MIN_CORES`` -- this is
#: purely a dispatch choice.
PACKED_MIN_CORES = 32


def packed_enabled(ncores: int) -> bool:
    """Whether managers should use the packed reduction at this scale."""
    return ncores >= PACKED_MIN_CORES


class _Rec:
    """One node of the reduction plan while it is being built."""

    __slots__ = ("lev", "row", "lo", "hi", "nlo", "nhi", "src_a", "src_b", "span")

    def __init__(self, lev, row, lo, hi, span, src_a=None, src_b=None):
        self.lev = lev
        self.row = row
        self.lo = lo          # true combined range (the reference node's)
        self.hi = hi
        self.nlo = -1         # needed (stored) range, assigned top-down
        self.nhi = -1
        self.src_a = src_a    # child records (None for leaves)
        self.src_b = src_b
        self.span = span      # [i0, i1) leaf slots underneath


class _Level:
    """Packed storage plus per-row metadata for one combine level."""

    __slots__ = (
        "E", "stamp", "src", "alo", "blo", "na", "nb",
        "nlo", "nk", "k0", "NB", "M", "width", "WL", "place",
        "flo", "fhi", "_one",
    )

    def __init__(self, recs: list[_Rec]) -> None:
        nrows = len(recs)
        self.src = [None] * nrows   # ((lev_a, row_a), (lev_b, row_b))
        self.alo = [0] * nrows      # children's stored (needed) lo
        self.blo = [0] * nrows
        self.na = [0] * nrows       # children's stored widths
        self.nb = [0] * nrows
        self.nlo = [0] * nrows      # this row's stored lo
        self.nk = [0] * nrows       # this row's stored width
        self.k0 = [0] * nrows       # nlo - (alo + blo), the window base
        self.stamp = [-1] * nrows   # way total of the last back-track visit
        for rec in recs:
            r = rec.row
            a, b = rec.src_a, rec.src_b
            self.src[r] = ((a.lev, a.row), (b.lev, b.row))
            self.alo[r] = a.nlo
            self.blo[r] = b.nlo
            self.na[r] = a.nhi - a.nlo + 1
            self.nb[r] = b.nhi - b.nlo + 1
            self.nlo[r] = rec.nlo
            self.nk[r] = rec.nhi - rec.nlo + 1
            self.k0[r] = rec.nlo - (a.nlo + b.nlo)
        self.NB = max(self.nb)
        #: Static sweep width: every refresh sweeps the level's full window
        #: count, so buffer shapes -- and the strided views over them --
        #: depend only on the level, never on the dirty subset.
        self.width = max(self.nk)
        self.WL = self.width + self.NB - 1
        #: Single-row sweeps orient the *narrower* child onto the candidate
        #: axis (min-plus convolution commutes), so their buffers are sized
        #: by the widest narrow side of the level, not by max(nb).
        self.M = max(min(na, nb) for na, nb in zip(self.na, self.nb))
        # a-placement (ofs, start, stop) per row: static functions of the
        # plan, hoisted out of the per-refresh loop.
        self.place = []
        for r in range(nrows):
            start = self.k0[r] - (self.NB - 1)
            if start < 0:
                start = 0
            ofs = (self.NB - 1) - self.k0[r] + start
            stop = start + min(self.na[r] - start, self.WL - ofs)
            self.place.append((ofs, start, stop))
        self.E = np.full((nrows, self.width), np.inf)
        # Finite-support bounding box per row (absolute way counts,
        # flo > fhi = all-inf row).  Idle and QoS-pruned curves leave most
        # of a row infinite; sweeps restrict to the box (see _compute_row).
        self.flo = [0] * nrows
        self.fhi = [-1] * nrows
        self._one = None            # lazy single-row sweep buffers

    def one_buffers(self):
        """Per-level buffers for the single-dirty-row sweep (the common
        steady-state shape: one core's curve changed, so every level of its
        root path has exactly one dirty row).  Built once per level, sized
        for the worst (unrestricted) box; box-restricted sweeps use a
        prefix."""
        one = self._one
        if one is None:
            # L1 is padded so the full strided window view below stays
            # in-bounds; sweeps only ever read its [:WLp] prefix.  Building
            # the (WLmax, M) view once per level lets each sweep take a
            # plain [:NKp, :NBp] slice instead of paying as_strided's
            # dispatch.  M (not max(nb)) bounds the candidate axis because
            # single-row sweeps put the narrower child there.
            M = self.M
            wlmax = self.width + M - 1
            L1 = np.full(wlmax + M - 1, np.inf)
            (s,) = L1.strides
            win = np.lib.stride_tricks.as_strided(L1, (wlmax, M), (s, s))
            R1 = np.empty(M)
            tflat = np.empty(self.width * M)
            one = self._one = (L1, R1, tflat, win)
        return one


class PackedReduction:
    """Min-plus reduction over grouped leaves in packed level matrices.

    ``group_sizes``/``group_caps`` describe the hierarchy: each group's
    leaves reduce under its own way cap (the intra-cluster stage), then
    the group roots reduce under ``total_ways`` (the second-level stage).
    A single group of all leaves with ``cap == total_ways`` *is* the flat
    tree.  Pairing order within every stage mirrors
    :class:`~repro.core.global_opt.ReductionTree` exactly -- adjacent
    pairs level by level, an odd trailing node carried up unchanged -- so
    assignments, tie-breaks and metered charges are bit-identical to the
    node-graph hierarchy over the same curves.

    Leaf curves must be at least as wide as their group's cap (the
    managers' curves always span the full associativity); this pins every
    node's true range statically, which is what lets the plan precompute
    needed ranges and the invocation's total DP-cell charge.
    """

    def __init__(
        self,
        group_sizes: tuple[int, ...],
        group_caps: tuple[int, ...],
        total_ways: int,
        min_ways: int = 1,
    ) -> None:
        require(len(group_sizes) >= 1, "need at least one group")
        require(len(group_sizes) == len(group_caps),
                "need exactly one way cap per group")
        self.total_ways = total_ways
        self.min_ways = min_ways
        self.nleaves = sum(group_sizes)
        self._group_sizes = tuple(int(n) for n in group_sizes)
        self._group_base: list[int] = []
        base = 0
        for size, cap in zip(self._group_sizes, group_caps):
            require(size >= 1, "every group needs at least one leaf")
            require(cap >= size * min_ways,
                    "group way cap cannot satisfy the per-leaf minimum")
            self._group_base.append(base)
            base += size
        self._leaf_caps: list[int] = []

        # ---- plan: build the node records stage by stage ------------------
        leaf_recs: list[_Rec] = []
        group_roots: list[_Rec] = []
        by_level: dict[int, list[_Rec]] = {}
        total_cells = 0

        def reduce_stage(nodes: list[_Rec], cap: int, lev0: int) -> tuple[_Rec, int]:
            """Pair ``nodes`` level by level; return (root, depth used)."""
            nonlocal total_cells
            depth = 0
            while len(nodes) > 1:
                depth += 1
                lev = lev0 + depth
                recs = by_level.setdefault(lev, [])
                nxt: list[_Rec] = []
                for i in range(0, len(nodes) - 1, 2):
                    a, b = nodes[i], nodes[i + 1]
                    lo = a.lo + b.lo
                    hi = min(a.hi + b.hi, cap)
                    require(hi >= lo, "combined curve has empty range")
                    rec = _Rec(lev, len(recs), lo, hi,
                               (a.span[0], b.span[1]), a, b)
                    recs.append(rec)
                    nxt.append(rec)
                    total_cells += _dp_cell_count(
                        a.hi - a.lo + 1, b.hi - b.lo + 1, hi - lo + 1
                    )
                if len(nodes) % 2:
                    nxt.append(nodes[-1])  # odd trailing node: carried up
                nodes = nxt
            return nodes[0], depth

        slot = 0
        max_depth = 0
        for size, cap in zip(self._group_sizes, group_caps):
            members = []
            for _ in range(size):
                members.append(_Rec(0, slot, min_ways, cap, (slot, slot + 1)))
                self._leaf_caps.append(cap)
                slot += 1
            leaf_recs.extend(members)
            root, depth = reduce_stage(members, cap, 0)
            max_depth = max(max_depth, depth)
            group_roots.append(root)
        root_rec, _ = reduce_stage(group_roots, total_ways, max_depth)
        self._total_cells = total_cells

        # ---- root way total (static) and needed-range propagation ---------
        if self.nleaves == 1:
            s = min(total_ways, root_rec.hi)
        else:
            s = total_ways
        self._root_s: int | None = (
            s if root_rec.lo <= s <= root_rec.hi else None
        )
        seed = s if self._root_s is not None else root_rec.lo
        root_rec.nlo = root_rec.nhi = seed
        nlevels = max(by_level, default=0)
        for lev in range(nlevels, 0, -1):
            for rec in by_level[lev]:
                a, b = rec.src_a, rec.src_b
                a.nlo = max(a.lo, rec.nlo - b.hi)
                a.nhi = min(a.hi, rec.nhi - b.lo)
                b.nlo = max(b.lo, rec.nlo - a.hi)
                b.nhi = min(b.hi, rec.nhi - a.lo)
        for rec in leaf_recs:
            if rec.nlo < 0:  # an unpaired leaf can only be the root
                rec.nlo, rec.nhi = rec.lo, rec.hi
        self._root_ref = (root_rec.lev, root_rec.row)

        # ---- pack the levels ---------------------------------------------
        self._leaf_nlo = [rec.nlo for rec in leaf_recs]
        self._leaf_nhi = [rec.nhi for rec in leaf_recs]
        w0 = max(rec.nhi - rec.nlo + 1 for rec in leaf_recs)
        self._E0 = np.full((self.nleaves, w0), np.inf)
        self._levels: list[_Level | None] = [None] + [
            _Level(by_level[lev]) for lev in range(1, nlevels + 1)
        ]
        # Parent slot of every materialised node, for dirty propagation.
        parent: dict[tuple[int, int], tuple[int, int]] = {}
        for lev in range(1, nlevels + 1):
            for rec in by_level[lev]:
                parent[(rec.src_a.lev, rec.src_a.row)] = (lev, rec.row)
                parent[(rec.src_b.lev, rec.src_b.row)] = (lev, rec.row)
        self._parent = parent
        # Root path of every leaf slot, bottom-up -- the single-dirty-leaf
        # refresh (the steady state) walks this list directly instead of
        # rebuilding the pending-row propagation maps.
        self._path: list[list[tuple[int, int]]] = []
        for s0 in range(self.nleaves):
            path: list[tuple[int, int]] = []
            up = parent.get((0, s0))
            while up is not None:
                path.append(up)
                up = parent.get(up)
            self._path.append(path)

        self._held: list[EnergyCurve | None] = [None] * self.nleaves
        self._nmissing = self.nleaves  # leaves still awaiting a first curve
        self._dirty_slots: set[int] = set(range(self.nleaves))
        self._stamp0 = [-1] * self.nleaves
        # Leaf finite-support boxes (absolute way counts, flo > fhi = all
        # inf): idle/pinned curves are finite at a single way count, so
        # boxes collapse the sweeps above them to a few columns.
        self._flo0 = [0] * self.nleaves
        self._fhi0 = [-1] * self.nleaves
        self._last_assignment: dict[int, tuple[int, int, int]] | None = None
        #: Core ids whose assignment entry the last solve's walk rewrote
        #: (None until a walk has run).  Every other entry of the returned
        #: dict is object-identical to the previous solve's, which is what
        #: lets the manager translate only the touched cores.
        self.last_touched: list[int] | None = None

    # ---- leaf installation ---------------------------------------------------
    @property
    def total_cells(self) -> int:
        """DP cells of a from-scratch rebuild: every combine node's in-range
        pair count at its *true* (untruncated) shape.  A constant of the
        plan, charged once per solve -- the packed equivalent of the
        node-graph path's per-node combine and replay charges."""
        return self._total_cells

    def _write_leaf(self, slot: int, curve: EnergyCurve) -> None:
        require(curve.max_ways >= self._leaf_caps[slot],
                "leaf curve must span its group's way cap")
        nlo, nhi = self._leaf_nlo[slot], self._leaf_nhi[slot]
        if self._held[slot] is None:
            self._nmissing -= 1
        seg = self._E0[slot, : nhi - nlo + 1]
        seg[:] = curve.epi[nlo - 1 : nhi]
        fin = np.flatnonzero(np.isfinite(seg))
        if fin.size:
            self._flo0[slot] = nlo + int(fin[0])
            self._fhi0[slot] = nlo + int(fin[-1])
        else:
            self._flo0[slot] = 0
            self._fhi0[slot] = -1
        self._held[slot] = curve
        self._dirty_slots.add(slot)
        self._stamp0[slot] = -1

    def set_leaf(self, slot: int, curve: EnergyCurve) -> None:
        """Install a leaf curve, marking it dirty only if it changed."""
        prev = self._held[slot]
        if prev is not None and slot not in self._dirty_slots:
            if prev is curve or prev.same_curve(curve):
                self._held[slot] = curve
                return
        self._write_leaf(slot, curve)

    def set_leaves(self, curves: list[EnergyCurve]) -> None:
        """Install one curve per leaf slot, in slot order (grouped refresh)."""
        require(len(curves) == self.nleaves, "need exactly one curve per leaf")
        self._set_range(0, curves)

    def set_group_leaves(self, group: int, curves: list[EnergyCurve]) -> None:
        """Install one group's member curves (the hierarchical manager's
        stale-cluster refresh); untouched groups keep their clean rows."""
        require(len(curves) == self._group_sizes[group],
                "need exactly one curve per group member")
        self._set_range(self._group_base[group], curves)

    def _set_range(self, base: int, curves) -> None:
        held = self._held
        dirty = self._dirty_slots
        for i, curve in enumerate(curves):
            slot = base + i
            prev = held[slot]
            if prev is not None and slot not in dirty:
                if prev is curve or prev.same_curve(curve):
                    held[slot] = curve
                    continue
            self._write_leaf(slot, curve)

    def invalidate(self, slot: int) -> None:
        """Force the leaf dirty (the tenant behind it was spliced in/out)."""
        self._dirty_slots.add(slot)

    # ---- the level-synchronous refresh ---------------------------------------
    def _row(self, lev: int, row: int, width: int) -> np.ndarray:
        if lev == 0:
            return self._E0[row, :width]
        return self._levels[lev].E[row, :width]

    def _box(self, lev: int, row: int) -> tuple[int, int]:
        """The node's finite-support bounding box (absolute way counts)."""
        if lev == 0:
            return self._flo0[row], self._fhi0[row]
        meta = self._levels[lev]
        return meta.flo[row], meta.fhi[row]

    def _compute_level(self, lev: int, rows: list[int]) -> None:
        """One batched sliding-window min-plus sweep over ``rows``."""
        meta = self._levels[lev]
        m = len(rows)
        NB, NK, WL = meta.NB, meta.width, meta.WL
        L = _scratch(("pk_L", m, WL), (m, WL))
        L.fill(np.inf)
        R = _scratch(("pk_R", m, NB), (m, NB))
        R.fill(np.inf)
        for i, r in enumerate(rows):
            (la, ra), (lb, rb) = meta.src[r]
            a = self._row(la, ra, meta.na[r])
            b = self._row(lb, rb, meta.nb[r])
            # Place a so window t candidate j reads a[t + j - (NB-1) + k0];
            # entries below index k0-(NB-1) are outside every window.
            ofs, start, stop = meta.place[r]
            L[i, ofs : ofs + (stop - start)] = a[start:stop]
            R[i, NB - meta.nb[r] :] = b[::-1]
            # Finite-support bookkeeping (the batched sweep computes the
            # full rectangle regardless; inf child entries yield inf).
            aflo, afhi = self._box(la, ra)
            bflo, bfhi = self._box(lb, rb)
            if aflo > afhi or bflo > bfhi:
                meta.flo[r], meta.fhi[r] = 0, -1
            else:
                nlo = meta.nlo[r]
                meta.flo[r] = max(nlo, aflo + bflo)
                meta.fhi[r] = min(nlo + meta.nk[r] - 1, afhi + bfhi)
        s0, s1 = L.strides
        # Candidate-major orientation: window cell (j, t) reads L[i, j + t],
        # symmetric in (j, t), so the transposed view has the same strides.
        # Summing and reducing along axis 1 then streams contiguous
        # NK-length rows (SIMD across outputs) instead of scanning NB
        # strided cells per output; min is order-independent, so values
        # are bit-identical to the output-major sweep.
        windows = np.lib.stride_tricks.as_strided(L, (m, NB, NK), (s0, s1, s1))
        totals = _scratch(("pk_T", m, NB, NK), (m, NB, NK))
        np.add(windows, R[:, :, None], out=totals)
        vals = np.minimum.reduce(totals, axis=1)
        E = meta.E
        for i, r in enumerate(rows):
            nk = meta.nk[r]
            E[r, :nk] = vals[i, :nk]
            meta.stamp[r] = -1

    def _compute_row(self, lev: int, r: int) -> None:
        """Single-dirty-row sweep restricted to the finite bounding box.

        The steady-state shape -- one core's curve changed, so every level
        of its root path has exactly one dirty row -- and the sweep is
        bandwidth-bound at the top levels, so it runs over the smallest
        window rectangle that can hold a finite total: columns limited to
        ``[a_flo + b_flo, a_fhi + b_fhi]``, candidates to child b's box.
        Every excluded cell is the sum of at least one infinite child
        entry, so its value is ``inf`` either way; computed values are
        exactly :meth:`_compute_level`'s.  Width-1 child boxes (pinned or
        idle subtrees) collapse the rectangle to a single vector add.
        Splits are not materialised at all -- :meth:`_split_at` recovers
        the one split per row the back-track walk actually reads.
        """
        meta = self._levels[lev]
        (la, ra), (lb, rb) = meta.src[r]
        if la == 0:
            aflo, afhi, a = self._flo0[ra], self._fhi0[ra], self._E0[ra]
        else:
            ma = self._levels[la]
            aflo, afhi, a = ma.flo[ra], ma.fhi[ra], ma.E[ra]
        if lb == 0:
            bflo, bfhi, b = self._flo0[rb], self._fhi0[rb], self._E0[rb]
        else:
            mb = self._levels[lb]
            bflo, bfhi, b = mb.flo[rb], mb.fhi[rb], mb.E[rb]
        nlo = meta.nlo[r]
        E_row = meta.E[r]
        plo = aflo + bflo
        if plo < nlo:
            plo = nlo
        phi = afhi + bfhi
        nhi = nlo + meta.nk[r] - 1
        if phi > nhi:
            phi = nhi
        # Cells outside the previously recorded box are inf already (every
        # write path maintains that invariant), so clearing the old box's
        # span re-establishes an all-inf row without touching full width.
        oflo, ofhi = meta.flo[r], meta.fhi[r]
        if aflo > afhi or bflo > bfhi or plo > phi:
            if oflo <= ofhi:
                E_row[oflo - nlo : ofhi - nlo + 1].fill(np.inf)
            meta.flo[r] = 0
            meta.fhi[r] = -1
            meta.stamp[r] = -1
            return
        NKp = phi - plo + 1
        k0p = plo - (aflo + bflo)
        t0 = plo - nlo
        a0 = aflo - meta.alo[r]
        b0 = bflo - meta.blo[r]
        if oflo <= ofhi and (oflo < plo or ofhi > phi):
            E_row[oflo - nlo : ofhi - nlo + 1].fill(np.inf)
        out = E_row[t0 : t0 + NKp]
        if bflo == bfhi:
            # Width-1 b box: output n = wa + bflo is the only candidate
            # that can be finite, so the sweep is a's diagonal plus one
            # scalar.  Cells whose a entry is inf stay inf exactly like
            # the full sweep's.
            np.add(a[a0 + k0p : a0 + k0p + NKp], b[b0], out=out)
        elif aflo == afhi:
            # Width-1 a box: the mirror case.
            np.add(b[b0 + k0p : b0 + k0p + NKp], a[a0], out=out)
        elif NKp == 1:
            # Single output cell (the needed-range-truncated root): the
            # exact candidate overlap is one vector add, no rectangle.
            lo = plo - bfhi
            if lo < aflo:
                lo = aflo
            hi = plo - bflo
            if hi > afhi:
                hi = afhi
            va = a[a0 + lo - aflo : a0 + hi - aflo + 1]
            vb = b[b0 + plo - hi - bflo : b0 + plo - lo - bflo + 1]
            E_row[t0] = np.add(va, vb[::-1]).min() if lo < hi else va[0] + vb[0]
        else:
            if afhi - aflo < bfhi - bflo:
                # Min-plus convolution commutes, so orient the narrower
                # child onto the candidate axis: the swept rectangle is
                # NKp x min(box widths) instead of NKp x b's width.
                a, b = b, a
                a0, b0 = b0, a0
                aflo, afhi, bflo, bfhi = bflo, bfhi, aflo, afhi
            L1, R1, tflat, win_full = meta.one_buffers()
            # Box-local sweep geometry: same formulas as the plan's static
            # placement, over the sliced children a' = a[box], b' = b[box].
            naa = afhi - aflo + 1
            NBp = bfhi - bflo + 1
            WLp = NKp + NBp - 1
            start = k0p - (NBp - 1)
            if start < 0:
                start = 0
            ofs = (NBp - 1) - k0p + start
            stop = start + min(naa - start, WLp - ofs)
            L1[:WLp].fill(np.inf)
            L1[ofs : ofs + (stop - start)] = a[a0 + start : a0 + stop]
            R1[:NBp] = b[b0 : b0 + NBp][::-1]
            # Candidate-major orientation: the transposed window's rows are
            # contiguous L1 slices and the reduction runs over the outer
            # axis, so both the add and the min vectorise over contiguous
            # memory (~25% faster than output-major on wide rows; min is
            # order-independent, so the values are bit-identical).
            tot = tflat[: NKp * NBp].reshape(NBp, NKp)
            np.add(win_full[:NKp, :NBp].T, R1[:NBp, None], out=tot)
            np.minimum.reduce(tot, axis=0, out=out)
        meta.flo[r] = plo
        meta.fhi[r] = phi
        meta.stamp[r] = -1

    def _refresh(self) -> bool:
        """Recombine every root path with a dirty leaf; True if the root
        was rebuilt.  One batched sweep per level covers all dirty rows of
        all groups at that level simultaneously; a level with a single
        dirty row takes the dispatch-light :meth:`_compute_row` path."""
        dirty_slots = self._dirty_slots
        if not dirty_slots:
            return False
        require(not self._nmissing, "every leaf needs a curve")
        if len(dirty_slots) == 1:
            # Steady state: one core's curve changed, so the dirty region
            # is exactly that leaf's precomputed root path (which always
            # ends at -- and therefore rebuilds -- the root).
            (slot,) = dirty_slots
            for lev, row in self._path[slot]:
                self._compute_row(lev, row)
            dirty_slots.clear()
            return True
        parent = self._parent
        pending: dict[int, set[int]] = {}
        for slot in dirty_slots:
            up = parent.get((0, slot))
            if up is not None:
                pending.setdefault(up[0], set()).add(up[1])
        root_lev, root_row = self._root_ref
        root_rebuilt = root_lev == 0 and root_row in dirty_slots
        for lev in range(1, len(self._levels)):
            rows = pending.get(lev)
            if not rows:
                continue
            if len(rows) == 1:
                (row,) = rows
                self._compute_row(lev, row)
                ordered = rows
            else:
                ordered = sorted(rows)
                self._compute_level(lev, ordered)
            if lev == root_lev and root_row in rows:
                root_rebuilt = True
            for r in ordered:
                up = parent.get((lev, r))
                if up is not None:
                    pending.setdefault(up[0], set()).add(up[1])
        dirty_slots.clear()
        return root_rebuilt

    # ---- solve ---------------------------------------------------------------
    def _split_at(self, meta: _Level, r: int, sh: int,
                  la: int, ra: int, lb: int, rb: int) -> int:
        """Left-child way count of the finite cell ``(r, sh)``, recovered
        lazily from the children.

        Refresh stores only min values; the back-track walk reads exactly
        one split per visited row, so that split is recomputed here as the
        first minimum over the cell's box-clipped candidates in ascending
        ``sl`` order -- the reference's tie-break.  Valid because dirty
        propagation rebuilds every ancestor of a changed node before any
        solve, so the child rows read here are the ones the cell's value
        was combined from; candidates outside the finite boxes are
        infinite and cannot win or tie the (finite) minimum the cell
        holds, so clipping preserves the first-minimum choice exactly.
        """
        if la == 0:
            aflo, afhi, a = self._flo0[ra], self._fhi0[ra], self._E0[ra]
        else:
            ma = self._levels[la]
            aflo, afhi, a = ma.flo[ra], ma.fhi[ra], ma.E[ra]
        if lb == 0:
            bflo, bfhi, b = self._flo0[rb], self._fhi0[rb], self._E0[rb]
        else:
            mb = self._levels[lb]
            bflo, bfhi, b = mb.flo[rb], mb.fhi[rb], mb.E[rb]
        lo = sh - bfhi
        if lo < aflo:
            lo = aflo
        hi = sh - bflo
        if hi > afhi:
            hi = afhi
        if lo == hi:
            return lo
        alo = meta.alo[r]
        blo = meta.blo[r]
        va = a[lo - alo : hi - alo + 1]
        vb = b[sh - hi - blo : sh - lo - blo + 1]
        tmp = meta.one_buffers()[2][: hi - lo + 1]
        np.add(va, vb[::-1], out=tmp)
        return lo + int(tmp.argmin())

    def _root_stamp(self) -> int:
        lev, row = self._root_ref
        return self._stamp0[row] if lev == 0 else self._levels[lev].stamp[row]

    def refresh(self, meter: OverheadMeter | None = None) -> bool:
        """Charge the invocation's static DP total and recombine dirty paths."""
        if meter is not None and self._total_cells:
            meter.charge_replay(dp_cells=self._total_cells)
        return self._refresh()

    def solve(self, meter: OverheadMeter | None = None) -> dict[int, tuple[int, int, int]] | None:
        """Optimal assignment over the current leaves (or None if infeasible).

        Bit-identical -- assignment, tie-breaks, meter charges -- to the
        node-graph hierarchy (or flat tree) over the same curves.  Like the
        reference, an unchanged root returns the previous assignment *dict
        object*, preserving the downstream identity short-circuits
        (allocation-map cache, kernel apply skip).
        """
        self.refresh(meter)
        s = self._root_s
        if s is None:
            return None
        lev, row = self._root_ref
        if lev == 0:
            nlo, E = self._leaf_nlo[row], self._E0
        else:
            meta = self._levels[lev]
            nlo, E = meta.nlo[row], meta.E
        if E[row, s - nlo] == np.inf:  # never NaN: curves are finite or inf
            return None
        prev = self._last_assignment
        if prev is not None and self._root_stamp() == s:
            self.last_touched = []
            return prev
        # Start from the previous assignment (one C-speed dict copy: the
        # leaf set is fixed, so its keys are exactly the output keys) and
        # overwrite only the re-walked paths; a subtree whose stamp matches
        # the incoming way total kept its previous assignment verbatim.
        out: dict[int, tuple[int, int, int]] = {} if prev is None else dict(prev)
        touched: list[int] = []
        held = self._held
        stamp0 = self._stamp0
        stack = [(lev, row, s)]
        while stack:
            lv, r, sh = stack.pop()
            if lv == 0:
                if stamp0[r] == sh and prev is not None:
                    continue
                stamp0[r] = sh
                curve = held[r]
                out[curve.core_id] = curve.setting_at(sh)
                touched.append(curve.core_id)
                continue
            meta = self._levels[lv]
            if meta.stamp[r] == sh and prev is not None:
                continue
            meta.stamp[r] = sh
            (la, ra), (lb, rb) = meta.src[r]
            sl = self._split_at(meta, r, sh, la, ra, lb, rb)
            stack.append((lb, rb, sh - sl))
            stack.append((la, ra, sl))
        self._last_assignment = out
        self.last_touched = touched
        return out
