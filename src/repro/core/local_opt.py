"""Local optimisation: QoS-prune the per-core configuration space.

For every way allocation ``w``, find the cheapest QoS-feasible setting:

* Paper I (core size fixed): ``fmin(w)`` -- the minimum frequency whose
  predicted performance meets the target -- then the energy at
  ``(fmin(w), w)``;
* Paper II: the ``(c*(w), f*(w))`` pair minimising predicted energy among
  all QoS-feasible combinations.

Both collapse to the same vectorised computation over the ``(C, F, W)``
grids, restricted to the dimensions the manager controls
(:class:`DimSpec`).  The result is the per-core :class:`EnergyCurve` handed
to the global optimiser.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SystemConfig
from repro.core.curves import EnergyCurve
from repro.core.overhead_meter import OverheadMeter
from repro.util.validation import require

__all__ = ["DimSpec", "local_optimize", "local_optimize_batch"]


@dataclass(frozen=True)
class DimSpec:
    """Which dimensions of the configuration space a manager may move.

    ``None`` means the full range; a tuple restricts to those indices.
    ``pin_ways`` restricts way allocations (e.g. the DVFS-only manager pins
    every core at its baseline share).
    """

    core_indices: tuple[int, ...] | None = None
    freq_indices: tuple[int, ...] | None = None
    pin_ways: int | None = None

    def cores(self, system: SystemConfig) -> tuple[int, ...]:
        """The core-size indices the manager may choose from."""
        return self.core_indices if self.core_indices is not None else tuple(range(system.ncore_sizes))

    def freqs(self, system: SystemConfig) -> tuple[int, ...]:
        """The VF operating-point indices the manager may choose from."""
        return self.freq_indices if self.freq_indices is not None else tuple(range(system.vf.nlevels))


def local_optimize_batch(
    system: SystemConfig,
    core_ids: list[int],
    tpi_batch: np.ndarray,
    epi_batch: np.ndarray,
    targets: np.ndarray,
    dims: DimSpec,
    meter: OverheadMeter | None = None,
    pin_ways_per_core: list[int] | None = None,
) -> list[EnergyCurve]:
    """Collapse stacked ``(N, C, F, W)`` grids into one curve per core.

    The batched form of :func:`local_optimize`: one vectorised pass over all
    ``N`` cores' grids instead of ``N`` Python-level invocations.  Every
    slice is computed with the same elementwise expressions and the same
    argmin ordering as the single-core path, so results (ties included) are
    bit-identical; the meter is charged the same grid-point count per core.

    ``pin_ways_per_core`` restricts each core to its own single way count
    (the uncoordinated UCP+DVFS manager hands every core a fixed partition);
    it composes with -- and overrides -- ``dims.pin_ways``.
    """
    require(tpi_batch.shape == epi_batch.shape, "grid shape mismatch")
    require(tpi_batch.ndim == 4, "batched grids must be (N, C, F, W)")
    n, n_c, n_f, n_w = tpi_batch.shape
    require(len(core_ids) == n, "one core id per batched grid")

    cores = np.asarray(dims.cores(system), dtype=int)
    freqs = np.asarray(dims.freqs(system), dtype=int)
    if meter is not None:
        meter.charge_grid(n * len(cores) * len(freqs) * n_w)

    idx = np.ix_(np.arange(n), cores, freqs, np.arange(n_w))
    sub_tpi = tpi_batch[idx]
    sub_epi = epi_batch[idx]
    feasible = sub_tpi <= np.asarray(targets, dtype=float)[:, None, None, None]
    masked = np.where(feasible, sub_epi, np.inf)

    if pin_ways_per_core is not None:
        keep = np.zeros((n, n_w), dtype=bool)
        keep[np.arange(n), np.asarray(pin_ways_per_core, dtype=int) - 1] = True
        masked = np.where(keep[:, None, None, :], masked, np.inf)
    elif dims.pin_ways is not None:
        keep = np.zeros(n_w, dtype=bool)
        keep[dims.pin_ways - 1] = True
        masked = np.where(keep[None, None, None, :], masked, np.inf)

    flat = masked.reshape(n, -1, n_w)            # (N, C'*F', W)
    best = np.argmin(flat, axis=1)               # (N, W)
    epi = np.take_along_axis(flat, best[:, None, :], axis=1)[:, 0, :]
    c_sel = cores[best // len(freqs)]
    f_sel = freqs[best % len(freqs)]
    # Infeasible columns keep inf epi; their (c, f) entries are meaningless
    # but harmless because the global optimiser never selects them.
    # Curves hold row views of the batch outputs: the arrays above are
    # freshly allocated, owned only by these (frozen, never-mutated)
    # curves, so per-row copies would buy nothing.
    return [
        EnergyCurve(
            core_id=core_id,
            epi=epi[i],
            freq_idx=f_sel[i],
            core_idx=c_sel[i],
        )
        for i, core_id in enumerate(core_ids)
    ]


def local_optimize(
    system: SystemConfig,
    core_id: int,
    tpi_grid: np.ndarray,
    epi_grid: np.ndarray,
    target_tpi: float,
    dims: DimSpec,
    meter: OverheadMeter | None = None,
) -> EnergyCurve:
    """Collapse ``(C, F, W)`` grids into an :class:`EnergyCurve` over ``w``.

    Thin wrapper over :func:`local_optimize_batch` with a batch of one, so
    the single-core and batched paths can never drift apart.
    """
    require(tpi_grid.ndim == 3, "grids must be (C, F, W)")
    return local_optimize_batch(
        system,
        [core_id],
        tpi_grid[None, ...],
        epi_grid[None, ...],
        np.asarray([target_tpi], dtype=float),
        dims,
        meter,
    )[0]
