"""Local optimisation: QoS-prune the per-core configuration space.

For every way allocation ``w``, find the cheapest QoS-feasible setting:

* Paper I (core size fixed): ``fmin(w)`` -- the minimum frequency whose
  predicted performance meets the target -- then the energy at
  ``(fmin(w), w)``;
* Paper II: the ``(c*(w), f*(w))`` pair minimising predicted energy among
  all QoS-feasible combinations.

Both collapse to the same vectorised computation over the ``(C, F, W)``
grids, restricted to the dimensions the manager controls
(:class:`DimSpec`).  The result is the per-core :class:`EnergyCurve` handed
to the global optimiser.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SystemConfig
from repro.core.curves import EnergyCurve
from repro.core.overhead_meter import OverheadMeter
from repro.util.validation import require

__all__ = ["DimSpec", "local_optimize"]


@dataclass(frozen=True)
class DimSpec:
    """Which dimensions of the configuration space a manager may move.

    ``None`` means the full range; a tuple restricts to those indices.
    ``pin_ways`` restricts way allocations (e.g. the DVFS-only manager pins
    every core at its baseline share).
    """

    core_indices: tuple[int, ...] | None = None
    freq_indices: tuple[int, ...] | None = None
    pin_ways: int | None = None

    def cores(self, system: SystemConfig) -> tuple[int, ...]:
        return self.core_indices if self.core_indices is not None else tuple(range(system.ncore_sizes))

    def freqs(self, system: SystemConfig) -> tuple[int, ...]:
        return self.freq_indices if self.freq_indices is not None else tuple(range(system.vf.nlevels))


def local_optimize(
    system: SystemConfig,
    core_id: int,
    tpi_grid: np.ndarray,
    epi_grid: np.ndarray,
    target_tpi: float,
    dims: DimSpec,
    meter: OverheadMeter | None = None,
) -> EnergyCurve:
    """Collapse ``(C, F, W)`` grids into an :class:`EnergyCurve` over ``w``."""
    require(tpi_grid.shape == epi_grid.shape, "grid shape mismatch")
    n_c, n_f, n_w = tpi_grid.shape

    cores = np.asarray(dims.cores(system), dtype=int)
    freqs = np.asarray(dims.freqs(system), dtype=int)
    if meter is not None:
        meter.charge_grid(len(cores) * len(freqs) * n_w)

    sub_tpi = tpi_grid[np.ix_(cores, freqs, np.arange(n_w))]
    sub_epi = epi_grid[np.ix_(cores, freqs, np.arange(n_w))]
    feasible = sub_tpi <= target_tpi
    masked = np.where(feasible, sub_epi, np.inf)

    if dims.pin_ways is not None:
        keep = np.zeros(n_w, dtype=bool)
        keep[dims.pin_ways - 1] = True
        masked = np.where(keep[None, None, :], masked, np.inf)

    flat = masked.reshape(-1, n_w)               # (C'*F', W)
    best = np.argmin(flat, axis=0)               # (W,)
    epi = flat[best, np.arange(n_w)]
    c_sel = cores[best // len(freqs)]
    f_sel = freqs[best % len(freqs)]
    # Infeasible columns keep inf epi; their (c, f) entries are meaningless
    # but harmless because the global optimiser never selects them.
    return EnergyCurve(
        core_id=core_id,
        epi=epi,
        freq_idx=f_sel.astype(int),
        core_idx=c_sel.astype(int),
    )
