"""Accounting of the RMA's own execution cost.

The paper reports the overhead of a C implementation of the RMA in executed
instructions (< 40 K for a 4-core Paper I system; 18 K / 40 K / 67 K for
2/4/8-core Paper II systems -- under 0.1 % of a 100 M-instruction interval).

We meter the same quantity by charging an instruction-cost constant for each
elementary operation the algorithm performs: one per evaluated configuration
grid point (the analytical models are a handful of multiplies/divides per
point), one per dynamic-programming cell in the curve reduction, plus a fixed
per-invocation cost for counter collection and bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["OverheadMeter", "COST_GRID_POINT", "COST_DP_CELL", "COST_FIXED"]

#: Instructions per evaluated (c, f, w) model point (flops + loads + branch).
COST_GRID_POINT = 26
#: Instructions per DP cell in the pairwise curve reduction.
COST_DP_CELL = 9
#: Fixed instructions per invocation (counter reads, ATD readout, apply).
COST_FIXED = 900


@dataclass
class OverheadMeter:
    """Accumulates the RMA's instruction-equivalent execution cost."""

    instructions: float = 0.0
    invocations: int = 0
    grid_points: int = 0
    dp_cells: int = 0
    _per_invocation: list = field(default_factory=list)

    def begin_invocation(self) -> None:
        """Open a new invocation and charge its fixed bookkeeping cost."""
        self.invocations += 1
        self._per_invocation.append(COST_FIXED)
        self.instructions += COST_FIXED

    def charge_grid(self, points: int) -> None:
        """Charge ``points`` evaluated (c, f, w) model grid points."""
        self.grid_points += points
        cost = points * COST_GRID_POINT
        self.instructions += cost
        if self._per_invocation:
            self._per_invocation[-1] += cost

    def charge_replay(self, grid_points: int = 0, dp_cells: int = 0) -> None:
        """Re-charge cached costs for work the simulator skipped.

        The meter models the *paper's* RMA, which recomputes its models and
        curve reductions on every invocation.  Simulator-side shortcuts --
        curve memoization, the persistent reduction tree -- skip the Python
        work but must replay the modelled instruction cost so the metered
        overhead stays bit-identical to the recomputing reference path.
        """
        if grid_points:
            self.charge_grid(grid_points)
        if dp_cells:
            self.charge_dp(dp_cells)

    def charge_dp(self, cells: int) -> None:
        """Charge ``cells`` dynamic-programming cells of curve reduction."""
        self.dp_cells += cells
        cost = cells * COST_DP_CELL
        self.instructions += cost
        if self._per_invocation:
            self._per_invocation[-1] += cost

    @property
    def instructions_per_invocation(self) -> float:
        """Mean modelled instructions per RMA invocation."""
        if not self.invocations:
            return 0.0
        return self.instructions / self.invocations

    @property
    def max_invocation_instructions(self) -> float:
        """The most expensive single invocation's modelled instructions."""
        return max(self._per_invocation, default=0.0)

    def overhead_fraction(self, interval_instructions: int) -> float:
        """RMA instructions as a fraction of one execution interval."""
        return self.instructions_per_invocation / interval_instructions
