"""QoS targets: performance constraints anchored at the baseline allocation.

The paper's QoS definition: every application must perform at least as well
as it would under the baseline resource allocation; the relaxation
experiments allow a bounded slowdown (``slack``) against that anchor.

The target is always computed *with the same predictor* used for candidate
configurations, so systematic model biases partially cancel -- the mechanism
that keeps even the naive Model 1 serviceable (and which the model-accuracy
experiment quantifies).
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.util.validation import require

__all__ = ["qos_target_tpi", "QOS_TOLERANCE"]

#: Predicted slowdowns below this are treated as meeting the constraint.
#: The paper treats end-to-end slowdowns below 1% as negligible; the manager
#: budgets only half of that, leaving headroom for model error, so that
#: steady-state configurations do not sit exactly on the negligibility edge.
#: Without any tolerance, a donor whose miss curve is flat to within
#: measurement noise could never give up a single way.
QOS_TOLERANCE = 0.005


def qos_target_tpi(
    system: SystemConfig,
    tpi_grid: np.ndarray,
    slack: float,
    tolerance: float = QOS_TOLERANCE,
) -> float:
    """Maximum admissible predicted TPI: baseline prediction times (1+slack).

    ``tpi_grid`` is the predictor's ``(C, F, W)`` output; the baseline point
    is the paper's anchor (medium core, nominal VF, equal LLC share).
    """
    require(slack >= 0.0, "slack must be non-negative")
    base = tpi_grid[
        system.baseline_core_index,
        system.baseline_freq_index,
        system.baseline_ways - 1,
    ]
    return float(base) * (1.0 + slack) * (1.0 + tolerance)
