"""Phase-history extension of the coordinated RMA (thesis future work #1).

The papers' RMAs "have a short term optimization scope ... no memory of the
past events or any speculations about the future"; the thesis asks how
collecting such information could improve the schemes.  This module
implements that extension:

* every completed interval is summarised into a quantised **phase
  signature** (counter-space fingerprint, no oracle phase ids);
* a per-core **phase table** stores exponentially smoothed statistics (ATD
  curve, MLP table, counter snapshot) for each signature, cutting sampling
  noise on revisits;
* a first-order **Markov transition table** between signatures predicts the
  next interval's phase; when the predictor is confident, the RMA models the
  *predicted* phase instead of assuming "next interval = last interval" --
  attacking the phase-lag error at segment boundaries directly.

``rm2_history`` / ``rm3_history`` are drop-in variants of the Paper I / II
managers; ablation A4 quantifies what the history buys.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.curves import EnergyCurve
from repro.core.energy_model import predict_epi_grid
from repro.core.local_opt import local_optimize
from repro.core.managers import CoordinatedManager
from repro.core.perf_model import predict_tpi_grid
from repro.core.qos import qos_target_tpi

__all__ = ["HistoryAwareManager", "PhaseEntry", "rm2_history", "rm3_history"]

#: EWMA weight of the newest observation when updating a phase entry.
SMOOTHING = 0.5

#: Minimum observations of a transition before the predictor trusts it more
#: than "next = current".
MIN_TRANSITIONS = 3


def signature(snapshot) -> tuple:
    """Quantised counter fingerprint of an interval (no oracle phase ids)."""
    return (
        round(float(np.log10(snapshot.mpki + 1.0)), 1),
        round(snapshot.exec_cpi, 1),
        round(snapshot.mlp_observed * 2.0) / 2.0,
    )


@dataclass
class PhaseEntry:
    """Smoothed per-phase statistics accumulated across revisits."""

    snapshot: object
    mpki_sampled: np.ndarray
    mlp_sampled: np.ndarray
    visits: int = 1

    def update(self, snapshot, mpki_sampled: np.ndarray, mlp_sampled: np.ndarray) -> None:
        """Fold a new observation of this phase into the smoothed entry."""
        a = SMOOTHING
        self.snapshot = snapshot  # counters are exact; keep the freshest
        self.mpki_sampled = (1 - a) * self.mpki_sampled + a * np.asarray(mpki_sampled)
        self.mlp_sampled = np.maximum(
            (1 - a) * self.mlp_sampled + a * np.asarray(mlp_sampled), 1.0
        )
        self.visits += 1


@dataclass
class CoreHistory:
    """One core's phase table and Markov transition counts."""

    table: dict[tuple, PhaseEntry] = field(default_factory=dict)
    transitions: dict[tuple, Counter] = field(default_factory=dict)
    last_sig: tuple | None = None

    def observe(self, sig: tuple, snapshot, mpki_sampled, mlp_sampled) -> None:
        """Record one completed interval under signature ``sig``."""
        entry = self.table.get(sig)
        if entry is None:
            self.table[sig] = PhaseEntry(
                snapshot=snapshot,
                mpki_sampled=np.asarray(mpki_sampled, dtype=float).copy(),
                mlp_sampled=np.asarray(mlp_sampled, dtype=float).copy(),
            )
        else:
            entry.update(snapshot, mpki_sampled, mlp_sampled)
        if self.last_sig is not None:
            self.transitions.setdefault(self.last_sig, Counter())[sig] += 1
        self.last_sig = sig

    def predict_next(self, sig: tuple) -> tuple:
        """Most likely next signature; falls back to "stay in phase"."""
        counts = self.transitions.get(sig)
        if not counts:
            return sig
        best, n = counts.most_common(1)[0]
        if best != sig and n < MIN_TRANSITIONS:
            return sig
        return best


class HistoryAwareManager(CoordinatedManager):
    """Coordinated RMA with a phase table and Markov next-phase prediction."""

    def __init__(self, name: str = "rm2-history", **kwargs) -> None:
        kwargs.setdefault("control_dvfs", True)
        kwargs.setdefault("control_partitioning", True)
        super().__init__(name=name, **kwargs)
        self.history: dict[int, CoreHistory] = {}

    def attach(self, sim) -> None:
        """Reset the per-core phase tables for a fresh run."""
        super().attach(sim)
        self.history = {}

    def on_scenario_event(self, core_id: int, kind: str) -> None:
        """Drop the phase table too: it fingerprints the departed tenant."""
        super().on_scenario_event(core_id, kind)
        self.history.pop(core_id, None)

    def _analytical_curve(self, core_id: int) -> EnergyCurve:
        sim, system = self.sim, self.sim.system
        snap = sim.completed_snapshot(core_id)
        rec = sim.completed_record(core_id)

        hist = self.history.setdefault(core_id, CoreHistory())
        sig = signature(snap)
        hist.observe(sig, snap, rec.mpki_sampled, rec.mlp_sampled)

        target_sig = hist.predict_next(sig)
        entry = hist.table.get(target_sig)
        if entry is None:
            entry = hist.table[sig]

        mlp_hat = self.model.mlp_hat(system, entry.snapshot, entry.mlp_sampled)
        tpi = predict_tpi_grid(system, entry.snapshot, entry.mpki_sampled, mlp_hat)
        epi = predict_epi_grid(system, entry.snapshot, entry.mpki_sampled, tpi)
        tgt = qos_target_tpi(system, tpi, sim.slack(core_id))
        return local_optimize(
            system, core_id, tpi, epi, tgt, self._dims(system), self.meter
        )


def rm2_history(mlp_model: str = "model2", incremental: bool = True) -> HistoryAwareManager:
    """Paper I's combined RMA plus phase history/prediction."""
    return HistoryAwareManager(
        name="rm2-history", mlp_model=mlp_model, incremental=incremental
    )


def rm3_history(mlp_model: str = "model3", incremental: bool = True) -> HistoryAwareManager:
    """Paper II's RM3 plus phase history/prediction."""
    return HistoryAwareManager(
        name="rm3-history", control_core_size=True, mlp_model=mlp_model,
        incremental=incremental,
    )
