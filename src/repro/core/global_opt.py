"""Global optimisation: recursive pair-wise reduction of energy curves.

The paper's optimiser "recursively reduces each pair of curves into one until
an optimum set of {w_j} is found ... that minimizes system energy while the
sum of w_j values equals the LLC associativity" (thesis §3.1, Fig. 3.2).

Each reduction combines two curves over their summed way range:

``E_ab(s) = min over s_a + s_b = s of  E_a(s_a) + E_b(s_b)``

keeping the argmin split for back-tracking.  Reducing pairs in a binary tree
gives the exact optimum (the objective is separable) in
``O(ncores * ways^2)`` -- the "polynomial time" heuristic the paper claims,
and the tests verify optimality against brute-force enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.curves import EnergyCurve
from repro.core.overhead_meter import OverheadMeter
from repro.util.validation import require

__all__ = ["global_optimize"]


@dataclass
class _Node:
    """A (possibly combined) curve over total allocated ways."""

    min_ways: int
    max_ways: int
    epi: np.ndarray  # epi[s - min_ways] = best energy with s total ways
    curve: EnergyCurve | None = None      # leaf payload
    left: "_Node | None" = None
    right: "_Node | None" = None
    split: np.ndarray | None = None       # ways given to the left child per s


def _leaf(curve: EnergyCurve, min_ways: int) -> _Node:
    epi = curve.epi[min_ways - 1 :].copy()
    return _Node(min_ways=min_ways, max_ways=curve.max_ways, epi=epi, curve=curve)


def _combine(a: _Node, b: _Node, cap: int, meter: OverheadMeter | None) -> _Node:
    """Min-plus convolution of two curves, vectorised over all sums ``s``.

    ``epi[s] = min over sl of a.epi[sl] + b.epi[s - sl]`` is the minimum of
    the ``(i + j == k)`` anti-diagonal of the outer sum of the two energy
    arrays.  Padding ``a.epi`` with ``inf`` and taking length-``len(b)``
    sliding windows aligns anti-diagonal ``k`` with window ``k`` against the
    reversed ``b.epi``, so one 2-D reduction replaces the per-``s`` Python
    loop; out-of-range pairs sit on the ``inf`` padding and never win the
    argmin.  Window position ascends with the left child's way count, so
    tie-breaking (first minimum) matches the scalar formulation exactly.
    """
    lo = a.min_ways + b.min_ways
    hi = min(a.max_ways + b.max_ways, cap)
    require(hi >= lo, "combined curve has empty range")
    na, nb = len(a.epi), len(b.epi)
    nk = hi - lo + 1
    pad = np.full(nb - 1, np.inf)
    padded = np.concatenate([pad, a.epi, pad])
    windows = np.lib.stride_tricks.sliding_window_view(padded, nb)[:nk]
    totals = windows + b.epi[::-1]
    m = np.argmin(totals, axis=1)
    ks = np.arange(nk)
    epi = totals[ks, m]
    split = a.min_ways + ks + m - (nb - 1)
    if meter is not None:
        # DP work actually required per s: the in-range (sl, s - sl) pairs.
        cells = np.minimum.reduce([ks + 1, np.full(nk, na), np.full(nk, nb),
                                   na + nb - 1 - ks])
        meter.charge_dp(int(cells.sum()))
    return _Node(min_ways=lo, max_ways=hi, epi=epi, left=a, right=b, split=split)


def _assign(node: _Node, s: int, out: dict[int, tuple[int, int, int]]) -> None:
    if node.curve is not None:
        out[node.curve.core_id] = node.curve.setting_at(s)
        return
    sl = int(node.split[s - node.min_ways])
    _assign(node.left, sl, out)
    _assign(node.right, s - sl, out)


def global_optimize(
    curves: list[EnergyCurve],
    total_ways: int,
    min_ways: int = 1,
    meter: OverheadMeter | None = None,
) -> dict[int, tuple[int, int, int]] | None:
    """Optimal per-core ``(core_idx, freq_idx, ways)`` or None if infeasible.

    ``curves`` must cover every core exactly once; the returned way counts
    sum to ``total_ways`` exactly and each is at least ``min_ways``.
    """
    require(len(curves) >= 1, "need at least one curve")
    require(
        total_ways >= len(curves) * min_ways,
        "associativity cannot satisfy the per-core minimum",
    )
    nodes = [_leaf(c, min_ways) for c in curves]
    while len(nodes) > 1:
        nxt = []
        for i in range(0, len(nodes) - 1, 2):
            nxt.append(_combine(nodes[i], nodes[i + 1], total_ways, meter))
        if len(nodes) % 2:
            nxt.append(nodes[-1])
        nodes = nxt
    root = nodes[0]
    if len(curves) == 1:
        # Single core owns the whole cache.
        s = min(total_ways, root.max_ways)
    else:
        s = total_ways
    if not (root.min_ways <= s <= root.max_ways):
        return None
    if not np.isfinite(root.epi[s - root.min_ways]):
        return None
    out: dict[int, tuple[int, int, int]] = {}
    _assign(root, s, out)
    return out
