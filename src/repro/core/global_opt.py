"""Global optimisation: recursive pair-wise reduction of energy curves.

The paper's optimiser "recursively reduces each pair of curves into one until
an optimum set of {w_j} is found ... that minimizes system energy while the
sum of w_j values equals the LLC associativity" (thesis §3.1, Fig. 3.2).

Each reduction combines two curves over their summed way range:

``E_ab(s) = min over s_a + s_b = s of  E_a(s_a) + E_b(s_b)``

keeping the argmin split for back-tracking.  Reducing pairs in a binary tree
gives the exact optimum (the objective is separable) in
``O(ncores * ways^2)`` -- the "polynomial time" heuristic the paper claims,
and the tests verify optimality against brute-force enumeration.

:func:`global_optimize` rebuilds the reduction from scratch each call.
:class:`ReductionTree` keeps the same binary tree *persistent* across
manager invocations: when only one leaf curve changed since the last solve
(the common case -- one interval boundary fires at a time) only the
``O(log N)`` nodes on its root path are re-combined, while the untouched
subtrees keep their arrays.  Both produce bit-identical assignments, and the
tree re-charges the cached DP-cell counts of skipped nodes so the metered
RMA overhead (the *modelled* hardware cost) is bit-identical too.

**The hierarchical cluster tier** reuses the same tree at two levels: each
cluster of cores owns a :class:`ReductionTree` whose combines are capped at
the cluster's way budget (:func:`cluster_way_caps`), and a second-level
tree combines the per-cluster *aggregate* curves -- the cluster roots,
injected via :meth:`ReductionTree.set_leaf_node` -- to decide how many LLC
ways each cluster receives.  Because combined nodes keep their back-track
``split`` chains, one :func:`_assign` walk from the second-level root
recurses through the cluster roots down to the per-core leaves, so the
two-level select yields a complete per-core assignment with no extra
machinery.  With a single cluster the cap equals the full associativity and
the second level degenerates to a pass-through, making the hierarchy
bit-identical to the flat tree.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

import numpy as np

from repro.core.curves import EnergyCurve
from repro.core.overhead_meter import OverheadMeter
from repro.util.validation import require

__all__ = [
    "global_optimize",
    "ReductionTree",
    "partition_clusters",
    "cluster_way_caps",
]


@dataclass(slots=True)
class _Node:
    """A (possibly combined) curve over total allocated ways."""

    min_ways: int
    max_ways: int
    epi: np.ndarray  # epi[s - min_ways] = best energy with s total ways
    curve: EnergyCurve | None = None      # leaf payload
    left: "_Node | None" = None
    right: "_Node | None" = None
    split: np.ndarray | None = None       # ways given to the left child per s
    dp_cells: int = 0                     # DP work a from-scratch combine does
    leaf_ids: tuple[int, ...] = ()        # core ids of the leaves underneath
    # (tree, way total) this node received on the most recent back-track
    # walk.  Combines always build fresh nodes, so a surviving stamp
    # certifies the whole subtree (and therefore its assignment at that
    # total) unchanged since that walk -- ReductionTree.solve prunes the
    # walk on it.  The tree is part of the stamp because cluster-tier
    # nodes are shared between a cluster tree and the second-level tree:
    # a stamp is only valid against the *stamping* tree's previous
    # assignment.
    last_s: int | None = None
    last_tree: object = None


def _leaf(curve: EnergyCurve, min_ways: int, cap: int) -> _Node:
    """Leaf node over ``[min_ways, cap]`` ways of one curve.

    Clamping at ``cap`` matters only when the curve is wider than the
    tree's way budget -- a cluster tree over full-associativity curves --
    and is what makes a *single-core* cluster respect its cap (its leaf is
    never passed through a capped combine).  Reachable splits of wider
    trees are unaffected: a child of any combine can receive at most
    ``cap - min_ways`` ways anyway.
    """
    epi = curve.epi[min_ways - 1 : cap].copy()
    return _Node(min_ways=min_ways, max_ways=min(curve.max_ways, cap), epi=epi,
                 curve=curve, leaf_ids=(curve.core_id,))


#: Memoised in-range DP cell counts per (left width, right width, sums):
#: the count is a pure function of the three shapes and recurs for every
#: combine at the same tree position, so the per-combine NumPy reduction
#: collapses to a dict lookup.
_DP_CELLS_MEMO: dict[tuple[int, int, int], int] = {}


def _dp_cell_count(na: int, nb: int, nk: int) -> int:
    """DP work of one combine: the in-range (sl, s - sl) pairs per sum."""
    key = (na, nb, nk)
    cells = _DP_CELLS_MEMO.get(key)
    if cells is None:
        cells = sum(min(k + 1, na, nb, na + nb - 1 - k) for k in range(nk))
        _DP_CELLS_MEMO[key] = cells
    return cells


#: Cached ``np.arange`` vectors (read-only by convention): every combine at
#: the same width re-creates the same index vector otherwise.
_ARANGE_MEMO: dict[int, np.ndarray] = {}


def _arange(n: int) -> np.ndarray:
    ks = _ARANGE_MEMO.get(n)
    if ks is None:
        ks = np.arange(n)
        _ARANGE_MEMO[n] = ks
    return ks


#: Reusable per-shape scratch buffers for the combine's padded input and
#: anti-diagonal sum.  ``_combine`` is non-reentrant (tree reductions call
#: it sequentially) and everything that outlives the call -- the winning
#: energies and splits -- is materialised by copying fancy-index/argmin
#: outputs, so recycling the intermediates is safe *within one thread*.
#: The buffers live in a thread local because the replay service runs
#: several simulations concurrently in one process; a shared buffer would
#: let two combines overwrite each other's DP state mid-reduction.
_SCRATCH_TLS = threading.local()


def _scratch_map() -> dict:
    bufs = getattr(_SCRATCH_TLS, "bufs", None)
    if bufs is None:
        bufs = _SCRATCH_TLS.bufs = {}
    return bufs


#: Scratch-cache capacity (shapes held per thread before eviction).
_SCRATCH_CAP = 256


def _scratch_evict(bufs: dict) -> None:
    """Evict oldest-inserted entries only (dicts preserve insertion order):
    wiping the whole table on mixed-size workloads would also drop the
    still-hot shapes -- including the prefilled-inf pads -- and cause
    realloc + refill churn every 257th distinct shape."""
    while len(bufs) >= _SCRATCH_CAP:
        bufs.pop(next(iter(bufs)))


def _scratch(key: tuple, shape) -> np.ndarray:
    bufs = _scratch_map()
    buf = bufs.get(key)
    if buf is None:
        _scratch_evict(bufs)
        buf = np.empty(shape)
        bufs[key] = buf
    return buf


def _padded_scratch(na: int, nb: int) -> np.ndarray:
    """Reusable combine input of width ``na`` between two ``inf`` pads.

    The pads are invariant per (na, nb) shape, so they are filled once at
    creation; each combine only overwrites the middle with its left-child
    energies.
    """
    key = ("pad", na, nb)
    bufs = _scratch_map()
    buf = bufs.get(key)
    if buf is None:
        _scratch_evict(bufs)
        buf = np.full(na + 2 * (nb - 1), np.inf)
        bufs[key] = buf
    return buf


def _combine(a: _Node, b: _Node, cap: int, meter: OverheadMeter | None) -> _Node:
    """Min-plus convolution of two curves, vectorised over all sums ``s``.

    ``epi[s] = min over sl of a.epi[sl] + b.epi[s - sl]`` is the minimum of
    the ``(i + j == k)`` anti-diagonal of the outer sum of the two energy
    arrays.  Padding ``a.epi`` with ``inf`` and taking length-``len(b)``
    sliding windows aligns anti-diagonal ``k`` with window ``k`` against the
    reversed ``b.epi``, so one 2-D reduction replaces the per-``s`` Python
    loop; out-of-range pairs sit on the ``inf`` padding and never win the
    argmin.  Window position ascends with the left child's way count, so
    tie-breaking (first minimum) matches the scalar formulation exactly.
    """
    lo = a.min_ways + b.min_ways
    hi = min(a.max_ways + b.max_ways, cap)
    require(hi >= lo, "combined curve has empty range")
    na, nb = len(a.epi), len(b.epi)
    nk = hi - lo + 1
    padded = _padded_scratch(na, nb)
    padded[nb - 1 : nb - 1 + na] = a.epi
    stride = padded.strides[0]
    windows = np.ndarray((nk, nb), dtype=np.float64, buffer=padded,
                         strides=(stride, stride))
    totals = _scratch(("sum", nk, nb), (nk, nb))
    np.add(windows, b.epi[::-1], out=totals)
    m = np.argmin(totals, axis=1)
    ks = _arange(nk)
    epi = totals[ks, m]
    # Reuse the argmin buffer for the split vector (in-place, same values
    # as the expression form ``a.min_ways + ks + m - (nb - 1)``).
    split = m
    split += ks
    split += a.min_ways - (nb - 1)
    # DP work actually required per s: the in-range (sl, s - sl) pairs.
    cells = _dp_cell_count(na, nb, nk)
    if meter is not None:
        meter.charge_dp(cells)
    return _Node(min_ways=lo, max_ways=hi, epi=epi, left=a, right=b, split=split,
                 dp_cells=cells, leaf_ids=a.leaf_ids + b.leaf_ids)


def _assign(node: _Node, s: int, out: dict[int, tuple[int, int, int]]) -> None:
    if node.curve is not None:
        out[node.curve.core_id] = node.curve.setting_at(s)
        return
    sl = int(node.split[s - node.min_ways])
    _assign(node.left, sl, out)
    _assign(node.right, s - sl, out)


def global_optimize(
    curves: list[EnergyCurve],
    total_ways: int,
    min_ways: int = 1,
    meter: OverheadMeter | None = None,
) -> dict[int, tuple[int, int, int]] | None:
    """Optimal per-core ``(core_idx, freq_idx, ways)`` or None if infeasible.

    ``curves`` must cover every core exactly once; the returned way counts
    sum to ``total_ways`` exactly and each is at least ``min_ways``.
    """
    require(len(curves) >= 1, "need at least one curve")
    require(
        total_ways >= len(curves) * min_ways,
        "associativity cannot satisfy the per-core minimum",
    )
    nodes = [_leaf(c, min_ways, total_ways) for c in curves]
    while len(nodes) > 1:
        nxt = []
        for i in range(0, len(nodes) - 1, 2):
            nxt.append(_combine(nodes[i], nodes[i + 1], total_ways, meter))
        if len(nodes) % 2:
            nxt.append(nodes[-1])
        nodes = nxt
    return _select(nodes[0], len(curves), total_ways)


def partition_clusters(ncores: int, cluster_size: int) -> tuple[tuple[int, ...], ...]:
    """Partition ``range(ncores)`` into contiguous clusters of ``cluster_size``.

    The last cluster absorbs the remainder when ``ncores`` is not an exact
    multiple.  Contiguous blocks in core order keep the hierarchical
    reduction's pairing deterministic and make the single-cluster case
    (``cluster_size >= ncores``) structurally identical to the flat tree.
    """
    require(cluster_size >= 1, "cluster size must be at least one core")
    return tuple(
        tuple(range(lo, min(lo + cluster_size, ncores)))
        for lo in range(0, ncores, cluster_size)
    )


def cluster_way_caps(
    total_ways: int,
    ncores: int,
    clusters: tuple[tuple[int, ...], ...],
    min_ways: int,
    overprovision: float = 2.0,
) -> tuple[int, ...]:
    """Per-cluster LLC way budgets for the hierarchical reduction.

    Each cluster's intra-cluster combines are capped at ``overprovision``
    times its proportional share of the associativity (rounded up), clamped
    to ``total_ways``: the cap is what makes the cluster tier cheaper than
    the flat reduction (intra-cluster curve arrays stay narrow), while the
    overprovision headroom lets a cache-hungry cluster draw ways from its
    neighbours.  Every cap is at least the cluster's feasibility floor
    (``members * min_ways``), the caps sum to at least ``total_ways`` for
    any ``overprovision >= 1``, and a cluster covering every core is capped
    at exactly ``total_ways`` -- the single-cluster equivalence case.
    """
    require(overprovision >= 1.0, "overprovision must be at least 1.0")
    caps = []
    for members in clusters:
        share = len(members) * total_ways / ncores
        cap = min(total_ways, max(len(members) * min_ways,
                                  math.ceil(overprovision * share)))
        caps.append(int(cap))
    return tuple(caps)


def _select_total(root: _Node, nleaves: int, total_ways: int) -> int | None:
    """The root's way total for back-tracking, or None if infeasible.

    One shared selection rule for the from-scratch and persistent solvers:
    a single core owns the whole cache (clamped to its curve's width);
    otherwise the full associativity must be distributed, and the root's
    energy there must be finite.
    """
    if nleaves == 1:
        s = min(total_ways, root.max_ways)
    else:
        s = total_ways
    if not (root.min_ways <= s <= root.max_ways):
        return None
    if not np.isfinite(root.epi[s - root.min_ways]):
        return None
    return s


def _select(root: _Node, nleaves: int, total_ways: int) -> dict[int, tuple[int, int, int]] | None:
    """Pick the root's way total and back-track the per-core assignment."""
    s = _select_total(root, nleaves, total_ways)
    if s is None:
        return None
    out: dict[int, tuple[int, int, int]] = {}
    _assign(root, s, out)
    return out


class ReductionTree:
    """Persistent min-plus reduction tree over one energy curve per core.

    Mirrors :func:`global_optimize`'s pairing order exactly -- leaves in core
    order, adjacent pairs combined level by level, an odd trailing node
    carried up unchanged -- so assignments (including argmin tie-breaking)
    are bit-identical to a from-scratch rebuild over the same leaf curves.

    ``set_leaf`` marks a leaf dirty only when its curve actually changed
    (object identity first, then array equality), ``invalidate`` forces a
    leaf dirty (scenario swap/depart/arrive splices), and ``solve``
    re-combines only the dirty root paths.  Skipped combine nodes re-charge
    their cached DP-cell counts, keeping the metered RMA overhead identical
    to the from-scratch path: the meter models the cost of the paper's
    *on-line algorithm*, which always reduces all ``N - 1`` pairs, while the
    tree is a simulator-side optimisation that must not change any result.
    """

    def __init__(self, ncores: int, total_ways: int, min_ways: int = 1) -> None:
        require(ncores >= 1, "need at least one leaf")
        require(
            total_ways >= ncores * min_ways,
            "associativity cannot satisfy the per-core minimum",
        )
        self.ncores = ncores
        self.total_ways = total_ways
        self.min_ways = min_ways
        self._curves: list[EnergyCurve | None] = [None] * ncores
        # Level 0 holds the leaves; level L+1 pairs level L's slots in order.
        # An entry (a, b) combines two slots; (a, None) passes slot a through.
        self._slots: list[list[tuple[int, int | None]]] = []
        width = ncores
        while width > 1:
            level: list[tuple[int, int | None]] = [
                (i, i + 1) for i in range(0, width - 1, 2)
            ]
            if width % 2:
                level.append((width - 1, None))
            self._slots.append(level)
            width = len(level)
        self._nodes: list[list[_Node | None]] = [[None] * ncores] + [
            [None] * len(level) for level in self._slots
        ]
        self._dirty: list[list[bool]] = [[True] * len(row) for row in self._nodes]
        # Any-dirty flag plus cached root: a refresh of a fully clean tree
        # is one replay charge, not a per-slot walk.
        self._dirty_any = True
        self._root: _Node | None = None
        # Total DP cells of every combine node currently in the tree (what a
        # from-scratch rebuild would charge), maintained by refresh.
        self._replay_cells = 0
        # The previous solve's full assignment, backing the pruned walk.
        self._last_assignment: dict[int, tuple[int, int, int]] | None = None

    @property
    def replay_cells(self) -> int:
        """DP cells a refresh of this tree in its current (clean) state
        replays to the meter: the summed cost of every combine node, i.e.
        what a from-scratch rebuild over the same leaves would charge.
        Valid after a refresh; callers batching clean-tree charges (the
        hierarchical manager's stale-cluster skip) read it instead of
        walking the tree."""
        return self._replay_cells

    def invalidate(self, core_id: int) -> None:
        """Force the leaf dirty (the tenant behind it was spliced in/out)."""
        self._dirty[0][core_id] = True
        self._dirty_any = True

    def set_leaf(self, core_id: int, curve: EnergyCurve) -> None:
        """Install a leaf curve, marking it dirty only if it changed."""
        prev = self._curves[core_id]
        if not self._dirty[0][core_id] and prev is not None:
            if prev is curve or prev.same_curve(curve):
                self._curves[core_id] = curve
                return
        self._curves[core_id] = curve
        self._nodes[0][core_id] = _leaf(curve, self.min_ways, self.total_ways)
        self._dirty[0][core_id] = True
        self._dirty_any = True

    def set_leaves(self, curves: list[EnergyCurve]) -> None:
        """Install one curve per leaf slot, in slot order (grouped refresh).

        Equivalent to ``set_leaf(i, curves[i])`` for every slot, with the
        per-call plumbing hoisted: the hierarchical manager refreshes a
        whole cluster's leaves with one call per invocation instead of a
        per-core method walk.
        """
        require(len(curves) == self.ncores, "need exactly one curve per leaf")
        held = self._curves
        dirty = self._dirty[0]
        nodes = self._nodes[0]
        for i, curve in enumerate(curves):
            prev = held[i]
            if not dirty[i] and prev is not None:
                if prev is curve or prev.same_curve(curve):
                    held[i] = curve
                    continue
            held[i] = curve
            nodes[i] = _leaf(curve, self.min_ways, self.total_ways)
            dirty[i] = True
            self._dirty_any = True

    def set_leaf_node(self, slot: int, node: _Node, dirty: bool) -> None:
        """Install a prebuilt aggregate node as leaf ``slot`` (cluster tier).

        The hierarchical manager feeds each cluster's root node into its
        second-level tree through this method: the node already carries its
        combined epi array and back-track splits, so the second level
        treats it exactly like a (wide) leaf curve.  ``dirty`` is the
        cluster tree's report of whether any of its own root path was
        re-combined; a clean, identical root keeps the second-level subtree
        cached.
        """
        self._nodes[0][slot] = node
        if dirty:
            self._dirty[0][slot] = True
            self._dirty_any = True

    def refresh(self, meter: OverheadMeter | None = None) -> tuple[_Node, bool]:
        """Re-combine the dirty root paths; return ``(root, changed)``.

        ``changed`` reports whether the root node was rebuilt this call --
        the signal a second-level tree needs to decide whether this tree's
        aggregate leaf is dirty.  Skipped combine work still re-charges its
        cached DP-cell counts on ``meter`` (see :meth:`solve`), batched into
        one charge per refresh: the costs are exact integers, so one summed
        charge is bit-identical to the per-node charges it replaces.  A
        fully clean tree short-circuits to that single replay charge
        without walking its slots at all.
        """
        if not self._dirty_any and self._root is not None:
            if meter is not None and self._replay_cells:
                meter.charge_replay(dp_cells=self._replay_cells)
            return self._root, False
        require(all(n is not None for n in self._nodes[0]), "every leaf needs a curve")
        replay_cells = 0
        total_cells = 0
        for lvl, level in enumerate(self._slots, start=1):
            nodes, below = self._nodes[lvl], self._nodes[lvl - 1]
            dirty, dirty_below = self._dirty[lvl], self._dirty[lvl - 1]
            for s, (a, b) in enumerate(level):
                if b is None:
                    # Odd trailing node: carried up unchanged, no DP work.
                    nodes[s] = below[a]
                    dirty[s] = dirty_below[a]
                    continue
                node = nodes[s]
                if node is None or dirty_below[a] or dirty_below[b]:
                    node = _combine(below[a], below[b], self.total_ways, meter)
                    nodes[s] = node
                    dirty[s] = True
                else:
                    # Clean subtree: replay the DP cost a rebuild would pay.
                    replay_cells += node.dp_cells
                total_cells += node.dp_cells
        if meter is not None and replay_cells:
            meter.charge_replay(dp_cells=replay_cells)
        self._replay_cells = total_cells
        changed = self._dirty[-1][0]
        for row in self._dirty:
            for i in range(len(row)):
                row[i] = False
        self._dirty_any = False
        self._root = self._nodes[-1][0]
        return self._root, changed

    def _assign_pruned(
        self,
        node: _Node,
        s: int,
        out: dict[int, tuple[int, int, int]],
        prev: dict[int, tuple[int, int, int]] | None,
    ) -> None:
        """Back-track ``node`` at way total ``s``, reusing unchanged subtrees.

        A node whose ``(last_tree, last_s)`` stamp equals ``(self, s)`` has
        not been rebuilt since a walk *by this tree* that gave it the same
        total (combines always produce fresh, unstamped nodes), so its
        subtree's assignment is the one this tree's previous solve recorded
        -- copy those entries instead of recursing.  Values are identical
        by construction; only Python walk work is skipped.  The tree check
        makes sharing nodes across trees (the cluster tier feeds cluster
        roots into the second-level tree) structurally safe: another
        tree's stamps never satisfy this tree's prune.
        """
        if prev is not None and node.last_s == s and node.last_tree is self:
            for cid in node.leaf_ids:
                out[cid] = prev[cid]
            return
        node.last_s = s
        node.last_tree = self
        if node.curve is not None:
            out[node.curve.core_id] = node.curve.setting_at(s)
            return
        sl = int(node.split[s - node.min_ways])
        self._assign_pruned(node.left, sl, out, prev)
        self._assign_pruned(node.right, s - sl, out, prev)

    def solve(self, meter: OverheadMeter | None = None) -> dict[int, tuple[int, int, int]] | None:
        """Optimal assignment over the current leaves (or None if infeasible).

        Bit-identical to ``global_optimize(curves, total_ways, min_ways,
        meter)`` over the same curves, in both the assignment and the meter
        charges.  The back-track walk is pruned against the previous
        solve's assignment (see :meth:`_assign_pruned`), so its Python cost
        scales with what actually changed, not with the core count.
        """
        root, _ = self.refresh(meter)
        s = _select_total(root, self.ncores, self.total_ways)
        if s is None:
            return None
        prev = self._last_assignment
        if prev is not None and root.last_s == s and root.last_tree is self:
            return prev
        out: dict[int, tuple[int, int, int]] = {}
        self._assign_pruned(root, s, out, prev)
        self._last_assignment = out
        return out
