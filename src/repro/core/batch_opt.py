"""Batched curve construction: the coordinated manager's hot path.

The per-invocation cost of :class:`~repro.core.managers.CoordinatedManager`
is dominated by Python-level fan-out: one ``predict_tpi_grid`` /
``predict_epi_grid`` / ``local_optimize`` chain per managed core.  This
module stacks all cores' counter snapshots and ATD miss curves into
``(N, C, F, W)`` tensors and produces every per-core
:class:`~repro.core.curves.EnergyCurve` in one vectorised pass.

Bit-identity contract: every batched function mirrors its per-core
counterpart's elementwise expressions and argmin ordering exactly (the
batch axis is purely a leading dimension), so each produced curve -- and
every metered grid-point charge -- equals the ``N``-invocation loop with
``==`` on every number.  ``tests/test_batch_opt.py`` enforces this.
"""

from __future__ import annotations

import numpy as np

from repro.config import SystemConfig
from repro.core.curves import EnergyCurve
from repro.core.energy_model import predict_epi_grid_batch
from repro.core.local_opt import DimSpec, local_optimize_batch
from repro.core.overhead_meter import OverheadMeter
from repro.core.perf_model import predict_tpi_grid_batch
from repro.core.qos import QOS_TOLERANCE
from repro.util.validation import require

__all__ = [
    "stack_mlp_hats",
    "qos_targets_from_grids",
    "analytical_curves_batch",
    "oracle_curves_batch",
]


def stack_mlp_hats(
    system: SystemConfig,
    model,
    snapshots: list,
    mlp_sampled: list,
) -> np.ndarray:
    """``(N, C, W)`` MLP estimates: the model's per-core outputs, stacked.

    Model evaluation itself is cheap (a fill or a cast); stacking keeps the
    exact per-core arrays so downstream slices stay bit-identical.
    """
    return np.stack(
        [model.mlp_hat(system, s, m) for s, m in zip(snapshots, mlp_sampled)]
    )


def qos_targets_from_grids(
    system: SystemConfig,
    tpi_batch: np.ndarray,
    slacks: list[float],
) -> np.ndarray:
    """Per-core QoS target TPIs from stacked prediction grids.

    One vectorised read of every core's baseline grid point, then the exact
    elementwise expression of the scalar :func:`qos_target_tpi` -- the same
    IEEE-754 multiply chain per core, so targets are bit-identical to the
    per-core loop this replaces (which mattered once the oracle pipeline
    started stacking 64-256 cores per invocation).
    """
    slack_arr = np.asarray(slacks, dtype=float)
    require(bool(np.all(slack_arr >= 0.0)), "slack must be non-negative")
    base = tpi_batch[
        :,
        system.baseline_core_index,
        system.baseline_freq_index,
        system.baseline_ways - 1,
    ]
    return base * (1.0 + slack_arr) * (1.0 + QOS_TOLERANCE)


def analytical_curves_batch(
    system: SystemConfig,
    model,
    core_ids: list[int],
    snapshots: list,
    mpki_sampled: list,
    mlp_sampled: list,
    slacks: list[float],
    dims: DimSpec,
    meter: OverheadMeter | None = None,
    pin_ways_per_core: list[int] | None = None,
) -> list[EnergyCurve]:
    """Analytical-model curves for ``N`` cores in one vectorised pass.

    The batched equivalent of ``CoordinatedManager._analytical_curve``
    applied to every core: counter snapshots and sampled ATD miss curves in,
    QoS-pruned energy curves out.  ``pin_ways_per_core`` restricts each core
    to a fixed partition (the uncoordinated UCP+DVFS manager's protocol).
    """
    require(
        len(core_ids) == len(snapshots) == len(mpki_sampled) == len(mlp_sampled) == len(slacks),
        "batched inputs must be parallel lists",
    )
    mpki_batch = np.stack([np.asarray(m, dtype=float) for m in mpki_sampled])
    mlp_batch = stack_mlp_hats(system, model, snapshots, mlp_sampled)
    tpi_batch = predict_tpi_grid_batch(system, snapshots, mpki_batch, mlp_batch)
    epi_batch = predict_epi_grid_batch(system, snapshots, mpki_batch, tpi_batch)
    targets = qos_targets_from_grids(system, tpi_batch, slacks)
    return local_optimize_batch(
        system, core_ids, tpi_batch, epi_batch, targets, dims, meter,
        pin_ways_per_core=pin_ways_per_core,
    )


def oracle_curves_batch(
    system: SystemConfig,
    core_ids: list[int],
    records: list,
    slacks: list[float],
    dims: DimSpec,
    meter: OverheadMeter | None = None,
) -> list[EnergyCurve]:
    """Oracle ("perfect models") curves for ``N`` cores in one pass.

    The oracle path reads each core's *upcoming* record's exact ``(C, F, W)``
    grids, so batching is a stack plus one ``local_optimize_batch`` call.
    """
    require(
        len(core_ids) == len(records) == len(slacks),
        "batched inputs must be parallel lists",
    )
    tpi_batch = np.stack([np.asarray(r.tpi, dtype=float) for r in records])
    epi_batch = np.stack([np.asarray(r.epi, dtype=float) for r in records])
    targets = qos_targets_from_grids(system, tpi_batch, slacks)
    return local_optimize_batch(
        system, core_ids, tpi_batch, epi_batch, targets, dims, meter
    )
