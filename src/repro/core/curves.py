"""Per-core energy curves: the interface between local and global optimisation.

The local optimisation collapses the per-core configuration space to one
curve ``E*(w)`` -- for every way allocation the minimum predicted energy per
instruction over the (QoS-feasible) frequency/core-size choices, remembering
which ``(c*, f*)`` achieved it.  The global optimiser then only reasons about
way allocations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import require

__all__ = ["EnergyCurve"]


@dataclass(frozen=True)
class EnergyCurve:
    """``E*(w)`` with the argmin settings; infeasible ``w`` hold ``inf``."""

    core_id: int
    epi: np.ndarray        # (W,) nJ/instr; np.inf where no feasible (c, f)
    freq_idx: np.ndarray   # (W,) int
    core_idx: np.ndarray   # (W,) int

    def __post_init__(self) -> None:
        require(self.epi.ndim == 1, "epi must be 1-D over ways")
        require(
            len(self.freq_idx) == len(self.epi) and len(self.core_idx) == len(self.epi),
            "curve arrays must have equal length",
        )

    @property
    def max_ways(self) -> int:
        """The largest way allocation the curve covers (its array length)."""
        return int(len(self.epi))

    def feasible_mask(self) -> np.ndarray:
        """Boolean mask over ways: True where some (c, f) meets the QoS target."""
        return np.isfinite(self.epi)

    def is_feasible(self) -> bool:
        """Whether any way allocation admits a QoS-feasible setting at all."""
        return bool(np.any(np.isfinite(self.epi)))

    def same_curve(self, other: "EnergyCurve") -> bool:
        """True when ``other`` is numerically this curve (``==`` per entry).

        The persistent reduction tree uses this to decide whether a leaf can
        keep its combined subtrees: curves that compare equal here are fully
        interchangeable in the global optimisation, argmin ties included.
        """
        if self is other:
            return True
        return (
            self.core_id == other.core_id
            and np.array_equal(self.epi, other.epi)
            and np.array_equal(self.freq_idx, other.freq_idx)
            and np.array_equal(self.core_idx, other.core_idx)
        )

    def setting_at(self, ways: int) -> tuple[int, int, int]:
        """(core_idx, freq_idx, ways) chosen at allocation ``ways``."""
        require(np.isfinite(self.epi[ways - 1]), f"ways={ways} is infeasible")
        return int(self.core_idx[ways - 1]), int(self.freq_idx[ways - 1]), ways

    @staticmethod
    def pinned(core_id: int, ways: int, core_idx: int, freq_idx: int, max_ways: int, epi: float = 0.0) -> "EnergyCurve":
        """A curve feasible only at ``ways`` (e.g. a core with no statistics yet).

        The paper's RMA "keeps the baseline resource setting" for cores whose
        last-interval statistics are not yet available; a pinned curve makes
        the global optimiser hand such a core exactly its current allocation.
        ``epi=0`` keeps it neutral in the objective.
        """
        e = np.full(max_ways, np.inf)
        f = np.zeros(max_ways, dtype=int)
        c = np.zeros(max_ways, dtype=int)
        e[ways - 1] = epi
        f[ways - 1] = freq_idx
        c[ways - 1] = core_idx
        return EnergyCurve(core_id=core_id, epi=e, freq_idx=f, core_idx=c)
