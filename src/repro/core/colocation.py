"""Co-location advisor (thesis future work #2).

"According to the experimental results the energy savings depend on the
workload characteristics. It would be interesting to study how we can use
this information to guide the system scheduler to collocate applications
more efficiently."

This module does exactly that: given the characterised applications (their
miss curves and MLP grids from the simulation database), it scores candidate
co-location groups by the *trading potential* the coordinated RMA could
exploit, and greedily packs applications onto multi-core machines to
maximise total predicted savings.

Scoring captures the two mechanisms of the papers:

* **cache trades** -- pair apps with steep miss curves (receivers) with apps
  whose curves are flat (donors): the receiver's MPKI drop at extra ways is
  only realisable if a co-runner gives ways up cheaply;
* **core/VF headroom** (Paper II) -- parallelism-sensitive apps bring
  machine-local savings regardless of co-runners.

The advisor is deliberately model-based (no trial runs): it uses the same
curves the RMA itself sees, so a real scheduler could apply it online.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.config import SystemConfig
from repro.simulation.database import SimulationDatabase
from repro.util.validation import require

__all__ = ["AppProfile", "profile_app", "pair_score", "suggest_colocation"]


@dataclass(frozen=True)
class AppProfile:
    """Scheduler-relevant summary of one application."""

    name: str
    mpki_base: float          # miss rate at the equal-share allocation
    way_gain: float           # MPKI reduction from baseline to double share
    way_loss: float           # MPKI increase from baseline to a single way
    mlp_headroom: float       # relative MLP gain from the largest core

    @property
    def receiver_appetite(self) -> float:
        """How much this app wants extra ways (steepness above baseline)."""
        return self.way_gain

    @property
    def donor_cost(self) -> float:
        """How much this app suffers when stripped to the minimum share."""
        return self.way_loss


def profile_app(system: SystemConfig, db: SimulationDatabase, name: str) -> AppProfile:
    """Build an :class:`AppProfile` from the database's weighted curves."""
    curve = db.weighted_mpki_curve(name)
    mlp = db.weighted_mlp_grid(name)
    base = system.baseline_ways
    hi = min(len(curve), base * 2)
    small, large = float(mlp[0, base - 1]), float(mlp[-1, base - 1])
    return AppProfile(
        name=name,
        mpki_base=float(curve[base - 1]),
        way_gain=float(curve[base - 1] - curve[hi - 1]),
        way_loss=float(curve[0] - curve[base - 1]),
        mlp_headroom=(large - small) / max(small, 1e-9),
    )


def group_score(profiles: list[AppProfile]) -> float:
    """Predicted trading potential of one machine's application group.

    The cache ways a group can trade are a *shared budget*: total receiver
    appetite ``A`` (MPKI recoverable with extra ways) is only realisable up
    to the donatable capacity ``C`` (how cheaply co-runners give ways up).
    The saturating form ``A*C / (A + C)`` is concave in both, so stacking two
    hungry receivers on one machine scores worse than spreading them across
    machines -- the way-budget competition the RMA would actually face.

    MLP headroom (Paper II's core-resize savings) needs no co-runner and adds
    linearly.
    """
    if not profiles:
        return 0.0
    appetite = sum(p.receiver_appetite for p in profiles)
    capacity = sum(1.0 / (1.0 + p.donor_cost) for p in profiles)
    trade = appetite * capacity / (appetite + capacity + 1e-9)
    solo = sum(p.mlp_headroom for p in profiles)
    return trade + 2.0 * solo


def pair_score(a: AppProfile, b: AppProfile) -> float:
    """Trading potential of co-locating exactly ``a`` and ``b``."""
    return group_score([a, b])


def suggest_colocation(
    system: SystemConfig,
    db: SimulationDatabase,
    apps: list[str],
    ncores: int | None = None,
) -> list[tuple[str, ...]]:
    """Partition ``apps`` into machine-sized groups with high trade potential.

    Greedy construction: seed each machine with the strongest remaining
    receiver, then repeatedly add the app maximising the group's score --
    which naturally surrounds receivers with cheap donors instead of other
    receivers.  Returns groups in construction order.
    """
    k = ncores or system.ncores
    require(len(apps) % k == 0, f"need a multiple of {k} applications")
    profiles = {name: profile_app(system, db, name) for name in set(apps)}
    remaining = sorted(apps, key=lambda n: -profiles[n].receiver_appetite)

    groups: list[tuple[str, ...]] = []
    while remaining:
        seed = remaining.pop(0)
        group = [seed]
        while len(group) < k:
            best_idx = max(
                range(len(remaining)),
                key=lambda i: group_score(
                    [profiles[n] for n in group + [remaining[i]]]
                ),
            )
            group.append(remaining.pop(best_idx))
        groups.append(tuple(group))
    return groups
