"""repro: QoS-driven coordinated management of resources to save energy.

A full reproduction of M. Nejat, M. Pericàs, P. Stenström, *"QoS-Driven
Coordinated Management of Resources to Save Energy in Multicore Systems"*
(IPDPS 2019) and its follow-up (core-reconfiguration, Paper II of the
author's licentiate thesis), including the multi-level simulation framework
the papers are evaluated with.

Quickstart
----------
>>> from repro import default_system, build_database, paper1_workloads
>>> from repro import simulate_workload, rm2_combined, compare_runs
>>> system = default_system(ncores=4)
>>> db = build_database(system, names=["mcf_like", "povray_like",
...                                    "libquantum_like", "namd_like"])
>>> wl = paper1_workloads(4)[2]            # doctest: +SKIP
>>> base = simulate_workload(system, db, wl)               # doctest: +SKIP
>>> run = simulate_workload(system, db, wl, rm2_combined())  # doctest: +SKIP
>>> compare_runs(base, run).savings_pct                    # doctest: +SKIP
"""

from repro.config import (
    Allocation,
    CoreSize,
    LLCGeometry,
    MemoryConfig,
    OverheadConfig,
    SystemConfig,
    VFTable,
    default_system,
)
from repro.core import (
    CoordinatedManager,
    EnergyCurve,
    OverheadMeter,
    ResourceManager,
    StaticBaselineManager,
    dvfs_only,
    global_optimize,
    local_optimize,
    rm1_partitioning_only,
    rm2_combined,
    rm3_core_adaptive,
)
from repro.simulation import (
    RMASimulator,
    RunResult,
    SimulationDatabase,
    WorkloadComparison,
    build_database,
    compare_runs,
    energy_savings_pct,
    simulate_workload,
)
from repro.workloads import (
    BENCHMARKS,
    Benchmark,
    Workload,
    benchmark_names,
    get_benchmark,
    paper1_workloads,
    paper2_workloads,
    scenario_of_mix,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # config
    "Allocation",
    "CoreSize",
    "LLCGeometry",
    "MemoryConfig",
    "OverheadConfig",
    "SystemConfig",
    "VFTable",
    "default_system",
    # core contribution
    "CoordinatedManager",
    "EnergyCurve",
    "OverheadMeter",
    "ResourceManager",
    "StaticBaselineManager",
    "dvfs_only",
    "global_optimize",
    "local_optimize",
    "rm1_partitioning_only",
    "rm2_combined",
    "rm3_core_adaptive",
    # simulation framework
    "RMASimulator",
    "RunResult",
    "SimulationDatabase",
    "WorkloadComparison",
    "build_database",
    "compare_runs",
    "energy_savings_pct",
    "simulate_workload",
    # workloads
    "BENCHMARKS",
    "Benchmark",
    "Workload",
    "benchmark_names",
    "get_benchmark",
    "paper1_workloads",
    "paper2_workloads",
    "scenario_of_mix",
]
