"""Scenario generators: stochastic processes over apps, cores and QoS.

Every generator derives all randomness from :func:`repro.util.rng.rng_for`
with a ``("scenario", kind, name, seed)`` key, so a (name, seed) pair fully
determines the event stream -- across processes, platforms and
``REPRO_PROCESSES`` settings.  Times are expressed in nanoseconds;
``DEFAULT_INTERVAL_NS`` is the nominal duration of one 100 M-instruction
interval at the baseline setting (measured across the benchmark catalogue),
used to convert "every k intervals"-style knobs into wall-clock times.

Generators take the *app pool* explicitly (usually
``db.benchmarks()``) so scenarios never reference benchmarks missing from
the simulation database.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.scenarios.events import Scenario, ScenarioEvent
from repro.util.rng import rng_for
from repro.util.validation import require
from repro.workloads.mixes import Workload

__all__ = [
    "DEFAULT_INTERVAL_NS",
    "poisson_arrivals",
    "trace_arrivals",
    "churn",
    "qos_ramp",
    "burst_load",
]

#: Nominal wall-clock length of one execution interval at the baseline
#: allocation (catalogue benchmarks measure 0.3-1.5e8 ns; this is the mean).
DEFAULT_INTERVAL_NS = 8.0e7


def _initial_workload(
    name: str, ncores: int, apps: Sequence[str], rng, slack: float = 0.0
) -> Workload:
    require(len(apps) >= 1, "app pool must not be empty")
    picks = tuple(apps[int(i)] for i in rng.integers(0, len(apps), size=ncores))
    return Workload(name=name, apps=picks, slack=tuple(slack for _ in range(ncores)))


def poisson_arrivals(
    name: str,
    ncores: int,
    apps: Sequence[str],
    rate_per_interval: float = 0.25,
    horizon_intervals: int = 64,
    seed: int = 0,
    interval_ns: float = DEFAULT_INTERVAL_NS,
    slack: float = 0.0,
) -> Scenario:
    """Open system: tenants arrive as a Poisson process and preempt cores.

    Arrivals form a Poisson process with ``rate_per_interval`` expected
    arrivals per nominal interval; each arrival draws an app from the pool
    and lands on the least-recently-retenanted core (FIFO eviction), the
    standard open-system placement policy.
    """
    require(rate_per_interval > 0.0, "arrival rate must be positive")
    rng = rng_for("scenario", "poisson", name, seed)
    workload = _initial_workload(name, ncores, apps, rng, slack)
    # Wall-clock span over which the horizon's intervals roughly spread.
    duration_ns = horizon_intervals * interval_ns / ncores
    tenancy_since = {j: 0.0 for j in range(ncores)}
    events: list[ScenarioEvent] = []
    t = 0.0
    while True:
        t += float(rng.exponential(interval_ns / rate_per_interval))
        if t >= duration_ns:
            break
        core = min(tenancy_since, key=lambda j: (tenancy_since[j], j))
        tenancy_since[core] = t
        app = apps[int(rng.integers(0, len(apps)))]
        events.append(ScenarioEvent(time_ns=t, core=core, kind="swap", app=app))
    return Scenario(
        name=name, workload=workload, events=tuple(events),
        horizon_intervals=horizon_intervals,
    )


def trace_arrivals(
    name: str,
    workload: Workload,
    trace: Iterable[tuple[float, int, str]],
    horizon_intervals: int = 64,
) -> Scenario:
    """Trace-driven arrivals: replay an explicit ``(time_ns, core, app)`` log.

    The hook for production traces: any recorded placement log (e.g. a
    cluster scheduler trace) becomes a scenario by listing who landed where,
    when.  Entries are sorted by time before conversion.
    """
    entries = sorted(trace, key=lambda e: (float(e[0]), int(e[1])))
    events = tuple(
        ScenarioEvent(time_ns=float(t), core=int(core), kind="swap", app=app)
        for t, core, app in entries
    )
    return Scenario(
        name=name, workload=workload, events=events,
        horizon_intervals=horizon_intervals,
    )


def churn(
    name: str,
    ncores: int,
    apps: Sequence[str],
    cycles: int = 6,
    idle_intervals: float = 2.0,
    horizon_intervals: int = 64,
    seed: int = 0,
    interval_ns: float = DEFAULT_INTERVAL_NS,
    slack: float = 0.0,
) -> Scenario:
    """Application churn: tenants leave cores idle, replacements arrive later.

    ``cycles`` sequential depart->idle->arrive cycles, each on an
    rng-chosen core: the tenant departs, the core idles (power-gated) for
    roughly ``idle_intervals`` nominal intervals, then a fresh app from the
    pool moves in.  Cycles are sequential, so at most one core is idle at a
    time and the system never fully drains.
    """
    require(cycles >= 1, "need at least one churn cycle")
    rng = rng_for("scenario", "churn", name, seed)
    workload = _initial_workload(name, ncores, apps, rng, slack)
    duration_ns = horizon_intervals * interval_ns / ncores
    gap_ns = duration_ns / (cycles + 1)
    events: list[ScenarioEvent] = []
    t = 0.0
    for _ in range(cycles):
        t += float(rng.uniform(0.5, 1.0)) * gap_ns
        core = int(rng.integers(0, ncores))
        idle_ns = float(rng.exponential(idle_intervals * interval_ns))
        app = apps[int(rng.integers(0, len(apps)))]
        events.append(ScenarioEvent(time_ns=t, core=core, kind="depart"))
        events.append(
            ScenarioEvent(time_ns=t + idle_ns, core=core, kind="swap", app=app)
        )
        t += idle_ns
    events.sort(key=lambda ev: (ev.time_ns, ev.core))
    return Scenario(
        name=name, workload=workload, events=tuple(events),
        horizon_intervals=horizon_intervals,
    )


def qos_ramp(
    name: str,
    ncores: int,
    apps: Sequence[str],
    start_slack: float = 0.4,
    end_slack: float = 0.0,
    steps: int = 4,
    horizon_intervals: int = 64,
    seed: int = 0,
    interval_ns: float = DEFAULT_INTERVAL_NS,
) -> Scenario:
    """Per-app QoS-target schedule: slack ramps from start to end over time.

    Every core's allowed slowdown moves linearly from ``start_slack`` to
    ``end_slack`` in ``steps`` evenly spaced steps -- tightening targets when
    ``end_slack < start_slack`` (e.g. a latency SLO hardening as traffic
    grows), relaxing them otherwise.  The static workload isolates the QoS
    axis: only targets change, tenancy does not.
    """
    require(steps >= 1, "need at least one ramp step")
    require(start_slack >= 0.0 and end_slack >= 0.0, "slack must be non-negative")
    rng = rng_for("scenario", "qos-ramp", name, seed)
    workload = _initial_workload(name, ncores, apps, rng, start_slack)
    duration_ns = horizon_intervals * interval_ns / ncores
    events: list[ScenarioEvent] = []
    for k in range(1, steps + 1):
        frac = k / steps
        slack = start_slack + (end_slack - start_slack) * frac
        t = frac * duration_ns * 0.9  # last step lands inside the horizon
        for core in range(ncores):
            events.append(
                ScenarioEvent(time_ns=t, core=core, kind="slack", slack=round(slack, 6))
            )
    return Scenario(
        name=name, workload=workload, events=tuple(events),
        horizon_intervals=horizon_intervals,
    )


def burst_load(
    name: str,
    ncores: int,
    apps: Sequence[str],
    burst_start_intervals: float = 4.0,
    burst_length_intervals: float = 16.0,
    horizon_intervals: int = 64,
    seed: int = 0,
    interval_ns: float = DEFAULT_INTERVAL_NS,
    slack: float = 0.0,
) -> Scenario:
    """Load ramp: a single tenant, a burst filling every core, then a drain.

    The system starts with one active core.  At ``burst_start_intervals``
    the remaining cores fill with arrivals in quick succession (the ramp);
    after ``burst_length_intervals`` they drain back off one by one, leaving
    the original tenant alone again -- the canonical diurnal-peak shape.
    """
    require(ncores >= 2, "burst load needs at least two cores")
    rng = rng_for("scenario", "burst", name, seed)
    workload = _initial_workload(name, ncores, apps, rng, slack)
    active = tuple(j == 0 for j in range(ncores))
    t_burst = burst_start_intervals * interval_ns
    t_drain = t_burst + burst_length_intervals * interval_ns
    events: list[ScenarioEvent] = []
    for j in range(1, ncores):
        jitter = float(rng.uniform(0.0, 0.25)) * interval_ns
        app = apps[int(rng.integers(0, len(apps)))]
        events.append(
            ScenarioEvent(time_ns=t_burst + jitter, core=j, kind="swap", app=app)
        )
        drain_jitter = float(rng.uniform(0.0, 2.0)) * interval_ns
        events.append(
            ScenarioEvent(time_ns=t_drain + drain_jitter, core=j, kind="depart")
        )
    events.sort(key=lambda ev: (ev.time_ns, ev.core))
    return Scenario(
        name=name, workload=workload, events=tuple(events),
        horizon_intervals=horizon_intervals, active=active,
    )
