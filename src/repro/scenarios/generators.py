"""Scenario generators: stochastic processes over apps, cores and QoS.

Every generator derives all randomness from :func:`repro.util.rng.rng_for`
with a ``("scenario", kind, name, seed)`` key, so a (name, seed) pair fully
determines the event stream -- across processes, platforms and
``REPRO_PROCESSES`` settings.  Times are expressed in nanoseconds;
``DEFAULT_INTERVAL_NS`` is the nominal duration of one 100 M-instruction
interval at the baseline setting (measured across the benchmark catalogue),
used to convert "every k intervals"-style knobs into wall-clock times.

Generators take the *app pool* explicitly (usually
``db.benchmarks()``) so scenarios never reference benchmarks missing from
the simulation database.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.global_opt import partition_clusters
from repro.scenarios.events import Scenario, ScenarioEvent
from repro.util.rng import rng_for
from repro.util.validation import require
from repro.workloads.mixes import Workload

__all__ = [
    "DEFAULT_INTERVAL_NS",
    "poisson_arrivals",
    "trace_arrivals",
    "churn",
    "qos_ramp",
    "burst_load",
    "cluster_churn",
    "skewed_load",
]

#: Nominal wall-clock length of one execution interval at the baseline
#: allocation (catalogue benchmarks measure 0.3-1.5e8 ns; this is the mean).
DEFAULT_INTERVAL_NS = 8.0e7


def _initial_workload(
    name: str, ncores: int, apps: Sequence[str], rng, slack: float = 0.0
) -> Workload:
    require(len(apps) >= 1, "app pool must not be empty")
    picks = tuple(apps[int(i)] for i in rng.integers(0, len(apps), size=ncores))
    return Workload(name=name, apps=picks, slack=tuple(slack for _ in range(ncores)))


def poisson_arrivals(
    name: str,
    ncores: int,
    apps: Sequence[str],
    rate_per_interval: float = 0.25,
    horizon_intervals: int = 64,
    seed: int = 0,
    interval_ns: float = DEFAULT_INTERVAL_NS,
    slack: float = 0.0,
) -> Scenario:
    """Open system: tenants arrive as a Poisson process and preempt cores.

    Arrivals form a Poisson process with ``rate_per_interval`` expected
    arrivals per nominal interval; each arrival draws an app from the pool
    and lands on the least-recently-retenanted core (FIFO eviction), the
    standard open-system placement policy.
    """
    require(rate_per_interval > 0.0, "arrival rate must be positive")
    rng = rng_for("scenario", "poisson", name, seed)
    workload = _initial_workload(name, ncores, apps, rng, slack)
    # Wall-clock span over which the horizon's intervals roughly spread.
    duration_ns = horizon_intervals * interval_ns / ncores
    tenancy_since = {j: 0.0 for j in range(ncores)}
    events: list[ScenarioEvent] = []
    t = 0.0
    while True:
        t += float(rng.exponential(interval_ns / rate_per_interval))
        if t >= duration_ns:
            break
        core = min(tenancy_since, key=lambda j: (tenancy_since[j], j))
        tenancy_since[core] = t
        app = apps[int(rng.integers(0, len(apps)))]
        events.append(ScenarioEvent(time_ns=t, core=core, kind="swap", app=app))
    return Scenario(
        name=name, workload=workload, events=tuple(events),
        horizon_intervals=horizon_intervals,
    )


def trace_arrivals(
    name: str,
    workload: Workload,
    trace: Iterable[tuple[float, int, str]],
    horizon_intervals: int = 64,
) -> Scenario:
    """Trace-driven arrivals: replay an explicit ``(time_ns, core, app)`` log.

    The hook for production traces: any recorded placement log (e.g. a
    cluster scheduler trace) becomes a scenario by listing who landed where,
    when.  Entries are sorted by time before conversion.
    """
    entries = sorted(trace, key=lambda e: (float(e[0]), int(e[1])))
    events = tuple(
        ScenarioEvent(time_ns=float(t), core=int(core), kind="swap", app=app)
        for t, core, app in entries
    )
    return Scenario(
        name=name, workload=workload, events=events,
        horizon_intervals=horizon_intervals,
    )


def churn(
    name: str,
    ncores: int,
    apps: Sequence[str],
    cycles: int = 6,
    idle_intervals: float = 2.0,
    horizon_intervals: int = 64,
    seed: int = 0,
    interval_ns: float = DEFAULT_INTERVAL_NS,
    slack: float = 0.0,
) -> Scenario:
    """Application churn: tenants leave cores idle, replacements arrive later.

    ``cycles`` sequential depart->idle->arrive cycles, each on an
    rng-chosen core: the tenant departs, the core idles (power-gated) for
    roughly ``idle_intervals`` nominal intervals, then a fresh app from the
    pool moves in.  Cycles are sequential, so at most one core is idle at a
    time and the system never fully drains.
    """
    require(cycles >= 1, "need at least one churn cycle")
    rng = rng_for("scenario", "churn", name, seed)
    workload = _initial_workload(name, ncores, apps, rng, slack)
    duration_ns = horizon_intervals * interval_ns / ncores
    gap_ns = duration_ns / (cycles + 1)
    events: list[ScenarioEvent] = []
    t = 0.0
    for _ in range(cycles):
        t += float(rng.uniform(0.5, 1.0)) * gap_ns
        core = int(rng.integers(0, ncores))
        idle_ns = float(rng.exponential(idle_intervals * interval_ns))
        app = apps[int(rng.integers(0, len(apps)))]
        events.append(ScenarioEvent(time_ns=t, core=core, kind="depart"))
        events.append(
            ScenarioEvent(time_ns=t + idle_ns, core=core, kind="swap", app=app)
        )
        t += idle_ns
    events.sort(key=lambda ev: (ev.time_ns, ev.core))
    return Scenario(
        name=name, workload=workload, events=tuple(events),
        horizon_intervals=horizon_intervals,
    )


def qos_ramp(
    name: str,
    ncores: int,
    apps: Sequence[str],
    start_slack: float = 0.4,
    end_slack: float = 0.0,
    steps: int = 4,
    horizon_intervals: int = 64,
    seed: int = 0,
    interval_ns: float = DEFAULT_INTERVAL_NS,
) -> Scenario:
    """Per-app QoS-target schedule: slack ramps from start to end over time.

    Every core's allowed slowdown moves linearly from ``start_slack`` to
    ``end_slack`` in ``steps`` evenly spaced steps -- tightening targets when
    ``end_slack < start_slack`` (e.g. a latency SLO hardening as traffic
    grows), relaxing them otherwise.  The static workload isolates the QoS
    axis: only targets change, tenancy does not.
    """
    require(steps >= 1, "need at least one ramp step")
    require(start_slack >= 0.0 and end_slack >= 0.0, "slack must be non-negative")
    rng = rng_for("scenario", "qos-ramp", name, seed)
    workload = _initial_workload(name, ncores, apps, rng, start_slack)
    duration_ns = horizon_intervals * interval_ns / ncores
    events: list[ScenarioEvent] = []
    for k in range(1, steps + 1):
        frac = k / steps
        slack = start_slack + (end_slack - start_slack) * frac
        t = frac * duration_ns * 0.9  # last step lands inside the horizon
        for core in range(ncores):
            events.append(
                ScenarioEvent(time_ns=t, core=core, kind="slack", slack=round(slack, 6))
            )
    return Scenario(
        name=name, workload=workload, events=tuple(events),
        horizon_intervals=horizon_intervals,
    )


def burst_load(
    name: str,
    ncores: int,
    apps: Sequence[str],
    burst_start_intervals: float = 4.0,
    burst_length_intervals: float = 16.0,
    horizon_intervals: int = 64,
    seed: int = 0,
    interval_ns: float = DEFAULT_INTERVAL_NS,
    slack: float = 0.0,
) -> Scenario:
    """Load ramp: a single tenant, a burst filling every core, then a drain.

    The system starts with one active core.  At ``burst_start_intervals``
    the remaining cores fill with arrivals in quick succession (the ramp);
    after ``burst_length_intervals`` they drain back off one by one, leaving
    the original tenant alone again -- the canonical diurnal-peak shape.
    """
    require(ncores >= 2, "burst load needs at least two cores")
    rng = rng_for("scenario", "burst", name, seed)
    workload = _initial_workload(name, ncores, apps, rng, slack)
    active = tuple(j == 0 for j in range(ncores))
    t_burst = burst_start_intervals * interval_ns
    t_drain = t_burst + burst_length_intervals * interval_ns
    events: list[ScenarioEvent] = []
    for j in range(1, ncores):
        jitter = float(rng.uniform(0.0, 0.25)) * interval_ns
        app = apps[int(rng.integers(0, len(apps)))]
        events.append(
            ScenarioEvent(time_ns=t_burst + jitter, core=j, kind="swap", app=app)
        )
        drain_jitter = float(rng.uniform(0.0, 2.0)) * interval_ns
        events.append(
            ScenarioEvent(time_ns=t_drain + drain_jitter, core=j, kind="depart")
        )
    events.sort(key=lambda ev: (ev.time_ns, ev.core))
    return Scenario(
        name=name, workload=workload, events=tuple(events),
        horizon_intervals=horizon_intervals, active=active,
    )


def cluster_churn(
    name: str,
    ncores: int,
    apps: Sequence[str],
    cluster_size: int = 8,
    cycles: int = 4,
    idle_intervals: float = 2.0,
    horizon_intervals: int = 256,
    seed: int = 0,
    interval_ns: float = DEFAULT_INTERVAL_NS,
    slack: float = 0.0,
) -> Scenario:
    """Whole clusters drain and refill together (many-core S5 shape).

    Models group scheduling on a many-core part: a cluster scheduler
    places and evicts *groups* of tenants -- a rack slice, a VM pool, a
    batch-job gang -- so entire ``cluster_size``-core blocks of the machine
    empty out (power-gated) and later refill with fresh applications.  Each
    of the ``cycles`` sequential cycles picks one cluster at random, departs
    all its cores at jittered times, idles it for roughly
    ``idle_intervals`` nominal intervals, then re-tenants every core with a
    fresh app from the pool.

    For hierarchical managers this is the worst-case splice pattern: a
    whole cluster's aggregate curve collapses to idle leaves and later
    rebuilds, while the other clusters' subtrees must stay cached.  Per-core
    event times are clamped monotone, so the stream is always a valid
    request sequence regardless of the cycle/idle randomness.
    """
    require(cycles >= 1, "need at least one churn cycle")
    require(1 <= cluster_size <= ncores, "cluster size must be within the system")
    rng = rng_for("scenario", "cluster-churn", name, seed)
    workload = _initial_workload(name, ncores, apps, rng, slack)
    # The manager's own partitioning rule, so drained blocks always align
    # with ClusteredManager clusters of the same size.
    clusters = partition_clusters(ncores, cluster_size)
    duration_ns = horizon_intervals * interval_ns / ncores
    gap_ns = duration_ns / (cycles + 1)
    events: list[ScenarioEvent] = []
    last: dict[int, float] = {}

    def emit(t: float, core: int, kind: str, app: str | None = None) -> None:
        t = max(t, last.get(core, 0.0))
        last[core] = t
        events.append(ScenarioEvent(time_ns=t, core=core, kind=kind, app=app))

    t = 0.0
    for _ in range(cycles):
        t += float(rng.uniform(0.5, 1.0)) * gap_ns
        members = clusters[int(rng.integers(0, len(clusters)))]
        idle_ns = float(rng.exponential(idle_intervals * interval_ns))
        for core in members:
            jitter = float(rng.uniform(0.0, 0.25)) * interval_ns
            emit(t + jitter, core, "depart")
            app = apps[int(rng.integers(0, len(apps)))]
            refill = float(rng.uniform(0.0, 0.5)) * interval_ns
            emit(t + jitter + idle_ns + refill, core, "swap", app)
        t += idle_ns
    events.sort(key=lambda ev: (ev.time_ns, ev.core))
    return Scenario(
        name=name, workload=workload, events=tuple(events),
        horizon_intervals=horizon_intervals,
    )


def skewed_load(
    name: str,
    ncores: int,
    apps: Sequence[str],
    hot_fraction: float = 0.25,
    swaps_per_hot_core: int = 3,
    hot_slack: float = 0.0,
    cold_slack: float = 0.3,
    horizon_intervals: int = 256,
    seed: int = 0,
    interval_ns: float = DEFAULT_INTERVAL_NS,
) -> Scenario:
    """A hot minority of cores under pressure, a relaxed majority (S6 shape).

    The first ``hot_fraction`` of the cores -- contiguous, so the heat
    concentrates in a few clusters of a hierarchical manager -- run under
    strict QoS (``hot_slack``) and are re-tenanted ``swaps_per_hot_core``
    times at random points of the run, while the cold majority keeps its
    initial tenants with a generous ``cold_slack``.  The shape a skewed
    production fleet shows: a few latency-critical services churning under
    tight SLOs amid a sea of batch work.

    This is the scenario that exercises *inter-cluster* way redistribution:
    cold clusters' curves are nearly flat in ways (their slack admits low
    frequencies at small allocations), so the second-level combine should
    hand their capacity to the hot clusters.
    """
    require(0.0 < hot_fraction <= 1.0, "hot fraction must be in (0, 1]")
    require(swaps_per_hot_core >= 0, "swap count must be non-negative")
    rng = rng_for("scenario", "skewed", name, seed)
    require(len(apps) >= 1, "app pool must not be empty")
    nhot = max(1, int(round(hot_fraction * ncores)))
    picks = tuple(apps[int(i)] for i in rng.integers(0, len(apps), size=ncores))
    slack = tuple(hot_slack if j < nhot else cold_slack for j in range(ncores))
    workload = Workload(name=name, apps=picks, slack=slack)
    duration_ns = horizon_intervals * interval_ns / ncores
    events: list[ScenarioEvent] = []
    for core in range(nhot):
        times = sorted(
            float(rng.uniform(0.1, 0.9)) * duration_ns
            for _ in range(swaps_per_hot_core)
        )
        for t in times:
            app = apps[int(rng.integers(0, len(apps)))]
            events.append(ScenarioEvent(time_ns=t, core=core, kind="swap", app=app))
    events.sort(key=lambda ev: (ev.time_ns, ev.core))
    return Scenario(
        name=name, workload=workload, events=tuple(events),
        horizon_intervals=horizon_intervals,
    )
