"""Scenario description: an initial workload plus a timed event stream.

Events are *requests*: each names a core, a wall-clock time and a change.
The RMA simulator applies a request at the target core's first interval
boundary at or after ``time_ns`` (an idle core, which has no boundaries of
its own, picks the request up at the next global event).  Applying changes
at interval boundaries keeps the replay semantics of the simulation-results
database intact: an interval is always one application's 100 M instructions
under one resource setting.

Event kinds
-----------
``swap``
    Replace whatever runs on the core (or activate an idle core) with
    ``app``, restarting that benchmark's phase trace from the top.  The
    resource manager is notified so it discards statistics and energy
    curves derived from the departed tenant.
``depart``
    The core's tenant leaves and the core idles (power-gated: it accrues
    neither instructions nor energy) until a later ``swap`` re-activates it.
``slack``
    The core's QoS contract changes: the per-app allowed slowdown becomes
    ``slack`` (0.0 = strict baseline QoS) from the next boundary on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import require
from repro.workloads.mixes import Workload

__all__ = ["ScenarioEvent", "Scenario", "EVENT_KINDS"]

EVENT_KINDS = ("swap", "depart", "slack")


@dataclass(frozen=True)
class ScenarioEvent:
    """One timed change request against one core."""

    time_ns: float
    core: int
    kind: str                 # "swap" | "depart" | "slack"
    app: str | None = None    # required for "swap"
    slack: float | None = None  # required for "slack"

    def __post_init__(self) -> None:
        require(self.time_ns >= 0.0, "event time must be non-negative")
        require(self.core >= 0, "event core must be non-negative")
        require(self.kind in EVENT_KINDS, f"unknown event kind {self.kind!r}")
        if self.kind == "swap":
            require(bool(self.app), "swap event needs an app")
        if self.kind == "slack":
            require(self.slack is not None and self.slack >= 0.0,
                    "slack event needs a non-negative slack")


@dataclass(frozen=True)
class Scenario:
    """A dynamic execution: initial tenancy, event stream and horizon.

    ``horizon_intervals`` is the total number of 100 M-instruction intervals
    (summed over all cores) the simulation executes -- a fixed amount of
    *work*, so energy totals of different managers over the same scenario
    are directly comparable.  ``active`` masks which cores start busy;
    inactive cores idle until a ``swap`` event targets them.
    """

    name: str
    workload: Workload
    events: tuple[ScenarioEvent, ...] = field(default=())
    horizon_intervals: int = 64
    active: tuple[bool, ...] = field(default=())

    def __post_init__(self) -> None:
        require(self.horizon_intervals >= 1, "horizon must be at least one interval")
        if not self.active:
            object.__setattr__(self, "active", tuple(True for _ in self.workload.apps))
        require(len(self.active) == self.workload.ncores, "active/apps length mismatch")
        require(any(self.active), "at least one core must start active")
        last: dict[int, float] = {}
        for ev in self.events:
            require(ev.core < self.workload.ncores,
                    f"event targets core {ev.core}, workload has {self.workload.ncores}")
            require(ev.time_ns >= last.get(ev.core, 0.0),
                    f"events for core {ev.core} must be time-ordered")
            last[ev.core] = ev.time_ns

    @property
    def ncores(self) -> int:
        return self.workload.ncores

    def events_for(self, core: int) -> tuple[ScenarioEvent, ...]:
        return tuple(ev for ev in self.events if ev.core == core)

    def counts(self) -> dict[str, int]:
        """Event-kind histogram (used in experiment notes)."""
        out = {k: 0 for k in EVENT_KINDS}
        for ev in self.events:
            out[ev.kind] += 1
        return out

    def describe(self) -> str:
        c = self.counts()
        return (f"{self.name}: {self.workload.ncores} cores, "
                f"{self.horizon_intervals} intervals, "
                f"{c['swap']} swaps, {c['depart']} departures, "
                f"{c['slack']} QoS changes")
