"""Dynamic scenario engine: time-varying multi-tenant workloads.

The papers evaluate the coordinated RMA on static workloads -- one app per
core for the whole run.  Production systems are not static: applications
arrive and depart, QoS contracts tighten and relax, and load ramps up and
down.  This package describes such time-varying executions as *scenarios*:

* a :class:`~repro.scenarios.events.Scenario` is an initial workload plus a
  time-ordered stream of :class:`~repro.scenarios.events.ScenarioEvent`\\ s
  (app swap, departure, QoS-slack change) and a total-interval horizon;
* :mod:`repro.scenarios.generators` builds scenarios from stochastic
  processes -- Poisson and trace-driven arrivals, application churn, QoS
  ramps, load bursts, whole-cluster churn and skewed hot/cold loads -- all
  seeded through :mod:`repro.util.rng` so the event streams are
  bit-reproducible across processes and platforms;
* the simulation kernel applies the events at interval boundaries (the
  tenancy component, :mod:`repro.simulation.engine.tenancy`) and runs to
  the horizon.

Scenario experiments S1..S7 (:mod:`repro.experiments.scenarios`) drive the
engine end-to-end and are registered alongside the paper experiments; the
many-core shapes S5 (cluster churn) and S6 (skewed load) exercise the
hierarchical cluster tier of :class:`repro.core.managers.ClusteredManager`,
and S7 sweeps flat vs clustered across system sizes.
"""

from repro.scenarios.events import Scenario, ScenarioEvent
from repro.scenarios.generators import (
    DEFAULT_INTERVAL_NS,
    burst_load,
    churn,
    cluster_churn,
    poisson_arrivals,
    qos_ramp,
    skewed_load,
    trace_arrivals,
)

__all__ = [
    "Scenario",
    "ScenarioEvent",
    "DEFAULT_INTERVAL_NS",
    "poisson_arrivals",
    "trace_arrivals",
    "churn",
    "qos_ramp",
    "burst_load",
    "cluster_churn",
    "skewed_load",
]
