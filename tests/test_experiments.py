"""Tests for the experiment registry and drivers (reduced fidelity)."""

from __future__ import annotations

import os

import pytest

from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import (
    BASELINE,
    RM1,
    RM2,
    RM3,
    ExperimentContext,
    ManagerSpec,
)
from repro.simulation.database import build_database
from repro.config import default_system
from repro.workloads.mixes import paper1_workloads
from tests.conftest import CACHE_DIR


@pytest.fixture(scope="module")
def tiny_ctx():
    """Full-catalogue context at low fidelity for driver smoke runs."""
    system = default_system(4)
    db = build_database(system, accesses_per_set=200, cache_dir=CACHE_DIR)
    return ExperimentContext(system=system, db=db, max_slices=8)


class TestRegistry:
    def test_all_paper_artefacts_present(self):
        ids = list_experiments()
        for i in range(1, 17):
            assert f"E{i}" in ids
        assert {"A1", "A2", "A3"} <= set(ids)

    def test_lookup(self):
        assert get_experiment("e1").experiment_id == "E1"
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_bench_modules_exist(self):
        root = os.path.join(os.path.dirname(__file__), "..")
        for entry in EXPERIMENTS.values():
            assert os.path.exists(os.path.join(root, entry.bench_module)), entry.bench_module

    def test_papers_assigned(self):
        assert get_experiment("E1").paper == "I"
        assert get_experiment("E9").paper == "II"
        assert get_experiment("A1").paper == "ablation"


class TestManagerSpecs:
    def test_build_kinds(self):
        from repro.core.managers import (
            CoordinatedManager,
            IndependentManager,
            StaticBaselineManager,
        )

        assert isinstance(BASELINE.build(), StaticBaselineManager)
        assert isinstance(RM2.build(), CoordinatedManager)
        assert isinstance(
            ManagerSpec(kind="independent", name="i").build(), IndependentManager
        )

    def test_rm_specs_match_paper_restrictions(self):
        assert RM1.control_dvfs is False and RM1.control_partitioning is True
        assert RM2.control_core_size is False
        assert RM3.control_core_size is True and RM3.mlp_model == "model3"

    def test_specs_picklable(self):
        import pickle

        assert pickle.loads(pickle.dumps(RM3)) == RM3


class TestContext:
    def test_baseline_memoised(self, tiny_ctx):
        wl = paper1_workloads(4)[0]
        a = tiny_ctx.baseline_run(wl)
        b = tiny_ctx.baseline_run(wl)
        assert a is b

    def test_compare(self, tiny_ctx):
        wl = paper1_workloads(4)[4]
        cmp = tiny_ctx.compare(wl, RM2)
        assert cmp.workload == wl.name

    def test_run_matrix_covers_all_pairs(self, tiny_ctx):
        wls = paper1_workloads(4)[:3]
        matrix = tiny_ctx.run_matrix(wls, [RM1, RM2], processes=1)
        assert set(matrix) == {(w.name, s.name) for w in wls for s in (RM1, RM2)}

    def test_run_matrix_parallel_matches_serial(self, tiny_ctx):
        wls = paper1_workloads(4)[:2]
        serial = tiny_ctx.run_matrix(wls, [RM2], processes=1)
        parallel = tiny_ctx.run_matrix(wls, [RM2], processes=2)
        for key in serial:
            assert serial[key].savings_pct == pytest.approx(
                parallel[key].savings_pct, rel=1e-12
            )


class TestDrivers:
    def test_e1_structure(self, tiny_ctx):
        result = get_experiment("E1").run(ctx=tiny_ctx)
        assert isinstance(result, ExperimentResult)
        assert len(result.rows) == 21  # 20 workloads + mean
        assert "rm2 avg %" in result.summary
        assert result.paper["rm2 avg %"] == 6.0

    def test_e9_structure(self, tiny_ctx):
        result = get_experiment("E9").run(ctx=tiny_ctx)
        assert len(result.rows) == 16
        scenarios = [row[1] for row in result.rows]
        assert sorted(set(scenarios)) == [1, 2, 3, 4]

    def test_e8_overhead_bound(self, tiny_ctx):
        result = get_experiment("E8").run(ctx=tiny_ctx)
        assert result.summary["fraction %"] < 0.1

    def test_render_and_markdown(self, tiny_ctx):
        result = get_experiment("E8").run(ctx=tiny_ctx)
        text = result.render()
        assert "E8" in text and "paper:" in text
        md = result.markdown()
        assert md.startswith("### E8")
        assert "| quantity | paper | measured |" in md

    def test_e6_partial_relaxation_ordering(self, tiny_ctx):
        result = get_experiment("E6").run(ctx=tiny_ctx)
        by_name = {r[0]: r[1] for r in result.rows}
        assert by_name["all relaxed"] >= by_name["none relaxed"] - 0.5
