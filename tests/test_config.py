"""Unit tests for the system configuration layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    CORE_SIZES,
    Allocation,
    LLCGeometry,
    SystemConfig,
    VFTable,
    default_system,
)


class TestVFTable:
    def test_default_table_contains_nominal(self):
        vf = VFTable()
        assert vf.nominal_ghz in vf.freqs_ghz
        assert vf.freqs_ghz[vf.nominal_index] == vf.nominal_ghz

    def test_voltage_law_linear(self):
        vf = VFTable()
        assert vf.voltage(2.0) == pytest.approx(vf.v0 + vf.kv * 2.0)

    def test_vnom_matches_nominal(self):
        vf = VFTable()
        assert vf.vnom == pytest.approx(vf.voltage(vf.nominal_ghz))

    def test_arrays_match_scalars(self):
        vf = VFTable()
        np.testing.assert_allclose(
            vf.voltages_array(), [vf.voltage(f) for f in vf.freqs_ghz]
        )

    def test_index_of_roundtrip(self):
        vf = VFTable()
        for i, f in enumerate(vf.freqs_ghz):
            assert vf.index_of(f) == i

    def test_index_of_unknown(self):
        with pytest.raises(ValueError):
            VFTable().index_of(1.2345)

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            VFTable(freqs_ghz=(2.0, 1.0), nominal_ghz=2.0)

    def test_rejects_nominal_off_grid(self):
        with pytest.raises(ValueError):
            VFTable(freqs_ghz=(1.0, 2.0), nominal_ghz=1.5)


class TestCoreSizes:
    def test_ladder_ordering(self):
        small, medium, large = CORE_SIZES
        assert small.rob < medium.rob < large.rob
        assert small.mshrs < medium.mshrs < large.mshrs
        assert small.epi_factor < medium.epi_factor < large.epi_factor

    def test_medium_is_reference(self):
        medium = CORE_SIZES[1]
        assert medium.epi_factor == 1.0
        assert medium.leak_factor == 1.0
        assert medium.ilp_speedup == 1.0

    def test_speedup_semantics(self):
        small, _, large = CORE_SIZES
        # small slows fully sensitive code down, large speeds it up
        assert small.ilp_speedup > 1.0 > large.ilp_speedup
        # structural floors are milder than the full effects
        assert small.ilp_floor < small.ilp_speedup
        assert large.ilp_floor > large.ilp_speedup


class TestSystemConfig:
    def test_default_4core(self):
        s = default_system(4)
        assert s.ncores == 4
        assert s.llc.ways == 16
        assert s.baseline_ways == 4

    def test_with_ncores_scales_llc(self):
        s8 = default_system(8)
        assert s8.llc.ways == 32
        assert s8.baseline_ways == 4  # per-core share unchanged

    def test_baseline_allocation(self):
        s = default_system(4)
        alloc = s.baseline_allocation()
        assert alloc.ways == 4
        assert s.core_sizes[alloc.core].name == "medium"
        assert s.vf.freqs_ghz[alloc.freq] == s.vf.nominal_ghz

    def test_per_core_bandwidth(self):
        s = default_system(4)
        assert s.per_core_bw_gbps == pytest.approx(s.mem.peak_bw_gbps / 4)

    def test_rejects_too_few_ways(self):
        with pytest.raises(ValueError):
            SystemConfig(ncores=4, llc=LLCGeometry(ways=3))

    def test_rejects_unknown_baseline_core(self):
        with pytest.raises(ValueError):
            SystemConfig(baseline_core="gigantic")

    def test_overhead_warmup_misses(self):
        s = default_system(4)
        assert s.overheads.warmup_extra_misses(0) == 0.0
        assert s.overheads.warmup_extra_misses(-2) == 0.0
        assert s.overheads.warmup_extra_misses(2) > 0.0


class TestAllocation:
    def test_requires_one_way(self):
        with pytest.raises(ValueError):
            Allocation(core=0, freq=0, ways=0)

    def test_equality(self):
        assert Allocation(1, 2, 3) == Allocation(1, 2, 3)
        assert Allocation(1, 2, 3) != Allocation(1, 2, 4)
