"""Tests for the persistent run-results store and the worker protocol.

Covers content-key sensitivity, store round-trips and corruption tolerance,
cache hits through every ``ExperimentContext`` entry point, baseline
deduplication in ``run_matrix``, context memoisation per (ncores,
cache_dir), and the spawn-start-method worker initializer (workers that
inherit nothing must still rebuild the experiment context).
"""

from __future__ import annotations

import multiprocessing as mp
import os

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments.runner import (
    BASELINE,
    RM2,
    RM3,
    ExperimentContext,
    _init_worker,
    _run_one,
    _WORKER,
    get_context,
)
from repro.scenarios import poisson_arrivals
from repro.simulation.results_store import ResultsStore, database_digest, run_key
from repro.util.parallel import parallel_map
from repro.workloads.mixes import Workload
from tests.conftest import TEST_BENCHMARKS
from tests.test_engine_equivalence import assert_bit_identical


def _wl(name="rs4") -> Workload:
    return Workload(
        name=name,
        apps=("mcf_like", "soplex_like", "libquantum_like", "povray_like"),
    )


def _store_ctx(system4, db4, tmp_path) -> ExperimentContext:
    return ExperimentContext(
        system=system4, db=db4, max_slices=5,
        results_store=ResultsStore(str(tmp_path / "results")),
    )


class TestRunKey:
    def test_stable(self, system4, db4):
        assert run_key(system4, db4, _wl(), RM2, 5) == run_key(
            system4, db4, _wl(), RM2, 5
        )

    def test_sensitive_to_inputs(self, system4, db4):
        base = run_key(system4, db4, _wl(), RM2, 5)
        assert run_key(system4, db4, _wl(), RM3, 5) != base
        assert run_key(system4, db4, _wl(), RM2, 6) != base
        assert run_key(system4, db4, _wl().with_slack(0.1), RM2, 5) != base
        other = Workload(name="rs4", apps=("mcf_like",) * 4)
        assert run_key(system4, db4, other, RM2, 5) != base

    def test_sensitive_to_replay_system(self, system4, db4):
        """Replay-only platform fields (QoS anchor, transition overheads)
        change results against the *same* database; the key must see them."""
        from dataclasses import replace

        base = run_key(system4, db4, _wl(), RM2, 5)
        anchored = replace(system4, qos_baseline_ghz=1.6)
        assert run_key(anchored, db4, _wl(), RM2, 5) != base
        slower = replace(
            system4, overheads=replace(system4.overheads, dvfs_transition_us=40.0)
        )
        assert run_key(slower, db4, _wl(), RM2, 5) != base

    def test_scenario_events_in_key(self, system4, db4):
        a = poisson_arrivals("k", 4, TEST_BENCHMARKS, horizon_intervals=16, seed=0)
        b = poisson_arrivals("k", 4, TEST_BENCHMARKS, horizon_intervals=16, seed=1)
        c = poisson_arrivals("k", 4, TEST_BENCHMARKS, horizon_intervals=24, seed=0)
        assert run_key(system4, db4, a, RM2, 5) != run_key(system4, db4, b, RM2, 5)
        assert run_key(system4, db4, a, RM2, 5) != run_key(system4, db4, c, RM2, 5)
        assert run_key(system4, db4, a, RM2, 5) == run_key(system4, db4, a, RM2, 5)

    def test_database_digest_depends_on_contents(self, db4, db8):
        assert database_digest(db4) != database_digest(db8)


class TestResultsStore:
    def test_roundtrip(self, system4, db4, tmp_path):
        ctx = _store_ctx(system4, db4, tmp_path)
        run = ctx.run(_wl(), BASELINE)
        store = ctx.results_store
        assert store.puts == 1
        key = run_key(system4, db4, _wl(), BASELINE, 5)
        assert os.path.exists(store.path(key))
        again = store.get(key)
        assert_bit_identical(run, again)

    def test_truncated_result_recomputes_cleanly(self, system4, db4, tmp_path):
        """A killed worker's truncated pickle must never poison later hits.

        Regression test for the atomic-write contract: truncate a stored
        result in place, assert the next lookup is a clean miss, the run is
        recomputed bit-identically, and the store heals itself on disk.
        """
        ctx = _store_ctx(system4, db4, tmp_path)
        first = ctx.run(_wl(), RM2)
        store = ctx.results_store
        key = run_key(system4, db4, _wl(), RM2, 5)
        size = os.path.getsize(store.path(key))
        with open(store.path(key), "r+b") as fh:
            fh.truncate(size // 2)
        assert store.get(key) is None  # truncated pickle = miss, not a crash
        fresh = ExperimentContext(
            system=system4, db=db4, max_slices=5, results_store=store
        )
        second = fresh.run(_wl(), RM2)
        assert_bit_identical(first, second)
        # The recompute repaired the entry: full-size file, served next time.
        assert os.path.getsize(store.path(key)) == size
        assert_bit_identical(first, store.get(key))

    def test_put_leaves_no_tmp_droppings(self, system4, db4, tmp_path):
        """Temp files are unique per writer and renamed away on success."""
        ctx = _store_ctx(system4, db4, tmp_path)
        ctx.run(_wl(), BASELINE)
        leftovers = [
            f for f in os.listdir(ctx.results_store.root) if f.endswith(".tmp")
        ]
        assert leftovers == []

    def test_corrupt_file_is_a_miss(self, tmp_path):
        store = ResultsStore(str(tmp_path / "results"))
        os.makedirs(store.root, exist_ok=True)
        with open(store.path("deadbeef"), "wb") as fh:
            fh.write(b"not a pickle")
        assert store.get("deadbeef") is None
        assert store.misses == 1

    def test_unpickleable_entry_is_quarantined(self, tmp_path):
        """Bytes that fail to load are moved aside, never load-attempted again."""
        store = ResultsStore(str(tmp_path / "results"))
        os.makedirs(store.root, exist_ok=True)
        with open(store.path("deadbeef"), "wb") as fh:
            fh.write(b"not a pickle")
        assert store.get("deadbeef") is None
        assert store.quarantined == 1
        assert not os.path.exists(store.path("deadbeef"))
        qpath = os.path.join(
            store.root, ResultsStore.QUARANTINE_DIR, "run_deadbeef.pkl"
        )
        assert os.path.exists(qpath)
        # The entry is gone from the hot path: the next get is a plain miss.
        assert store.get("deadbeef") is None
        assert store.quarantined == 1

    def test_digest_mismatch_quarantines_and_recomputes(
        self, system4, db4, tmp_path
    ):
        """A valid pickle whose recorded digest disagrees with its content --
        bit rot that still unpickles -- must be quarantined, not served."""
        import pickle

        ctx = _store_ctx(system4, db4, tmp_path)
        first = ctx.run(_wl(), RM2)
        store = ctx.results_store
        key = run_key(system4, db4, _wl(), RM2, 5)
        with open(store.path(key), "rb") as fh:
            payload = pickle.load(fh)
        payload["digest"] = "0" * 40  # tamper the recorded digest
        with open(store.path(key), "wb") as fh:
            pickle.dump(payload, fh)
        assert store.get(key) is None  # verified load refuses the entry
        assert store.quarantined == 1
        assert os.path.exists(
            os.path.join(store.root, ResultsStore.QUARANTINE_DIR, f"run_{key}.pkl")
        )
        # Falls through to re-simulation, bit-identical, and re-persists.
        fresh = ExperimentContext(
            system=system4, db=db4, max_slices=5, results_store=store
        )
        second = fresh.run(_wl(), RM2)
        assert_bit_identical(first, second)
        assert_bit_identical(first, store.get(key))

    def test_second_run_hits_store(self, system4, db4, tmp_path):
        ctx = _store_ctx(system4, db4, tmp_path)
        first = ctx.run(_wl(), RM2)
        assert ctx.results_store.hits == 0
        second = ctx.run(_wl(), RM2)
        assert ctx.results_store.hits == 1
        assert ctx.results_store.puts == 1
        assert_bit_identical(first, second)

    def test_fresh_context_reads_previous_context_results(
        self, system4, db4, tmp_path
    ):
        a = _store_ctx(system4, db4, tmp_path)
        first = a.run(_wl(), RM2)
        b = _store_ctx(system4, db4, tmp_path)  # same directory, no memory
        second = b.run(_wl(), RM2)
        assert b.results_store.hits == 1 and b.results_store.puts == 0
        assert_bit_identical(first, second)

    def test_run_scenarios_hit_store(self, system4, db4, tmp_path):
        ctx = _store_ctx(system4, db4, tmp_path)
        scenarios = [
            poisson_arrivals("rs-p", 4, TEST_BENCHMARKS, horizon_intervals=16, seed=0)
        ]
        first = ctx.run_scenarios(scenarios, [BASELINE, RM2], processes=1)
        assert ctx.results_store.puts == 2
        second = ctx.run_scenarios(scenarios, [BASELINE, RM2], processes=1)
        assert ctx.results_store.puts == 2  # nothing re-simulated
        assert ctx.results_store.hits == 2
        for key in first:
            assert_bit_identical(first[key], second[key])

    def test_run_matrix_hits_store_and_matches_uncached(
        self, system4, db4, tmp_path
    ):
        wls = [_wl("m0"), _wl("m1")]
        plain = ExperimentContext(system=system4, db=db4, max_slices=5)
        expect = plain.run_matrix(wls, [RM2], processes=1)
        ctx = _store_ctx(system4, db4, tmp_path)
        first = ctx.run_matrix(wls, [RM2], processes=1)
        puts = ctx.results_store.puts
        assert puts == 4  # 2 baselines + 2 policy runs
        ctx2 = _store_ctx(system4, db4, tmp_path)
        second = ctx2.run_matrix(wls, [RM2], processes=1)
        assert ctx2.results_store.puts == 0
        for key in expect:
            assert first[key] == second[key] == expect[key]


class TestBaselineDedup:
    def test_run_matrix_reuses_memoised_baselines(self, system4, db4):
        ctx = ExperimentContext(system=system4, db=db4, max_slices=5)
        wl = _wl("dedup")
        ctx.baseline_run(wl)
        simulated: list[str] = []
        real = runner_mod._run_one

        def counting(task):
            simulated.append(task[1].name)
            return real(task)

        try:
            runner_mod._run_one = counting
            matrix = ctx.run_matrix([wl], [RM2], processes=1)
        finally:
            runner_mod._run_one = real
        assert simulated == ["rm2-combined"]  # baseline NOT re-simulated
        assert (wl.name, RM2.name) in matrix

    def test_second_run_matrix_simulates_nothing_already_known(
        self, system4, db4
    ):
        ctx = ExperimentContext(system=system4, db=db4, max_slices=5)
        wl = _wl("dedup2")
        ctx.run_matrix([wl], [RM2], processes=1)
        simulated: list[str] = []
        real = runner_mod._run_one

        def counting(task):
            simulated.append(task[1].name)
            return real(task)

        try:
            runner_mod._run_one = counting
            ctx.run_matrix([wl], [RM2], processes=1)
        finally:
            runner_mod._run_one = real
        # baseline memoised from the first call; only the policy re-runs
        # (no results store attached here, so RM2 cannot be served from disk)
        assert simulated == ["rm2-combined"]


class TestGetContextMemo:
    def test_keyed_by_ncores_and_cache_dir(self, tmp_path, monkeypatch):
        built = []

        def fake_build(system, names=None, accesses_per_set=0, cache_dir=None):
            built.append(cache_dir)
            return type("FakeDB", (), {"records": {}, "build_params": {}})()

        monkeypatch.setattr(runner_mod, "build_database", fake_build)
        monkeypatch.setattr(runner_mod, "_CONTEXTS", {})
        dir_a, dir_b = str(tmp_path / "a"), str(tmp_path / "b")
        ctx_a = get_context(4, cache_dir=dir_a)
        ctx_a2 = get_context(4, cache_dir=dir_a)
        assert ctx_a is ctx_a2
        assert len(built) == 1
        ctx_b = get_context(4, cache_dir=dir_b)
        assert ctx_b is not ctx_a  # different cache dir => different context
        assert len(built) == 2
        ctx_a8 = get_context(8, cache_dir=dir_a)
        assert ctx_a8 is not ctx_a
        assert len(built) == 3

    def test_named_contexts_never_memoised(self, tmp_path, monkeypatch):
        def fake_build(system, names=None, accesses_per_set=0, cache_dir=None):
            return type("FakeDB", (), {"records": {}, "build_params": {}})()

        monkeypatch.setattr(runner_mod, "build_database", fake_build)
        monkeypatch.setattr(runner_mod, "_CONTEXTS", {})
        a = get_context(4, cache_dir=str(tmp_path), names=["mcf_like"])
        b = get_context(4, cache_dir=str(tmp_path), names=["mcf_like"])
        assert a is not b

    def test_store_respects_kill_switch(self, tmp_path, monkeypatch):
        def fake_build(system, names=None, accesses_per_set=0, cache_dir=None):
            return type("FakeDB", (), {"records": {}, "build_params": {}})()

        monkeypatch.setattr(runner_mod, "build_database", fake_build)
        monkeypatch.setattr(runner_mod, "_CONTEXTS", {})
        ctx = get_context(4, cache_dir=str(tmp_path / "x"))
        assert ctx.results_store is not None
        monkeypatch.setattr(runner_mod, "_CONTEXTS", {})
        runner_mod.set_result_cache(False)
        try:
            ctx_off = get_context(4, cache_dir=str(tmp_path / "y"))
            assert ctx_off.results_store is None
        finally:
            runner_mod.set_result_cache(True)


class TestWorkerProtocol:
    def test_missing_context_raises_actionable_error(self):
        saved = getattr(_WORKER, "ctx", None)
        _WORKER.ctx = None
        try:
            with pytest.raises(RuntimeError, match="initializer"):
                _run_one((_wl(), RM2, 3))
        finally:
            _WORKER.ctx = saved

    def test_spawn_workers_rebuild_context(self, system4, db4):
        """Under the spawn start method nothing is inherited: the pool
        initializer must rebuild ``_WORKER.ctx`` from pickled initargs."""
        if "spawn" not in mp.get_all_start_methods():
            pytest.skip("platform has no spawn start method")
        ctx = ExperimentContext(system=system4, db=db4, max_slices=3)
        wls = [_wl("sp0"), Workload(name="sp1", apps=("namd_like",) * 4)]
        serial = ctx.run_many(wls, RM2, processes=1)
        tasks = [(wl, RM2, 3) for wl in wls]
        spawned = parallel_map(
            _run_one, tasks, processes=2,
            initializer=_init_worker, initargs=(ctx,),
            start_method="spawn",
        )
        for a, b in zip(serial, spawned):
            assert_bit_identical(a, b)
