"""Durability + admission suite: journal WAL, crash recovery, lanes, 429s.

Covers the append-only job journal (fsync'd JSONL appends, torn-final-line
tolerance, pending-fold semantics, atomic compaction) with hypothesis
round-trip and crash-truncation properties; the two-lane admission queue's
strict-priority + starvation-escape ordering (property-tested against the
documented bound); bounded-queue admission control (QueueFullError and the
HTTP 429 + ``Retry-After`` surface); and an in-process SIGKILL-equivalent:
a service abandoned mid-queue whose journal is recovered by a fresh service
that drains every unsettled job to the same content hashes.

The subprocess SIGKILL variant (a real ``serve.py`` killed and rebooted)
runs in CI via ``tools/service_smoke.py --stage restart``.
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import ExperimentContext
from repro.service import JobJournal, JournalRecord, QueueFullError, ReplayService
from repro.service import pool as pool_mod
from repro.service.journal import JOURNAL_EVENTS, JOURNAL_FORMAT_VERSION
from repro.service.pool import _LaneQueue
from repro.simulation.results_store import ResultsStore

#: Small fidelity for every service test: horizons stay tiny, replay fast.
MAX_SLICES = 5

WAIT_S = 240.0


def _factory(system4, db4, tmp_path, subdir="results"):
    def factory(ncores):
        assert ncores == 4, "this suite only requests 4-core jobs"
        return ExperimentContext(
            system=system4, db=db4, max_slices=MAX_SLICES,
            results_store=ResultsStore(str(tmp_path / subdir)),
        )

    return factory


def _s1_body(seed=0, name="journal-s1") -> dict:
    return {
        "shape": "S1",
        "ncores": 4,
        "params": {"rate_per_interval": 0.25, "horizon_intervals": 16, "seed": seed},
        "manager": {"kind": "coordinated", "name": "rm2-combined"},
        "name": name,
    }


# ---- journal unit behaviour --------------------------------------------------


class TestJournalRecords:
    def test_append_and_replay_round_trip(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j"))
        journal.append("submitted", "a" * 24, lane="bulk", spec={"shape": "S1"})
        journal.append("claimed", "a" * 24)
        journal.append("published", "a" * 24, result_hash="b" * 16)
        records = journal.records()
        assert [r.event for r in records] == ["submitted", "claimed", "published"]
        assert records[0].lane == "bulk"
        assert records[0].spec == {"shape": "S1"}
        assert records[2].result_hash == "b" * 16
        assert journal.appends == 3

    def test_pending_fold_semantics(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j"))
        journal.append("submitted", "job-a", lane="interactive", spec={"shape": "S1"})
        journal.append("submitted", "job-b", lane="bulk", spec={"shape": "S2"})
        journal.append("submitted", "job-c", lane="interactive", spec={"shape": "S3"})
        # claimed does NOT settle: the claimant may have died mid-run.
        journal.append("claimed", "job-a")
        journal.append("published", "job-b", result_hash="x")
        journal.append("failed", "job-c", error="boom")
        pending = journal.pending()
        assert set(pending) == {"job-a"}
        assert pending["job-a"].spec == {"shape": "S1"}

    def test_torn_final_line_tolerated(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j"))
        journal.append("submitted", "job-a", lane="interactive", spec={"shape": "S1"})
        journal.append("submitted", "job-b", lane="bulk", spec={"shape": "S2"})
        journal.close()
        with open(journal.path, "rb") as fh:
            raw = fh.read()
        with open(journal.path, "wb") as fh:
            fh.write(raw[:-7])  # crash mid-append of the final record
        records = journal.records()
        assert [r.job_id for r in records] == ["job-a"]
        assert journal.torn_lines == 1
        assert set(journal.pending()) == {"job-a"}

    def test_unknown_version_and_event_dropped(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j"))
        journal.append("submitted", "job-a", spec={"shape": "S1"})
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"v": 999, "event": "submitted", "job_id": "x"}) + "\n")
            fh.write(
                json.dumps(
                    {"v": JOURNAL_FORMAT_VERSION, "event": "vaporised", "job_id": "x"}
                )
                + "\n"
            )
        assert [r.job_id for r in journal.records()] == ["job-a"]
        assert journal.torn_lines == 2

    def test_compact_keeps_only_pending(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j"))
        for i in range(4):
            journal.append("submitted", f"job-{i}", lane="interactive", spec={"i": i})
        journal.append("published", "job-0", result_hash="x")
        journal.append("failed", "job-3", error="boom")
        survivors = journal.compact()
        assert survivors == 2
        records = journal.records()
        assert [r.job_id for r in records] == ["job-1", "job-2"]
        assert all(r.event == "submitted" for r in records)
        # The compacted file is a valid journal: append still works after.
        journal.append("claimed", "job-1")
        assert set(journal.pending()) == {"job-1", "job-2"}

    def test_missing_file_is_empty(self, tmp_path):
        journal = JobJournal(str(tmp_path / "nonexistent"))
        assert journal.records() == []
        assert journal.pending() == {}
        assert journal.compact() == 0

    def test_retrying_round_trip_and_pending_fold(self, tmp_path):
        """``retrying`` records carry the attempt count into the pending
        fold, so recovery resumes the retry budget instead of resetting it."""
        journal = JobJournal(str(tmp_path / "j"))
        journal.append("submitted", "job-a", lane="interactive", spec={"shape": "S1"})
        journal.append("claimed", "job-a", attempt=1)
        journal.append("retrying", "job-a", attempt=1, error="InjectedWorkerCrash: x")
        journal.append("claimed", "job-a", attempt=2)
        journal.append("retrying", "job-a", attempt=2, error="WatchdogTimeout: y")
        pending = journal.pending()
        assert set(pending) == {"job-a"}
        assert pending["job-a"].attempt == 2
        assert pending["job-a"].spec == {"shape": "S1"}  # spec survives the fold
        # A stale (lower) retrying record never regresses the attempt count.
        journal.append("retrying", "job-a", attempt=1, error="replayed")
        assert journal.pending()["job-a"].attempt == 2

    def test_compact_preserves_attempt_counts(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j"))
        journal.append("submitted", "job-a", lane="bulk", spec={"shape": "S1"})
        journal.append("retrying", "job-a", attempt=3, error="boom")
        assert journal.compact() == 1
        # The compacted submitted record carries the folded attempt, and a
        # fresh journal over the same file reads it back identically.
        reread = JobJournal(journal.root)
        pending = reread.pending()
        assert pending["job-a"].attempt == 3
        assert pending["job-a"].event == "submitted"

    def test_maybe_compact_triggers_on_settled_backlog(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j"), compact_min_settled=2, compact_factor=1)
        journal.append("submitted", "job-a", spec={"shape": "S1"})
        journal.append("published", "job-a", result_hash="x")
        assert journal.settled_since_compact == 1
        assert not journal.maybe_compact(pending_hint=0)  # below the floor
        journal.append("submitted", "job-b", spec={"shape": "S1"})
        journal.append("failed", "job-b", error="boom")
        assert journal.maybe_compact(pending_hint=0)  # 2 >= max(2, 1*1)
        assert journal.settled_since_compact == 0
        assert journal.compactions == 1
        assert journal.records() == []  # everything settled -> empty WAL
        # A large pending backlog raises the threshold above the floor.
        journal2 = JobJournal(str(tmp_path / "j2"), compact_min_settled=2, compact_factor=1)
        for i in range(5):
            journal2.append("submitted", f"job-{i}", spec={"shape": "S1"})
        journal2.append("published", "job-0", result_hash="x")
        journal2.append("published", "job-1", result_hash="x")
        assert not journal2.maybe_compact(pending_hint=3)  # 2 < max(2, 1*3)=3


# ---- hypothesis properties ---------------------------------------------------

_record_strategy = st.builds(
    JournalRecord,
    event=st.sampled_from(JOURNAL_EVENTS),
    job_id=st.text(alphabet="0123456789abcdef", min_size=1, max_size=24),
    lane=st.none() | st.sampled_from(["interactive", "bulk"]),
    spec=st.none()
    | st.fixed_dictionaries(
        {"shape": st.sampled_from(["S1", "S5", "FIXED"]), "seed": st.integers(0, 99)}
    ),
    result_hash=st.none() | st.text(alphabet="0123456789abcdef", min_size=16, max_size=16),
    error=st.none() | st.text(max_size=40),
    attempt=st.none() | st.integers(min_value=1, max_value=9),
)


class TestJournalProperties:
    @given(record=_record_strategy)
    @settings(max_examples=80, deadline=None)
    def test_record_json_round_trip(self, record):
        assert JournalRecord.from_json(json.loads(json.dumps(record.to_json()))) == record

    @given(
        records=st.lists(_record_strategy, min_size=1, max_size=8),
        cut=st.integers(min_value=0, max_value=200),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_crash_truncation_recovers_complete_prefix(self, tmp_path_factory, records, cut, data):
        """Serialize -> crash-truncate the tail -> recover every whole record.

        A crash can cut the file at *any* byte offset; everything before the
        torn line must replay, the fragment must be dropped (not poison
        recovery), and the pending fold must equal the fold of the
        recovered prefix.
        """
        root = tmp_path_factory.mktemp("journal")
        journal = JobJournal(str(root))
        for record in records:
            journal.append(
                record.event,
                record.job_id,
                lane=record.lane,
                spec=record.spec,
                result_hash=record.result_hash,
                error=record.error,
                attempt=record.attempt,
            )
        journal.close()
        with open(journal.path, "rb") as fh:
            raw = fh.read()
        cut = data.draw(st.integers(min_value=0, max_value=len(raw)), label="cut_offset")
        with open(journal.path, "wb") as fh:
            fh.write(raw[:cut])
        # A record survives iff its complete JSON (newline optional: a cut
        # that eats only the terminator leaves a parseable final line) is
        # within the kept prefix; a cut strictly inside a line leaves an
        # unparseable fragment (every strict prefix of the JSON object is
        # invalid), which must be dropped and counted as torn.
        starts, ends, offset = [], [], 0
        for line in raw.split(b"\n")[:-1]:
            starts.append(offset)
            ends.append(offset + len(line))
            offset += len(line) + 1
        survivors = sum(1 for end in ends if cut >= end)
        recovered = journal.records()
        assert recovered == records[:survivors]
        frag_torn = any(start < cut < end for start, end in zip(starts, ends))
        assert journal.torn_lines == (1 if frag_torn else 0)
        expected_pending = {}
        for record in records[:survivors]:
            if record.event == "submitted" and record.spec is not None:
                expected_pending[record.job_id] = record
            elif record.event in ("published", "failed"):
                expected_pending.pop(record.job_id, None)
        assert journal.pending() == expected_pending


class _FakeJob:
    def __init__(self, lane, tag):
        self.lane = lane
        self.tag = tag


class TestLaneQueueProperties:
    def test_strict_priority_when_both_waiting(self):
        q = _LaneQueue(bulk_escape_every=8)
        q.put(_FakeJob("bulk", "b0"))
        q.put(_FakeJob("interactive", "i0"))
        q.put(_FakeJob("interactive", "i1"))
        assert [q.get().tag for _ in range(3)] == ["i0", "i1", "b0"]

    def test_bulk_escape_fires_every_k(self):
        q = _LaneQueue(bulk_escape_every=2)
        for i in range(6):
            q.put(_FakeJob("interactive", f"i{i}"))
        q.put(_FakeJob("bulk", "b0"))
        order = [q.get().tag for _ in range(7)]
        # Two interactive dequeues skip the waiting bulk job, then it escapes.
        assert order == ["i0", "i1", "b0", "i2", "i3", "i4", "i5"]

    def test_sentinel_waits_for_jobs(self):
        q = _LaneQueue()
        q.put_sentinel()
        q.put(_FakeJob("bulk", "b0"))
        assert q.get().tag == "b0"
        assert q.get() is None

    @given(
        lanes=st.lists(st.sampled_from(["interactive", "bulk"]), min_size=1, max_size=40),
        k=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=120, deadline=None)
    def test_bounded_starvation_both_ways(self, lanes, k):
        """The documented ordering bound, for any enqueue mix and escape K.

        Draining a pre-filled queue: (a) an interactive job is never
        preceded by more than ``1 + served_interactive // K`` bulk jobs
        (bulk cannot starve interactive), and (b) a waiting bulk job is
        never skipped more than ``K`` consecutive times (interactive cannot
        starve bulk).
        """
        q = _LaneQueue(bulk_escape_every=k)
        for i, lane in enumerate(lanes):
            q.put(_FakeJob(lane, i))
        order = [q.get() for _ in range(len(lanes))]
        assert sorted(j.tag for j in order) == list(range(len(lanes)))
        bulk_seen = interactive_seen = 0
        consecutive_skips = 0
        bulk_remaining = sum(1 for lane in lanes if lane == "bulk")
        for job in order:
            if job.lane == "interactive":
                # (a) interactive never waits behind more than K-amortised bulk.
                assert bulk_seen <= 1 + interactive_seen // k
                interactive_seen += 1
                if bulk_remaining:
                    consecutive_skips += 1
                    # (b) a waiting bulk job escapes within K skips.
                    assert consecutive_skips <= k
            else:
                bulk_seen += 1
                bulk_remaining -= 1
                consecutive_skips = 0


# ---- admission control -------------------------------------------------------


class TestAdmissionControl:
    def test_queue_full_raises_and_dedup_still_admitted(
        self, system4, db4, tmp_path, monkeypatch
    ):
        started, release = threading.Event(), threading.Event()

        def blocked(ctx, item, manager):
            started.set()
            release.wait(WAIT_S)
            raise RuntimeError("released without result")

        monkeypatch.setattr(pool_mod, "_execute_replay", blocked)
        svc = ReplayService(
            context_factory=_factory(system4, db4, tmp_path), workers=1, max_queue=1
        )
        try:
            first = svc.submit(_s1_body(seed=0))
            assert started.wait(WAIT_S), "worker never claimed the first job"
            second = svc.submit(_s1_body(seed=1))
            with pytest.raises(QueueFullError) as excinfo:
                svc.submit(_s1_body(seed=2))
            assert excinfo.value.retry_after_s >= 1.0
            assert excinfo.value.max_queue == 1
            # Coalescing onto existing jobs adds no work: always admitted.
            again, deduped = svc.submit_info(_s1_body(seed=1))
            assert deduped and again is second
            assert first.submissions == 1
            assert svc.metrics()["jobs_rejected"] == 1
        finally:
            release.set()
            svc.close()

    def test_validation_beats_admission(self, system4, db4, tmp_path):
        svc = ReplayService(
            context_factory=_factory(system4, db4, tmp_path), workers=1, max_queue=1
        )
        try:
            with pytest.raises(ValueError, match="unknown lane"):
                svc.submit(_s1_body(), lane="premium")
        finally:
            svc.close()


# ---- crash recovery ----------------------------------------------------------


class TestCrashRecovery:
    def test_abandoned_service_recovers_from_journal(
        self, system4, db4, tmp_path, monkeypatch
    ):
        """SIGKILL-equivalent: jobs queued + in-flight survive into a new service.

        Service 1 journals three submissions, claims one (its executor
        blocks forever -- the worker thread is then abandoned, as a killed
        process would be), and never settles anything.  Service 2 opens the
        same journal, recovers all three jobs -- including the *claimed*
        one, whose claimant died -- and drains them for real; afterwards the
        journal folds to empty.
        """
        jdir = str(tmp_path / "journal")
        started, release = threading.Event(), threading.Event()

        def blocked(ctx, item, manager):
            started.set()
            release.wait(WAIT_S)
            raise RuntimeError("abandoned worker released")

        bodies = [_s1_body(seed=s) for s in (0, 1, 2)]
        with monkeypatch.context() as m:
            m.setattr(pool_mod, "_execute_replay", blocked)
            crashed = ReplayService(
                context_factory=_factory(system4, db4, tmp_path, "store-crashed"),
                workers=1,
                journal=jdir,
            )
            jobs = [crashed.submit(dict(b)) for b in bodies]
            assert started.wait(WAIT_S), "worker never claimed a job"
            # No close(): the service is abandoned mid-queue, like a SIGKILL.

        pending = JobJournal(jdir).pending()
        assert set(pending) == {j.job_id for j in jobs}
        assert all(r.spec is not None for r in pending.values())

        svc = ReplayService(
            context_factory=_factory(system4, db4, tmp_path, "store-fresh"),
            workers=2,
            journal=jdir,
        )
        try:
            recovered = svc.recover()
            assert {j.job_id for j in recovered} == set(pending)
            for job in recovered:
                assert job.wait(WAIT_S), f"recovered job {job.job_id} hung"
                assert job.status == "done", job.error
                assert job.recovered
            assert svc.metrics()["jobs_recovered"] == 3
            assert JobJournal(jdir).pending() == {}
        finally:
            svc.close()
            release.set()  # let the abandoned daemon worker exit

    def test_recover_without_journal_is_noop(self, system4, db4, tmp_path):
        svc = ReplayService(context_factory=_factory(system4, db4, tmp_path), workers=1)
        try:
            assert svc.recover() == []
        finally:
            svc.close()

    def test_settled_jobs_are_not_recovered(self, system4, db4, tmp_path):
        jdir = str(tmp_path / "journal")
        with ReplayService(
            context_factory=_factory(system4, db4, tmp_path), workers=1, journal=jdir
        ) as svc:
            job = svc.submit(_s1_body(seed=7))
            assert job.wait(WAIT_S) and job.status == "done"
            done_hash = job.result_hash
        svc2 = ReplayService(
            context_factory=_factory(system4, db4, tmp_path), workers=1, journal=jdir
        )
        try:
            assert svc2.recover() == []
            # The finished run still survives -- via the at-rest store.
            job2 = svc2.submit(_s1_body(seed=7))
            assert job2.wait(WAIT_S) and job2.status == "done"
            assert job2.cache_hit and job2.result_hash == done_hash
        finally:
            svc2.close()

    def test_unrecoverable_journalled_spec_is_settled_failed(
        self, system4, db4, tmp_path
    ):
        jdir = str(tmp_path / "journal")
        journal = JobJournal(jdir)
        journal.append(
            "submitted", "deadbeef" * 3, lane="interactive", spec={"shape": "S99"}
        )
        journal.close()
        svc = ReplayService(
            context_factory=_factory(system4, db4, tmp_path), workers=1, journal=jdir
        )
        try:
            assert svc.recover() == []
            # The bad record is settled as failed, never re-recovered.
            assert JobJournal(jdir).pending() == {}
        finally:
            svc.close()
