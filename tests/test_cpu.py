"""Tests for the CPU substrate: DVFS, micro-architecture, timing, power."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import default_system
from repro.cpu.counters import observe_counters
from repro.cpu.dvfs import dvfs_transition_cost_ns, voltage_ratio, voltage_ratio_sq
from repro.cpu.interval_model import PhaseExecution, timing_grid
from repro.cpu.microarch import exec_cpi_by_size, ilp_cpi_factor
from repro.cpu.power import energy_grid
from repro.mem.dram import demanded_bandwidth_gbps, effective_latency_ns
from tests.test_phases import make_spec


@pytest.fixture(scope="module")
def system():
    return default_system(4)


def make_phase_exec(system, spec=None, flat=False):
    spec = spec or make_spec()
    ways = system.llc.ways
    if flat:
        mpki = np.full(ways, 10.0)
    else:
        mpki = np.linspace(20.0, 5.0, ways)
    mlp = np.full((system.ncore_sizes, ways), 2.0)
    mlp[2] *= 1.5  # large core overlaps more
    mlp[0] *= 0.8
    mlp[0] = np.maximum(mlp[0], 1.0)
    return PhaseExecution(spec=spec, mpki=mpki, mlp=mlp)


class TestDvfs:
    def test_voltage_ratio_at_nominal_is_one(self, system):
        assert float(voltage_ratio(system.vf, system.vf.nominal_ghz)) == pytest.approx(1.0)

    def test_square_relation(self, system):
        r = voltage_ratio(system.vf, 1.0)
        assert float(voltage_ratio_sq(system.vf, 1.0)) == pytest.approx(float(r) ** 2)

    def test_transition_cost(self):
        assert dvfs_transition_cost_ns(20.0, 3, 3) == 0.0
        assert dvfs_transition_cost_ns(20.0, 3, 4) == 20_000.0


class TestMicroarch:
    def test_factor_interpolates(self, system):
        small = system.core_sizes[0]
        assert ilp_cpi_factor(small, 0.0) == pytest.approx(small.ilp_floor)
        assert ilp_cpi_factor(small, 1.0) == pytest.approx(small.ilp_speedup)

    def test_medium_is_identity(self, system):
        medium = system.core_sizes[1]
        assert ilp_cpi_factor(medium, 0.3) == pytest.approx(1.0)

    def test_exec_cpi_ladder(self, system):
        cpis = exec_cpi_by_size(system, base_cpi=1.0, ilp_sensitivity=0.8)
        assert cpis[0] > cpis[1] > cpis[2]

    def test_width_floor(self, system):
        cpis = exec_cpi_by_size(system, base_cpi=0.05, ilp_sensitivity=1.0)
        for cpi, core in zip(cpis, system.core_sizes):
            assert cpi >= 1.0 / core.width - 1e-12


class TestDram:
    def test_bandwidth_units(self):
        # 0.02 miss/instr * 64 B / 1 ns/instr = 1.28 GB/s
        bw = demanded_bandwidth_gbps(np.array(0.02), np.array(1.0), 64)
        assert float(bw) == pytest.approx(1.28)

    def test_latency_increases_with_pressure(self, system):
        lo = effective_latency_ns(system.mem, 12.8, np.array(0.001), np.array(1.0), 64)
        hi = effective_latency_ns(system.mem, 12.8, np.array(0.08), np.array(1.0), 64)
        assert float(hi) > float(lo)

    def test_latency_floor_is_service_latency(self, system):
        l = effective_latency_ns(system.mem, 12.8, np.array(0.0), np.array(1.0), 64)
        assert float(l) == pytest.approx(system.mem.latency_ns)


class TestTimingGrid:
    def test_shape(self, system):
        tpi, lat = timing_grid(system, make_phase_exec(system))
        shape = (system.ncore_sizes, system.vf.nlevels, system.llc.ways)
        assert tpi.shape == shape and lat.shape == shape

    def test_tpi_decreases_with_frequency(self, system):
        tpi, _ = timing_grid(system, make_phase_exec(system))
        assert np.all(np.diff(tpi, axis=1) <= 1e-12)

    def test_tpi_decreases_with_ways(self, system):
        tpi, _ = timing_grid(system, make_phase_exec(system))
        assert np.all(np.diff(tpi, axis=2) <= 1e-9)

    def test_flat_curve_makes_ways_irrelevant(self, system):
        tpi, _ = timing_grid(system, make_phase_exec(system, flat=True))
        np.testing.assert_allclose(tpi[:, :, 0], tpi[:, :, -1], rtol=1e-6)

    def test_memory_bound_frequency_insensitivity(self, system):
        """With heavy misses, doubling f improves TPI far less than 2x."""
        spec = make_spec(base_cpi=0.5, apki=40.0)
        phase = PhaseExecution(
            spec=spec,
            mpki=np.full(system.llc.ways, 30.0),
            mlp=np.ones((system.ncore_sizes, system.llc.ways)),
        )
        tpi, _ = timing_grid(system, phase)
        f_lo, f_hi = 0, system.vf.nlevels - 1
        ratio = tpi[1, f_lo, 0] / tpi[1, f_hi, 0]
        f_ratio = system.vf.freqs_ghz[f_hi] / system.vf.freqs_ghz[f_lo]
        assert ratio < 0.35 * f_ratio

    def test_latency_includes_queueing(self, system):
        spec = make_spec(apki=60.0)
        phase = PhaseExecution(
            spec=spec,
            mpki=np.full(system.llc.ways, 50.0),
            mlp=np.full((system.ncore_sizes, system.llc.ways), 8.0),
        )
        _, lat = timing_grid(system, phase)
        assert np.all(lat >= system.mem.latency_ns - 1e-9)
        assert lat.max() > system.mem.latency_ns * 1.05

    def test_larger_core_faster_for_sensitive_code(self, system):
        spec = make_spec(ilp_sensitivity=1.0)
        tpi, _ = timing_grid(system, make_phase_exec(system, spec))
        assert np.all(tpi[2] <= tpi[0] + 1e-12)


class TestEnergyGrid:
    def _grids(self, system, spec=None):
        phase = make_phase_exec(system, spec)
        tpi, _ = timing_grid(system, phase)
        return tpi, energy_grid(system, phase, tpi)

    def test_positive(self, system):
        _, epi = self._grids(system)
        assert np.all(epi > 0)

    def test_dynamic_scales_with_voltage_squared(self, system):
        """At fixed (c, w), the f-dependence splits into V^2 dynamic part
        plus time-proportional parts; check the V^2 component dominates the
        high-frequency slope for a compute-bound phase."""
        spec = make_spec(apki=0.5, base_cpi=0.5)
        phase = PhaseExecution(
            spec=spec,
            mpki=np.full(default_system(4).llc.ways, 0.05),
            mlp=np.ones((3, default_system(4).llc.ways)),
        )
        tpi, _ = timing_grid(system, phase)
        epi = energy_grid(system, phase, tpi)
        # energy at max f > energy at nominal f (quadratic cost of speed)
        assert epi[1, -1, 7] > epi[1, system.baseline_freq_index, 7]

    def test_more_ways_cost_static_power(self, system):
        spec = make_spec(apki=0.5)
        phase = PhaseExecution(
            spec=spec,
            mpki=np.full(system.llc.ways, 0.05),
            mlp=np.ones((system.ncore_sizes, system.llc.ways)),
        )
        tpi, _ = timing_grid(system, phase)
        epi = energy_grid(system, phase, tpi)
        assert epi[1, 5, -1] > epi[1, 5, 0]  # flat curve: extra ways pure cost

    def test_fewer_misses_less_dram_energy(self, system):
        _, epi = self._grids(system)
        # steep miss curve: more ways -> less DRAM energy (net of way static)
        assert epi[1, 5, -1] < epi[1, 5, 0]

    def test_large_core_costs_more_dynamic(self, system):
        spec = make_spec(ilp_sensitivity=0.0, apki=1.0)
        phase = PhaseExecution(
            spec=spec,
            mpki=np.full(system.llc.ways, 0.1),
            mlp=np.ones((system.ncore_sizes, system.llc.ways)),
        )
        tpi, _ = timing_grid(system, phase)
        epi = energy_grid(system, phase, tpi)
        f = system.baseline_freq_index
        assert epi[2, f, 3] > epi[1, f, 3]


class TestCounters:
    def test_snapshot_consistency(self, system, db4=None):
        # Build a minimal record-like object through the real pipeline.
        from repro.simulation.detailed import simulate_phase

        rec = simulate_phase(system, "t", 0, make_spec(), 1.0, accesses_per_set=150)
        alloc = system.baseline_allocation()
        snap = observe_counters(system, rec, alloc)
        assert snap.instructions == system.interval_instructions
        assert snap.cpi == pytest.approx(
            rec.tpi_at(alloc) * snap.freq_ghz, rel=1e-9
        )
        assert snap.exec_cpi > 0
        assert snap.mem_stall_cycles < snap.cycles
        assert snap.mpki == pytest.approx(float(rec.mpki_full[alloc.ways - 1]))

    def test_estimates_biased_but_bounded(self, system):
        from repro.simulation.detailed import simulate_phase

        spec = make_spec(ilp_sensitivity=0.5)
        rec = simulate_phase(system, "t2", 0, spec, 1.0, accesses_per_set=150)
        snap = observe_counters(system, rec, system.baseline_allocation())
        assert abs(snap.ilp_index_est - spec.ilp_sensitivity) <= 0.06 + 1e-9
        assert abs(snap.epi_dyn_est_nj / spec.epi_dyn - 1.0) <= 0.04 + 1e-9

    def test_snapshot_deterministic(self, system):
        from repro.simulation.detailed import simulate_phase

        rec = simulate_phase(system, "t3", 0, make_spec(), 1.0, accesses_per_set=150)
        a = observe_counters(system, rec, system.baseline_allocation())
        b = observe_counters(system, rec, system.baseline_allocation())
        assert a == b
