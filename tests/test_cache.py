"""Tests for the cache substrate: LRU model, ATD, partitioning, UCP.

Includes the load-bearing cross-validation: the ATD's stack-distance counts
must reproduce, for *every* way allocation at once, exactly what the direct
LRU cache model measures one allocation at a time (Mattson's inclusion
property).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import example, given, settings, strategies as st

from repro.cache.atd import COLD, atd_profile, miss_curve_mpki, stack_distances
from repro.cache.lru import LRUSetCache, simulate_partitioned
from repro.cache.partitioning import Partition, partition_masks, repartition_delta
from repro.cache.ucp import ucp_lookahead, ucp_optimal
from repro.workloads.address_gen import AccessTrace, generate_trace
from tests.test_phases import make_spec


def trace_from_lines(line_ids, nsets=1) -> AccessTrace:
    n = len(line_ids)
    return AccessTrace(
        set_ids=np.zeros(n, dtype=np.int32),
        line_ids=np.asarray(line_ids, dtype=np.int64),
        instr_pos=np.arange(1.0, n + 1.0) * 40.0,
        chain_ids=np.arange(n, dtype=np.int64),
        instructions=n * 40.0,
    )


class TestLRUSetCache:
    def test_hit_after_insert(self):
        c = LRUSetCache(nsets=1, ways=2)
        assert c.access(0, 1) is False
        assert c.access(0, 1) is True
        assert (c.hits, c.misses) == (1, 1)

    def test_lru_eviction_order(self):
        c = LRUSetCache(nsets=1, ways=2)
        c.access(0, 1)
        c.access(0, 2)
        c.access(0, 1)  # 1 becomes MRU; LRU is 2
        c.access(0, 3)  # evicts 2
        assert c.access(0, 2) is False
        assert c.resident_lines(0)[0] == 2

    def test_sets_independent(self):
        c = LRUSetCache(nsets=2, ways=1)
        c.access(0, 1)
        c.access(1, 1)
        assert c.access(0, 1) is True
        assert c.access(1, 1) is True

    def test_reset_counters(self):
        c = LRUSetCache(1, 1)
        c.access(0, 1)
        c.reset_counters()
        assert (c.hits, c.misses) == (0, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LRUSetCache(0, 1)
        with pytest.raises(ValueError):
            LRUSetCache(1, 0)


class TestStackDistances:
    def test_hand_computed(self):
        # stream: a b a c b a  (one set)
        t = trace_from_lines([10, 11, 10, 12, 11, 10])
        d = stack_distances(t, max_ways=4, nsets=1)
        assert d[0] == COLD          # a cold
        assert d[1] == COLD          # b cold
        assert d[2] == 2             # a: {b} between -> distance 2
        assert d[3] == COLD          # c cold
        assert d[4] == 3             # b: {a, c} -> 3
        assert d[5] == 3             # a: {b, c} -> 3

    def test_repeated_access_distance_one(self):
        t = trace_from_lines([5, 5, 5])
        d = stack_distances(t, 4, 1)
        assert list(d[1:]) == [1, 1]

    def test_beyond_max_ways_is_cold(self):
        t = trace_from_lines([1, 2, 3, 1])  # distance of final access = 3
        d = stack_distances(t, max_ways=2, nsets=1)
        assert d[3] == COLD

    def test_atd_matches_direct_lru_every_way(self):
        """Inclusion property: one ATD pass == per-way LRU simulations."""
        trace = generate_trace(make_spec(), nsets=4, accesses_per_set=300)
        dists = stack_distances(trace, 8, 4)
        profile = atd_profile(dists, 8, trace.instructions)
        for ways in (1, 2, 4, 8):
            cache = LRUSetCache(nsets=4, ways=ways)
            for s, l in zip(trace.set_ids.tolist(), trace.line_ids.tolist()):
                cache.access(s, l)
            assert cache.misses == profile.misses[ways - 1], f"ways={ways}"


class TestATDProfile:
    def _profile(self):
        trace = generate_trace(make_spec(), nsets=4, accesses_per_set=200)
        dists = stack_distances(trace, 8, 4)
        return atd_profile(dists, 8, trace.instructions), trace

    def test_counts_conserved(self):
        profile, trace = self._profile()
        assert profile.hits_at_distance.sum() + profile.misses[-1] == trace.n_accesses

    def test_miss_curve_monotone_nonincreasing(self):
        profile, _ = self._profile()
        assert np.all(np.diff(profile.misses) <= 0)

    def test_hit_curve_monotone_nondecreasing(self):
        profile, _ = self._profile()
        assert np.all(np.diff(profile.hit_curve()) >= 0)

    def test_mpki_scaling(self):
        profile, trace = self._profile()
        np.testing.assert_allclose(
            profile.mpki(), profile.misses / trace.instructions * 1000.0
        )

    def test_apki(self):
        profile, trace = self._profile()
        assert profile.apki() == pytest.approx(
            trace.n_accesses / trace.instructions * 1000.0
        )

    def test_sampling_scale_extrapolates_rates(self):
        """Sampled-set MPKI (with scale) approximates full-trace MPKI."""
        trace = generate_trace(make_spec(), nsets=16, accesses_per_set=400)
        dists = stack_distances(trace, 8, 16)
        full = atd_profile(dists, 8, trace.instructions).mpki()
        mask = trace.set_ids < 4
        sampled = atd_profile(dists[mask], 8, trace.instructions, scale=4 / 16).mpki()
        np.testing.assert_allclose(sampled, full, rtol=0.25)

    def test_miss_curve_mpki_convenience(self):
        trace = generate_trace(make_spec(), nsets=4, accesses_per_set=100)
        curve = miss_curve_mpki(trace, 8, 4)
        assert curve.shape == (8,)
        assert np.all(np.diff(curve) <= 0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 12), min_size=1, max_size=200))
    def test_property_inclusion_on_arbitrary_streams(self, lines):
        """Mattson inclusion holds for arbitrary single-set streams."""
        t = trace_from_lines(lines)
        d = stack_distances(t, 8, 1)
        profile = atd_profile(d, 8, t.instructions)
        assert np.all(np.diff(profile.misses) <= 0)
        assert profile.hits_at_distance.sum() + profile.misses[-1] == len(lines)

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 8), min_size=1, max_size=120), st.integers(1, 6))
    def test_property_atd_equals_lru(self, lines, ways):
        t = trace_from_lines(lines)
        d = stack_distances(t, 6, 1)
        profile = atd_profile(d, 6, t.instructions)
        cache = LRUSetCache(1, ways)
        for line in lines:
            cache.access(0, line)
        assert cache.misses == profile.misses[min(ways, 6) - 1]


class TestPartitioning:
    def test_masks_disjoint_and_complete(self):
        p = Partition(ways=(4, 6, 3, 3), total_ways=16)
        masks = partition_masks(p)
        combined = 0
        for m in masks:
            assert combined & m == 0
            combined |= m
        assert combined == (1 << 16) - 1

    def test_mask_popcount_matches_ways(self):
        p = Partition(ways=(2, 5, 9), total_ways=16)
        for m, w in zip(partition_masks(p), p.ways):
            assert bin(m).count("1") == w

    def test_partition_validation(self):
        with pytest.raises(ValueError):
            Partition(ways=(4, 4), total_ways=16)
        with pytest.raises(ValueError):
            Partition(ways=(0, 16), total_ways=16)

    def test_repartition_delta(self):
        old = Partition((4, 4, 4, 4), 16)
        new = Partition((6, 2, 4, 4), 16)
        assert repartition_delta(old, new) == (2, -2, 0, 0)

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            repartition_delta(Partition((8, 8), 16), Partition((4, 4, 4, 4), 16))

    def test_strict_partition_isolation(self):
        """Per-owner behaviour under strict masks == private caches."""
        rng = np.random.default_rng(7)
        n = 600
        set_ids = rng.integers(0, 4, n)
        line_ids = rng.integers(0, 12, n)
        owner = rng.integers(0, 2, n)
        res = simulate_partitioned(set_ids, line_ids, owner, {0: 2, 1: 6}, nsets=4)
        for o, ways in ((0, 2), (1, 6)):
            mask = owner == o
            cache = LRUSetCache(4, ways)
            for s, l in zip(set_ids[mask].tolist(), line_ids[mask].tolist()):
                cache.access(s, l)
            assert res[o] == (cache.hits, cache.misses)


class TestUCP:
    def _random_curves(self, rng, napps, ways):
        curves = []
        for _ in range(napps):
            gains = rng.random(ways) * rng.random()
            curves.append(np.cumsum(gains))
        return curves

    def test_allocates_all_ways(self):
        rng = np.random.default_rng(1)
        curves = self._random_curves(rng, 4, 16)
        alloc = ucp_lookahead(curves, 16)
        assert sum(alloc) == 16
        assert all(w >= 1 for w in alloc)

    def test_prefers_high_utility_app(self):
        flat = np.full(8, 1.0).cumsum() * 0.001
        steep = np.full(8, 1.0).cumsum()
        alloc = ucp_lookahead([flat, steep], 8)
        assert alloc[1] > alloc[0]

    def test_optimal_matches_bruteforce_small(self):
        rng = np.random.default_rng(2)
        curves = self._random_curves(rng, 2, 6)
        alloc = ucp_optimal(curves, 6)
        best = max(
            ((w, 6 - w) for w in range(1, 6)),
            key=lambda a: curves[0][a[0] - 1] + curves[1][a[1] - 1],
        )
        got = curves[0][alloc[0] - 1] + curves[1][alloc[1] - 1]
        want = curves[0][best[0] - 1] + curves[1][best[1] - 1]
        assert got == pytest.approx(want)

    @settings(max_examples=30, deadline=None)
    @example(4, 834)  # worst found: greedy reaches only 84.0% of optimal
    @given(st.integers(2, 4), st.integers(0, 10_000))
    def test_lookahead_close_to_optimal(self, napps, seed):
        """Greedy lookahead achieves near-optimal total hits (its design goal).

        The random gain curves are deliberately non-concave, where greedy
        carries no constant-factor guarantee (Qureshi-Patt chose lookahead
        empirically); the bound below is an empirical envelope, with the
        worst example hypothesis has found pinned above as a regression.
        """
        rng = np.random.default_rng(seed)
        ways = 8
        curves = self._random_curves(rng, napps, ways)
        greedy = ucp_lookahead(curves, ways)
        exact = ucp_optimal(curves, ways)
        g = sum(c[w - 1] for c, w in zip(curves, greedy))
        e = sum(c[w - 1] for c, w in zip(curves, exact))
        assert sum(greedy) == ways and sum(exact) == ways
        assert g <= e + 1e-9
        assert g >= 0.75 * e - 1e-9

    def test_min_ways_respected(self):
        rng = np.random.default_rng(3)
        curves = self._random_curves(rng, 3, 12)
        alloc = ucp_lookahead(curves, 12, min_ways=2)
        assert all(w >= 2 for w in alloc)

    def test_rejects_insufficient_ways(self):
        with pytest.raises(ValueError):
            ucp_lookahead([np.ones(4)] * 4, 3)
