"""Tests for the leading-miss MLP model and the MLP-aware ATD."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.atd import stack_distances
from repro.cache.mlp_atd import QUANT_STEPS, MLPTable, mlp_table_from_trace, quantize
from repro.config import default_system
from repro.mem.mlp import (
    effective_window,
    leading_miss_groups,
    mlp_grid,
    mlp_of_misses,
)
from repro.workloads.address_gen import generate_trace
from tests.test_phases import make_spec


def misses(positions, chains):
    return np.asarray(positions, dtype=float), np.asarray(chains, dtype=np.int64)


class TestLeadingMissGroups:
    def test_empty(self):
        pos, ch = misses([], [])
        assert leading_miss_groups(pos, ch, 100, 8) == 0

    def test_all_overlap(self):
        # three independent misses within one window
        pos, ch = misses([0, 10, 20], [0, 1, 2])
        assert leading_miss_groups(pos, ch, 100, 8) == 1

    def test_window_splits_groups(self):
        pos, ch = misses([0, 10, 200, 210], [0, 1, 2, 3])
        assert leading_miss_groups(pos, ch, 100, 8) == 2

    def test_dependent_misses_serialise(self):
        # same chain: each miss waits for the previous one
        pos, ch = misses([0, 10, 20], [5, 5, 5])
        assert leading_miss_groups(pos, ch, 1000, 8) == 3

    def test_mshr_limit(self):
        pos, ch = misses([0, 1, 2, 3], [0, 1, 2, 3])
        assert leading_miss_groups(pos, ch, 1000, mshrs=2) == 2

    def test_dependence_inside_window(self):
        # 3rd miss depends on the 1st (same chain): closes the group
        pos, ch = misses([0, 5, 10, 15], [0, 1, 0, 2])
        # group1 = {0,5}; group2 = {10,15}
        assert leading_miss_groups(pos, ch, 1000, 8) == 2


class TestMlpOfMisses:
    def test_empty_stream_is_one(self):
        pos, ch = misses([], [])
        assert mlp_of_misses(pos, ch, 100, 8) == 1.0

    def test_fully_parallel(self):
        pos, ch = misses([0, 1, 2, 3], [0, 1, 2, 3])
        assert mlp_of_misses(pos, ch, 100, 8) == pytest.approx(4.0)

    def test_fully_serial(self):
        pos, ch = misses([0, 1, 2, 3], [0, 0, 0, 0])
        assert mlp_of_misses(pos, ch, 100, 8) == pytest.approx(1.0)

    def test_bounded_by_mshrs(self):
        n = 64
        pos = np.arange(n, dtype=float)
        ch = np.arange(n, dtype=np.int64)
        assert mlp_of_misses(pos, ch, 1e9, mshrs=4) <= 4.0 + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 100), st.integers(1, 16), st.integers(0, 5000))
    def test_property_bounds(self, n, mshrs, seed):
        rng = np.random.default_rng(seed)
        pos = np.cumsum(rng.exponential(30, n))
        ch = rng.integers(0, max(1, n // 2), n)
        m = mlp_of_misses(pos, np.sort(ch), 128, mshrs)
        assert 1.0 - 1e-9 <= m <= mshrs + 1e-9

    def test_wider_window_never_reduces_mlp(self):
        rng = np.random.default_rng(11)
        pos = np.cumsum(rng.exponential(25, 400))
        ch = rng.integers(0, 300, 400)
        narrow = mlp_of_misses(pos, ch, 48, 16)
        wide = mlp_of_misses(pos, ch, 512, 16)
        assert wide >= narrow - 1e-9


class TestEffectiveWindow:
    def test_insensitive_pins_to_baseline(self):
        system = default_system(4)
        base = system.core_sizes[1]
        for core in system.core_sizes:
            w, m = effective_window(core, base, 0.0)
            assert w == base.rob
            assert m == base.mshrs

    def test_sensitive_tracks_core(self):
        system = default_system(4)
        base = system.core_sizes[1]
        for core in system.core_sizes:
            w, m = effective_window(core, base, 1.0)
            assert w == core.rob
            assert m == core.mshrs


class TestMlpGrid:
    def _grid(self, mlp_sensitivity):
        system = default_system(4)
        spec = make_spec(chain_break_prob=0.9, mlp_sensitivity=mlp_sensitivity)
        trace = generate_trace(spec, 16, 400)
        dists = stack_distances(trace, system.llc.ways, 16)
        return mlp_grid(system, dists, trace.instr_pos, trace.chain_ids, mlp_sensitivity)

    def test_shape(self):
        system = default_system(4)
        grid = self._grid(0.8)
        assert grid.shape == (system.ncore_sizes, system.llc.ways)

    def test_all_at_least_one(self):
        assert np.all(self._grid(0.8) >= 1.0)

    def test_sensitive_phase_scales_with_core(self):
        grid = self._grid(1.0)
        base_w = 0  # fullest miss stream
        assert grid[2, base_w] > grid[0, base_w] * 1.1

    def test_insensitive_phase_flat_across_cores(self):
        grid = self._grid(0.0)
        np.testing.assert_allclose(grid[0], grid[2], rtol=1e-9)


class TestMLPTable:
    def test_quantize_grid(self):
        vals = np.array([[1.03, 2.31], [1.49, 3.9]])
        q = quantize(vals)
        np.testing.assert_allclose(q * QUANT_STEPS, np.round(q * QUANT_STEPS))
        assert np.all(q >= 1.0)

    def test_quantize_floors_at_one(self):
        assert quantize(np.array([[0.5]]))[0, 0] == 1.0

    def test_table_from_trace(self):
        system = default_system(4)
        spec = make_spec(chain_break_prob=0.8, mlp_sensitivity=0.9)
        trace = generate_trace(spec, system.llc.model_sets, 200)
        table = mlp_table_from_trace(system, trace, 0.9)
        assert table.values.shape == (system.ncore_sizes, system.llc.ways)
        assert table.storage_bytes == system.ncore_sizes * system.llc.ways
        assert table.at(1, 4) == float(table.values[1, 3])

    def test_rejects_below_one(self):
        with pytest.raises(ValueError):
            MLPTable(values=np.array([[0.5, 1.0]]))
