"""Vector-vs-scalar property suite for the struct-of-arrays hot path.

The engine's per-event advance and next-completion argmin are vectorised
over :class:`~repro.simulation.engine.core_state.CoreArrays`; the scalar
reference mechanics (:func:`~repro.simulation.engine.core_state.
advance_core` and ``CompletionScheduler.next_completion_scalar``) are kept
as executable specifications.  This suite drives both over randomised core
states -- inactive cores, stall-only spans, exact-completion ties -- and
compares with ``==`` on every number: the vector path must remove
interpreter work, never change values.

It also covers the kernel's delta-maintained way-budget audit (the O(N)
re-sum `_apply` used to do per reallocation) including its debug-mode full
recount, and the identity fast path for re-served allocation maps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import Allocation
from repro.core.managers import StaticBaselineManager, rm2_combined
from repro.simulation.engine import kernel as kernel_mod
from repro.simulation.engine.core_state import CoreArrays, advance_core
from repro.simulation.rma_sim import RMASimulator
from repro.workloads.mixes import Workload

#: Interval length used by the synthetic argmin states (arbitrary but fixed).
INTERVAL_INSTR = 1000.0


@dataclass
class ScalarCore:
    """Plain scalar double of one CoreArrays lane for the reference path."""

    instr_done: float
    pending_stall_ns: float
    energy_nj: float
    active: bool


def _state(n, rng_seed):
    """Build (CoreArrays, [ScalarCore]) with identical randomised state."""
    rng = np.random.default_rng(rng_seed)
    arrays = CoreArrays(n)
    scalars = []
    for j in range(n):
        instr = float(rng.uniform(0.0, INTERVAL_INSTR))
        # Mix exact zeros into the stall state: the scalar path branches on
        # pending > 0 and the vector path must mirror the no-stall case
        # bit-exactly (subtracting a served 0.0).
        stall = 0.0 if rng.random() < 0.4 else float(rng.uniform(0.0, 50.0))
        energy = float(rng.uniform(0.0, 1e6))
        active = bool(rng.random() < 0.8)
        tpi = float(rng.uniform(0.05, 2.0))
        epi = float(rng.uniform(0.1, 5.0))
        arrays.instr_done[j] = instr
        arrays.pending_stall_ns[j] = stall
        arrays.energy_nj[j] = energy
        arrays.active[j] = active
        arrays.tpi[j] = tpi
        arrays.epi[j] = epi
        scalars.append((ScalarCore(instr, stall, energy, active), tpi, epi))
    return arrays, scalars


class TestVectorAdvance:
    """CoreArrays.advance_all == per-core advance_core, bit for bit."""

    @settings(max_examples=120, deadline=None)
    @given(
        n=st.integers(1, 65),
        seed=st.integers(0, 10_000),
        dt_kind=st.sampled_from(["random", "zero", "stall_edge", "tiny"]),
        exclude_raw=st.integers(0, 64),
    )
    def test_matches_scalar(self, n, seed, dt_kind, exclude_raw):
        arrays, scalars = _state(n, seed)
        exclude = exclude_raw % n
        if dt_kind == "random":
            dt = float(np.random.default_rng(seed + 1).uniform(0.0, 100.0))
        elif dt_kind == "zero":
            dt = 0.0
        elif dt_kind == "tiny":
            dt = 5e-324  # denormal span: stall-serving edge arithmetic
        else:
            # Exactly one core's pending stall: that core serves its stall
            # to exactly zero remaining span (the dt <= 0 early-out).
            k = seed % n
            dt = scalars[k][0].pending_stall_ns or 1.0

        arrays.advance_all(dt, exclude=exclude)
        for j, (core, tpi, epi) in enumerate(scalars):
            if j != exclude:
                advance_core(core, dt, tpi, epi)
            assert arrays.instr_done[j] == core.instr_done
            assert arrays.pending_stall_ns[j] == core.pending_stall_ns
            assert arrays.energy_nj[j] == core.energy_nj

    def test_stall_only_span_makes_no_progress(self):
        arrays = CoreArrays(2)
        arrays.pending_stall_ns[:] = (10.0, 3.0)
        arrays.tpi[:] = 1.0
        arrays.epi[:] = 1.0
        arrays.advance_all(3.0, exclude=None)
        # Core 0 spent the whole span stalled; core 1 exactly drained it.
        assert arrays.instr_done[0] == 0.0 and arrays.energy_nj[0] == 0.0
        assert arrays.pending_stall_ns[0] == 7.0
        assert arrays.instr_done[1] == 0.0 and arrays.pending_stall_ns[1] == 0.0

    def test_inactive_and_excluded_lanes_untouched(self):
        arrays, _ = _state(8, 7)
        arrays.active[3] = False
        before = (
            arrays.instr_done.copy(),
            arrays.pending_stall_ns.copy(),
            arrays.energy_nj.copy(),
        )
        arrays.advance_all(10.0, exclude=5)
        for j in (3, 5):
            assert arrays.instr_done[j] == before[0][j]
            assert arrays.pending_stall_ns[j] == before[1][j]
            assert arrays.energy_nj[j] == before[2][j]


def _next_completion_scalar(arrays: CoreArrays, interval_instr: float):
    """The reference loop's formula and first-minimum tie-break, verbatim."""
    best = math.inf
    best_j = 0
    for j in range(arrays.n):
        if not arrays.active[j]:
            continue
        left = interval_instr - float(arrays.instr_done[j])
        r = float(arrays.pending_stall_ns[j]) + left * float(arrays.tpi[j])
        if r < best:
            best = r
            best_j = j
    return best_j, best


class TestVectorArgmin:
    """CoreArrays.next_completion == the scalar reference loop."""

    @settings(max_examples=120, deadline=None)
    @given(n=st.integers(1, 65), seed=st.integers(0, 10_000))
    def test_matches_scalar(self, n, seed):
        arrays, _ = _state(n, seed)
        j, r = arrays.next_completion(INTERVAL_INSTR)
        sj, sr = _next_completion_scalar(arrays, INTERVAL_INSTR)
        assert (j, r) == (sj, sr)

    def test_tie_breaks_to_lowest_core_id(self):
        arrays = CoreArrays(4)
        arrays.tpi[:] = 1.0
        # Cores 1 and 3 are exactly tied; 0 and 2 are slower.
        arrays.instr_done[:] = (0.0, 500.0, 100.0, 500.0)
        j, r = arrays.next_completion(INTERVAL_INSTR)
        assert j == 1 and r == 500.0

    def test_exact_completion_tie_with_stall(self):
        # instr_done == interval: remaining is the pending stall exactly.
        arrays = CoreArrays(3)
        arrays.tpi[:] = 2.0
        arrays.instr_done[:] = (INTERVAL_INSTR, INTERVAL_INSTR, 0.0)
        arrays.pending_stall_ns[:] = (5.0, 5.0, 0.0)
        j, r = arrays.next_completion(INTERVAL_INSTR)
        assert j == 0 and r == 5.0

    def test_all_inactive_returns_inf(self):
        arrays = CoreArrays(3)
        arrays.active[:] = False
        j, r = arrays.next_completion(INTERVAL_INSTR)
        assert j == 0 and math.isinf(r)

    def test_inactive_lane_never_wins(self):
        arrays = CoreArrays(2)
        arrays.tpi[:] = 1.0
        arrays.instr_done[:] = (INTERVAL_INSTR, 0.0)  # lane 0 would win
        arrays.active[0] = False
        j, _ = arrays.next_completion(INTERVAL_INSTR)
        assert j == 1


class TestSchedulerVectorPath:
    """End-to-end: the scheduler's vector argmin equals its scalar twin."""

    def test_next_completion_matches_scalar(self, system4, db4):
        wl = Workload(
            name="vec4",
            apps=("mcf_like", "soplex_like", "libquantum_like", "povray_like"),
        )
        sim = RMASimulator(system4, db4, wl, StaticBaselineManager(), max_slices=4)
        sched = sim.scheduler
        assert sched.next_completion() == sched.next_completion_scalar()
        # Perturb state mid-run and compare again.
        sim.arrays.instr_done[2] = 0.75 * system4.interval_instructions
        sim.arrays.pending_stall_ns[1] = 123.0
        assert sched.next_completion() == sched.next_completion_scalar()

    def test_invalidate_all_is_vector_fill(self, system4, db4):
        wl = Workload(
            name="vec4b",
            apps=("mcf_like", "soplex_like", "libquantum_like", "povray_like"),
        )
        sim = RMASimulator(system4, db4, wl, StaticBaselineManager(), max_slices=4)
        sched = sim.scheduler
        sched.next_completion()  # refresh every active core
        assert all(sched.is_valid(j) for j in range(4))
        sched.invalidate_all()
        assert not any(sched.is_valid(j) for j in range(4))


class TestWayBudgetAudit:
    """The delta-maintained way total must equal a from-scratch recount."""

    def _sim(self, system4, db4):
        wl = Workload(
            name="audit4",
            apps=("mcf_like", "soplex_like", "libquantum_like", "povray_like"),
        )
        return RMASimulator(system4, db4, wl, StaticBaselineManager(), max_slices=4)

    def test_tracks_deltas_and_recount(self, system4, db4, monkeypatch):
        monkeypatch.setattr(kernel_mod, "_WAYS_AUDIT", True)
        sim = self._sim(system4, db4)
        base = system4.baseline_allocation()
        assert sim._ways_total == sum(c.alloc.ways for c in sim.cores)
        grown = Allocation(core=base.core, freq=base.freq, ways=base.ways + 2)
        shrunk = Allocation(core=base.core, freq=base.freq, ways=base.ways - 2)
        sim._apply({0: grown, 1: shrunk})
        assert sim._ways_total == sum(c.alloc.ways for c in sim.cores)
        assert sim.cores[0].alloc.ways == base.ways + 2

    def test_over_budget_rejected_before_mutation(self, system4, db4):
        sim = self._sim(system4, db4)
        base = system4.baseline_allocation()
        grown = Allocation(core=base.core, freq=base.freq, ways=base.ways + 1)
        with pytest.raises(ValueError, match="manager allocated"):
            sim._apply({0: grown})
        # The rejected map must not have been partially applied.
        assert sim.cores[0].alloc == base
        assert sim._ways_total == sum(c.alloc.ways for c in sim.cores)

    def test_full_run_under_manager_with_recount(self, system4, db4, monkeypatch):
        monkeypatch.setattr(kernel_mod, "_WAYS_AUDIT", True)
        wl = Workload(
            name="audit4m",
            apps=("mcf_like", "soplex_like", "libquantum_like", "povray_like"),
        )
        run = RMASimulator(system4, db4, wl, rm2_combined(), max_slices=4).run()
        assert run.rma_invocations > 0

    def test_reserved_map_identity_fast_path(self, system4, db4):
        """A manager re-serving the same dict object is a recognised no-op."""
        sim = self._sim(system4, db4)

        class ConstantManager(StaticBaselineManager):
            def __init__(self, allocs):
                super().__init__()
                self.allocs = allocs
                self.calls = 0

            def on_interval(self, core_id):
                self.calls += 1
                return self.allocs

        base = system4.baseline_allocation()
        allocs = {j: base for j in range(4)}
        mgr = ConstantManager(allocs)
        wl = Workload(
            name="audit4c",
            apps=("mcf_like", "soplex_like", "libquantum_like", "povray_like"),
        )
        run = RMASimulator(system4, db4, wl, mgr, max_slices=3).run()
        assert mgr.calls > 1
        assert run.rma_invocations == 0  # StaticBaseline meters nothing


class TestVectorDispatchBoundary:
    """Scalar-vs-vector bit identity straddling ``VECTOR_MIN_CORES``.

    The dispatch constant decides *performance only*: at N one below, at,
    and one above the crossover, a full scenario replay forced down the
    scalar step and one forced down the vector step must agree with ``==``
    on every number.  Run at the boundary itself this is the strongest form
    of the suite's lane-level equivalence properties -- whole-run, with the
    manager, tenancy churn and QoS scoring in the loop.
    """

    @staticmethod
    def _run(ncores: int, forced_min_cores: int):
        from conftest import CACHE_DIR, TEST_BENCHMARKS
        from repro import default_system
        from repro.scenarios import poisson_arrivals
        from repro.simulation.database import build_database
        from repro.simulation.rma_sim import simulate_scenario

        system = default_system(ncores=ncores)
        db = build_database(
            system, names=TEST_BENCHMARKS, accesses_per_set=400,
            cache_dir=CACHE_DIR,
        )
        scenario = poisson_arrivals(
            f"vector-boundary-{ncores}", ncores, db.benchmarks(),
            rate_per_interval=0.3, horizon_intervals=24, seed=0,
        )
        saved = kernel_mod.VECTOR_MIN_CORES
        kernel_mod.VECTOR_MIN_CORES = forced_min_cores
        try:
            return simulate_scenario(
                system, db, scenario, rm2_combined(), max_slices=4
            )
        finally:
            kernel_mod.VECTOR_MIN_CORES = saved

    @pytest.mark.parametrize(
        "ncores",
        [
            kernel_mod.VECTOR_MIN_CORES - 1,
            kernel_mod.VECTOR_MIN_CORES,
            kernel_mod.VECTOR_MIN_CORES + 1,
        ],
    )
    def test_scalar_and_vector_steps_bit_identical(self, ncores):
        from tests.test_engine_equivalence import assert_bit_identical

        scalar = self._run(ncores, forced_min_cores=ncores + 1)
        vector = self._run(ncores, forced_min_cores=1)
        assert_bit_identical(scalar, vector)

    def test_default_dispatch_picks_the_expected_step(self):
        """Sanity: the boundary constant is what this suite straddles."""
        assert kernel_mod.VECTOR_MIN_CORES == 16
