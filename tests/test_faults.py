"""Unit suite for the self-healing substrate: fault plans, backoff, breaker.

Covers the deterministic :class:`~repro.service.faults.FaultPlan` (pure
``(seed, site, invocation)`` decisions, fire budgets, plan validation, the
process-global install seam into the results store), the deterministic
capped-exponential backoff helper, :class:`~repro.service.executor.
CircuitBreaker` state transitions, and :class:`~repro.service.executor.
FailoverExecutor` routing with stub executors.

The end-to-end storms (faults driven through a real service) live in
``tests/test_service_chaos.py``; the CI chaos gate in ``tools/chaos_smoke.py``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import executor as executor_mod
from repro.service import faults
from repro.service.executor import CircuitBreaker, FailoverExecutor, make_executor
from repro.simulation import results_store as results_store_mod
from repro.util.backoff import backoff_delay, backoff_schedule


def _crash_plan(seed, rate=0.5, max_fires=3):
    return faults.FaultPlan(
        seed, [faults.FaultRule(faults.EXECUTOR_CRASH, rate=rate, max_fires=max_fires)]
    )


class TestFaultPlan:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_decisions_are_a_pure_function_of_seed_and_count(self, seed):
        a, b = _crash_plan(seed), _crash_plan(seed)
        seq_a = [a.fire(faults.EXECUTOR_CRASH) is not None for _ in range(32)]
        seq_b = [b.fire(faults.EXECUTOR_CRASH) is not None for _ in range(32)]
        assert seq_a == seq_b

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_budget_is_never_exceeded(self, seed):
        plan = _crash_plan(seed, rate=1.0, max_fires=2)
        fires = sum(plan.fire(faults.EXECUTOR_CRASH) is not None for _ in range(20))
        assert fires == 2  # rate 1.0: fires exactly until the budget is spent
        assert plan.total_fires() == 2
        assert plan.report()[faults.EXECUTOR_CRASH] == {"invocations": 20, "fires": 2}

    def test_seeds_decorrelate(self):
        """Different seeds produce different fire sequences (for some pair)."""
        seqs = set()
        for seed in range(8):
            plan = _crash_plan(seed, rate=0.5, max_fires=None)
            seqs.add(
                tuple(plan.fire(faults.EXECUTOR_CRASH) is not None for _ in range(16))
            )
        assert len(seqs) > 1

    def test_sites_decorrelate(self):
        plan = faults.FaultPlan(
            7,
            [
                faults.FaultRule(faults.EXECUTOR_CRASH, rate=0.5),
                faults.FaultRule(faults.EXECUTOR_HANG, rate=0.5),
            ],
        )
        a = [plan.fire(faults.EXECUTOR_CRASH) is not None for _ in range(32)]
        b = [plan.fire(faults.EXECUTOR_HANG) is not None for _ in range(32)]
        assert a != b

    def test_unruled_site_never_fires(self):
        plan = _crash_plan(3)
        assert all(plan.fire(faults.STORE_PUT_FAIL) is None for _ in range(10))

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            faults.FaultRule("warp.core", rate=0.5)
        with pytest.raises(ValueError, match="rate"):
            faults.FaultRule(faults.EXECUTOR_CRASH, rate=1.5)
        with pytest.raises(ValueError, match="max_fires"):
            faults.FaultRule(faults.EXECUTOR_CRASH, rate=0.5, max_fires=-1)
        rule = faults.FaultRule(faults.EXECUTOR_CRASH, rate=0.5)
        with pytest.raises(ValueError, match="duplicate"):
            faults.FaultPlan(0, [rule, rule])

    def test_failure_budget_sums_crash_and_hang(self):
        plan = faults.FaultPlan(
            0,
            [
                faults.FaultRule(faults.EXECUTOR_CRASH, rate=1.0, max_fires=2),
                faults.FaultRule(faults.EXECUTOR_HANG, rate=1.0, max_fires=1),
                faults.FaultRule(faults.STORE_PUT_FAIL, rate=1.0, max_fires=99),
            ],
        )
        assert plan.failure_budget() == 3
        unbounded = _crash_plan(0, max_fires=None)
        assert unbounded.failure_budget() is None

    def test_install_plugs_the_store_seam(self):
        plan = faults.FaultPlan(
            5, [faults.FaultRule(faults.STORE_LOAD_CORRUPT, rate=1.0, max_fires=1)]
        )
        assert faults.active() is None
        assert results_store_mod.FAULT_HOOK is None
        with faults.installed(plan):
            assert faults.active() is plan
            assert results_store_mod.FAULT_HOOK == plan.fire  # bound method equality
            assert faults.fire(faults.STORE_LOAD_CORRUPT) is not None
        assert faults.active() is None
        assert results_store_mod.FAULT_HOOK is None
        # With no plan installed, every site is a no-op.
        assert faults.fire(faults.EXECUTOR_CRASH) is None


class TestBackoff:
    def test_deterministic_per_key(self):
        a = backoff_schedule(5, key=("job-a",))
        b = backoff_schedule(5, key=("job-a",))
        assert a == b
        assert backoff_schedule(5, key=("job-b",)) != a

    def test_exponential_shape_and_cap(self):
        raw = backoff_schedule(8, base_s=0.05, cap_s=0.4, jitter=0.0)
        assert raw[:4] == [0.05, 0.1, 0.2, 0.4]
        assert all(d == 0.4 for d in raw[3:])  # capped from attempt 4 on

    @given(
        attempt=st.integers(min_value=1, max_value=12),
        seedkey=st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=60, deadline=None)
    def test_jitter_stays_within_the_documented_band(self, attempt, seedkey):
        raw = backoff_delay(attempt, jitter=0.0)
        jittered = backoff_delay(attempt, jitter=0.5, key=(seedkey,))
        assert 0.5 * raw <= jittered <= raw

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="1-based"):
            backoff_delay(0)
        with pytest.raises(ValueError, match="jitter"):
            backoff_delay(1, jitter=1.5)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        b = CircuitBreaker(trip_after=3, cooldown_jobs=4)
        b.record_failure()
        b.record_failure()
        b.record_success()  # resets the streak
        b.record_failure()
        b.record_failure()
        assert b.state == CircuitBreaker.CLOSED
        b.record_failure()
        assert b.state == CircuitBreaker.OPEN
        assert b.trips == 1

    def test_cooldown_then_half_open_probe_success_closes(self):
        b = CircuitBreaker(trip_after=1, cooldown_jobs=3)
        b.record_failure()
        assert b.state == CircuitBreaker.OPEN
        assert [b.allow_primary() for _ in range(2)] == [False, False]
        assert b.allow_primary()  # cooldown spent: this caller probes
        assert b.state == CircuitBreaker.HALF_OPEN and b.probes == 1
        assert not b.allow_primary()  # only one probe at a time
        b.record_success()
        assert b.state == CircuitBreaker.CLOSED
        assert b.allow_primary()

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        b = CircuitBreaker(trip_after=1, cooldown_jobs=2)
        b.record_failure()
        assert not b.allow_primary()
        assert b.allow_primary()  # probe
        b.record_failure()
        assert b.state == CircuitBreaker.OPEN and b.trips == 2
        assert not b.allow_primary()  # cooldown restarts from zero
        assert b.allow_primary()

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            CircuitBreaker(trip_after=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_jobs=0)


class _StubExecutor:
    """Scripted executor: raises while ``failures`` remain, then returns."""

    stores_results = False

    def __init__(self, name, failures=0, result="ok"):
        self.name = name
        self.failures = failures
        self.result = result
        self.runs = 0
        self.recycled = 0
        self.closed = False

    def run(self, ctx, job_id, item, manager):
        self.runs += 1
        if self.failures > 0:
            self.failures -= 1
            raise RuntimeError(f"{self.name} down")
        return self.result

    def recycle(self, ctx):
        self.recycled += 1

    def close(self):
        self.closed = True


class _StubStore:
    def __init__(self):
        self.putted = []

    def put(self, key, result):
        self.putted.append((key, result))


class _StubCtx:
    def __init__(self, store):
        self.results_store = store


class TestFailoverExecutor:
    def test_degrades_to_fallback_after_trip_and_recovers(self):
        primary = _StubExecutor("primary", failures=2)
        fallback = _StubExecutor("fallback")
        failover = FailoverExecutor(primary, fallback, trip_after=2, cooldown_jobs=3)
        ctx = _StubCtx(_StubStore())
        for _ in range(2):  # two consecutive primary deaths trip the breaker
            with pytest.raises(RuntimeError, match="primary down"):
                failover.run(ctx, "k", None, None)
        assert failover.breaker.state == CircuitBreaker.OPEN
        # Open: jobs degrade to the fallback (results still served+stored).
        assert failover.run(ctx, "k1", None, None) == "ok"
        assert failover.run(ctx, "k2", None, None) == "ok"
        assert fallback.runs == 2 and failover.fallback_runs == 2
        # Cooldown spent: the third routed job probes the (healthy) primary.
        assert failover.run(ctx, "k3", None, None) == "ok"
        assert primary.runs == 3
        assert failover.breaker.state == CircuitBreaker.CLOSED

    def test_stores_result_when_running_executor_does_not(self):
        primary = _StubExecutor("primary")
        store = _StubStore()
        failover = FailoverExecutor(primary, _StubExecutor("fallback"))
        failover.run(_StubCtx(store), "key-1", None, None)
        assert store.putted == [("key-1", "ok")]

        class _StoringStub(_StubExecutor):
            stores_results = True

        storing = FailoverExecutor(_StoringStub("primary"), _StubExecutor("fallback"))
        other = _StubStore()
        storing.run(_StubCtx(other), "key-2", None, None)
        assert other.putted == []  # the primary already persisted it

    def test_recycle_and_close_delegate(self):
        primary = _StubExecutor("primary")
        fallback = _StubExecutor("fallback")
        failover = FailoverExecutor(primary, fallback)
        failover.recycle(_StubCtx(None))
        assert primary.recycled == 1 and fallback.recycled == 0
        failover.close()
        assert primary.closed and fallback.closed

    def test_make_executor_wraps_process_in_failover(self):
        wrapped = make_executor("process", processes=1)
        try:
            assert isinstance(wrapped, FailoverExecutor)
            assert isinstance(wrapped.primary, executor_mod.ProcessPoolExecutor)
            assert wrapped.stores_results
            assert wrapped.processes == 1
        finally:
            wrapped.close()
        bare = make_executor("process", processes=1, failover=False)
        try:
            assert isinstance(bare, executor_mod.ProcessPoolExecutor)
        finally:
            bare.close()
