"""Tests for experiment result rendering and the terminal plots."""

from __future__ import annotations

import pytest

from repro.experiments.report import ExperimentResult
from repro.util.ascii_plot import bar_chart, spark_line


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            experiment_id="EX",
            title="demo",
            headers=["a", "b"],
            rows=[["x", 1.0], ["y", 2.5]],
            summary={"avg %": 1.75},
            paper={"avg %": 2.0},
            notes="a note",
        )

    def test_render_contains_everything(self):
        text = self._result().render()
        assert "EX: demo" in text
        assert "2.50" in text
        assert "measured: avg %=1.75" in text
        assert "paper:    avg %=2.00" in text
        assert "note: a note" in text

    def test_markdown_structure(self):
        md = self._result().markdown()
        assert md.startswith("### EX — demo")
        assert "| a | b |" in md
        assert "| avg % | 2.00 | 1.75 |" in md
        assert "*a note*" in md

    def test_markdown_without_summary(self):
        r = ExperimentResult("E0", "t", ["h"], [[1]])
        md = r.markdown()
        assert "| quantity |" not in md

    def test_render_without_paper(self):
        r = ExperimentResult("E0", "t", ["h"], [[1]], summary={"x": 1.0})
        assert "paper:" not in r.render()


class TestBarChart:
    def test_basic_render(self):
        out = bar_chart(["aa", "b"], [10.0, 5.0], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].count("▇") == 10
        assert lines[1].count("▇") == 5
        assert "10.00%" in lines[0]

    def test_negative_values(self):
        out = bar_chart(["neg"], [-3.0], width=10)
        assert "▁" in out and "-3.00%" in out

    def test_labels_aligned(self):
        out = bar_chart(["long-label", "x"], [1.0, 1.0])
        a, b = out.splitlines()
        assert a.index("|") == b.index("|")

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], []) == "(empty)"


class TestSparkLine:
    def test_monotone_series(self):
        s = spark_line([0, 1, 2, 3, 4, 5, 6, 7])
        assert s[0] == "▁" and s[-1] == "█"

    def test_flat_series(self):
        assert spark_line([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_empty(self):
        assert spark_line([]) == ""

    def test_length_preserved(self):
        assert len(spark_line(list(range(13)))) == 13
