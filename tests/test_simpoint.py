"""Tests for the SimPoint-style phase analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import rng_for
from repro.workloads.benchmarks import get_benchmark
from repro.workloads.phases import SliceFeatures
from repro.workloads.simpoint import (
    bic_score,
    kmeans,
    run_simpoint,
    slice_features,
)


def gaussian_blobs(k, n_per, sep=5.0, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, sep, (k, dim))
    points = np.concatenate([c + rng.normal(0, 0.3, (n_per, dim)) for c in centers])
    labels = np.repeat(np.arange(k), n_per)
    return points, labels


class TestKMeans:
    def test_recovers_separated_blobs(self):
        x, truth = gaussian_blobs(3, 40)
        labels, centroids = kmeans(x, 3, rng_for("km1"))
        # cluster assignments must be consistent with ground truth up to relabel
        for t in range(3):
            members = labels[truth == t]
            assert len(set(members.tolist())) == 1
        assert centroids.shape == (3, 8)

    def test_k_equals_one(self):
        x, _ = gaussian_blobs(2, 10)
        labels, centroids = kmeans(x, 1, rng_for("km2"))
        assert set(labels.tolist()) == {0}
        np.testing.assert_allclose(centroids[0], x.mean(axis=0))

    def test_rejects_k_greater_than_n(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((2, 8)), 3, rng_for("km3"))

    def test_deterministic(self):
        x, _ = gaussian_blobs(2, 30, seed=4)
        l1, _ = kmeans(x, 2, rng_for("km4"))
        l2, _ = kmeans(x, 2, rng_for("km4"))
        np.testing.assert_array_equal(l1, l2)


class TestBic:
    def test_prefers_true_k_on_separated_data(self):
        x, _ = gaussian_blobs(3, 50, sep=8.0, seed=1)
        scores = {}
        for k in (1, 2, 3, 5):
            labels, centroids = kmeans(x, k, rng_for("bic", k))
            scores[k] = bic_score(x, labels, centroids)
        assert scores[3] > scores[1]
        assert scores[3] > scores[2]


class TestRunSimpoint:
    def test_recovers_benchmark_phases(self):
        bench = get_benchmark("mcf_like")
        sp = run_simpoint(slice_features(bench), seed_parts=("mcf_like",))
        true_trace = bench.phase_trace()
        # The operational phase count should be close to the true phase count.
        assert 2 <= sp.k <= len(bench.phases) + 2
        # Cluster labels must be constant within each true phase's slices
        # for the dominant phases (clustering may merge, must not split).
        labels = np.asarray(sp.labels)
        truth = np.asarray(true_trace.sequence)
        for pid in set(truth.tolist()):
            members = labels[truth == pid]
            # dominant label covers nearly all slices of the phase
            counts = np.bincount(members)
            assert counts.max() / counts.sum() > 0.9

    def test_weights_sum_to_one(self):
        bench = get_benchmark("povray_like")
        sp = run_simpoint(slice_features(bench), seed_parts=("povray_like",))
        assert sum(sp.weights) == pytest.approx(1.0)

    def test_representatives_belong_to_their_cluster(self):
        bench = get_benchmark("soplex_like")
        sp = run_simpoint(slice_features(bench), seed_parts=("soplex_like",))
        for cluster, rep in enumerate(sp.representatives):
            assert sp.labels[rep] == cluster

    def test_phase_sequence_matches_labels(self):
        bench = get_benchmark("lbm_like")
        sp = run_simpoint(slice_features(bench), seed_parts=("lbm_like",))
        assert sp.phase_sequence() == tuple(int(x) for x in sp.labels)

    def test_max_k_respected(self):
        bench = get_benchmark("namd_like")
        sp = run_simpoint(slice_features(bench), max_k=2, seed_parts=("namd_like",))
        assert sp.k <= 2

    def test_deterministic(self):
        bench = get_benchmark("astar_like")
        a = run_simpoint(slice_features(bench), seed_parts=("astar_like",))
        b = run_simpoint(slice_features(bench), seed_parts=("astar_like",))
        np.testing.assert_array_equal(a.labels, b.labels)
        assert a.representatives == b.representatives


class TestSliceFeatures:
    def test_shape(self):
        bench = get_benchmark("mcf_like")
        f = slice_features(bench)
        assert f.matrix.shape[0] == bench.nslices

    def test_noise_small_relative_to_phase_separation(self):
        bench = get_benchmark("mcf_like")
        f = slice_features(bench)
        trace = bench.phase_trace()
        truth = np.asarray(trace.sequence)
        # within-phase spread << between-phase distance for dominant phases
        mats = {pid: f.matrix[truth == pid] for pid in set(truth.tolist())}
        within = max(m.std(axis=0).max() for m in mats.values() if len(m) > 3)
        centers = [m.mean(axis=0) for m in mats.values() if len(m) > 3]
        between = max(
            np.linalg.norm(a - b) for i, a in enumerate(centers) for b in centers[i + 1:]
        )
        assert within * 3 < between

    def test_validation(self):
        with pytest.raises(ValueError):
            SliceFeatures(matrix=np.zeros((4, 3)))
