"""Tests for phase specs, traces and the slice-feature machinery."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.util.rng import rng_for
from repro.workloads.phases import (
    FEATURE_DIM,
    PhaseSpec,
    PhaseTrace,
    block_phase_sequence,
)


def make_spec(**overrides) -> PhaseSpec:
    kw = dict(
        phase_id=0,
        base_cpi=1.0,
        ilp_sensitivity=0.5,
        apki=20.0,
        working_sets=((4, 0.6), (10, 0.4)),
        streaming_frac=0.1,
        chain_break_prob=0.5,
        mlp_sensitivity=0.5,
        epi_dyn=1.0,
    )
    kw.update(overrides)
    return PhaseSpec(**kw)


class TestPhaseSpec:
    def test_valid_spec(self):
        make_spec()

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            make_spec(streaming_frac=1.5)
        with pytest.raises(ValueError):
            make_spec(chain_break_prob=-0.1)

    def test_rejects_unnormalised_working_sets(self):
        with pytest.raises(ValueError):
            make_spec(working_sets=((4, 0.5), (10, 0.4)))

    def test_rejects_empty_working_sets(self):
        with pytest.raises(ValueError):
            make_spec(working_sets=())

    def test_rejects_nonpositive_cpi(self):
        with pytest.raises(ValueError):
            make_spec(base_cpi=0.0)

    def test_feature_vector_shape_and_determinism(self):
        spec = make_spec()
        v = spec.feature_vector()
        assert v.shape == (FEATURE_DIM,)
        np.testing.assert_array_equal(v, spec.feature_vector())

    def test_feature_vector_separates_phases(self):
        a = make_spec().feature_vector()
        b = make_spec(apki=2.0, streaming_frac=0.8).feature_vector()
        assert np.linalg.norm(a - b) > 0.1


class TestPhaseTrace:
    def test_weights(self):
        t = PhaseTrace((0, 0, 1, 1, 1, 2))
        w = t.weights()
        assert w[0] == pytest.approx(2 / 6)
        assert w[1] == pytest.approx(3 / 6)
        assert w[2] == pytest.approx(1 / 6)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PhaseTrace(())

    def test_nslices(self):
        assert PhaseTrace((0, 1)).nslices == 2


class TestBlockPhaseSequence:
    def test_length(self):
        seq = block_phase_sequence({0: 0.5, 1: 0.5}, 100, rng_for("t1"))
        assert len(seq) == 100

    def test_weights_approximately_honoured(self):
        seq = block_phase_sequence({0: 0.7, 1: 0.3}, 400, rng_for("t2"))
        frac0 = seq.count(0) / len(seq)
        assert 0.6 < frac0 < 0.8

    def test_block_structure(self):
        """Phases run in segments: far fewer transitions than i.i.d. draws."""
        seq = block_phase_sequence({0: 0.5, 1: 0.5}, 500, rng_for("t3"))
        transitions = sum(1 for a, b in zip(seq, seq[1:]) if a != b)
        assert transitions < 120  # i.i.d. would average ~250

    def test_deterministic_given_rng(self):
        a = block_phase_sequence({0: 0.4, 1: 0.6}, 50, rng_for("t4"))
        b = block_phase_sequence({0: 0.4, 1: 0.6}, 50, rng_for("t4"))
        assert a == b

    def test_single_phase(self):
        seq = block_phase_sequence({3: 1.0}, 10, rng_for("t5"))
        assert seq == (3,) * 10

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            block_phase_sequence({0: 0.5, 1: 0.4}, 10, rng_for("t6"))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 200), st.floats(0.05, 0.95))
    def test_every_length_and_weighting_fills_exactly(self, n, w0):
        seq = block_phase_sequence({0: w0, 1: 1.0 - w0}, n, rng_for("t7", n, w0))
        assert len(seq) == n
        assert set(seq) <= {0, 1}
