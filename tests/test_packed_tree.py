"""Bit-identity of the packed level-synchronous reduction.

:class:`~repro.core.packed_tree.PackedReduction` plans an entire clustered
hierarchy -- per-cluster capped combine levels plus the second-level
stage -- into struct-of-arrays level matrices and solves it with batched
sliding-window min-plus sweeps.  The node-graph
:class:`~repro.core.global_opt.ReductionTree` hierarchy is the golden
reference: on every input the packed tree must reproduce its assignment
(including tie-breaks), its ``None``-ness on infeasible inputs, and its
metered RMA overhead (instructions and DP cells) *exactly* -- the packed
path is an execution-layout change, never a semantics change.

The property tests drive persistent instances through randomized splice /
update sequences over inf-heavy curves (sporadic infeasible entries plus
pinned single-way curves, the shapes idle cores and capped clusters
produce), covering flat trees, odd leaf counts, uneven final clusters and
over-provisioned way caps.  A forced-packed manager run (monkeypatched
:data:`~repro.core.packed_tree.PACKED_MIN_CORES` threshold) pins the
dispatch wiring end to end below the many-core scale.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.curves import EnergyCurve
from repro.core.global_opt import ReductionTree, cluster_way_caps, partition_clusters
from repro.core.managers import rm2_combined
from repro.core.overhead_meter import OverheadMeter
from repro.core.packed_tree import PACKED_MIN_CORES, PackedReduction, packed_enabled
from repro.scenarios import cluster_churn
from repro.simulation.rma_sim import RMASimulator
from tests.conftest import TEST_BENCHMARKS
from tests.test_clustered import assert_same_numbers


def _random_curves(rng, ncores, ways, inf_p=0.25):
    """Inf-heavy random curves; ~15% are pinned to a single way count."""
    curves = []
    for j in range(ncores):
        epi = np.where(rng.random(ways) < inf_p, np.inf,
                       rng.uniform(0.1, 5.0, size=ways))
        if rng.random() < 0.15:
            epi = np.full(ways, np.inf)
            epi[rng.integers(0, ways)] = rng.uniform(0.1, 5.0)
        curves.append(EnergyCurve(
            core_id=j, epi=epi,
            freq_idx=rng.integers(0, 4, size=ways),
            core_idx=rng.integers(0, 3, size=ways),
        ))
    return curves


def _random_hierarchy(rng, ncores, ways):
    """A random clustered shape: clusters, caps (manager invariants hold)."""
    if rng.random() < 0.35:
        clusters = (tuple(range(ncores)),)
    else:
        csize = int(rng.integers(1, max(2, ncores // 2) + 1))
        clusters = partition_clusters(ncores, csize)
    if len(clusters) == 1:
        # Manager invariant: a single cluster's cap is the full
        # associativity (the second level is a pass-through).
        return clusters, (ways,)
    caps = cluster_way_caps(ways, ncores, clusters, 1,
                            overprovision=float(rng.uniform(1.0, 2.0)))
    return clusters, caps


class _Reference:
    """Persistent node-graph hierarchy mirroring one PackedReduction."""

    def __init__(self, clusters, caps, ways):
        self.clusters = clusters
        self.trees = [ReductionTree(len(m), cap, 1)
                      for m, cap in zip(clusters, caps)]
        self.level2 = ReductionTree(len(clusters), ways, 1)

    def solve(self, curves, meter):
        for ci, members in enumerate(self.clusters):
            tree = self.trees[ci]
            for local, j in enumerate(members):
                tree.set_leaf(local, curves[j])
            root, changed = tree.refresh(meter)
            self.level2.set_leaf_node(ci, root, changed)
        return self.level2.solve(meter)

    def invalidate(self, slot):
        for ci, members in enumerate(self.clusters):
            if slot in members:
                self.trees[ci].invalidate(members.index(slot))


def _check_step(tag, ref, got, m_ref, m_pk):
    assert (ref is None) == (got is None), f"{tag}: feasibility mismatch"
    if ref is not None:
        assert got == ref, f"{tag}: assignment mismatch"
    assert m_pk.instructions == m_ref.instructions, f"{tag}: meter drift"
    assert m_pk.dp_cells == m_ref.dp_cells, f"{tag}: DP-cell drift"


class TestPackedBitIdentity:
    """Packed vs node-graph reference over randomized splice sequences."""

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_splice_sequences_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        ncores = int(rng.integers(2, 20))
        ways = int(rng.integers(ncores, 3 * ncores + 4))
        clusters, caps = _random_hierarchy(rng, ncores, ways)
        packed = PackedReduction(
            tuple(len(m) for m in clusters), tuple(caps), ways, 1)
        reference = _Reference(clusters, caps, ways)
        m_ref, m_pk = OverheadMeter(), OverheadMeter()

        curves = _random_curves(rng, ncores, ways,
                                inf_p=float(rng.uniform(0.05, 0.6)))
        for step in range(int(rng.integers(3, 8))):
            tag = f"seed={seed} step={step} clusters={clusters} caps={caps}"
            ref = reference.solve(curves, m_ref)
            for ci, members in enumerate(clusters):
                packed.set_group_leaves(ci, [curves[j] for j in members])
            got = packed.solve(m_pk)
            _check_step(tag, ref, got, m_ref, m_pk)
            if ref is not None:
                # Identity contract: nothing changed, so the manager's
                # delta diffing must see the very same dict object again.
                again = packed.solve(m_pk)
                assert again is got, f"{tag}: cached-dict identity broken"
                _check_step(f"{tag} (cached)", reference.solve(curves, m_ref),
                            again, m_ref, m_pk)
            mode = rng.random()
            if mode < 0.55:  # steady state: one core's curve moves
                j = int(rng.integers(0, ncores))
                curves[j] = _random_curves(rng, j + 1, ways, 0.3)[j]
            elif mode < 0.8:  # a few cores move at once
                for j in rng.choice(ncores, size=min(ncores, 3), replace=False):
                    curves[int(j)] = _random_curves(rng, int(j) + 1, ways, 0.4)[int(j)]
            else:  # tenancy splice: forced re-ingest of an unchanged slot
                j = int(rng.integers(0, ncores))
                packed.invalidate(j)
                reference.invalidate(j)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 100_000), ncores=st.integers(2, 16))
    def test_flat_tree_matches(self, seed, ncores):
        """A one-cluster packed plan is the flat ReductionTree, bit for bit."""
        rng = np.random.default_rng(seed)
        ways = 3 * ncores + int(rng.integers(0, 4))
        curves = _random_curves(rng, ncores, ways)
        flat = ReductionTree(ncores, ways, 1)
        for j, c in enumerate(curves):
            flat.set_leaf(j, c)
        packed = PackedReduction((ncores,), (ways,), ways, 1)
        packed.set_group_leaves(0, curves)
        m_ref, m_pk = OverheadMeter(), OverheadMeter()
        want = flat.solve(m_ref)
        got = packed.solve(m_pk)
        assert got == want
        assert m_pk.instructions == m_ref.instructions
        assert m_pk.dp_cells == m_ref.dp_cells

    def test_all_idle_is_infeasible_then_recovers(self):
        """Every leaf pinned over-budget -> None; a feasible splice heals."""
        ncores, ways = 8, 16
        clusters = partition_clusters(ncores, 4)
        caps = cluster_way_caps(ways, ncores, clusters, 1)
        packed = PackedReduction(
            tuple(len(m) for m in clusters), tuple(caps), ways, 1)
        reference = _Reference(clusters, caps, ways)
        pinned = []
        for j in range(ncores):
            epi = np.full(ways, np.inf)
            epi[ways - 1] = 1.0  # all demand the full cache: infeasible
            pinned.append(EnergyCurve(core_id=j, epi=epi,
                                      freq_idx=np.zeros(ways, dtype=int),
                                      core_idx=np.ones(ways, dtype=int)))
        m_ref, m_pk = OverheadMeter(), OverheadMeter()
        for ci, members in enumerate(clusters):
            packed.set_group_leaves(ci, [pinned[j] for j in members])
        assert reference.solve(pinned, m_ref) is None
        assert packed.solve(m_pk) is None
        assert m_pk.instructions == m_ref.instructions

        rng = np.random.default_rng(7)
        healed = [
            EnergyCurve(core_id=j, epi=rng.uniform(0.1, 5.0, size=ways),
                        freq_idx=rng.integers(0, 4, size=ways),
                        core_idx=rng.integers(0, 3, size=ways))
            for j in range(ncores)
        ]
        for ci, members in enumerate(clusters):
            packed.set_group_leaves(ci, [healed[j] for j in members])
        ref = reference.solve(healed, m_ref)
        got = packed.solve(m_pk)
        assert got == ref
        assert ref is not None
        assert m_pk.instructions == m_ref.instructions


class TestPackedManagerDispatch:
    """The manager's packed path equals its node-graph path end to end."""

    def test_threshold_gates_the_packed_plan(self):
        assert packed_enabled(PACKED_MIN_CORES)
        assert not packed_enabled(PACKED_MIN_CORES - 1)

    def test_forced_packed_replay_is_bit_identical(
        self, system8, db8, monkeypatch
    ):
        """8-core cluster-churn replay, packed forced on vs off."""
        sc = cluster_churn("packed-eq", 8, TEST_BENCHMARKS, cluster_size=2,
                           cycles=3, idle_intervals=1.0,
                           horizon_intervals=48, seed=5)

        import repro.core.managers as managers_mod

        monkeypatch.setattr(managers_mod, "packed_enabled", lambda n: True)
        mgr = rm2_combined(cluster_size=2)
        forced = RMASimulator(system8, db8, sc.workload, mgr,
                              max_slices=6, scenario=sc).run()
        assert mgr._packed is not None  # the packed plan really ran

        monkeypatch.setattr(managers_mod, "packed_enabled", lambda n: False)
        mgr = rm2_combined(cluster_size=2)
        node_graph = RMASimulator(system8, db8, sc.workload, mgr,
                                  max_slices=6, scenario=sc).run()
        assert mgr._packed is None

        assert_same_numbers(forced, node_graph)
