"""Tests for the simulation framework: database, overheads, metrics, RMA sim."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import Allocation
from repro.core.managers import (
    StaticBaselineManager,
    dvfs_only,
    rm1_partitioning_only,
    rm2_combined,
    rm3_core_adaptive,
)
from repro.simulation.database import build_database
from repro.simulation.metrics import (
    AppResult,
    IntervalSample,
    RunResult,
    compare_runs,
    energy_savings_pct,
    interval_violation_stats,
)
from repro.simulation.overheads import transition_cost
from repro.simulation.rma_sim import RMASimulator, simulate_workload
from repro.workloads.mixes import Workload


class TestDatabase:
    def test_contains_requested_benchmarks(self, db4):
        assert set(db4.benchmarks()) == set(
            ["mcf_like", "soplex_like", "libquantum_like", "lbm_like",
             "astar_like", "povray_like", "namd_like"]
        )

    def test_record_grids_shapes(self, db4, system4):
        rec = next(iter(db4.records["mcf_like"].values()))
        shape = (system4.ncore_sizes, system4.vf.nlevels, system4.llc.ways)
        assert rec.tpi.shape == shape
        assert rec.epi.shape == shape
        assert rec.latency.shape == shape
        assert rec.mpki_full.shape == (system4.llc.ways,)
        assert rec.mlp_full.shape == (system4.ncore_sizes, system4.llc.ways)

    def test_weights_sum_to_one(self, db4):
        for name in db4.benchmarks():
            total = sum(r.weight for r in db4.records[name].values())
            assert total == pytest.approx(1.0)

    def test_trace_labels_have_records(self, db4):
        for name in db4.benchmarks():
            assert set(db4.phase_sequence(name)) <= set(db4.records[name])

    def test_miss_curves_monotone(self, db4):
        for name in db4.benchmarks():
            for rec in db4.records[name].values():
                assert np.all(np.diff(rec.mpki_full) <= 1e-9)
                assert np.all(np.diff(rec.mpki_sampled) <= 1e-9)

    def test_mlp_at_least_one(self, db4):
        for name in db4.benchmarks():
            for rec in db4.records[name].values():
                assert np.all(rec.mlp_full >= 1.0)
                assert np.all(rec.mlp_sampled >= 1.0)

    def test_tpi_monotone_in_f_and_w(self, db4):
        for rec in db4.records["mcf_like"].values():
            assert np.all(np.diff(rec.tpi, axis=1) <= 1e-9)
            assert np.all(np.diff(rec.tpi, axis=2) <= 1e-6)

    def test_sampled_curve_tracks_full(self, db4):
        """Set sampling is an estimate: close to, not equal to, ground truth."""
        for name in db4.benchmarks():
            for rec in db4.records[name].values():
                if rec.mpki_full[0] < 1.0:
                    continue
                err = np.abs(rec.mpki_sampled - rec.mpki_full) / (rec.mpki_full + 1e-9)
                assert err.max() < 0.5, name

    def test_disk_cache_roundtrip(self, system4, tmp_path):
        names = ["povray_like"]
        db1 = build_database(system4, names, accesses_per_set=150, cache_dir=str(tmp_path))
        db2 = build_database(system4, names, accesses_per_set=150, cache_dir=str(tmp_path))
        rec1 = next(iter(db1.records["povray_like"].values()))
        rec2 = next(iter(db2.records["povray_like"].values()))
        np.testing.assert_array_equal(rec1.tpi, rec2.tpi)

    def test_parallel_build_matches_serial(self, system4):
        names = ["namd_like", "povray_like"]
        a = build_database(system4, names, accesses_per_set=150, processes=1)
        b = build_database(system4, names, accesses_per_set=150, processes=2)
        for name in names:
            for key in a.records[name]:
                np.testing.assert_array_equal(
                    a.records[name][key].tpi, b.records[name][key].tpi
                )

    def test_unknown_benchmark_fails_fast(self, system4):
        with pytest.raises(KeyError):
            build_database(system4, ["nonexistent_like"], accesses_per_set=100)

    def test_baseline_tpi(self, db4, system4):
        seq = db4.phase_sequence("mcf_like")
        t = db4.baseline_tpi("mcf_like", seq[0])
        rec = db4.record("mcf_like", seq[0])
        assert t == rec.tpi_at(system4.baseline_allocation())


class TestOverheads:
    def test_no_change_no_cost(self, system4):
        a = Allocation(1, 5, 4)
        cost = transition_cost(system4, a, a)
        assert cost.stall_ns == 0.0 and cost.energy_nj == 0.0

    def test_dvfs_change_costs(self, system4):
        a, b = Allocation(1, 5, 4), Allocation(1, 6, 4)
        cost = transition_cost(system4, a, b)
        assert cost.stall_ns == pytest.approx(system4.overheads.dvfs_transition_us * 1000)
        assert cost.energy_nj > 0

    def test_resize_adds_cost(self, system4):
        a, b = Allocation(1, 5, 4), Allocation(2, 5, 4)
        cost = transition_cost(system4, a, b)
        assert cost.stall_ns == pytest.approx(system4.overheads.resize_transition_us * 1000)

    def test_way_gain_warmup(self, system4):
        a, b = Allocation(1, 5, 4), Allocation(1, 5, 8)
        cost = transition_cost(system4, a, b)
        assert cost.stall_ns > 0
        assert cost.energy_nj > 0

    def test_way_loss_free(self, system4):
        a, b = Allocation(1, 5, 8), Allocation(1, 5, 4)
        assert transition_cost(system4, a, b).stall_ns == 0.0

    def test_combined_changes_accumulate(self, system4):
        a, b = Allocation(1, 5, 4), Allocation(2, 8, 7)
        cost = transition_cost(system4, a, b)
        only_f = transition_cost(system4, a, Allocation(1, 8, 4))
        assert cost.stall_ns > only_f.stall_ns


class TestMetrics:
    def _runs(self):
        base = RunResult(
            workload="w", manager="baseline",
            apps=[AppResult("a", 0, 100.0, 50.0, 10), AppResult("b", 1, 200.0, 80.0, 10)],
        )
        pol = RunResult(
            workload="w", manager="rm",
            apps=[AppResult("a", 0, 103.0, 40.0, 10), AppResult("b", 1, 199.0, 70.0, 10)],
        )
        return base, pol

    def test_energy_savings(self):
        base, pol = self._runs()
        assert energy_savings_pct(base, pol) == pytest.approx(
            (1 - 110.0 / 130.0) * 100
        )

    def test_violations(self):
        base, pol = self._runs()
        cmp = compare_runs(base, pol)
        assert cmp.n_violations == 1
        v = cmp.violations[0]
        assert v.app == "a" and v.slowdown_pct == pytest.approx(3.0)

    def test_slack_forgives(self):
        base, pol = self._runs()
        pol.apps[0] = AppResult("a", 0, 103.0, 40.0, 10, slack=0.05)
        cmp = compare_runs(base, pol)
        assert cmp.n_violations == 0

    def test_mismatched_workloads_rejected(self):
        base, pol = self._runs()
        pol.workload = "other"
        with pytest.raises(ValueError):
            compare_runs(base, pol)

    def test_interval_stats(self):
        samples = [
            IntervalSample(0, 0, duration_ns=110.0, baseline_ns=100.0, slack=0.0),
            IntervalSample(0, 0, duration_ns=100.0, baseline_ns=100.0, slack=0.0),
            IntervalSample(0, 0, duration_ns=95.0, baseline_ns=100.0, slack=0.0),
            IntervalSample(0, 0, duration_ns=120.0, baseline_ns=100.0, slack=0.2),
        ]
        stats = interval_violation_stats(samples)
        assert stats["n"] == 4
        assert stats["probability"] == pytest.approx(25.0)
        assert stats["expected_value"] == pytest.approx(10.0)

    def test_interval_stats_empty(self):
        assert interval_violation_stats([])["probability"] == 0.0


class TestRMASimulator:
    def _workload(self):
        return Workload(
            name="t4",
            apps=("mcf_like", "soplex_like", "libquantum_like", "povray_like"),
        )

    def test_baseline_time_matches_database(self, system4, db4):
        """Under the static baseline, each app's first-round time must equal
        the sum of its slices' baseline interval times exactly."""
        run = simulate_workload(system4, db4, self._workload(), max_slices=12)
        base = system4.baseline_allocation()
        for app_result in run.apps:
            seq = db4.phase_sequence(app_result.app)[:12]
            expect = sum(
                system4.interval_instructions * db4.record(app_result.app, pid).tpi_at(base)
                for pid in seq
            )
            assert app_result.time_ns == pytest.approx(expect, rel=1e-9)

    def test_baseline_energy_matches_database(self, system4, db4):
        run = simulate_workload(system4, db4, self._workload(), max_slices=12)
        base = system4.baseline_allocation()
        for app_result in run.apps:
            seq = db4.phase_sequence(app_result.app)[:12]
            expect = sum(
                system4.interval_instructions * db4.record(app_result.app, pid).epi_at(base)
                for pid in seq
            )
            assert app_result.energy_nj == pytest.approx(expect, rel=1e-9)

    def test_baseline_vs_itself_no_savings_no_violations(self, system4, db4):
        a = simulate_workload(system4, db4, self._workload(), max_slices=10)
        b = simulate_workload(system4, db4, self._workload(), max_slices=10)
        cmp = compare_runs(a, b)
        assert cmp.savings_pct == pytest.approx(0.0, abs=1e-9)
        assert cmp.n_violations == 0

    def test_interval_samples_zero_violation_under_baseline(self, system4, db4):
        run = simulate_workload(system4, db4, self._workload(), max_slices=10)
        stats = interval_violation_stats(run.interval_samples)
        assert stats["probability"] == pytest.approx(0.0)

    def test_deterministic(self, system4, db4):
        wl = self._workload()
        a = simulate_workload(system4, db4, wl, rm2_combined(), max_slices=10)
        b = simulate_workload(system4, db4, wl, rm2_combined(), max_slices=10)
        assert a.total_energy_nj == pytest.approx(b.total_energy_nj, rel=1e-12)
        assert a.max_time_ns == pytest.approx(b.max_time_ns, rel=1e-12)

    def test_manager_invoked_once_per_interval(self, system4, db4):
        run = simulate_workload(system4, db4, self._workload(), rm2_combined(), max_slices=8)
        # every completed interval invokes the manager; restarted apps add more
        assert run.rma_invocations >= 4 * 8

    def test_dvfs_only_never_moves_ways(self, system4, db4):
        wl = self._workload()
        mgr = dvfs_only()
        sim = RMASimulator(system4, db4, wl, mgr, max_slices=8)
        orig_apply = sim._apply

        def checked_apply(allocations):
            for alloc in allocations.values():
                assert alloc.ways == system4.baseline_ways
            orig_apply(allocations)

        sim._apply = checked_apply
        sim.run()

    def test_rm1_never_moves_frequency_or_core(self, system4, db4):
        wl = self._workload()
        mgr = rm1_partitioning_only()
        sim = RMASimulator(system4, db4, wl, mgr, max_slices=8)
        orig_apply = sim._apply

        def checked_apply(allocations):
            for alloc in allocations.values():
                assert alloc.freq == system4.baseline_freq_index
                assert alloc.core == system4.baseline_core_index
            orig_apply(allocations)

        sim._apply = checked_apply
        sim.run()

    def test_ways_always_sum_to_associativity(self, system4, db4):
        wl = self._workload()
        mgr = rm3_core_adaptive()
        sim = RMASimulator(system4, db4, wl, mgr, max_slices=8)
        orig_apply = sim._apply
        seen = []

        def checked_apply(allocations):
            orig_apply(allocations)
            seen.append(sum(c.alloc.ways for c in sim.cores))

        sim._apply = checked_apply
        sim.run()
        assert seen and all(s == system4.llc.ways for s in seen)

    def test_workload_size_mismatch(self, system4, db4):
        with pytest.raises(ValueError):
            RMASimulator(
                system4, db4, Workload(name="bad", apps=("mcf_like",) * 3),
                StaticBaselineManager(),
            )

    def test_unknown_app_rejected(self, system4, db4):
        with pytest.raises(ValueError):
            RMASimulator(
                system4, db4, Workload(name="bad", apps=("unknown",) * 4),
                StaticBaselineManager(),
            )

    def test_max_slices_truncates(self, system4, db4):
        short = simulate_workload(system4, db4, self._workload(), max_slices=5)
        longer = simulate_workload(system4, db4, self._workload(), max_slices=10)
        assert short.max_time_ns < longer.max_time_ns
        assert all(a.intervals == 5 for a in short.apps)

    def test_8core(self, system8, db8):
        wl = Workload(
            name="t8",
            apps=("mcf_like", "soplex_like", "libquantum_like", "povray_like",
                  "lbm_like", "namd_like", "astar_like", "mcf_like"),
        )
        base = simulate_workload(system8, db8, wl, max_slices=6)
        run = simulate_workload(system8, db8, wl, rm2_combined(), max_slices=6)
        cmp = compare_runs(base, run)
        assert np.isfinite(cmp.savings_pct)
