"""Tests for the synthetic address-trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.address_gen import STREAM_BASE, AccessTrace, generate_trace
from tests.test_phases import make_spec


class TestGenerateTrace:
    def test_shapes_and_counts(self):
        trace = generate_trace(make_spec(), nsets=8, accesses_per_set=100)
        assert trace.n_accesses == 800
        assert trace.set_ids.shape == trace.line_ids.shape == trace.instr_pos.shape

    def test_determinism(self):
        a = generate_trace(make_spec(), 8, 50, seed_parts=("b", 0))
        b = generate_trace(make_spec(), 8, 50, seed_parts=("b", 0))
        np.testing.assert_array_equal(a.line_ids, b.line_ids)
        np.testing.assert_array_equal(a.instr_pos, b.instr_pos)

    def test_seed_parts_differentiate(self):
        a = generate_trace(make_spec(), 8, 50, seed_parts=("b", 0))
        b = generate_trace(make_spec(), 8, 50, seed_parts=("b", 1))
        assert not np.array_equal(a.line_ids, b.line_ids)

    def test_sets_in_range(self):
        trace = generate_trace(make_spec(), nsets=8, accesses_per_set=100)
        assert trace.set_ids.min() >= 0
        assert trace.set_ids.max() < 8

    def test_streaming_lines_never_reused(self):
        trace = generate_trace(make_spec(streaming_frac=0.5), 4, 200)
        stream = trace.line_ids[trace.line_ids >= STREAM_BASE]
        assert len(stream) > 0
        assert len(np.unique(stream)) == len(stream)

    def test_streaming_fraction_approximate(self):
        trace = generate_trace(make_spec(streaming_frac=0.4), 8, 500)
        frac = float(np.mean(trace.line_ids >= STREAM_BASE))
        assert 0.33 < frac < 0.47

    def test_working_set_lines_bounded(self):
        spec = make_spec(working_sets=((4, 0.6), (10, 0.4)), streaming_frac=0.0)
        trace = generate_trace(spec, 4, 200)
        assert trace.line_ids.max() < 14  # 4 + 10 pooled lines

    def test_instr_positions_increasing(self):
        trace = generate_trace(make_spec(), 4, 100)
        assert np.all(np.diff(trace.instr_pos) > 0)

    def test_apki_matches_spec(self):
        spec = make_spec(apki=25.0)
        trace = generate_trace(spec, 16, 500)
        apki = trace.n_accesses / trace.instructions * 1000.0
        assert apki == pytest.approx(25.0, rel=0.1)

    def test_chain_ids_monotone_nondecreasing(self):
        trace = generate_trace(make_spec(), 4, 100)
        assert np.all(np.diff(trace.chain_ids) >= 0)

    def test_chain_break_rate(self):
        # streaming accesses always start a chain; use a pure-pool trace
        spec = make_spec(chain_break_prob=0.2, streaming_frac=0.0)
        trace = generate_trace(spec, 8, 500)
        breaks = trace.chain_ids[-1] + 1
        rate = breaks / trace.n_accesses
        assert 0.15 < rate < 0.25

    def test_streaming_accesses_always_break_chains(self):
        spec = make_spec(chain_break_prob=0.0, streaming_frac=0.5)
        trace = generate_trace(spec, 8, 300)
        from repro.workloads.address_gen import STREAM_BASE
        stream_idx = np.flatnonzero(trace.line_ids >= STREAM_BASE)
        stream_idx = stream_idx[stream_idx > 0]
        before = trace.chain_ids[stream_idx - 1]
        at = trace.chain_ids[stream_idx]
        assert np.all(at > before)


class TestRestrictToSets:
    def test_subset_and_instructions_preserved(self):
        trace = generate_trace(make_spec(), nsets=8, accesses_per_set=100)
        sub = trace.restrict_to_sets(2)
        assert sub.set_ids.max() < 2
        assert sub.instructions == trace.instructions
        assert 0 < sub.n_accesses < trace.n_accesses

    def test_sampled_fraction(self):
        trace = generate_trace(make_spec(), nsets=16, accesses_per_set=200)
        sub = trace.restrict_to_sets(4)
        frac = sub.n_accesses / trace.n_accesses
        assert 0.2 < frac < 0.3  # expect ~4/16

    def test_column_consistency(self):
        with pytest.raises(ValueError):
            AccessTrace(
                set_ids=np.zeros(2, dtype=np.int32),
                line_ids=np.zeros(3, dtype=np.int64),
                instr_pos=np.zeros(2),
                chain_ids=np.zeros(2, dtype=np.int64),
                instructions=10.0,
            )
