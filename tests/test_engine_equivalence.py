"""Golden equivalence suite for the layered simulation kernel.

The engine refactor (:mod:`repro.simulation.engine`) must be *bit-identical*
to the frozen pre-refactor reference (:mod:`repro.simulation.legacy_sim`):
same event ordering, same float arithmetic, same `RunResult` numbers.  This
suite replays representative fixed workloads and all four dynamic-scenario
shapes (the S1-S4 generators) through both implementations, serial and
multi-process, and compares with ``==`` -- no tolerances.

It also unit-tests the incremental scheduler's invalidation protocol: a
core's cached completion state must be recomputed after an allocation
change, a tenant swap, a departure, and a slack change.

The second golden axis is the *manager pipeline*: the batched/incremental
coordinated-manager path (``incremental=True`` -- stacked curve
construction, curve memoization, persistent reduction tree) must be
bit-identical to the recompute-everything reference path
(``incremental=False``) across RM1/RM2/RM3/dvfs-only, fixed workloads and
all four scenario shapes, serial and spawn-multiprocess -- including the
metered RMA instruction counts, which model the paper's always-recomputing
on-line algorithm.
"""

from __future__ import annotations

import math

import pytest

from repro.config import Allocation
from repro.core.history import rm2_history, rm3_history
from repro.core.managers import (
    StaticBaselineManager,
    dvfs_only,
    rm1_partitioning_only,
    rm2_combined,
    rm3_core_adaptive,
)
from repro.experiments.runner import BASELINE, RM2, ExperimentContext, ManagerSpec
from repro.scenarios import (
    ScenarioEvent,
    burst_load,
    churn,
    cluster_churn,
    poisson_arrivals,
    qos_ramp,
)
from repro.simulation.legacy_sim import LegacyRMASimulator
from repro.simulation.rma_sim import RMASimulator
from repro.workloads.mixes import Workload
from tests.conftest import TEST_BENCHMARKS

MANAGERS = [
    ("baseline", StaticBaselineManager),
    ("rm1", rm1_partitioning_only),
    ("rm2", rm2_combined),
    ("rm3", rm3_core_adaptive),
]

#: (generator, kwargs) covering the S1..S4 scenario shapes.
SCENARIO_SHAPES = [
    ("s1-poisson", poisson_arrivals, {"rate_per_interval": 0.35}),
    ("s2-qos-ramp", qos_ramp, {}),
    ("s3-churn", churn, {"cycles": 4}),
    ("s4-burst", burst_load, {}),
]


def assert_bit_identical(a, b) -> None:
    """RunResult equality with ``==`` on every number -- no tolerances."""
    assert a.workload == b.workload and a.manager == b.manager
    assert a.rma_invocations == b.rma_invocations
    assert a.rma_instructions == b.rma_instructions
    assert len(a.apps) == len(b.apps)
    for x, y in zip(a.apps, b.apps):
        assert (x.app, x.core, x.intervals, x.slack) == (y.app, y.core, y.intervals, y.slack)
        assert x.time_ns == y.time_ns
        assert x.energy_nj == y.energy_nj
    assert len(a.interval_samples) == len(b.interval_samples)
    for x, y in zip(a.interval_samples, b.interval_samples):
        assert x == y


def _wl4() -> Workload:
    return Workload(
        name="gold4",
        apps=("mcf_like", "soplex_like", "libquantum_like", "povray_like"),
    )


class TestGoldenFixedWorkloads:
    @pytest.mark.parametrize("label,factory", MANAGERS, ids=[m[0] for m in MANAGERS])
    def test_4core(self, system4, db4, label, factory):
        old = LegacyRMASimulator(system4, db4, _wl4(), factory(), max_slices=6).run()
        new = RMASimulator(system4, db4, _wl4(), factory(), max_slices=6).run()
        assert_bit_identical(old, new)

    def test_4core_with_slack(self, system4, db4):
        wl = _wl4().with_slack(0.2)
        old = LegacyRMASimulator(system4, db4, wl, rm2_combined(), max_slices=6).run()
        new = RMASimulator(system4, db4, wl, rm2_combined(), max_slices=6).run()
        assert_bit_identical(old, new)

    def test_8core(self, system8, db8):
        wl = Workload(name="gold8", apps=tuple(TEST_BENCHMARKS[:7]) + ("mcf_like",))
        old = LegacyRMASimulator(system8, db8, wl, rm2_combined(), max_slices=4).run()
        new = RMASimulator(system8, db8, wl, rm2_combined(), max_slices=4).run()
        assert_bit_identical(old, new)


class TestGoldenScenarios:
    @pytest.mark.parametrize(
        "label,gen,kwargs", SCENARIO_SHAPES, ids=[s[0] for s in SCENARIO_SHAPES]
    )
    @pytest.mark.parametrize("manager", [StaticBaselineManager, rm2_combined])
    def test_scenario_shapes(self, system4, db4, label, gen, kwargs, manager):
        sc = gen(label, 4, TEST_BENCHMARKS, horizon_intervals=24, seed=3, **kwargs)
        old = LegacyRMASimulator(
            system4, db4, sc.workload, manager(), max_slices=6, scenario=sc
        ).run()
        new = RMASimulator(
            system4, db4, sc.workload, manager(), max_slices=6, scenario=sc
        ).run()
        assert_bit_identical(old, new)

    def test_8core_scenario(self, system8, db8):
        sc = poisson_arrivals("gold8-s1", 8, TEST_BENCHMARKS,
                              horizon_intervals=32, seed=1)
        old = LegacyRMASimulator(
            system8, db8, sc.workload, rm2_combined(), max_slices=4, scenario=sc
        ).run()
        new = RMASimulator(
            system8, db8, sc.workload, rm2_combined(), max_slices=4, scenario=sc
        ).run()
        assert_bit_identical(old, new)

    def test_64core_scenario(self, system64, db64):
        """Many-core golden run: the struct-of-arrays hot path (vectorised
        advance + masked argmin), the clustered-manager grouped refreshes
        and the shared curve memo must stay bit-identical to the frozen
        reference at the scale they were built for."""
        sc = cluster_churn("gold64-s5", 64, TEST_BENCHMARKS, cluster_size=8,
                           cycles=8, horizon_intervals=96, seed=2)
        for factory in (
            StaticBaselineManager,
            rm2_combined,
            lambda: rm2_combined(cluster_size=8),
        ):
            old = LegacyRMASimulator(
                system64, db64, sc.workload, factory(), max_slices=4, scenario=sc
            ).run()
            new = RMASimulator(
                system64, db64, sc.workload, factory(), max_slices=4, scenario=sc
            ).run()
            assert_bit_identical(old, new)


class TestGoldenMultiprocess:
    def test_serial_and_parallel_match_legacy(self, system4, db4):
        """Engine results are bit-identical to the legacy reference both when
        run serially and when fanned out over worker processes."""
        ctx = ExperimentContext(system=system4, db=db4, max_slices=6)
        scenarios = [
            poisson_arrivals("mp-p", 4, TEST_BENCHMARKS, horizon_intervals=24, seed=0),
            churn("mp-c", 4, TEST_BENCHMARKS, cycles=4, horizon_intervals=24, seed=0),
        ]
        golden = {
            (sc.name, spec.name): LegacyRMASimulator(
                system4, db4, sc.workload, spec.build(), max_slices=6, scenario=sc
            ).run()
            for sc in scenarios
            for spec in (BASELINE, RM2)
        }
        serial = ctx.run_scenarios(scenarios, [BASELINE, RM2], processes=1)
        parallel = ctx.run_scenarios(scenarios, [BASELINE, RM2], processes=2)
        assert set(serial) == set(parallel) == set(golden)
        for key in golden:
            assert_bit_identical(golden[key], serial[key])
            assert_bit_identical(golden[key], parallel[key])


#: Every coordinated-manager restriction the papers evaluate, plus the
#: history-aware extension (which overrides curve construction and must
#: bypass the curve memo while still using the incremental tree).
PIPELINE_MANAGERS = [
    ("rm1", rm1_partitioning_only),
    ("rm2", rm2_combined),
    ("rm3", rm3_core_adaptive),
    ("dvfs-only", dvfs_only),
    ("rm2-history", rm2_history),
    ("rm3-history", rm3_history),
]

#: Subset whose factories take ``oracle=`` (history managers do not --
#: oracle mode replaces the very curve construction they extend).
ORACLE_MANAGERS = PIPELINE_MANAGERS[:4]


class TestManagerPipelineEquivalence:
    """Batched/incremental manager pipeline vs the reference pipeline."""

    @pytest.mark.parametrize(
        "label,factory", PIPELINE_MANAGERS, ids=[m[0] for m in PIPELINE_MANAGERS]
    )
    def test_fixed_workload(self, system4, db4, label, factory):
        ref = RMASimulator(
            system4, db4, _wl4(), factory(incremental=False), max_slices=6
        ).run()
        inc = RMASimulator(
            system4, db4, _wl4(), factory(incremental=True), max_slices=6
        ).run()
        assert_bit_identical(ref, inc)

    @pytest.mark.parametrize(
        "label,factory", ORACLE_MANAGERS, ids=[m[0] for m in ORACLE_MANAGERS]
    )
    def test_fixed_workload_oracle(self, system4, db4, label, factory):
        """The oracle ("perfect models") path batches every active core."""
        ref = RMASimulator(
            system4, db4, _wl4(), factory(oracle=True, incremental=False), max_slices=6
        ).run()
        inc = RMASimulator(
            system4, db4, _wl4(), factory(oracle=True, incremental=True), max_slices=6
        ).run()
        assert_bit_identical(ref, inc)

    @pytest.mark.parametrize(
        "slabel,gen,kwargs", SCENARIO_SHAPES, ids=[s[0] for s in SCENARIO_SHAPES]
    )
    @pytest.mark.parametrize(
        "mlabel,factory", PIPELINE_MANAGERS, ids=[m[0] for m in PIPELINE_MANAGERS]
    )
    def test_scenario_shapes(self, system4, db4, slabel, gen, kwargs, mlabel, factory):
        """S1-S4 exercise the memo/tree splice paths: arrivals, departures,
        tenant swaps and QoS ramps must never serve a stale curve."""
        sc = gen(slabel, 4, TEST_BENCHMARKS, horizon_intervals=24, seed=3, **kwargs)
        ref = RMASimulator(
            system4, db4, sc.workload, factory(incremental=False),
            max_slices=6, scenario=sc,
        ).run()
        inc = RMASimulator(
            system4, db4, sc.workload, factory(incremental=True),
            max_slices=6, scenario=sc,
        ).run()
        assert_bit_identical(ref, inc)

    @pytest.mark.parametrize(
        "slabel,gen,kwargs", SCENARIO_SHAPES, ids=[s[0] for s in SCENARIO_SHAPES]
    )
    def test_scenario_shapes_oracle(self, system4, db4, slabel, gen, kwargs):
        """Scenario events must also never stale the oracle memo (keyed on
        phase identity + slack) or the batched bridge reads."""
        sc = gen(slabel, 4, TEST_BENCHMARKS, horizon_intervals=24, seed=3, **kwargs)
        ref = RMASimulator(
            system4, db4, sc.workload, rm2_combined(oracle=True, incremental=False),
            max_slices=6, scenario=sc,
        ).run()
        inc = RMASimulator(
            system4, db4, sc.workload, rm2_combined(oracle=True, incremental=True),
            max_slices=6, scenario=sc,
        ).run()
        assert_bit_identical(ref, inc)

    def test_8core_scenario(self, system8, db8):
        sc = poisson_arrivals("pipe8-s1", 8, TEST_BENCHMARKS,
                              horizon_intervals=32, seed=1)
        ref = RMASimulator(
            system8, db8, sc.workload, rm2_combined(incremental=False),
            max_slices=4, scenario=sc,
        ).run()
        inc = RMASimulator(
            system8, db8, sc.workload, rm2_combined(incremental=True),
            max_slices=4, scenario=sc,
        ).run()
        assert_bit_identical(ref, inc)

    def test_serial_and_spawn_multiprocess(self, system4, db4):
        """Both pipelines agree under serial and spawn-multiprocess fan-out
        (spawn workers inherit nothing: manager state -- memo, reduction
        tree -- must be rebuilt per run, not leaked across them)."""
        import multiprocessing as mp

        from repro.experiments.runner import _init_worker, _run_one_scenario
        from repro.util.parallel import parallel_map

        if "spawn" not in mp.get_all_start_methods():
            pytest.skip("platform has no spawn start method")
        ctx = ExperimentContext(system=system4, db=db4, max_slices=6,
                                results_store=None)
        scenarios = [
            poisson_arrivals("pp-p", 4, TEST_BENCHMARKS, horizon_intervals=24, seed=0),
            qos_ramp("pp-q", 4, TEST_BENCHMARKS, horizon_intervals=24, seed=0),
        ]
        ref_spec = ManagerSpec(kind="coordinated", name="rm2-combined",
                               incremental=False)
        serial_ref = ctx.run_scenarios(scenarios, [ref_spec], processes=1)
        serial_inc = ctx.run_scenarios(scenarios, [RM2], processes=1)
        tasks = [(sc, RM2, 6) for sc in scenarios]
        spawn_inc = parallel_map(
            _run_one_scenario, tasks, processes=2,
            initializer=_init_worker, initargs=(ctx,),
            start_method="spawn",
        )
        for sc, spawned in zip(scenarios, spawn_inc):
            ref = serial_ref[(sc.name, "rm2-combined")]
            assert_bit_identical(ref, serial_inc[(sc.name, "rm2-combined")])
            assert_bit_identical(ref, spawned)


class TestSchedulerInvalidation:
    def _sim(self, system4, db4, scenario=None):
        wl = _wl4() if scenario is None else scenario.workload
        return RMASimulator(
            system4, db4, wl, StaticBaselineManager(), max_slices=6, scenario=scenario
        )

    def test_alloc_change_recomputes_completion_time(self, system4, db4):
        sim = self._sim(system4, db4)
        sched = sim.scheduler
        before = sched.remaining_ns(0)
        assert sched.is_valid(0)
        base = system4.baseline_allocation()
        grown = Allocation(core=base.core, freq=base.freq, ways=base.ways + 1)
        shrunk = Allocation(core=base.core, freq=base.freq, ways=base.ways - 1)
        sim._apply({0: grown, 1: shrunk})
        assert not sched.is_valid(0) and not sched.is_valid(1)
        after = sched.remaining_ns(0)
        # recomputed against the new allocation's tpi grid (plus the
        # transition stall the reconfiguration charged)
        rec = db4.record(sim.cores[0].app, sim.cores[0].seq[0])
        expect = sim.cores[0].pending_stall_ns + (
            system4.interval_instructions * rec.tpi_at(grown)
        )
        assert after == expect
        assert after != before
        assert sched.tpi(0) == rec.tpi_at(grown)

    def test_swap_recomputes_completion_time(self, system4, db4):
        sim = self._sim(system4, db4)
        sched = sim.scheduler
        sched.remaining_ns(2)
        assert sched.is_valid(2)
        ev = ScenarioEvent(time_ns=0.0, core=2, kind="swap", app="namd_like")
        sim.tenancy.apply_event(sim.cores[2], ev, now=0.0)
        assert not sched.is_valid(2)
        rec = db4.record("namd_like", db4.phase_sequence("namd_like")[0])
        assert sched.tpi(2) == rec.tpi_at(sim.cores[2].alloc)
        # the warm-up stall the swap charged is part of the completion time
        assert sched.remaining_ns(2) > system4.interval_instructions * sched.tpi(2)

    def test_depart_invalidates_and_idles(self, system4, db4):
        sim = self._sim(system4, db4)
        sched = sim.scheduler
        assert math.isfinite(sched.remaining_ns(1))
        ev = ScenarioEvent(time_ns=0.0, core=1, kind="depart")
        sim.tenancy.apply_event(sim.cores[1], ev, now=0.0)
        assert not sched.is_valid(1)
        assert sched.remaining_ns(1) == math.inf
        # next_completion never picks the idle core
        j, _ = sched.next_completion()
        assert j != 1

    def test_slack_event_invalidates(self, system4, db4):
        sim = self._sim(system4, db4)
        sched = sim.scheduler
        before = sched.remaining_ns(3)
        assert sched.is_valid(3)
        ev = ScenarioEvent(time_ns=0.0, core=3, kind="slack", slack=0.3)
        sim.tenancy.apply_event(sim.cores[3], ev, now=0.0)
        assert not sched.is_valid(3)
        assert sim.bridge.slack(3) == 0.3
        # slack does not change execution speed: the recomputation is a no-op
        assert sched.remaining_ns(3) == before

    def test_manager_attached_to_bridge(self, system4, db4):
        """Managers are driven through the bridge, not the kernel itself."""
        mgr = rm2_combined()
        sim = self._sim(system4, db4)
        sim.manager = mgr
        sim.tenancy.manager = mgr
        run = sim.run()
        assert mgr.sim is sim.bridge
        assert run.rma_invocations > 0
