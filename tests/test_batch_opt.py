"""Bit-identity of the batched curve-construction pipeline.

Every function in :mod:`repro.core.batch_opt` (and the batched prediction
kernels it drives) must equal the per-core loop it replaces with ``==`` on
every number -- same elementwise expressions, same argmin tie-breaking,
same metered charges.  The memoization tests pin the staleness contract:
a hit may only be served while the digest key -- counter snapshot, sampled
ATD curves, QoS slack -- is unchanged, so QoS ramps and tenant swaps always
recompute.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import Allocation
from repro.core.batch_opt import analytical_curves_batch, oracle_curves_batch
from repro.core.energy_model import predict_epi_grid, predict_epi_grid_batch
from repro.core.local_opt import DimSpec, local_optimize
from repro.core.managers import rm2_combined
from repro.core.models import MLP_MODELS
from repro.core.overhead_meter import OverheadMeter
from repro.core.perf_model import (
    exec_cpi_estimate,
    exec_cpi_estimate_batch,
    predict_tpi_grid,
    predict_tpi_grid_batch,
)
from repro.core.qos import qos_target_tpi
from repro.cpu.counters import observe_counters
from tests.conftest import TEST_BENCHMARKS


def _stats(system, db, seed, n):
    """(records, snapshots) for ``n`` cores at varied phases/allocations."""
    rng = np.random.default_rng(seed)
    recs, snaps = [], []
    for _ in range(n):
        bench = TEST_BENCHMARKS[rng.integers(len(TEST_BENCHMARKS))]
        seq = db.phase_sequence(bench)
        rec = db.record(bench, seq[rng.integers(len(seq))])
        alloc = Allocation(
            core=int(rng.integers(system.ncore_sizes)),
            freq=int(rng.integers(system.vf.nlevels)),
            ways=int(rng.integers(1, system.llc.ways + 1)),
        )
        recs.append(rec)
        snaps.append(observe_counters(system, rec, alloc))
    return recs, snaps


DIMS_CASES = [
    ("rm1", DimSpec(core_indices=(1,), freq_indices=(12,))),
    ("rm2", DimSpec(core_indices=(1,))),
    ("rm3", DimSpec()),
    ("dvfs-only", DimSpec(core_indices=(1,), pin_ways=4)),
]


class TestBatchedPredictions:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 8))
    def test_exec_cpi_rows_equal_scalar(self, system4, db4, seed, n):
        _, snaps = _stats(system4, db4, seed, n)
        batch = exec_cpi_estimate_batch(system4, snaps)
        for i, snap in enumerate(snaps):
            assert np.array_equal(batch[i], exec_cpi_estimate(system4, snap))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 8))
    def test_tpi_and_epi_slices_equal_scalar(self, system4, db4, seed, n):
        recs, snaps = _stats(system4, db4, seed, n)
        model = MLP_MODELS["model3"]
        mpki_batch = np.stack([np.asarray(r.mpki_sampled, dtype=float) for r in recs])
        mlp_batch = np.stack(
            [model.mlp_hat(system4, s, r.mlp_sampled) for s, r in zip(snaps, recs)]
        )
        tpi_batch = predict_tpi_grid_batch(system4, snaps, mpki_batch, mlp_batch)
        epi_batch = predict_epi_grid_batch(system4, snaps, mpki_batch, tpi_batch)
        for i, (rec, snap) in enumerate(zip(recs, snaps)):
            mlp_hat = model.mlp_hat(system4, snap, rec.mlp_sampled)
            tpi = predict_tpi_grid(system4, snap, rec.mpki_sampled, mlp_hat)
            assert np.array_equal(tpi_batch[i], tpi)
            epi = predict_epi_grid(system4, snap, rec.mpki_sampled, tpi)
            assert np.array_equal(epi_batch[i], epi)


def assert_same_curves(batched, looped):
    assert len(batched) == len(looped)
    for a, b in zip(batched, looped):
        assert a.core_id == b.core_id
        assert np.array_equal(a.epi, b.epi)
        assert np.array_equal(a.freq_idx, b.freq_idx)
        assert np.array_equal(a.core_idx, b.core_idx)


class TestBatchedCurves:
    @pytest.mark.parametrize("label,dims", DIMS_CASES, ids=[d[0] for d in DIMS_CASES])
    def test_analytical_batch_equals_loop(self, system4, db4, label, dims):
        model = MLP_MODELS["model2"]
        recs, snaps = _stats(system4, db4, seed=7, n=6)
        slacks = [0.0, 0.1, 0.0, 0.2, 0.0, 0.05]
        meter_b, meter_l = OverheadMeter(), OverheadMeter()

        batched = analytical_curves_batch(
            system4, model, list(range(6)), snaps,
            [r.mpki_sampled for r in recs], [r.mlp_sampled for r in recs],
            slacks, dims, meter_b,
        )
        looped = []
        for j, (rec, snap) in enumerate(zip(recs, snaps)):
            mlp_hat = model.mlp_hat(system4, snap, rec.mlp_sampled)
            tpi = predict_tpi_grid(system4, snap, rec.mpki_sampled, mlp_hat)
            epi = predict_epi_grid(system4, snap, rec.mpki_sampled, tpi)
            target = qos_target_tpi(system4, tpi, slacks[j])
            looped.append(
                local_optimize(system4, j, tpi, epi, target, dims, meter_l)
            )
        assert_same_curves(batched, looped)
        assert meter_b.grid_points == meter_l.grid_points
        assert meter_b.instructions == meter_l.instructions

    def test_oracle_batch_equals_loop(self, system4, db4):
        recs, _ = _stats(system4, db4, seed=11, n=5)
        slacks = [0.0, 0.1, 0.0, 0.0, 0.3]
        dims = DimSpec(core_indices=(1,))
        meter_b, meter_l = OverheadMeter(), OverheadMeter()
        batched = oracle_curves_batch(
            system4, list(range(5)), recs, slacks, dims, meter_b
        )
        looped = [
            local_optimize(
                system4, j, rec.tpi, rec.epi,
                qos_target_tpi(system4, rec.tpi, slacks[j]), dims, meter_l,
            )
            for j, rec in enumerate(recs)
        ]
        assert_same_curves(batched, looped)
        assert meter_b.instructions == meter_l.instructions

    def test_batch_curves_are_views_of_one_buffer(self, system4, db4):
        """The batch path hands out row *views*, not per-row copies.

        Each returned curve's arrays must alias one shared batch output
        (``N`` rows, one allocation) -- the copy-free contract the packed
        reduction's ingest relies on -- while staying value-identical to
        the scalar path row by row.
        """
        from repro.core.local_opt import local_optimize_batch

        model = MLP_MODELS["model2"]
        recs, snaps = _stats(system4, db4, seed=29, n=5)
        mpki = np.stack([np.asarray(r.mpki_sampled, dtype=float) for r in recs])
        mlp = np.stack(
            [model.mlp_hat(system4, s, r.mlp_sampled) for s, r in zip(snaps, recs)]
        )
        tpi = predict_tpi_grid_batch(system4, snaps, mpki, mlp)
        epi = predict_epi_grid_batch(system4, snaps, mpki, tpi)
        targets = np.array([
            qos_target_tpi(system4, t, 0.0) for t in tpi
        ])
        dims = DimSpec(core_indices=(1,))
        curves = local_optimize_batch(
            system4, list(range(5)), tpi, epi, targets, dims
        )
        epi_base = curves[0].epi.base
        assert epi_base is not None  # a view, not an owning copy
        for i, c in enumerate(curves):
            assert c.epi.base is epi_base
            assert c.freq_idx.base is curves[0].freq_idx.base
            assert c.core_idx.base is curves[0].core_idx.base
            want = local_optimize(
                system4, i, tpi[i], epi[i], float(targets[i]), dims
            )
            assert_same_curves([c], [want])

    def test_per_core_pins_equal_loop(self, system4, db4):
        """The UCP+DVFS manager's per-core fixed partitions."""
        model = MLP_MODELS["model2"]
        recs, snaps = _stats(system4, db4, seed=13, n=4)
        pins = [2, 4, 7, 3]
        base = DimSpec(core_indices=(system4.baseline_core_index,))
        batched = analytical_curves_batch(
            system4, model, list(range(4)), snaps,
            [r.mpki_sampled for r in recs], [r.mlp_sampled for r in recs],
            [0.0] * 4, base, None, pin_ways_per_core=pins,
        )
        for j, (rec, snap) in enumerate(zip(recs, snaps)):
            mlp_hat = model.mlp_hat(system4, snap, rec.mlp_sampled)
            tpi = predict_tpi_grid(system4, snap, rec.mpki_sampled, mlp_hat)
            epi = predict_epi_grid(system4, snap, rec.mpki_sampled, tpi)
            target = qos_target_tpi(system4, tpi, 0.0)
            dims = DimSpec(
                core_indices=(system4.baseline_core_index,), pin_ways=pins[j]
            )
            want = local_optimize(system4, j, tpi, epi, target, dims)
            assert_same_curves([batched[j]], [want])
            assert np.isfinite(batched[j].epi).sum() <= 1


class _StubSim:
    """Minimal manager-facing simulator surface for direct manager tests."""

    def __init__(self, system, recs, snaps, slacks):
        self.system = system
        self.recs = list(recs)
        self.snaps = list(snaps)
        self.slacks = list(slacks)

    def slack(self, core_id):
        return self.slacks[core_id]

    def is_active(self, core_id):
        return True

    def completed_snapshot(self, core_id):
        return self.snaps[core_id]

    def completed_record(self, core_id):
        return self.recs[core_id]


class TestCurveMemoization:
    def _managers(self, system4, db4, slacks):
        recs, snaps = _stats(system4, db4, seed=21, n=system4.ncores)
        inc, ref = rm2_combined(incremental=True), rm2_combined(incremental=False)
        inc.attach(_StubSim(system4, recs, snaps, slacks))
        ref.attach(_StubSim(system4, recs, snaps, slacks))
        return inc, ref

    @staticmethod
    def _assert_same_decision(inc, ref, core_id):
        got, want = inc.on_interval(core_id), ref.on_interval(core_id)
        assert got == want
        assert inc.meter.instructions == ref.meter.instructions
        assert inc.meter.grid_points == ref.meter.grid_points
        assert inc.meter.dp_cells == ref.meter.dp_cells

    def test_stable_stats_hit_the_memo(self, system4, db4):
        inc, ref = self._managers(system4, db4, [0.0] * 4)
        self._assert_same_decision(inc, ref, 0)
        first = inc.curves[0]
        assert len(inc._memo) == 1
        # Same snapshot and slack again: the memo serves the same object and
        # replays the modelled grid charge.
        self._assert_same_decision(inc, ref, 0)
        assert inc.curves[0] is first

    def test_qos_ramp_invalidates_the_memo(self, system4, db4):
        """A slack change is part of the digest key: the post-ramp decision
        must recompute (never serve the pre-ramp curve) and still equal the
        recomputing reference bit for bit."""
        inc, ref = self._managers(system4, db4, [0.0] * 4)
        self._assert_same_decision(inc, ref, 0)
        pre_ramp = inc.curves[0]
        inc.sim.slacks[0] = 0.3
        ref.sim.slacks[0] = 0.3
        self._assert_same_decision(inc, ref, 0)
        assert inc.curves[0] is not pre_ramp
        assert not pre_ramp.same_curve(inc.curves[0])
        assert len(inc._memo) == 2  # pre- and post-ramp keys coexist
        # Ramping back restores the original curve from the memo.
        inc.sim.slacks[0] = 0.0
        ref.sim.slacks[0] = 0.0
        self._assert_same_decision(inc, ref, 0)
        assert inc.curves[0] is pre_ramp

    def test_scenario_event_drops_held_curves(self, system4, db4):
        inc, ref = self._managers(system4, db4, [0.0] * 4)
        self._assert_same_decision(inc, ref, 0)
        self._assert_same_decision(inc, ref, 1)
        inc.on_scenario_event(0, "swap")
        ref.on_scenario_event(0, "swap")
        assert 0 not in inc.curves and 1 in inc.curves
        # The swapped core re-enters pinned until fresh statistics arrive.
        self._assert_same_decision(inc, ref, 1)
