"""Cross-cutting property tests on the optimisation and simulation invariants.

These pin down the algebraic properties the paper's algorithm relies on:
tree-shape invariance of the pairwise reduction, slack monotonicity of the
whole pipeline, and conservation laws in the RMA simulator.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import Allocation, default_system
from repro.core.curves import EnergyCurve
from repro.core.global_opt import global_optimize
from repro.core.managers import rm2_combined
from repro.simulation.metrics import compare_runs
from repro.simulation.overheads import transition_cost
from repro.simulation.rma_sim import RMASimulator, simulate_workload
from repro.workloads.mixes import Workload
from tests.test_optimizer import random_curve


class TestReductionTreeInvariance:
    """The optimum must not depend on the order curves are paired in."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(3, 6), st.integers(0, 10_000))
    def test_permutation_invariant_cost(self, ncores, seed):
        rng = np.random.default_rng(seed)
        ways = 8
        curves = [random_curve(rng, j, ways, feasible_prob=1.0) for j in range(ncores)]

        def total_cost(order):
            got = global_optimize([curves[i] for i in order], ways)
            return sum(curves[i].epi[got[i][2] - 1] for i in order)

        base = total_cost(list(range(ncores)))
        for _ in range(3):
            perm = list(rng.permutation(ncores))
            assert total_cost(perm) == pytest.approx(base)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_duplicated_curves_symmetric(self, seed):
        """Identical curves must receive cost-equivalent allocations."""
        rng = np.random.default_rng(seed)
        ways = 12
        proto = random_curve(rng, 0, ways, feasible_prob=1.0)
        curves = [
            EnergyCurve(j, proto.epi.copy(), proto.freq_idx.copy(), proto.core_idx.copy())
            for j in range(3)
        ]
        got = global_optimize(curves, ways)
        costs = sorted(proto.epi[got[j][2] - 1] for j in range(3))
        # swapping any two cores cannot improve: re-solve says same total
        total = sum(costs)
        got2 = global_optimize(curves[::-1], ways)
        total2 = sum(proto.epi[got2[j][2] - 1] for j in range(3))
        assert total == pytest.approx(total2)


class TestSimulatorConservation:
    WL = Workload(
        name="inv-mix", apps=("mcf_like", "soplex_like", "libquantum_like", "povray_like")
    )

    def test_time_monotone_in_slices(self, system4, db4):
        times = []
        for n in (5, 10, 20):
            run = simulate_workload(system4, db4, self.WL, max_slices=n)
            times.append(run.max_time_ns)
        assert times[0] < times[1] < times[2]

    def test_energy_positive_and_additive(self, system4, db4):
        run = simulate_workload(system4, db4, self.WL, rm2_combined(), max_slices=10)
        assert all(a.energy_nj > 0 for a in run.apps)
        assert run.total_energy_nj == pytest.approx(sum(a.energy_nj for a in run.apps))

    def test_interval_count_matches_trace(self, system4, db4):
        run = simulate_workload(system4, db4, self.WL, max_slices=12)
        for a in run.apps:
            assert a.intervals == 12

    def test_transition_costs_charged(self, system4, db4):
        """A manager that reconfigures must cost more than the overhead-free
        replay of the same decisions (stall time is nonnegative)."""
        mgr = rm2_combined()
        sim = RMASimulator(system4, db4, self.WL, mgr, max_slices=10)
        stalls = []
        orig = sim._apply

        def spy(allocations):
            orig(allocations)
            stalls.append(sum(c.pending_stall_ns for c in sim.cores))

        sim._apply = spy
        sim.run()
        assert any(s > 0 for s in stalls)

    def test_slack_monotone_end_to_end(self, system4, db4):
        base = simulate_workload(system4, db4, self.WL, max_slices=15)
        savings = []
        for slack in (0.0, 0.2, 0.4):
            wl = self.WL.with_slack(slack)
            run = simulate_workload(
                system4, db4, wl, rm2_combined(oracle=True), max_slices=15
            )
            savings.append(compare_runs(base, run).savings_pct)
        assert savings[0] <= savings[1] + 0.3
        assert savings[1] <= savings[2] + 0.3

    def test_oracle_never_violates_with_zero_slack(self, system4, db4):
        base = simulate_workload(system4, db4, self.WL, max_slices=15)
        run = simulate_workload(
            system4, db4, self.WL, rm2_combined(oracle=True), max_slices=15
        )
        assert compare_runs(base, run).n_violations == 0


class TestOverheadProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(0, 2), st.integers(0, 24), st.integers(1, 16),
        st.integers(0, 2), st.integers(0, 24), st.integers(1, 16),
    )
    def test_costs_nonnegative(self, c1, f1, w1, c2, f2, w2):
        system = default_system(4)
        f1, f2 = min(f1, system.vf.nlevels - 1), min(f2, system.vf.nlevels - 1)
        a, b = Allocation(c1, f1, w1), Allocation(c2, f2, w2)
        cost = transition_cost(system, a, b)
        assert cost.stall_ns >= 0.0
        assert cost.energy_nj >= 0.0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2), st.integers(0, 24), st.integers(1, 16))
    def test_identity_is_free(self, c, f, w):
        system = default_system(4)
        f = min(f, system.vf.nlevels - 1)
        a = Allocation(c, f, w)
        cost = transition_cost(system, a, a)
        assert cost.stall_ns == 0.0 and cost.energy_nj == 0.0
