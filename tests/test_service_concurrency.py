"""Deterministic concurrency harness for the scenario-replay service.

The acceptance contract of the service layer:

* **dedup storm** -- 8 concurrent identical submissions (in-process and
  over a real socket) trigger exactly *one* simulation (dedup counter
  asserted) and all 8 responses carry byte-identical result hashes;
* **mixed storm** -- a 16-job S1-S7 (+ FIXED) storm through the worker
  pool matches serial ``ExperimentContext``-style runs number-for-number;
* **crash** -- a worker crash mid-job surfaces a failed status (never a
  hang), leaves the pool serving, and a later identical submission
  retries cleanly;
* **in-flight hook** -- an executor that loses the
  :class:`InflightRegistry` claim race waits for the owner's result
  instead of simulating again.

Every wait is bounded, so a deadlock fails the suite instead of hanging
it.  The storms are deterministic: all randomness lives in the scenario
generators' content-keyed RNG streams, and the service path reuses the
library's replay machinery verbatim.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

import repro.service.pool as pool_mod
from repro.experiments.runner import RM2, ExperimentContext
from repro.scenarios.events import Scenario
from repro.service import ReplayService, build_item, job_spec_from_json, make_server
from repro.simulation.results_store import ResultsStore
from repro.simulation.rma_sim import simulate_scenario, simulate_workload
from tests.test_engine_equivalence import assert_bit_identical

MAX_SLICES = 5

#: Bound on every wait in this suite: generous on CI, fatal on deadlock.
WAIT_S = 240.0


def _factory(system4, db4, system16, db16, tmp_path):
    systems = {4: (system4, db4), 16: (system16, db16)}

    def factory(ncores):
        system, db = systems[ncores]
        return ExperimentContext(
            system=system, db=db, max_slices=MAX_SLICES,
            results_store=ResultsStore(str(tmp_path / "results")),
        )

    return factory


@pytest.fixture
def factory(system4, db4, system16, db16, tmp_path):
    return _factory(system4, db4, system16, db16, tmp_path)


def _s1_body(name="storm-s1", seed=0, manager=None) -> dict:
    return {
        "shape": "S1",
        "ncores": 4,
        "params": {"rate_per_interval": 0.25, "horizon_intervals": 16, "seed": seed},
        "manager": manager or {"kind": "coordinated", "name": "rm2-combined"},
        "name": name,
    }


class TestIdenticalSubmissionStorm:
    """8 concurrent identical submissions -> one simulation, one hash."""

    def test_eight_submissions_one_simulation(self, factory, monkeypatch):
        service = ReplayService(context_factory=factory, workers=4)
        try:
            # Hold the (single) simulation until every client has submitted,
            # so the dedup window genuinely overlaps the in-flight run.
            all_submitted = threading.Event()
            real = pool_mod._execute_replay

            def gated(ctx, item, manager):
                assert all_submitted.wait(WAIT_S)
                return real(ctx, item, manager)

            monkeypatch.setattr(pool_mod, "_execute_replay", gated)

            jobs, errors = [], []
            barrier = threading.Barrier(8)

            def client():
                try:
                    barrier.wait(WAIT_S)
                    jobs.append(service.submit(_s1_body()))
                except Exception as exc:  # surfaces in the main thread
                    errors.append(exc)

            threads = [threading.Thread(target=client) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(WAIT_S)
            assert not errors and len(jobs) == 8
            all_submitted.set()

            for job in jobs:
                assert job.wait(WAIT_S), "client response never settled"
                assert job.status == "done"
            # Exactly one simulation; the other 7 coalesced at submit time.
            assert service.simulations == 1
            assert service.dedup_hits == 7
            assert len({job.job_id for job in jobs}) == 1
            assert jobs[0].submissions == 8
            # All 8 responses carry byte-identical result hashes.
            hashes = {job.result_hash for job in jobs}
            assert len(hashes) == 1 and None not in hashes
            for job in jobs[1:]:
                assert_bit_identical(jobs[0].result, job.result)
        finally:
            service.close()

    def test_eight_http_clients_one_simulation(self, factory):
        service = ReplayService(context_factory=factory, workers=4)
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            body = json.dumps(_s1_body(name="storm-s1-http")).encode()
            responses, errors = [], []
            barrier = threading.Barrier(8)

            def client():
                try:
                    barrier.wait(WAIT_S)
                    req = urllib.request.Request(
                        base + "/jobs", data=body,
                        headers={"Content-Type": "application/json"},
                    )
                    with urllib.request.urlopen(req, timeout=WAIT_S) as resp:
                        responses.append(json.load(resp))
                except Exception as exc:
                    errors.append(exc)

            threads = [threading.Thread(target=client) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(WAIT_S)
            assert not errors and len(responses) == 8
            ids = {r["job_id"] for r in responses}
            assert len(ids) == 1
            job = service.get_job(ids.pop())
            assert job.wait(WAIT_S) and job.status == "done"
            assert service.simulations == 1
            # All 8 clients fetch byte-identical result hashes.
            hashes = set()
            for _ in range(8):
                with urllib.request.urlopen(
                    f"{base}/jobs/{job.job_id}/result", timeout=WAIT_S
                ) as resp:
                    hashes.add(json.load(resp)["result_hash"])
            assert hashes == {job.result_hash}
        finally:
            server.shutdown()
            server.server_close()
            service.close()


def _storm_bodies() -> list[dict]:
    """16 mixed jobs across every shape the service accepts."""
    rm2 = {"kind": "coordinated", "name": "rm2-combined"}
    base = {"kind": "baseline", "name": "baseline"}
    clustered = {
        "kind": "coordinated", "name": "rm2-combined-c4", "cluster_size": 4,
    }
    bodies = [
        _s1_body("storm-a", seed=0),
        _s1_body("storm-b", seed=1),
        _s1_body("storm-base", seed=0, manager=base),
        {
            "shape": "S2", "ncores": 4, "manager": rm2, "name": "storm-s2t",
            "params": {"start_slack": 0.4, "end_slack": 0.0,
                       "horizon_intervals": 16, "seed": 0},
        },
        {
            "shape": "S2", "ncores": 4, "manager": rm2, "name": "storm-s2r",
            "params": {"start_slack": 0.0, "end_slack": 0.4,
                       "horizon_intervals": 16, "seed": 1},
        },
        {
            "shape": "S3", "ncores": 4, "manager": rm2, "name": "storm-s3a",
            "params": {"cycles": 4, "horizon_intervals": 16, "seed": 0},
        },
        {
            "shape": "S3", "ncores": 4, "manager": base, "name": "storm-s3b",
            "params": {"cycles": 4, "horizon_intervals": 16, "seed": 1},
        },
        {
            "shape": "S4", "ncores": 4, "manager": rm2, "name": "storm-s4a",
            "params": {"burst_start_intervals": 2.0, "burst_length_intervals": 4.0,
                       "horizon_intervals": 16, "seed": 0},
        },
        {
            "shape": "S4", "ncores": 4, "manager": base, "name": "storm-s4b",
            "params": {"burst_start_intervals": 2.0, "burst_length_intervals": 8.0,
                       "horizon_intervals": 16, "seed": 1},
        },
        {
            "shape": "S5", "ncores": 16, "manager": clustered, "name": "storm-s5",
            "params": {"cluster_size": 4, "cycles": 4, "idle_intervals": 1.5,
                       "horizon_intervals": 32, "seed": 0},
        },
        {
            "shape": "S6", "ncores": 16, "manager": clustered, "name": "storm-s6",
            "params": {"hot_fraction": 0.25, "swaps_per_hot_core": 2,
                       "horizon_intervals": 32, "seed": 0},
        },
        {
            "shape": "S7", "ncores": 16, "name": "storm-s7",
            "manager": {"kind": "coordinated", "name": "rm2-combined-c8",
                        "cluster_size": 8},
            "params": {"cluster_size": 8, "cycles": 4, "horizon_intervals": 32,
                       "seed": 0},
        },
        {
            "shape": "S7", "ncores": 16, "manager": base, "name": "storm-s7b",
            "params": {"cluster_size": 8, "cycles": 4, "horizon_intervals": 32,
                       "seed": 0},
        },
        {
            "shape": "FIXED", "ncores": 4, "manager": rm2, "name": "storm-f1",
            "params": {"apps": ["mcf_like", "soplex_like",
                                "libquantum_like", "povray_like"]},
        },
        {
            "shape": "FIXED", "ncores": 4, "manager": base, "name": "storm-f2",
            "params": {"apps": ["astar_like", "lbm_like",
                                "namd_like", "mcf_like"], "slack": 0.1},
        },
        {
            "shape": "S1", "ncores": 16, "manager": clustered,
            "name": "storm-s1-16",
            "params": {"rate_per_interval": 0.25, "horizon_intervals": 32,
                       "seed": 2},
        },
    ]
    assert len(bodies) == 16
    return bodies


class TestMixedStorm:
    """16 concurrent mixed S1-S7 jobs == serial library runs, number for number."""

    def test_storm_matches_serial_runs(
        self, factory, system4, db4, system16, db16
    ):
        bodies = _storm_bodies()
        service = ReplayService(context_factory=factory, workers=4)
        try:
            jobs = [service.submit(body) for body in bodies]
            assert len({job.job_id for job in jobs}) == 16, "specs must be distinct"
            for job in jobs:
                assert job.wait(WAIT_S), f"job {job.spec.name} never settled"
                assert job.status == "done", job.error
            assert service.jobs_done == 16 and service.jobs_failed == 0
        finally:
            service.close()

        # Serial reference: the plain library path, no store, no service.
        systems = {4: (system4, db4), 16: (system16, db16)}
        for body, job in zip(bodies, jobs):
            system, db = systems[body["ncores"]]
            spec = job_spec_from_json(body)
            item = build_item(spec, db.benchmarks())
            if isinstance(item, Scenario):
                reference = simulate_scenario(
                    system, db, item, spec.manager.build(), max_slices=MAX_SLICES
                )
            else:
                reference = simulate_workload(
                    system, db, item, spec.manager.build(), max_slices=MAX_SLICES
                )
            assert_bit_identical(job.result, reference)


class TestWorkerCrash:
    """A crash mid-job becomes a failed status -- never a hang."""

    def test_crash_surfaces_failed_status(self, factory, monkeypatch):
        real = pool_mod._execute_replay

        def exploding(ctx, item, manager):
            if item.name.startswith("crash-"):
                raise RuntimeError("simulated worker crash")
            return real(ctx, item, manager)

        monkeypatch.setattr(pool_mod, "_execute_replay", exploding)
        service = ReplayService(context_factory=factory, workers=2)
        try:
            doomed = service.submit(_s1_body(name="crash-s1"))
            healthy = service.submit(_s1_body(name="storm-ok"))
            assert doomed.wait(WAIT_S), "crashed job must settle, not hang"
            assert doomed.status == "failed"
            assert "RuntimeError" in doomed.error
            assert "simulated worker crash" in doomed.error
            # The pool survived the crash and still serves other jobs.
            assert healthy.wait(WAIT_S) and healthy.status == "done"
            assert service.jobs_failed == 1 and service.jobs_done == 1
            assert service.inflight.inflight_count() == 0

            # A later identical submission retries instead of inheriting
            # the failure forever.
            monkeypatch.setattr(pool_mod, "_execute_replay", real)
            retried = service.submit(_s1_body(name="crash-s1"))
            assert retried is not doomed and retried.job_id == doomed.job_id
            assert retried.wait(WAIT_S) and retried.status == "done"
        finally:
            service.close()

    def test_crash_over_http_returns_410(self, factory, monkeypatch):
        monkeypatch.setattr(
            pool_mod, "_execute_replay",
            lambda ctx, item, manager: (_ for _ in ()).throw(
                RuntimeError("simulated worker crash")
            ),
        )
        service = ReplayService(context_factory=factory, workers=1)
        server = make_server(service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            req = urllib.request.Request(
                base + "/jobs", data=json.dumps(_s1_body(name="crash-http")).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=WAIT_S) as resp:
                job_id = json.load(resp)["job_id"]
            assert service.get_job(job_id).wait(WAIT_S)
            for path in (f"/jobs/{job_id}/result", f"/jobs/{job_id}/stream"):
                try:
                    urllib.request.urlopen(base + path, timeout=WAIT_S)
                except urllib.error.HTTPError as err:
                    assert err.code == 410
                    assert "crash" in json.load(err)["error"]
                else:  # pragma: no cover - fails loudly if reached
                    raise AssertionError(f"{path} must report the crash")
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestInflightHook:
    """A non-owner executor waits for the owner instead of re-simulating."""

    def test_losing_claimant_reuses_owner_result(
        self, factory, system4, db4
    ):
        service = ReplayService(context_factory=factory, workers=1)
        try:
            spec = job_spec_from_json(_s1_body(name="inflight-s1"))
            ctx = service.ctx_for(4)
            from repro.service.jobs import job_key

            key = job_key(spec, ctx)
            # Pose as another executor sharing the store: claim the key
            # before the service's worker can.
            owner, ticket = service.inflight.claim(key)
            assert owner
            job = service.submit(_s1_body(name="inflight-s1"))
            assert not job.wait(2.0), "job must wait for the in-flight owner"
            scenario = build_item(spec, db4.benchmarks())
            reference = simulate_scenario(
                system4, db4, scenario, RM2.build(), max_slices=MAX_SLICES
            )
            service.inflight.publish(ticket, reference)
            assert job.wait(WAIT_S) and job.status == "done"
            assert job.cache_hit is True
            assert service.simulations == 0  # served by the "other" executor
            assert_bit_identical(job.result, reference)
        finally:
            service.close()


class TestCrossExecutorStorm:
    """Process-pool and thread-pool executors are byte-identical on the storm.

    The acceptance criterion for the hardened runtime: the same 16-job
    S1-S7 storm, run cold through the thread executor and again cold
    through the process-pool executor (separate stores, so every job truly
    simulates in a worker process), produces identical content hashes and
    bit-identical results -- parallelism must never change the numbers.
    """

    def test_process_pool_matches_thread_pool(
        self, system4, db4, system16, db16, tmp_path
    ):
        systems = {4: (system4, db4), 16: (system16, db16)}

        def make_factory(subdir):
            def factory(ncores):
                system, db = systems[ncores]
                return ExperimentContext(
                    system=system, db=db, max_slices=MAX_SLICES,
                    results_store=ResultsStore(str(tmp_path / subdir)),
                )

            return factory

        bodies = _storm_bodies()
        thread_runs = {}
        service = ReplayService(context_factory=make_factory("store-thread"), workers=4)
        try:
            jobs = [service.submit(body) for body in bodies]
            for job in jobs:
                assert job.wait(WAIT_S), f"thread job {job.spec.name} never settled"
                assert job.status == "done", job.error
                thread_runs[job.spec.name] = job
            assert service.simulations == 16
        finally:
            service.close()

        service = ReplayService(
            context_factory=make_factory("store-process"), workers=2,
            executor="process", processes=2,
        )
        try:
            jobs = [service.submit(body) for body in bodies]
            for job in jobs:
                assert job.wait(WAIT_S), f"process job {job.spec.name} never settled"
                assert job.status == "done", job.error
                reference = thread_runs[job.spec.name]
                assert job.job_id == reference.job_id
                assert job.result_hash == reference.result_hash, job.spec.name
                assert_bit_identical(job.result, reference.result)
            # Cold store: every job genuinely ran inside the process pool.
            assert service.simulations == 16
        finally:
            service.close()
