"""Golden result hashes through the service path.

Three jobs shaped after registered experiments -- E2 (8-core fixed
multi-programmed mix), S1 (4-core Poisson arrivals) and S5 (16-core
whole-cluster churn under the hierarchical manager) -- run through
:class:`~repro.service.pool.ReplayService` at tier-1 fidelity, and their
canonical result hashes must equal the hashes committed in
``tests/golden_service_hashes.json``.

This pins three things at once: the simulation's numbers (any physics
change shows up as a hash change), the canonical hash function itself,
and the service execution path (which must add nothing to either).  To
regenerate after an *intentional* change::

    PYTHONPATH=src REPRO_UPDATE_GOLDENS=1 python -m pytest tests/test_service_golden.py

and commit the rewritten JSON alongside the change that explains it.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.runner import ExperimentContext
from repro.service import ReplayService
from repro.simulation.results_store import ResultsStore

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_service_hashes.json")

MAX_SLICES = 5

#: The golden jobs: shaped after the registered E2 / S1 / S5 experiments
#: (same generators and manager specs, the test suite's seven-app database
#: and tier-1 fidelity).  Keys are the golden-file entries.
GOLDEN_JOBS = {
    "e2-fixed-8core": {
        "shape": "FIXED",
        "ncores": 8,
        "name": "golden-e2",
        "params": {
            "apps": ["mcf_like", "soplex_like", "libquantum_like", "lbm_like",
                     "astar_like", "povray_like", "namd_like", "mcf_like"],
        },
        "manager": {"kind": "coordinated", "name": "rm2-combined"},
    },
    "s1-poisson-4core": {
        "shape": "S1",
        "ncores": 4,
        "name": "golden-s1",
        "params": {"rate_per_interval": 0.15, "horizon_intervals": 64, "seed": 0},
        "manager": {"kind": "coordinated", "name": "rm2-combined"},
    },
    "s5-cluster-churn-16core": {
        "shape": "S5",
        "ncores": 16,
        "name": "golden-s5",
        "params": {"cluster_size": 4, "cycles": 4, "idle_intervals": 1.5,
                   "horizon_intervals": 256, "seed": 0},
        "manager": {"kind": "coordinated", "name": "rm2-combined-c4",
                    "cluster_size": 4},
    },
}


@pytest.fixture(scope="module")
def golden_hashes():
    with open(GOLDEN_PATH, encoding="utf-8") as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def service(system4, db4, system8, db8, system16, db16, tmp_path_factory):
    systems = {4: (system4, db4), 8: (system8, db8), 16: (system16, db16)}
    store_root = str(tmp_path_factory.mktemp("golden-results"))

    def factory(ncores):
        system, db = systems[ncores]
        return ExperimentContext(
            system=system, db=db, max_slices=MAX_SLICES,
            results_store=ResultsStore(store_root),
        )

    with ReplayService(context_factory=factory, workers=2) as svc:
        yield svc


@pytest.mark.parametrize("entry", sorted(GOLDEN_JOBS))
def test_service_hash_matches_golden(entry, service, golden_hashes):
    """The service-path hash of each golden job equals the committed one."""
    job = service.submit(GOLDEN_JOBS[entry])
    assert job.wait(240.0), f"golden job {entry} never settled"
    assert job.status == "done", job.error
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        golden_hashes[entry] = job.result_hash
        with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
            json.dump(golden_hashes, fh, indent=2, sort_keys=True)
            fh.write("\n")
        pytest.skip(f"golden for {entry} rewritten; commit the JSON")
    assert entry in golden_hashes, (
        f"no committed golden for {entry}; run with REPRO_UPDATE_GOLDENS=1"
    )
    assert job.result_hash == golden_hashes[entry], (
        f"{entry}: service hash {job.result_hash} != committed "
        f"{golden_hashes[entry]} -- either the simulation's numbers moved or "
        "the canonical hash changed; regenerate goldens only if intentional"
    )


def test_goldens_are_committed():
    """The golden file exists, is valid JSON, and covers every golden job."""
    with open(GOLDEN_PATH, encoding="utf-8") as fh:
        data = json.load(fh)
    assert set(data) == set(GOLDEN_JOBS)
    for name, digest in data.items():
        assert isinstance(digest, str) and len(digest) == 16, (name, digest)
