"""End-to-end chaos suite: seeded fault storms through a real service.

The headline property: for *any* fault seed, a storm whose crash+hang fire
budget stays within the service's retry budget settles 100% of its jobs
with result hashes bit-identical to a fault-free run, within a bounded
number of attempts.  Plus targeted scenarios for each self-healing
mechanism: the per-attempt watchdog (hung worker recycled, job requeued),
store quarantine falling through to re-simulation, and crash recovery
resuming the journalled retry budget instead of resetting it.

The CI-facing variant (journal-sequence determinism across two identically
seeded storms, hash gate against the committed baseline) runs in
``tools/chaos_smoke.py``.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import ExperimentContext
from repro.service import ReplayService, faults
from repro.service import jobs as jobs_mod
from repro.service import pool as pool_mod
from repro.service.faults import FaultPlan, FaultRule
from repro.simulation.results_store import ResultsStore

#: Small fidelity for every service test: horizons stay tiny, replay fast.
MAX_SLICES = 5

WAIT_S = 240.0

#: Retry budget used by the storm property; the plan's crash budget below
#: never exceeds it, which is what guarantees settlement for any seed.
STORM_MAX_RETRIES = 2


def _factory(system4, db4, root):
    def factory(ncores):
        assert ncores == 4, "this suite only requests 4-core jobs"
        return ExperimentContext(
            system=system4, db=db4, max_slices=MAX_SLICES,
            results_store=ResultsStore(str(root / "results")),
        )

    return factory


def _s1_body(seed=0, name="chaos-s1") -> dict:
    return {
        "shape": "S1",
        "ncores": 4,
        "params": {"rate_per_interval": 0.25, "horizon_intervals": 16, "seed": seed},
        "manager": {"kind": "coordinated", "name": "rm2-combined"},
        "name": name,
    }


STORM_BODIES = (
    _s1_body(seed=0, name="chaos-a"),
    _s1_body(seed=1, name="chaos-b"),
)


@pytest.fixture(scope="module")
def reference_hashes(system4, db4, tmp_path_factory):
    """``{job_id: result_hash}`` from one fault-free pass over the storm jobs."""
    root = tmp_path_factory.mktemp("chaos-ref")
    svc = ReplayService(context_factory=_factory(system4, db4, root), workers=2)
    hashes = {}
    for body in STORM_BODIES:
        job = svc.submit(dict(body))
        assert job.wait(WAIT_S) and job.status == "done"
        hashes[job.job_id] = job.result_hash
    svc.close()
    return hashes


class TestSeededStormsSettle:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=6, deadline=None)
    def test_any_seed_settles_bit_identical_within_attempt_budget(
        self, system4, db4, tmp_path_factory, reference_hashes, seed
    ):
        """Worker crashes, store put failures and journal write faults under
        an arbitrary seed: every job still settles ``done`` with the
        fault-free hash, and total attempts stay within the retry budget
        (no retry storms)."""
        root = tmp_path_factory.mktemp(f"chaos-{seed}")
        plan = FaultPlan(
            seed,
            [
                # Crash budget <= STORM_MAX_RETRIES: settlement is guaranteed
                # even if every crash lands on one job.
                FaultRule(faults.EXECUTOR_CRASH, rate=0.4, max_fires=STORM_MAX_RETRIES),
                FaultRule(faults.STORE_PUT_FAIL, rate=0.4, max_fires=2),
                FaultRule(faults.JOURNAL_TORN_WRITE, rate=0.3, max_fires=2),
                FaultRule(faults.JOURNAL_FSYNC, rate=0.3, max_fires=2),
            ],
        )
        with faults.installed(plan):
            svc = ReplayService(
                context_factory=_factory(system4, db4, root),
                workers=2,
                journal=str(root / "journal"),
                max_retries=STORM_MAX_RETRIES,
                backoff_base_s=0.01,
                backoff_cap_s=0.05,
            )
            jobs = [svc.submit(dict(body)) for body in STORM_BODIES]
            for job in jobs:
                assert job.wait(WAIT_S), f"job {job.job_id} never settled"
                assert job.status == "done", job.error
                assert job.result_hash == reference_hashes[job.job_id]
            assert svc.attempts_total <= len(jobs) * (1 + STORM_MAX_RETRIES)
            # Injected attempt failures were retried, never surfaced.
            crash_fires = plan.report()[faults.EXECUTOR_CRASH]["fires"]
            assert svc.jobs_retried == crash_fires
            assert svc.jobs_failed == 0
            svc.close()


class TestWatchdog:
    def test_hung_attempt_is_recycled_and_requeued(
        self, system4, db4, tmp_path, monkeypatch
    ):
        """A wedged first attempt trips the watchdog; the retry succeeds on a
        fresh dispatch and the job settles ``done``."""
        release = threading.Event()
        calls = []
        real = pool_mod._execute_replay

        def wedged_once(ctx, item, manager):
            calls.append(1)
            if len(calls) == 1:
                release.wait(60)  # far past the watchdog deadline
                raise RuntimeError("abandoned attempt finally unwound")
            return real(ctx, item, manager)

        monkeypatch.setattr(pool_mod, "_execute_replay", wedged_once)
        svc = ReplayService(
            context_factory=_factory(system4, db4, tmp_path),
            workers=1,
            max_retries=2,
            job_timeout_s=0.5,
            backoff_base_s=0.01,
            backoff_cap_s=0.02,
        )
        try:
            job = svc.submit(_s1_body(name="chaos-watchdog"))
            assert job.wait(WAIT_S)
            assert job.status == "done", job.error
            assert svc.watchdog_timeouts == 1
            assert job.attempts == 2  # timed-out attempt + successful retry
            assert svc.health()["watchdog_timeouts"] == 1
        finally:
            release.set()  # unwedge the abandoned thread before teardown
            svc.close()


class TestStoreQuarantineHealing:
    def test_corrupt_warm_entry_quarantines_and_resimulates(
        self, system4, db4, tmp_path
    ):
        """A warm store entry that fails digest verification is quarantined
        and the job transparently re-simulates to the same hash."""
        factory = _factory(system4, db4, tmp_path)
        svc = ReplayService(context_factory=factory, workers=1)
        job = svc.submit(_s1_body(name="chaos-rot"))
        assert job.wait(WAIT_S) and job.status == "done"
        reference = job.result_hash
        svc.close()
        plan = FaultPlan(
            3, [FaultRule(faults.STORE_LOAD_CORRUPT, rate=1.0, max_fires=1)]
        )
        with faults.installed(plan):
            svc2 = ReplayService(context_factory=factory, workers=1)
            job2 = svc2.submit(_s1_body(name="chaos-rot"))
            assert job2.wait(WAIT_S) and job2.status == "done"
            assert job2.result_hash == reference
            assert not job2.cache_hit  # the poisoned entry was not served
            assert svc2.simulations == 1
            store = svc2.ctx_for(4).results_store
            assert store.quarantined == 1
            assert svc2.health()["store_quarantined"] == 1
            svc2.close()


class TestRecoveryResumesRetryBudget:
    def test_journalled_attempts_survive_restart(
        self, system4, db4, tmp_path, monkeypatch
    ):
        """A job recovered with ``attempt=2`` on record gets only the
        *remaining* budget: with ``max_retries=3`` it may run attempts 3 and
        4, then fails -- the crash loop cannot reset its allowance."""
        svc = ReplayService(
            context_factory=_factory(system4, db4, tmp_path),
            workers=1,
            journal=str(tmp_path / "journal"),
            autostart=False,
            max_retries=3,
            backoff_base_s=0.01,
            backoff_cap_s=0.02,
        )
        spec = jobs_mod.job_spec_from_json(_s1_body(name="chaos-recover"))
        key = jobs_mod.job_key(spec, svc.ctx_for(4))
        svc.journal.append("submitted", key, lane="interactive", spec=spec.to_json())
        svc.journal.append("retrying", key, attempt=2, error="RuntimeError: boom")
        calls = []

        def always_failing(ctx, item, manager):
            calls.append(1)
            raise RuntimeError("still broken after restart")

        monkeypatch.setattr(pool_mod, "_execute_replay", always_failing)
        recovered = svc.recover()
        assert [job.job_id for job in recovered] == [key]
        assert recovered[0].attempts == 2
        svc.start()
        assert recovered[0].wait(WAIT_S)
        assert recovered[0].status == "failed"
        assert recovered[0].attempts == 1 + svc.max_retries
        assert len(calls) == 2  # attempts 3 and 4 only
        # The terminal failure is journalled with the final attempt count.
        failed = [r for r in svc.journal.records() if r.event == "failed"]
        assert failed and failed[-1].attempt == 4
        svc.close()
