"""The bench-regression gate's comparison rules.

``tools/bench_compare.py`` guards the committed ``BENCH_*.json`` baselines:
result-hash mismatches always fail, wall-clock regressions fail beyond the
threshold (after calibration rescaling, above the absolute noise floor),
and fidelity-context drift demands a baseline refresh instead of a silent
comparison.
"""

from __future__ import annotations

import copy
import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "tools"))
from bench_compare import compare_reports, main  # noqa: E402

BASE = {
    "benchmark": "manager_overhead",
    "ncores": 8,
    "max_slices": 24,
    "calibration_s": 0.2,
    "timestamp": "2026-01-01T00:00:00Z",
    "managers": {
        "rm2-combined": {
            "reference_s": 1.0,
            "incremental_s": 0.4,
            "speedup": 2.5,
            "bit_identical": True,
            "result_hash": "abc123",
        },
    },
    "bit_identical": True,
}


def fresh(**overrides):
    out = copy.deepcopy(BASE)
    rec = out["managers"]["rm2-combined"]
    for key, value in overrides.items():
        (rec if key in rec else out)[key] = value
    return out


class TestCompareRules:
    def test_identical_reports_pass(self):
        assert compare_reports(BASE, fresh()) == []

    def test_wall_clock_regression_fails(self):
        problems = compare_reports(BASE, fresh(incremental_s=0.8))
        assert any("wall-clock regressed" in p for p in problems)

    def test_wall_clock_within_threshold_passes(self):
        assert compare_reports(BASE, fresh(incremental_s=0.45)) == []

    def test_tiny_absolute_delta_is_noise_not_regression(self):
        base = copy.deepcopy(BASE)
        base["managers"]["rm2-combined"]["incremental_s"] = 0.01
        got = fresh(incremental_s=0.05)  # 5x relative, but 0.04s absolute
        assert compare_reports(base, got) == []

    def test_calibration_rescales_slower_machines(self):
        # The fresh machine's yardstick ran 2x slower: 2x wall is expected.
        got = fresh(incremental_s=0.75, reference_s=1.9, calibration_s=0.4)
        assert compare_reports(BASE, got) == []
        # ... but 3x wall is still a regression even at 2x calibration.
        got = fresh(incremental_s=1.2, calibration_s=0.4)
        assert any("wall-clock" in p for p in compare_reports(BASE, got))

    def test_result_hash_mismatch_always_fails(self):
        problems = compare_reports(BASE, fresh(result_hash="zzz999"))
        assert any("result_hash" in p and "exact-match" in p for p in problems)

    def test_bit_identical_false_fails(self):
        problems = compare_reports(BASE, fresh(bit_identical=False))
        assert any("not bit-identical" in p for p in problems)

    def test_speedup_drop_fails(self):
        problems = compare_reports(BASE, fresh(speedup=1.5))
        assert any("speedup regressed" in p for p in problems)

    def test_speedup_on_unmeasurable_walls_is_skipped(self):
        base = copy.deepcopy(BASE)
        rec = base["managers"]["rm2-combined"]
        rec["reference_s"] = rec["incremental_s"] = 0.01
        got = copy.deepcopy(base)
        got["managers"]["rm2-combined"]["speedup"] = 0.5
        assert compare_reports(base, got) == []

    def test_context_change_demands_refresh(self):
        problems = compare_reports(BASE, fresh(max_slices=12))
        assert any("fidelity context" in p and "refresh" in p for p in problems)

    def test_disappearing_metric_fails(self):
        got = fresh()
        del got["managers"]["rm2-combined"]["result_hash"]
        problems = compare_reports(BASE, got)
        assert any("missing from the fresh artifact" in p for p in problems)

    def test_disappearing_manager_fails(self):
        got = fresh()
        del got["managers"]["rm2-combined"]
        problems = compare_reports(BASE, got)
        assert any("rm2-combined" in p and "missing" in p for p in problems)


class TestThroughputNotes:
    """``events_per_sec`` deltas are report-only notes, never failures."""

    def _with_throughput(self, value):
        out = copy.deepcopy(BASE)
        out["managers"]["rm2-combined"]["events_per_sec"] = value
        return out

    def test_delta_is_noted_not_gated(self):
        notes: list[str] = []
        problems = compare_reports(
            self._with_throughput(1000.0), self._with_throughput(2150.0),
            notes=notes,
        )
        assert problems == []
        assert len(notes) == 1
        assert "events_per_sec" in notes[0]
        assert "+115.0%" in notes[0]

    def test_throughput_drop_never_fails_the_gate(self):
        # A 10x throughput collapse is loud in the notes but the verdict
        # comes from the gated wall-clocks, which have noise slack.
        notes: list[str] = []
        problems = compare_reports(
            self._with_throughput(5000.0), self._with_throughput(500.0),
            notes=notes,
        )
        assert problems == []
        assert any("-90.0%" in n for n in notes)

    def test_prefixed_throughput_keys_are_noted(self):
        base = self._with_throughput(1000.0)
        base["managers"]["rm2-combined"]["baseline_events_per_sec"] = 400.0
        got = copy.deepcopy(base)
        got["managers"]["rm2-combined"]["baseline_events_per_sec"] = 800.0
        notes: list[str] = []
        assert compare_reports(base, got, notes=notes) == []
        assert any("baseline_events_per_sec" in n for n in notes)

    def test_notes_are_optional(self):
        # Callers that pass no collector (the unit-rule tests above) still
        # get a clean problems list.
        assert compare_reports(
            self._with_throughput(1000.0), self._with_throughput(10.0)
        ) == []


class TestGateCli:
    def _write(self, directory, report):
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, "BENCH_manager_overhead.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(report, fh)
        return path

    def test_missing_baseline_fails_then_update_adopts(self, tmp_path, capsys):
        art, basedir = str(tmp_path / "art"), str(tmp_path / "base")
        self._write(art, BASE)
        assert main(["--artifact-dir", art, "--baseline-dir", basedir]) == 1
        assert "no committed baseline" in capsys.readouterr().out
        assert main(["--artifact-dir", art, "--baseline-dir", basedir, "--update"]) == 0
        assert main(["--artifact-dir", art, "--baseline-dir", basedir]) == 0

    def test_regression_exits_nonzero(self, tmp_path):
        art, basedir = str(tmp_path / "art"), str(tmp_path / "base")
        self._write(basedir, BASE)
        self._write(art, fresh(result_hash="drifted"))
        assert main(["--artifact-dir", art, "--baseline-dir", basedir]) == 1

    def test_no_artifacts_is_an_error(self, tmp_path):
        art = str(tmp_path / "empty")
        base = str(tmp_path / "b")
        assert main(["--artifact-dir", art, "--baseline-dir", base]) == 2

    @pytest.mark.parametrize("threshold,expect", [(0.25, 1), (3.0, 0)])
    def test_threshold_is_configurable(self, tmp_path, threshold, expect):
        art, basedir = str(tmp_path / "art"), str(tmp_path / "base")
        self._write(basedir, BASE)
        self._write(art, fresh(incremental_s=1.2))
        argv = ["--artifact-dir", art, "--baseline-dir", basedir]
        assert main(argv + ["--threshold", str(threshold)]) == expect
