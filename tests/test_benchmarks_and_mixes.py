"""Tests for the benchmark catalogue, classification and workload mixes."""

from __future__ import annotations

import pytest

from repro.workloads.benchmarks import BENCHMARKS, benchmark_names, get_benchmark
from repro.workloads.classification import (
    categories_from_curves,
    classify_paper1,
    classify_paper2,
)
from repro.workloads.mixes import (
    PAPER1_PATTERNS_4CORE,
    Workload,
    paper1_workloads,
    paper2_mixes,
    paper2_workloads,
    scenario_of_mix,
)


class TestCatalogue:
    def test_size_and_integrity(self):
        assert len(BENCHMARKS) >= 20
        for name, bench in BENCHMARKS.items():
            assert bench.name == name
            assert abs(sum(bench.weights) - 1.0) < 1e-9
            assert bench.nslices >= 96

    def test_all_categories_populated(self):
        for cat in ("MI-CS", "MI-CI", "CP-CS", "CP-CI"):
            assert len(benchmark_names(paper1_category=cat)) >= 3, cat
        for t in "ABCD":
            assert len(benchmark_names(paper2_type=t)) >= 3, t

    def test_deterministic_construction(self):
        a = get_benchmark("mcf_like")
        b = get_benchmark("mcf_like")
        assert a.phases == b.phases
        assert a.phase_trace().sequence == b.phase_trace().sequence

    def test_phase_trace_covers_all_phases(self):
        for bench in BENCHMARKS.values():
            seen = set(bench.phase_trace().sequence)
            assert seen == {p.phase_id for p in bench.phases}, bench.name

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_benchmark("quake_like")

    def test_spec_of(self):
        bench = get_benchmark("mcf_like")
        assert bench.spec_of(0).phase_id == 0
        with pytest.raises(KeyError):
            bench.spec_of(99)


class TestDerivedCategories:
    """The catalogue must satisfy the paper's own classification criteria."""

    def test_paper1_categories_match_intent(self, db4, system4):
        mismatches = []
        for name in db4.benchmarks():
            bench = get_benchmark(name)
            mi, cs = classify_paper1(db4.weighted_mpki_curve(name), system4.baseline_ways)
            derived = f"{'MI' if mi else 'CP'}-{'CS' if cs else 'CI'}"
            if derived != bench.paper1_category:
                mismatches.append((name, bench.paper1_category, derived))
        assert not mismatches, mismatches

    def test_paper2_types_match_intent(self, db4, system4):
        mismatches = []
        for name in db4.benchmarks():
            bench = get_benchmark(name)
            cs, ps = classify_paper2(
                db4.weighted_mpki_curve(name),
                db4.weighted_mlp_grid(name),
                system4.baseline_ways,
            )
            derived = {(True, True): "A", (True, False): "B",
                       (False, True): "C", (False, False): "D"}[(cs, ps)]
            if derived != bench.paper2_type:
                mismatches.append((name, bench.paper2_type, derived))
        assert not mismatches, mismatches

    def test_categories_object(self, db4, system4):
        cats = categories_from_curves(
            db4.weighted_mpki_curve("mcf_like"),
            db4.weighted_mlp_grid("mcf_like"),
            system4.baseline_ways,
        )
        assert cats.paper1_category == "MI-CS"
        assert cats.paper2_type == "B"


class TestWorkloads:
    def test_paper1_counts(self):
        w4 = paper1_workloads(4)
        w8 = paper1_workloads(8)
        assert len(w4) == 20 and all(w.ncores == 4 for w in w4)
        assert len(w8) == 10 and all(w.ncores == 8 for w in w8)
        # 80 apps in each suite, as in the paper
        assert sum(w.ncores for w in w4) == 80
        assert sum(w.ncores for w in w8) == 80

    def test_paper1_categories_respected(self):
        for wl, (pattern, cats) in zip(
            paper1_workloads(4)[::2], PAPER1_PATTERNS_4CORE
        ):
            for app, cat in zip(wl.apps, cats):
                assert BENCHMARKS[app].paper1_category == cat, (wl.name, app)

    def test_workloads_deterministic(self):
        a = paper1_workloads(4)
        b = paper1_workloads(4)
        assert [w.apps for w in a] == [w.apps for w in b]

    def test_instances_differ(self):
        w4 = paper1_workloads(4)
        pairs = zip(w4[::2], w4[1::2])
        assert any(a.apps != b.apps for a, b in pairs)

    def test_rejects_other_core_counts(self):
        with pytest.raises(ValueError):
            paper1_workloads(6)

    def test_workload_slack_defaults_zero(self):
        wl = paper1_workloads(4)[0]
        assert wl.slack == (0.0,) * 4

    def test_with_slack(self):
        wl = paper1_workloads(4)[0].with_slack(0.2)
        assert wl.slack == (0.2,) * 4
        wl2 = wl.with_slack((0.1, 0.0, 0.0, 0.0))
        assert wl2.slack[0] == 0.1

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            Workload(name="bad", apps=("a", "b"), slack=(0.1,))


class TestPaper2Mixes:
    def test_sixteen_ordered_mixes(self):
        mixes = paper2_mixes()
        assert len(mixes) == 16
        assert len(set(mixes)) == 16

    def test_scenario_mapping(self):
        assert scenario_of_mix(("A", "A")) == 1
        assert scenario_of_mix(("A", "D")) == 1
        assert scenario_of_mix(("B", "C")) == 1
        assert scenario_of_mix(("B", "B")) == 2
        assert scenario_of_mix(("B", "D")) == 2
        assert scenario_of_mix(("C", "C")) == 3
        assert scenario_of_mix(("C", "D")) == 3
        assert scenario_of_mix(("D", "D")) == 4

    def test_rm3_substantially_better_in_12_of_16(self):
        """The paper's count: RM3 adds substantially in 12/16 mixes
        (scenarios 1 and 3 -- wherever a parallelism-sensitive app exists)."""
        n = sum(
            1
            for t1, t2 in paper2_mixes()
            if scenario_of_mix((t1, t2)) in (1, 3)
        )
        assert n == 12

    def test_scenario_counts(self):
        counts = {1: 0, 2: 0, 3: 0, 4: 0}
        for mix in paper2_mixes():
            counts[scenario_of_mix(mix)] += 1
        assert counts == {1: 9, 2: 3, 3: 3, 4: 1}

    def test_paper2_workloads(self):
        wls = paper2_workloads(4)
        assert len(wls) == 16
        for wl, (t1, t2) in zip(wls, paper2_mixes()):
            assert wl.tag == f"{t1}{t2}"
            assert BENCHMARKS[wl.apps[0]].paper2_type == t1
            assert BENCHMARKS[wl.apps[2]].paper2_type == t2

    def test_paper2_workloads_8core(self):
        wls = paper2_workloads(8)
        assert len(wls) == 16
        assert all(w.ncores == 8 for w in wls)
