"""Scenario-replay service: functional suite (in-process and over a socket).

Covers the request/job model (validation, canonicalisation, the hypothesis
round-trip of the job-hash canonicalisation), single-job happy paths
bit-identical to the library path, results-store serving across service
instances, failed-job retry, the in-flight registry hook, and every HTTP
endpoint including the server-sent interval-sample stream.

The concurrency harness (identical-submission dedup storms, S1-S7 mixed
storms, crash-mid-job) lives in ``tests/test_service_concurrency.py``; the
golden-hash suite in ``tests/test_service_golden.py``.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import RM2, ExperimentContext, ManagerSpec
from repro.service import JobSpec, ReplayService, build_item, job_spec_from_json, make_server
from repro.service.jobs import SCENARIO_SHAPES, WORKLOAD_SHAPE
from repro.simulation.metrics import run_result_digest
from repro.simulation.results_store import InflightRegistry, ResultsStore
from repro.simulation.rma_sim import simulate_scenario, simulate_workload
from tests.test_engine_equivalence import assert_bit_identical

#: Small fidelity for every service test: horizons stay tiny, replay fast.
MAX_SLICES = 5

S1_PARAMS = {"rate_per_interval": 0.25, "horizon_intervals": 16, "seed": 0}


def _factory(system4, db4, tmp_path):
    """Service context factory over the session db fixtures + a fresh store."""

    def factory(ncores):
        assert ncores == 4, "this suite only requests 4-core jobs"
        return ExperimentContext(
            system=system4, db=db4, max_slices=MAX_SLICES,
            results_store=ResultsStore(str(tmp_path / "results")),
        )

    return factory


def _s1_request(**overrides) -> dict:
    req = {
        "shape": "S1",
        "ncores": 4,
        "params": dict(S1_PARAMS),
        "manager": {"kind": "coordinated", "name": "rm2-combined"},
        "name": "svc-s1",
    }
    req.update(overrides)
    return req


@pytest.fixture
def service(system4, db4, tmp_path):
    svc = ReplayService(context_factory=_factory(system4, db4, tmp_path), workers=2)
    yield svc
    svc.close()


class TestJobSpecValidation:
    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown shape"):
            job_spec_from_json(_s1_request(shape="S99"))

    def test_unknown_param_rejected_at_submit(self):
        bad = _s1_request()
        bad["params"]["warp_factor"] = 9
        with pytest.raises(ValueError, match="warp_factor"):
            job_spec_from_json(bad)

    def test_unknown_request_field_rejected(self):
        with pytest.raises(ValueError, match="unknown request fields"):
            job_spec_from_json(_s1_request(priority="high"))

    def test_bad_manager_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown manager kind"):
            job_spec_from_json(_s1_request(manager={"kind": "quantum"}))

    def test_manager_requires_kind(self):
        with pytest.raises(ValueError, match="'kind'"):
            job_spec_from_json(_s1_request(manager={"name": "x"}))

    def test_ncores_must_be_int(self):
        with pytest.raises(ValueError, match="ncores"):
            job_spec_from_json(_s1_request(ncores="four"))
        with pytest.raises(ValueError, match="ncores"):
            job_spec_from_json(_s1_request(ncores=True))

    def test_params_order_is_canonicalised(self):
        a = JobSpec("S1", 4, RM2, params=(("seed", 1), ("horizon_intervals", 8)))
        b = JobSpec("S1", 4, RM2, params=(("horizon_intervals", 8), ("seed", 1)))
        assert a == b and a.canonical() == b.canonical()

    def test_fixed_workload_needs_matching_apps(self, service):
        with pytest.raises(ValueError, match="exactly ncores"):
            service.submit({
                "shape": WORKLOAD_SHAPE, "ncores": 4,
                "params": {"apps": ["mcf_like"]},
                "manager": {"kind": "baseline"},
            })
        with pytest.raises(ValueError, match="unknown benchmarks"):
            service.submit({
                "shape": WORKLOAD_SHAPE, "ncores": 4,
                "params": {"apps": ["mcf_like", "nope_like", "mcf_like", "mcf_like"]},
                "manager": {"kind": "baseline"},
            })


def _manager_specs() -> st.SearchStrategy:
    return st.builds(
        ManagerSpec,
        kind=st.sampled_from(["baseline", "coordinated", "independent"]),
        name=st.text(alphabet="abc-", max_size=8),
        control_dvfs=st.booleans(),
        control_core_size=st.booleans(),
        control_partitioning=st.booleans(),
        mlp_model=st.sampled_from(["model1", "model2", "model3"]),
        oracle=st.booleans(),
        incremental=st.just(True),
        cluster_size=st.one_of(st.none(), st.integers(1, 8)),
        overprovision=st.floats(1.0, 4.0, allow_nan=False),
    )


@st.composite
def _job_specs(draw) -> JobSpec:
    shape = draw(st.sampled_from(sorted(SCENARIO_SHAPES)))
    params = {}
    if draw(st.booleans()):
        params["seed"] = draw(st.integers(0, 2**31))
    if draw(st.booleans()):
        params["horizon_intervals"] = draw(st.integers(1, 512))
    if draw(st.booleans()):
        params["interval_ns"] = draw(
            st.floats(1e6, 1e9, allow_nan=False, allow_infinity=False)
        )
    return JobSpec(
        shape=shape,
        ncores=draw(st.integers(1, 256)),
        manager=draw(_manager_specs()),
        params=tuple(params.items()),
        name=draw(st.text(alphabet="abcdefgh0123-", max_size=12)),
    )


class TestJobHashCanonicalisation:
    """The wire format round-trips the job-hash canonicalisation exactly."""

    @settings(max_examples=200, deadline=None)
    @given(spec=_job_specs())
    def test_json_roundtrip_preserves_canonical_form(self, spec):
        wire = json.loads(json.dumps(spec.to_json()))
        back = job_spec_from_json(wire)
        assert back == spec
        assert back.canonical() == spec.canonical()
        # One more lap must be a fixed point (canonicalisation idempotent).
        again = job_spec_from_json(json.loads(json.dumps(back.to_json())))
        assert again == back

    @settings(max_examples=50, deadline=None)
    @given(spec=_job_specs())
    def test_canonical_distinguishes_manager_and_params(self, spec):
        bumped = JobSpec(
            shape=spec.shape, ncores=spec.ncores, manager=spec.manager,
            params=tuple(dict(spec.params, seed=12345678901).items()),
            name=spec.name,
        )
        assert bumped.canonical() != spec.canonical()


class TestServiceSingleJob:
    def test_job_done_bit_identical_to_library_path(self, service, system4, db4):
        job = service.submit(_s1_request())
        assert job.wait(120), "job did not settle"
        assert job.status == "done" and job.error is None
        spec = job_spec_from_json(_s1_request())
        scenario = build_item(spec, db4.benchmarks())
        library = simulate_scenario(
            system4, db4, scenario, RM2.build(), max_slices=MAX_SLICES
        )
        assert_bit_identical(job.result, library)
        assert job.result_hash == run_result_digest(library)

    def test_fixed_workload_job(self, service, system4, db4):
        apps = ["mcf_like", "soplex_like", "libquantum_like", "povray_like"]
        job = service.submit({
            "shape": WORKLOAD_SHAPE, "ncores": 4,
            "params": {"apps": apps, "slack": 0.1},
            "manager": {"kind": "coordinated", "name": "rm2-combined"},
            "name": "svc-fixed",
        })
        assert job.wait(120) and job.status == "done"
        wl = build_item(job.spec, db4.benchmarks())
        library = simulate_workload(
            system4, db4, wl, RM2.build(), max_slices=MAX_SLICES
        )
        assert_bit_identical(job.result, library)

    def test_restarted_service_serves_from_store(self, system4, db4, tmp_path):
        factory = _factory(system4, db4, tmp_path)
        with ReplayService(context_factory=factory, workers=1) as first:
            a = first.submit(_s1_request())
            assert a.wait(120) and a.status == "done"
            assert first.simulations == 1
        # A fresh service over the same store must not re-simulate.
        with ReplayService(context_factory=factory, workers=1) as second:
            b = second.submit(_s1_request())
            assert b.wait(120) and b.status == "done"
            assert second.simulations == 0
            assert b.cache_hit is True
            assert b.result_hash == a.result_hash
            assert_bit_identical(a.result, b.result)

    def test_metrics_snapshot_counts(self, service):
        job = service.submit(_s1_request())
        assert job.wait(120)
        service.submit(_s1_request())  # dedup hit on the finished job
        m = service.metrics()
        assert m["jobs_done"] == 1 and m["jobs_failed"] == 0
        assert m["simulations"] == 1 and m["jobs_deduped"] == 1
        assert m["workers"] == 2
        assert m["job_latency_p50_s"] > 0.0
        assert m["job_latency_p95_s"] >= m["job_latency_p50_s"]


class TestInflightRegistry:
    def test_first_claim_owns(self):
        reg = InflightRegistry()
        owner, ticket = reg.claim("k")
        assert owner and reg.inflight_count() == 1
        again_owner, again = reg.claim("k")
        assert not again_owner and again is ticket
        assert reg.coalesced == 1

    def test_publish_releases_waiters(self):
        reg = InflightRegistry()
        _, ticket = reg.claim("k")
        seen = []
        t = threading.Thread(
            target=lambda: (ticket.done.wait(30), seen.append(ticket.result))
        )
        t.start()
        reg.publish(ticket, "result-sentinel")
        t.join(30)
        assert seen == ["result-sentinel"]
        assert reg.inflight_count() == 0

    def test_fail_clears_key_for_retry(self):
        reg = InflightRegistry()
        _, ticket = reg.claim("k")
        reg.fail(ticket, RuntimeError("boom"))
        assert ticket.done.is_set() and isinstance(ticket.error, RuntimeError)
        owner, fresh = reg.claim("k")  # a retry claims a fresh ticket
        assert owner and fresh is not ticket


@pytest.fixture
def http_base(service):
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    server.server_close()


def _post(base: str, payload: dict):
    req = urllib.request.Request(
        base + "/jobs", data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=120) as resp:
        return resp.status, json.load(resp)


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=120) as resp:
        return resp.status, json.load(resp)


class TestHTTPEndpoints:
    def test_submit_poll_result(self, http_base, service):
        status, out = _post(http_base, _s1_request())
        assert status == 202 and out["status"] in ("queued", "running", "done")
        job_id = out["job_id"]
        assert service.get_job(job_id).wait(120)
        _, polled = _get(http_base, f"/jobs/{job_id}")
        assert polled["status"] == "done" and polled["result_hash"]
        _, result = _get(http_base, f"/jobs/{job_id}/result")
        assert result["result_hash"] == polled["result_hash"]
        assert result["n_interval_samples"] > 0
        assert len(result["apps"]) == 4
        # Resubmitting the identical body dedups onto the same job id.
        status2, again = _post(http_base, _s1_request())
        assert status2 == 200 and again["deduped"] is True
        assert again["job_id"] == job_id

    def test_submit_rejects_bad_requests(self, http_base):
        for payload in (
            _s1_request(shape="S99"),
            _s1_request(manager={"kind": "quantum"}),
            {"shape": "S1"},
        ):
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(http_base, payload)
            assert err.value.code == 400
            assert "error" in json.load(err.value)

    def test_unknown_job_404(self, http_base):
        for path in ("/jobs/deadbeef", "/jobs/deadbeef/result", "/nope"):
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(http_base, path)
            assert err.value.code == 404

    def test_result_conflict_while_pending(self, http_base, service, monkeypatch):
        import repro.service.pool as pool_mod

        gate = threading.Event()
        real = pool_mod._execute_replay

        def stalled(ctx, item, manager):
            gate.wait(60)
            return real(ctx, item, manager)

        monkeypatch.setattr(pool_mod, "_execute_replay", stalled)
        _, out = _post(http_base, _s1_request(name="svc-s1-pending"))
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(http_base, f"/jobs/{out['job_id']}/result")
        assert err.value.code == 409
        gate.set()
        assert service.get_job(out["job_id"]).wait(120)

    def test_healthz_and_metrics(self, http_base):
        _, health = _get(http_base, "/healthz")
        assert health["status"] == "healthy" and health["workers"] == 2
        # The health payload names *why* a state holds, not just the state.
        for key in (
            "breaker_state",
            "queue_depth",
            "journal_append_failures",
            "jobs_retried",
            "watchdog_timeouts",
            "store_quarantined",
            "client_disconnects",
        ):
            assert key in health
        with urllib.request.urlopen(http_base + "/metrics", timeout=60) as resp:
            text = resp.read().decode()
        for metric in (
            "repro_service_queue_depth",
            "repro_service_cache_hit_rate",
            "repro_service_jobs_per_sec",
            "repro_service_job_latency_p95_s",
            "repro_service_health_state",
            "repro_service_breaker_state",
            "repro_service_attempts_total",
            "repro_service_watchdog_timeouts",
        ):
            assert f"\n{metric} " in "\n" + text
        # Every exposed value must scrape as a float (states are codes).
        for line in text.splitlines():
            if line.startswith("repro_service_"):
                float(line.split()[1])

    def test_stream_replays_every_interval_sample(self, http_base, service):
        _, out = _post(http_base, _s1_request())
        job = service.get_job(out["job_id"])
        assert job.wait(120)
        with urllib.request.urlopen(
            http_base + f"/jobs/{out['job_id']}/stream?batch=7", timeout=120
        ) as resp:
            assert resp.headers["Content-Type"].startswith("text/event-stream")
            raw = resp.read().decode()
        events = [e for e in raw.strip().split("\n\n") if e]
        kinds = [e.splitlines()[0].removeprefix("event: ") for e in events]
        assert kinds[-1] == "done" and set(kinds[:-1]) == {"batch"}
        samples = []
        for event in events[:-1]:
            data = json.loads(event.splitlines()[1].removeprefix("data: "))
            assert data["offset"] == len(samples)
            assert len(data["samples"]) <= 7
            samples.extend(data["samples"])
        done = json.loads(events[-1].splitlines()[1].removeprefix("data: "))
        assert done["result_hash"] == job.result_hash
        assert len(samples) == len(job.result.interval_samples)
        for got, want in zip(samples, job.result.interval_samples):
            assert got["core"] == want.core
            assert got["duration_ns"] == want.duration_ns
            assert got["baseline_ns"] == want.baseline_ns

    def test_client_disconnect_is_swallowed_and_counted(self, http_base, service):
        """A mid-SSE disconnect ends the handler quietly and is counted.

        The ``api.sse_disconnect`` fault site raises a ``BrokenPipeError``
        subclass from inside the event loop -- the same exception a real
        client disconnect produces -- so this exercises the production
        swallow path end to end over a real socket.
        """
        import time as time_mod

        from repro.service import faults

        _, out = _post(http_base, _s1_request())
        job = service.get_job(out["job_id"])
        assert job.wait(120)
        plan = faults.FaultPlan(
            7, [faults.FaultRule(faults.SSE_DISCONNECT, rate=1.0, max_fires=1)]
        )
        with faults.installed(plan):
            # The body is truncated (no traceback server-side); with no
            # Content-Length and Connection: close, the client just sees
            # EOF early.
            with urllib.request.urlopen(
                http_base + f"/jobs/{out['job_id']}/stream", timeout=120
            ) as resp:
                truncated = resp.read().decode()
            assert "event: done" not in truncated
            deadline = time_mod.monotonic() + 30
            while service.client_disconnects < 1:
                assert time_mod.monotonic() < deadline, "disconnect never counted"
                time_mod.sleep(0.01)
            # Budget exhausted: the next stream completes normally.
            with urllib.request.urlopen(
                http_base + f"/jobs/{out['job_id']}/stream", timeout=120
            ) as resp:
                assert "event: done" in resp.read().decode()
        assert service.health()["client_disconnects"] >= 1


class TestBackpressureHTTP:
    """Admission control over the wire: full queues answer 429 + Retry-After."""

    def test_full_queue_429_with_retry_after(self, system4, db4, tmp_path, monkeypatch):
        import repro.service.pool as pool_mod

        started, release = threading.Event(), threading.Event()

        def blocked(ctx, item, manager):
            started.set()
            release.wait(120)
            raise RuntimeError("released without result")

        monkeypatch.setattr(pool_mod, "_execute_replay", blocked)
        svc = ReplayService(
            context_factory=_factory(system4, db4, tmp_path), workers=1, max_queue=1
        )
        server = make_server(svc)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            status, first = _post(base, _s1_request(name="bp-0"))
            assert status == 202 and first["lane"] == "interactive"
            assert started.wait(120), "worker never claimed the first job"
            status, _ = _post(base, dict(_s1_request(name="bp-1"), lane="bulk"))
            assert status == 202
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(base, _s1_request(name="bp-2"))
            assert err.value.code == 429
            retry_after = err.value.headers.get("Retry-After")
            assert retry_after is not None and int(retry_after) >= 1
            body = json.load(err.value)
            assert body["queue_capacity"] == 1 and body["retry_after_s"] >= 1
            # Identical resubmission coalesces: no new work, always admitted.
            status, again = _post(base, _s1_request(name="bp-0"))
            assert status == 200 and again["deduped"] is True
            with urllib.request.urlopen(base + "/metrics", timeout=60) as resp:
                text = resp.read().decode()
            assert "\nrepro_service_jobs_rejected 1" in "\n" + text
            assert "repro_service_queue_depth_bulk" in text
        finally:
            release.set()
            server.shutdown()
            server.server_close()
            svc.close()

    def test_lane_routes_from_request_body(self, http_base, service):
        status, out = _post(http_base, dict(_s1_request(name="lane-bulk"), lane="bulk"))
        assert status == 202 and out["lane"] == "bulk"
        job = service.get_job(out["job_id"])
        assert job.lane == "bulk" and job.wait(120)
        _, polled = _get(http_base, f"/jobs/{out['job_id']}")
        assert polled["lane"] == "bulk"

    def test_unknown_lane_rejected(self, http_base):
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(http_base, dict(_s1_request(), lane="premium"))
        assert err.value.code == 400
