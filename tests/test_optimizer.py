"""Tests for the paper's optimisation machinery.

The load-bearing checks: the pairwise-reduction global optimiser must be
*exactly* optimal against brute-force enumeration (the objective is separable
so the DP is exact, which is why the paper's "heuristic" finds the optimum in
polynomial time), and the local optimiser must match a brute-force scan of
the QoS-feasible configuration space.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import default_system
from repro.core.curves import EnergyCurve
from repro.core.global_opt import ReductionTree, global_optimize
from repro.core.local_opt import DimSpec, local_optimize
from repro.core.overhead_meter import OverheadMeter
from repro.core.qos import qos_target_tpi


def random_curve(rng, core_id, ways, feasible_prob=0.9):
    epi = rng.uniform(0.5, 3.0, ways)
    mask = rng.random(ways) < feasible_prob
    if not mask.any():
        mask[rng.integers(ways)] = True
    epi = np.where(mask, epi, np.inf)
    return EnergyCurve(
        core_id=core_id,
        epi=epi,
        freq_idx=rng.integers(0, 5, ways),
        core_idx=rng.integers(0, 3, ways),
    )


def brute_force(curves, total_ways, min_ways=1):
    ncores = len(curves)
    best, best_alloc = np.inf, None
    rng_ways = range(min_ways, total_ways + 1)
    for combo in itertools.product(rng_ways, repeat=ncores):
        if sum(combo) != total_ways:
            continue
        cost = sum(c.epi[w - 1] for c, w in zip(curves, combo))
        if cost < best:
            best, best_alloc = cost, combo
    return best, best_alloc


class TestEnergyCurve:
    def test_feasibility(self):
        c = EnergyCurve(0, np.array([np.inf, 1.0]), np.zeros(2, int), np.zeros(2, int))
        assert c.is_feasible()
        assert list(c.feasible_mask()) == [False, True]

    def test_setting_at(self):
        c = EnergyCurve(0, np.array([np.inf, 1.0]), np.array([3, 4]), np.array([0, 1]))
        assert c.setting_at(2) == (1, 4, 2)
        with pytest.raises(ValueError):
            c.setting_at(1)

    def test_pinned(self):
        c = EnergyCurve.pinned(2, ways=4, core_idx=1, freq_idx=6, max_ways=16)
        assert c.setting_at(4) == (1, 6, 4)
        assert np.isfinite(c.epi).sum() == 1
        assert c.epi[3] == 0.0

    def test_length_validation(self):
        with pytest.raises(ValueError):
            EnergyCurve(0, np.ones(4), np.zeros(3, int), np.zeros(4, int))


class TestGlobalOptimize:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 5), st.integers(0, 10_000))
    def test_matches_bruteforce(self, ncores, seed):
        rng = np.random.default_rng(seed)
        ways = 8
        curves = [random_curve(rng, j, ways) for j in range(ncores)]
        got = global_optimize(curves, total_ways=ways, min_ways=1)
        want_cost, want_alloc = brute_force(curves, ways)
        if got is None:
            assert want_alloc is None or not np.isfinite(want_cost)
            return
        got_ways = [got[j][2] for j in range(ncores)]
        assert sum(got_ways) == ways
        got_cost = sum(curves[j].epi[got[j][2] - 1] for j in range(ncores))
        assert got_cost == pytest.approx(want_cost)

    def test_single_core_takes_all_feasible_minimum(self):
        rng = np.random.default_rng(0)
        curve = random_curve(rng, 0, 8, feasible_prob=1.0)
        got = global_optimize([curve], total_ways=8)
        assert got[0][2] == 8  # one core owns the whole cache

    def test_pinned_cores_get_their_ways(self):
        rng = np.random.default_rng(1)
        curves = [
            EnergyCurve.pinned(0, 4, 1, 2, 16),
            EnergyCurve.pinned(1, 4, 1, 2, 16),
            random_curve(rng, 2, 16, 1.0),
            EnergyCurve.pinned(3, 4, 1, 2, 16),
        ]
        got = global_optimize(curves, 16)
        assert got[0][2] == got[1][2] == got[3][2] == 4
        assert got[2][2] == 4  # remaining ways exactly

    def test_infeasible_returns_none(self):
        curves = [
            EnergyCurve.pinned(0, 8, 0, 0, 8),
            EnergyCurve.pinned(1, 8, 0, 0, 8),
        ]
        # both cores demand 8 ways, but only 8 exist in total
        assert global_optimize(curves, 8) is None

    def test_meter_counts_dp_cells(self):
        rng = np.random.default_rng(2)
        curves = [random_curve(rng, j, 8, 1.0) for j in range(4)]
        meter = OverheadMeter()
        global_optimize(curves, 8, meter=meter)
        assert meter.dp_cells > 0

    def test_respects_min_ways(self):
        rng = np.random.default_rng(3)
        curves = [random_curve(rng, j, 12, 1.0) for j in range(3)]
        got = global_optimize(curves, 12, min_ways=2)
        assert all(got[j][2] >= 2 for j in range(3))

    def test_total_ways_error(self):
        rng = np.random.default_rng(4)
        curves = [random_curve(rng, j, 4, 1.0) for j in range(3)]
        with pytest.raises(ValueError):
            global_optimize(curves, 2, min_ways=1)


class TestReductionTree:
    """The persistent tree must equal a from-scratch rebuild -- assignment
    *and* metered DP charges -- after arbitrary leaf update/splice orders."""

    @staticmethod
    def _assert_matches_scratch(tree, curves, total_ways):
        tree_meter, scratch_meter = OverheadMeter(), OverheadMeter()
        got = tree.solve(tree_meter)
        want = global_optimize(curves, total_ways, min_ways=1, meter=scratch_meter)
        assert got == want
        assert tree_meter.dp_cells == scratch_meter.dp_cells
        assert tree_meter.instructions == scratch_meter.instructions

    @settings(max_examples=60, deadline=None)
    @given(
        ncores=st.integers(1, 6),
        seed=st.integers(0, 10_000),
        ops=st.lists(
            st.tuples(st.sampled_from(["update", "same", "splice", "solve"]),
                      st.integers(0, 5)),
            min_size=1, max_size=24,
        ),
    )
    def test_equals_from_scratch_after_arbitrary_updates(self, ncores, seed, ops):
        rng = np.random.default_rng(seed)
        ways = 8
        tree = ReductionTree(ncores, total_ways=ways, min_ways=1)
        curves = [random_curve(rng, j, ways) for j in range(ncores)]
        for j, c in enumerate(curves):
            tree.set_leaf(j, c)
        self._assert_matches_scratch(tree, curves, ways)
        for op, raw in ops:
            j = raw % ncores
            if op == "update":
                curves[j] = random_curve(rng, j, ways)
                tree.set_leaf(j, curves[j])
            elif op == "same":
                # A numerically identical fresh object must be a no-op.
                c = curves[j]
                tree.set_leaf(j, EnergyCurve(
                    core_id=c.core_id, epi=c.epi.copy(),
                    freq_idx=c.freq_idx.copy(), core_idx=c.core_idx.copy(),
                ))
            elif op == "splice":
                # Scenario swap/depart/arrive: force the leaf dirty, then
                # install the new tenant's curve (possibly equal-valued).
                tree.invalidate(j)
                curves[j] = random_curve(rng, j, ways)
                tree.set_leaf(j, curves[j])
            else:
                self._assert_matches_scratch(tree, curves, ways)
        self._assert_matches_scratch(tree, curves, ways)

    def test_solve_requires_all_leaves(self):
        tree = ReductionTree(3, total_ways=8)
        tree.set_leaf(0, EnergyCurve.pinned(0, 2, 0, 0, 8))
        with pytest.raises(ValueError):
            tree.solve()

    def test_infeasible_total_returns_none_and_recovers(self):
        tree = ReductionTree(2, total_ways=8)
        tree.set_leaf(0, EnergyCurve.pinned(0, 8, 0, 0, 8))
        tree.set_leaf(1, EnergyCurve.pinned(1, 8, 0, 0, 8))
        assert tree.solve() is None
        # Splicing in a satisfiable pair recovers without a rebuild.
        tree.set_leaf(0, EnergyCurve.pinned(0, 4, 0, 0, 8))
        tree.set_leaf(1, EnergyCurve.pinned(1, 4, 0, 0, 8))
        got = tree.solve()
        assert got[0][2] == got[1][2] == 4


class TestLocalOptimize:
    def setup_method(self):
        self.system = default_system(4)
        rng = np.random.default_rng(42)
        shape = (self.system.ncore_sizes, self.system.vf.nlevels, self.system.llc.ways)
        # decreasing in f and w, like real TPI
        self.tpi = (
            2.0 / self.system.vf.freqs_array()[None, :, None]
            + np.linspace(1.5, 0.3, shape[2])[None, None, :]
            + rng.uniform(0, 0.05, shape)
        )
        self.epi = rng.uniform(0.5, 3.0, shape)

    def _brute(self, target, dims):
        cores = dims.cores(self.system)
        freqs = dims.freqs(self.system)
        n_w = self.system.llc.ways
        out = np.full(n_w, np.inf)
        for w in range(n_w):
            if dims.pin_ways is not None and w != dims.pin_ways - 1:
                continue
            for c in cores:
                for f in freqs:
                    if self.tpi[c, f, w] <= target and self.epi[c, f, w] < out[w]:
                        out[w] = self.epi[c, f, w]
        return out

    def test_matches_bruteforce_full_dims(self):
        dims = DimSpec()
        target = qos_target_tpi(self.system, self.tpi, 0.0)
        curve = local_optimize(self.system, 0, self.tpi, self.epi, target, dims)
        np.testing.assert_allclose(curve.epi, self._brute(target, dims))

    def test_matches_bruteforce_restricted(self):
        dims = DimSpec(core_indices=(1,), freq_indices=(0, 5, 10))
        target = qos_target_tpi(self.system, self.tpi, 0.1)
        curve = local_optimize(self.system, 0, self.tpi, self.epi, target, dims)
        np.testing.assert_allclose(curve.epi, self._brute(target, dims))

    def test_pin_ways(self):
        dims = DimSpec(pin_ways=4)
        target = qos_target_tpi(self.system, self.tpi, 0.0)
        curve = local_optimize(self.system, 0, self.tpi, self.epi, target, dims)
        assert np.isfinite(curve.epi[3])
        assert np.isinf(np.delete(curve.epi, 3)).all()

    def test_selected_settings_are_feasible_and_argmin(self):
        dims = DimSpec()
        target = qos_target_tpi(self.system, self.tpi, 0.0)
        curve = local_optimize(self.system, 0, self.tpi, self.epi, target, dims)
        for w in range(self.system.llc.ways):
            if not np.isfinite(curve.epi[w]):
                continue
            c, f = int(curve.core_idx[w]), int(curve.freq_idx[w])
            assert self.tpi[c, f, w] <= target
            assert self.epi[c, f, w] == pytest.approx(curve.epi[w])

    def test_baseline_always_feasible_at_zero_slack(self):
        dims = DimSpec()
        target = qos_target_tpi(self.system, self.tpi, 0.0)
        curve = local_optimize(self.system, 0, self.tpi, self.epi, target, dims)
        assert np.isfinite(curve.epi[self.system.baseline_ways - 1])

    def test_more_slack_never_raises_energy(self):
        dims = DimSpec()
        t0 = qos_target_tpi(self.system, self.tpi, 0.0)
        t1 = qos_target_tpi(self.system, self.tpi, 0.5)
        c0 = local_optimize(self.system, 0, self.tpi, self.epi, t0, dims)
        c1 = local_optimize(self.system, 0, self.tpi, self.epi, t1, dims)
        mask = np.isfinite(c0.epi)
        assert np.all(c1.epi[mask] <= c0.epi[mask] + 1e-12)

    def test_meter_grid_points(self):
        meter = OverheadMeter()
        meter.begin_invocation()
        dims = DimSpec(core_indices=(1,))
        target = qos_target_tpi(self.system, self.tpi, 0.0)
        local_optimize(self.system, 0, self.tpi, self.epi, target, dims, meter)
        assert meter.grid_points == self.system.vf.nlevels * self.system.llc.ways


class TestQosTarget:
    def test_monotone_in_slack(self):
        system = default_system(4)
        tpi = np.full((3, system.vf.nlevels, 16), 1.0)
        assert qos_target_tpi(system, tpi, 0.5) > qos_target_tpi(system, tpi, 0.0)

    def test_tolerance_applied(self):
        from repro.core.qos import QOS_TOLERANCE

        system = default_system(4)
        tpi = np.full((3, system.vf.nlevels, 16), 1.0)
        assert qos_target_tpi(system, tpi, 0.0, tolerance=0.0) == pytest.approx(1.0)
        assert qos_target_tpi(system, tpi, 0.0) == pytest.approx(1.0 + QOS_TOLERANCE)

    def test_rejects_negative_slack(self):
        system = default_system(4)
        with pytest.raises(ValueError):
            qos_target_tpi(system, np.ones((3, system.vf.nlevels, 16)), -0.1)


class TestOverheadMeter:
    def test_accumulates(self):
        m = OverheadMeter()
        m.begin_invocation()
        m.charge_grid(100)
        m.charge_dp(50)
        assert m.invocations == 1
        assert m.instructions > 0
        assert m.instructions_per_invocation == m.instructions

    def test_per_invocation_average(self):
        m = OverheadMeter()
        m.begin_invocation()
        m.charge_grid(10)
        m.begin_invocation()
        m.charge_grid(30)
        assert m.invocations == 2
        assert m.max_invocation_instructions >= m.instructions_per_invocation

    def test_overhead_fraction(self):
        m = OverheadMeter()
        m.begin_invocation()
        m.charge_grid(1000)
        assert 0 < m.overhead_fraction(100_000_000) < 0.01

    def test_empty_meter(self):
        m = OverheadMeter()
        assert m.instructions_per_invocation == 0.0
        assert m.max_invocation_instructions == 0.0
