"""The hierarchical clustered manager's contracts.

Two guarantees anchor the cluster tier:

* **single-cluster identity** -- ``ClusteredManager`` with
  ``cluster_size >= ncores`` must equal ``CoordinatedManager
  (incremental=True)`` bit for bit (decisions, energies, interval samples
  and metered RMA overhead) across fixed workloads and every dynamic
  scenario shape, because one uncapped cluster plus a pass-through second
  level *is* the flat reduction;
* **bounded gap** -- with several clusters the per-cluster way caps
  restrict the optimiser, but the end-to-end energy must stay within a
  small bound of the flat manager's (10% here; measured gaps are far
  smaller).

Property-based tests pin the two-level reduction itself: over random
curves and splice orders a single-cluster hierarchy matches the flat tree
exactly, an uncapped multi-cluster hierarchy reaches the flat optimum's
total energy, and a capped hierarchy always yields a valid allocation
respecting its caps.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.curves import EnergyCurve
from repro.core.global_opt import (
    ReductionTree,
    cluster_way_caps,
    global_optimize,
    partition_clusters,
)
from repro.core.managers import (
    ClusteredManager,
    dvfs_only,
    rm1_partitioning_only,
    rm2_combined,
    rm3_core_adaptive,
)
from repro.core.overhead_meter import OverheadMeter
from repro.scenarios import (
    burst_load,
    churn,
    cluster_churn,
    poisson_arrivals,
    qos_ramp,
    skewed_load,
)
from repro.simulation.rma_sim import RMASimulator
from repro.workloads.mixes import Workload
from tests.conftest import TEST_BENCHMARKS

MANAGERS = [
    ("rm1", rm1_partitioning_only),
    ("rm2", rm2_combined),
    ("rm3", rm3_core_adaptive),
    ("dvfs-only", dvfs_only),
]

SCENARIO_SHAPES = [
    ("s1-poisson", poisson_arrivals, {"rate_per_interval": 0.35}),
    ("s2-qos-ramp", qos_ramp, {}),
    ("s3-churn", churn, {"cycles": 4}),
    ("s4-burst", burst_load, {}),
]


def assert_same_numbers(a, b) -> None:
    """RunResult equality with ``==`` on every number (names aside)."""
    assert a.rma_invocations == b.rma_invocations
    assert a.rma_instructions == b.rma_instructions
    assert len(a.apps) == len(b.apps)
    for x, y in zip(a.apps, b.apps):
        assert (x.app, x.core, x.intervals, x.slack) == (y.app, y.core, y.intervals, y.slack)
        assert x.time_ns == y.time_ns
        assert x.energy_nj == y.energy_nj
    assert len(a.interval_samples) == len(b.interval_samples)
    for x, y in zip(a.interval_samples, b.interval_samples):
        assert x == y


def _flat_and_one_cluster(factory, ncores: int, oracle: bool = False):
    flat = factory(incremental=True, oracle=oracle)
    one = factory(cluster_size=ncores, oracle=oracle)
    assert isinstance(one, ClusteredManager)
    return flat, one


class TestSingleClusterIdentity:
    """cluster_size >= ncores must be the flat incremental manager, bit for bit."""

    @pytest.mark.parametrize("label,factory", MANAGERS, ids=[m[0] for m in MANAGERS])
    def test_fixed_workload(self, system4, db4, label, factory):
        wl = Workload(
            name="clus4",
            apps=("mcf_like", "soplex_like", "libquantum_like", "povray_like"),
        )
        flat, one = _flat_and_one_cluster(factory, 4)
        a = RMASimulator(system4, db4, wl, flat, max_slices=6).run()
        b = RMASimulator(system4, db4, wl, one, max_slices=6).run()
        assert_same_numbers(a, b)

    def test_fixed_workload_oracle(self, system4, db4):
        wl = Workload(
            name="clus4-oracle",
            apps=("mcf_like", "astar_like", "lbm_like", "namd_like"),
        )
        flat, one = _flat_and_one_cluster(rm2_combined, 4, oracle=True)
        a = RMASimulator(system4, db4, wl, flat, max_slices=6).run()
        b = RMASimulator(system4, db4, wl, one, max_slices=6).run()
        assert_same_numbers(a, b)

    @pytest.mark.parametrize(
        "label,gen,kwargs", SCENARIO_SHAPES, ids=[s[0] for s in SCENARIO_SHAPES]
    )
    @pytest.mark.parametrize(
        "mlabel,factory", [("rm2", rm2_combined), ("rm3", rm3_core_adaptive)],
        ids=["rm2", "rm3"],
    )
    def test_scenario_shapes(self, system4, db4, label, gen, kwargs, mlabel, factory):
        sc = gen(label, 4, TEST_BENCHMARKS, horizon_intervals=24, seed=3, **kwargs)
        flat, one = _flat_and_one_cluster(factory, 4)
        a = RMASimulator(system4, db4, sc.workload, flat,
                         max_slices=6, scenario=sc).run()
        b = RMASimulator(system4, db4, sc.workload, one,
                         max_slices=6, scenario=sc).run()
        assert_same_numbers(a, b)

    @pytest.mark.parametrize(
        "label,gen,kwargs",
        [
            ("s5-cluster-churn", cluster_churn, {"cluster_size": 4, "cycles": 3}),
            ("s6-skewed", skewed_load, {}),
        ],
        ids=["s5", "s6"],
    )
    def test_manycore_shapes_8core(self, system8, db8, label, gen, kwargs):
        sc = gen(label, 8, TEST_BENCHMARKS, horizon_intervals=32, seed=1, **kwargs)
        flat, one = _flat_and_one_cluster(rm2_combined, 8)
        a = RMASimulator(system8, db8, sc.workload, flat,
                         max_slices=4, scenario=sc).run()
        b = RMASimulator(system8, db8, sc.workload, one,
                         max_slices=4, scenario=sc).run()
        assert_same_numbers(a, b)

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 1000), shape=st.integers(0, 3))
    def test_splice_orders(self, system4, db4, seed, shape):
        """Random (seed, shape) event streams: every splice order matches."""
        label, gen, kwargs = SCENARIO_SHAPES[shape]
        sc = gen(f"{label}-{seed}", 4, TEST_BENCHMARKS,
                 horizon_intervals=16, seed=seed, **kwargs)
        flat, one = _flat_and_one_cluster(rm2_combined, 4)
        a = RMASimulator(system4, db4, sc.workload, flat,
                         max_slices=4, scenario=sc).run()
        b = RMASimulator(system4, db4, sc.workload, one,
                         max_slices=4, scenario=sc).run()
        assert_same_numbers(a, b)


# ---- property-based tests of the two-level reduction itself ----------------

def _random_curves(rng: np.random.Generator, ncores: int, ways: int) -> list[EnergyCurve]:
    """Random per-core curves with sporadic infeasible (inf) entries."""
    curves = []
    for j in range(ncores):
        epi = rng.uniform(0.1, 5.0, size=ways)
        mask = rng.random(ways) < 0.2
        epi = np.where(mask, np.inf, epi)
        curves.append(
            EnergyCurve(
                core_id=j,
                epi=epi,
                freq_idx=rng.integers(0, 4, size=ways),
                core_idx=rng.integers(0, 3, size=ways),
            )
        )
    return curves


def _two_level_solve(curves, clusters, caps, total_ways, meter=None):
    """One clustered solve over prebuilt curves (the manager's inner loop)."""
    level2 = ReductionTree(len(clusters), total_ways, 1)
    for ci, members in enumerate(clusters):
        tree = ReductionTree(len(members), caps[ci], 1)
        for local, j in enumerate(members):
            tree.set_leaf(local, curves[j])
        root, changed = tree.refresh(meter)
        level2.set_leaf_node(ci, root, changed)
    return level2.solve(meter)


def _energy(curves, assignment) -> float:
    return sum(float(curves[j].epi[w - 1]) for j, (_, _, w) in assignment.items())


class TestTwoLevelReduction:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), ncores=st.integers(1, 9))
    def test_single_cluster_equals_flat_tree(self, seed, ncores):
        """One uncapped cluster is the flat tree: assignment and meter."""
        rng = np.random.default_rng(seed)
        ways = 3 * ncores + int(rng.integers(0, 4))
        curves = _random_curves(rng, ncores, ways)

        flat_tree = ReductionTree(ncores, ways, 1)
        for j, c in enumerate(curves):
            flat_tree.set_leaf(j, c)
        m_flat, m_clus = OverheadMeter(), OverheadMeter()
        want = flat_tree.solve(m_flat)
        got = _two_level_solve(
            curves, partition_clusters(ncores, ncores), (ways,), ways, m_clus
        )
        assert got == want
        assert m_clus.instructions == m_flat.instructions
        assert m_clus.dp_cells == m_flat.dp_cells

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        ncores=st.integers(2, 12),
        cluster_size=st.integers(1, 6),
    )
    def test_uncapped_hierarchy_reaches_flat_optimum(self, seed, ncores, cluster_size):
        """With caps at the full associativity the hierarchy loses nothing:
        the assignment may differ in tie-breaks, the total energy may not."""
        rng = np.random.default_rng(seed)
        ways = 3 * ncores
        curves = _random_curves(rng, ncores, ways)
        flat = global_optimize(curves, ways, min_ways=1)
        clusters = partition_clusters(ncores, cluster_size)
        got = _two_level_solve(curves, clusters, (ways,) * len(clusters), ways)
        if flat is None:
            assert got is None
            return
        assert got is not None
        assert _energy(curves, got) == pytest.approx(_energy(curves, flat), rel=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        ncores=st.integers(2, 12),
        cluster_size=st.integers(1, 6),
    )
    def test_capped_hierarchy_yields_valid_bounded_allocation(
        self, seed, ncores, cluster_size
    ):
        """Caps restrict the solution space: the result (when feasible) is a
        valid allocation -- ways sum exactly, per-cluster totals respect the
        caps -- and its energy is never better than the flat optimum."""
        rng = np.random.default_rng(seed)
        ways = 3 * ncores
        curves = _random_curves(rng, ncores, ways)
        clusters = partition_clusters(ncores, cluster_size)
        caps = cluster_way_caps(ways, ncores, clusters, 1, overprovision=1.5)
        got = _two_level_solve(curves, clusters, caps, ways)
        if got is None:
            return
        assert sorted(got) == list(range(ncores))
        assert sum(w for (_, _, w) in got.values()) == ways
        for members, cap in zip(clusters, caps):
            assert sum(got[j][2] for j in members) <= cap
        for j, (_, _, w) in got.items():
            assert w >= 1
            assert np.isfinite(curves[j].epi[w - 1])
        flat = global_optimize(curves, ways, min_ways=1)
        if flat is not None:
            assert _energy(curves, got) >= _energy(curves, flat) - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), ncores=st.integers(2, 9))
    def test_splice_sequences_match_rebuild(self, seed, ncores):
        """Random update/invalidate sequences: the persistent two-level
        hierarchy equals a from-scratch two-level rebuild every round."""
        rng = np.random.default_rng(seed)
        ways = 3 * ncores
        cluster_size = int(rng.integers(1, ncores + 1))
        clusters = partition_clusters(ncores, cluster_size)
        caps = cluster_way_caps(ways, ncores, clusters, 1)
        cluster_of = {
            j: (ci, local)
            for ci, members in enumerate(clusters)
            for local, j in enumerate(members)
        }

        curves = _random_curves(rng, ncores, ways)
        trees = [ReductionTree(len(m), cap, 1) for m, cap in zip(clusters, caps)]
        level2 = ReductionTree(len(clusters), ways, 1)
        for rounds in range(4):
            # Splice a random subset of leaves with fresh curves.
            for j in np.flatnonzero(rng.random(ncores) < 0.5):
                curves[int(j)] = _random_curves(rng, ncores, ways)[int(j)]
                ci, local = cluster_of[int(j)]
                trees[ci].invalidate(local)
            for ci, members in enumerate(clusters):
                for local, j in enumerate(members):
                    trees[ci].set_leaf(local, curves[j])
                root, changed = trees[ci].refresh()
                level2.set_leaf_node(ci, root, changed)
            persistent = level2.solve()
            rebuilt = _two_level_solve(curves, clusters, caps, ways)
            assert persistent == rebuilt


class TestBoundedGap:
    """Multi-cluster energy stays within 10% of the flat manager's."""

    def _gap_pct(self, system, db, sc, cluster_size, max_slices) -> float:
        flat = RMASimulator(system, db, sc.workload, rm2_combined(),
                            max_slices=max_slices, scenario=sc).run()
        clus = RMASimulator(system, db, sc.workload,
                            rm2_combined(cluster_size=cluster_size),
                            max_slices=max_slices, scenario=sc).run()
        return 100.0 * abs(clus.total_energy_nj - flat.total_energy_nj) / flat.total_energy_nj

    def test_8core_binding_caps(self, system8, db8):
        # cluster_size=2 at 8 cores: caps of 16 < 32 ways genuinely bind.
        sc = poisson_arrivals("gap8", 8, TEST_BENCHMARKS,
                              horizon_intervals=64, seed=0)
        assert self._gap_pct(system8, db8, sc, cluster_size=2, max_slices=6) < 10.0

    def test_16core_binding_caps(self, system16, db16):
        # cluster_size=4 at 16 cores: caps of 32 < 64 ways bind.
        sc = skewed_load("gap16", 16, TEST_BENCHMARKS,
                         horizon_intervals=96, seed=0)
        assert self._gap_pct(system16, db16, sc, cluster_size=4, max_slices=6) < 10.0


class TestClusteredWiring:
    def test_partition_and_caps(self):
        assert partition_clusters(10, 4) == ((0, 1, 2, 3), (4, 5, 6, 7), (8, 9))
        caps = cluster_way_caps(64, 16, partition_clusters(16, 4), 1)
        assert caps == (32, 32, 32, 32)
        # One cluster covering all cores is capped at the full associativity.
        assert cluster_way_caps(64, 16, partition_clusters(16, 16), 1) == (64,)
        # Caps always admit a full allocation.
        assert sum(caps) >= 64

    def test_factories_build_clustered_variants(self):
        for factory in (rm1_partitioning_only, rm2_combined,
                        rm3_core_adaptive, dvfs_only):
            mgr = factory(cluster_size=8)
            assert isinstance(mgr, ClusteredManager)
            assert mgr.name.endswith("-c8")
            assert mgr.incremental is True

    def test_manager_spec_builds_clustered(self):
        from repro.experiments.runner import rm2_clustered

        spec = rm2_clustered(8)
        mgr = spec.build()
        assert isinstance(mgr, ClusteredManager)
        assert mgr.cluster_size == 8
        import pickle

        assert pickle.loads(pickle.dumps(spec)) == spec
