"""Shared fixtures: a small system and a cached simulation database.

The session-scoped database uses a repo-local on-disk cache so repeated test
runs skip the detailed-simulation step entirely (the same property the
paper's framework is designed around).
"""

from __future__ import annotations

import os

import pytest

from repro import default_system
from repro.simulation.database import build_database

#: Benchmarks covering all four Paper I categories and all four Paper II
#: types, kept small so the database builds fast.
TEST_BENCHMARKS = [
    "mcf_like",        # MI-CS, B
    "soplex_like",     # MI-CS, A
    "libquantum_like", # MI-CI, C
    "lbm_like",        # MI-CI, C
    "astar_like",      # CP-CS, B
    "povray_like",     # CP-CI, D
    "namd_like",       # CP-CI, D
]

CACHE_DIR = os.path.join(os.path.dirname(__file__), "..", ".sim_cache")


@pytest.fixture(scope="session")
def system4():
    return default_system(ncores=4)


@pytest.fixture(scope="session")
def system8():
    return default_system(ncores=8)


@pytest.fixture(scope="session")
def db4(system4):
    """Small-suite 4-core database (disk-cached across test sessions)."""
    return build_database(
        system4, names=TEST_BENCHMARKS, accesses_per_set=400, cache_dir=CACHE_DIR
    )


@pytest.fixture(scope="session")
def db8(system8):
    """Small-suite 8-core database (disk-cached across test sessions)."""
    return build_database(
        system8, names=TEST_BENCHMARKS, accesses_per_set=400, cache_dir=CACHE_DIR
    )


@pytest.fixture(scope="session")
def system16():
    return default_system(ncores=16)


@pytest.fixture(scope="session")
def db16(system16):
    """Small-suite 16-core database for the cluster-tier bounded-gap tests."""
    return build_database(
        system16, names=TEST_BENCHMARKS, accesses_per_set=400, cache_dir=CACHE_DIR
    )


@pytest.fixture(scope="session")
def system64():
    return default_system(ncores=64)


@pytest.fixture(scope="session")
def db64(system64):
    """Small-suite 64-core database for the many-core equivalence run.

    Shares the bench tools' database digest (same app subset and fidelity),
    so local and CI runs reuse the ``.sim_cache`` entry the scaling
    benchmark builds.
    """
    return build_database(
        system64, names=TEST_BENCHMARKS, accesses_per_set=400, cache_dir=CACHE_DIR
    )
