"""Tests for the future-work extensions: phase history and co-location."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.colocation import (
    AppProfile,
    group_score,
    pair_score,
    profile_app,
    suggest_colocation,
)
from repro.core.history import (
    MIN_TRANSITIONS,
    CoreHistory,
    rm2_history,
    rm3_history,
    signature,
)
from repro.simulation.metrics import compare_runs
from repro.simulation.rma_sim import simulate_workload
from repro.workloads.mixes import Workload


class TestSignature:
    def test_same_phase_same_signature(self, system4, db4):
        rec = max(db4.records["mcf_like"].values(), key=lambda r: r.weight)
        base = system4.baseline_allocation()
        assert signature(rec.observe(system4, base)) == signature(rec.observe(system4, base))

    def test_different_phases_differ(self, system4, db4):
        recs = sorted(db4.records["mcf_like"].values(), key=lambda r: -r.weight)
        base = system4.baseline_allocation()
        if len(recs) >= 2:
            a = signature(recs[0].observe(system4, base))
            b = signature(recs[1].observe(system4, base))
            assert a != b


class TestCoreHistory:
    def _snapshot(self, system4, db4, bench="mcf_like", which=0):
        recs = sorted(db4.records[bench].values(), key=lambda r: -r.weight)
        rec = recs[min(which, len(recs) - 1)]
        return rec, rec.observe(system4, system4.baseline_allocation())

    def test_observe_creates_and_updates(self, system4, db4):
        rec, snap = self._snapshot(system4, db4)
        hist = CoreHistory()
        sig = signature(snap)
        hist.observe(sig, snap, rec.mpki_sampled, rec.mlp_sampled)
        assert hist.table[sig].visits == 1
        hist.observe(sig, snap, rec.mpki_sampled, rec.mlp_sampled)
        assert hist.table[sig].visits == 2

    def test_smoothing_converges_to_truth(self, system4, db4):
        rec, snap = self._snapshot(system4, db4)
        hist = CoreHistory()
        sig = signature(snap)
        noisy = rec.mpki_sampled * 1.5
        hist.observe(sig, snap, noisy, rec.mlp_sampled)
        for _ in range(8):
            hist.observe(sig, snap, rec.mpki_sampled, rec.mlp_sampled)
        np.testing.assert_allclose(
            hist.table[sig].mpki_sampled, rec.mpki_sampled, rtol=0.02
        )

    def test_transition_prediction_needs_evidence(self, system4, db4):
        rec_a, snap_a = self._snapshot(system4, db4, which=0)
        rec_b, snap_b = self._snapshot(system4, db4, which=1)
        sig_a, sig_b = signature(snap_a), signature(snap_b)
        if sig_a == sig_b:
            pytest.skip("phases collapsed to one signature")
        hist = CoreHistory()
        hist.observe(sig_a, snap_a, rec_a.mpki_sampled, rec_a.mlp_sampled)
        hist.observe(sig_b, snap_b, rec_b.mpki_sampled, rec_b.mlp_sampled)
        # one observed a->b transition is not enough evidence
        assert hist.predict_next(sig_a) == sig_a
        for _ in range(MIN_TRANSITIONS):
            hist.observe(sig_a, snap_a, rec_a.mpki_sampled, rec_a.mlp_sampled)
            hist.observe(sig_b, snap_b, rec_b.mpki_sampled, rec_b.mlp_sampled)
        assert hist.predict_next(sig_a) == sig_b

    def test_mlp_floor_maintained(self, system4, db4):
        rec, snap = self._snapshot(system4, db4)
        hist = CoreHistory()
        sig = signature(snap)
        hist.observe(sig, snap, rec.mpki_sampled, np.ones_like(rec.mlp_sampled))
        hist.observe(sig, snap, rec.mpki_sampled, np.ones_like(rec.mlp_sampled) * 0.5)
        assert np.all(hist.table[sig].mlp_sampled >= 1.0)


class TestHistoryAwareManager:
    WL = Workload(
        name="hist-mix", apps=("mcf_like", "soplex_like", "libquantum_like", "povray_like")
    )

    def test_runs_and_saves(self, system4, db4):
        base = simulate_workload(system4, db4, self.WL, max_slices=30)
        run = simulate_workload(system4, db4, self.WL, rm2_history(), max_slices=30)
        cmp = compare_runs(base, run)
        assert cmp.savings_pct > 2.0

    def test_comparable_to_stock_rm2(self, system4, db4):
        from repro.core.managers import rm2_combined

        base = simulate_workload(system4, db4, self.WL, max_slices=30)
        stock = compare_runs(
            base, simulate_workload(system4, db4, self.WL, rm2_combined(), max_slices=30)
        )
        hist = compare_runs(
            base, simulate_workload(system4, db4, self.WL, rm2_history(), max_slices=30)
        )
        assert hist.savings_pct > stock.savings_pct - 1.0
        assert hist.n_violations <= stock.n_violations + 1

    def test_attach_resets_history(self, system4, db4):
        mgr = rm2_history()
        simulate_workload(system4, db4, self.WL, mgr, max_slices=5)
        assert mgr.history
        mgr.attach(None.__class__ and __import__("types").SimpleNamespace(system=system4))
        assert mgr.history == {}

    def test_rm3_variant(self, system4, db4):
        base = simulate_workload(system4, db4, self.WL, max_slices=20)
        run = simulate_workload(system4, db4, self.WL, rm3_history(), max_slices=20)
        cmp = compare_runs(base, run)
        assert np.isfinite(cmp.savings_pct)

    def test_factory_names(self):
        assert rm2_history().name == "rm2-history"
        assert rm3_history().control_core_size is True


class TestColocation:
    def test_profile_receiver_vs_donor(self, system4, db4):
        mcf = profile_app(system4, db4, "mcf_like")
        libq = profile_app(system4, db4, "libquantum_like")
        assert mcf.receiver_appetite > libq.receiver_appetite
        assert libq.donor_cost < mcf.donor_cost

    def test_parallelism_headroom(self, system4, db4):
        libq = profile_app(system4, db4, "libquantum_like")
        povray = profile_app(system4, db4, "povray_like")
        assert libq.mlp_headroom > povray.mlp_headroom

    def test_pair_score_prefers_receiver_donor(self):
        receiver = AppProfile("r", 20.0, 8.0, 5.0, 0.0)
        donor = AppProfile("d", 30.0, 0.1, 0.1, 0.0)
        other_receiver = AppProfile("r2", 20.0, 8.0, 5.0, 0.0)
        assert pair_score(receiver, donor) > pair_score(receiver, other_receiver)

    def test_pair_score_is_two_app_group_score(self):
        a = AppProfile("a", 1.0, 2.0, 1.0, 0.1)
        b = AppProfile("b", 1.0, 0.1, 0.1, 0.4)
        assert pair_score(a, b) == pytest.approx(group_score([a, b]))

    def test_splitting_receivers_beats_stacking(self):
        """Way-budget competition: two hungry receivers on one machine score
        less in total than one receiver per machine."""
        receiver = AppProfile("r", 20.0, 8.0, 5.0, 0.0)
        donor = AppProfile("d", 30.0, 0.1, 0.1, 0.0)
        stacked = group_score([receiver, receiver, donor, donor]) + group_score(
            [donor, donor, donor, donor]
        )
        split = 2 * group_score([receiver, donor, donor, donor])
        assert split > stacked

    def test_suggest_splits_receivers(self, system4, db4):
        pool = [
            "mcf_like", "soplex_like",
            "libquantum_like", "lbm_like",
            "povray_like", "namd_like",
            "astar_like", "libquantum_like",
        ]
        groups = suggest_colocation(system4, db4, pool)
        assert len(groups) == 2
        assert sorted(a for g in groups for a in g) == sorted(pool)
        # the two strong receivers must not share a machine
        for g in groups:
            assert not {"mcf_like", "soplex_like"} <= set(g)

    def test_requires_multiple_of_ncores(self, system4, db4):
        with pytest.raises(ValueError):
            suggest_colocation(system4, db4, ["mcf_like"] * 5)
