"""Tests for the analytical models and the resource-manager behaviours."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.energy_model import predict_epi_grid
from repro.core.managers import (
    CoordinatedManager,
    StaticBaselineManager,
    dvfs_only,
    rm1_partitioning_only,
    rm2_combined,
    rm3_core_adaptive,
)
from repro.core.models import MLP_MODELS, Model1, Model2, Model3
from repro.core.perf_model import exec_cpi_estimate, predict_tpi_grid
from repro.simulation.rma_sim import RMASimulator, simulate_workload
from repro.workloads.mixes import Workload


@pytest.fixture(scope="module")
def snapshot_setup(db4, system4):
    rec = max(db4.records["mcf_like"].values(), key=lambda r: r.weight)
    snap = rec.observe(system4, system4.baseline_allocation())
    return system4, rec, snap


class TestMLPModels:
    def test_registry(self):
        assert set(MLP_MODELS) == {"model1", "model2", "model3"}

    def test_model1_all_ones(self, snapshot_setup):
        system, rec, snap = snapshot_setup
        grid = Model1.mlp_hat(system, snap, rec.mlp_sampled)
        assert np.all(grid == 1.0)

    def test_model2_constant_observed(self, snapshot_setup):
        system, rec, snap = snapshot_setup
        grid = Model2.mlp_hat(system, snap, rec.mlp_sampled)
        assert np.all(grid == snap.mlp_observed)

    def test_model3_reads_table(self, snapshot_setup):
        system, rec, snap = snapshot_setup
        grid = Model3.mlp_hat(system, snap, rec.mlp_sampled)
        np.testing.assert_array_equal(grid, rec.mlp_sampled)


class TestPerfModel:
    def test_prediction_near_truth_at_current_config(self, snapshot_setup):
        """With the observed-MLP model, the predicted TPI at the *current*
        configuration must be close to the measured TPI (the model is anchored
        on counters)."""
        system, rec, snap = snapshot_setup
        mlp_hat = Model2.mlp_hat(system, snap, rec.mlp_sampled)
        tpi = predict_tpi_grid(system, snap, rec.mpki_sampled, mlp_hat)
        cur = tpi[snap.core_index, snap.freq_index, snap.ways - 1]
        truth = rec.tpi_at(system4_alloc(system))
        assert cur == pytest.approx(truth, rel=0.12)

    def test_prediction_monotone(self, snapshot_setup):
        system, rec, snap = snapshot_setup
        mlp_hat = Model2.mlp_hat(system, snap, rec.mlp_sampled)
        tpi = predict_tpi_grid(system, snap, rec.mpki_sampled, mlp_hat)
        assert np.all(np.diff(tpi, axis=1) <= 1e-12)   # faster clock, faster
        assert np.all(np.diff(tpi, axis=2) <= 1e-9)    # more cache, faster

    def test_model1_less_accurate_than_model2_at_anchor(self, snapshot_setup):
        """Model 2 is anchored on the measured stall (its MLP is the observed
        one), so at the current configuration it must beat Model 1, whose
        unit-MLP assumption distorts both the memory and the execution term."""
        system, rec, snap = snapshot_setup
        truth = rec.tpi_at(system.baseline_allocation())
        errs = {}
        for model in (Model1, Model2):
            tpi = predict_tpi_grid(
                system, snap, rec.mpki_sampled, model.mlp_hat(system, snap, rec.mlp_sampled)
            )
            cur = tpi[snap.core_index, snap.freq_index, snap.ways - 1]
            errs[model.name] = abs(cur - truth)
        assert errs["model1"] >= errs["model2"]

    def test_exec_cpi_floor(self, snapshot_setup):
        system, rec, snap = snapshot_setup
        est = exec_cpi_estimate(system, snap)
        for cpi, core in zip(est, system.core_sizes):
            assert cpi >= 1.0 / core.width - 1e-12


def system4_alloc(system):
    return system.baseline_allocation()


class TestEnergyModel:
    def test_positive_and_shaped(self, snapshot_setup):
        system, rec, snap = snapshot_setup
        mlp_hat = Model2.mlp_hat(system, snap, rec.mlp_sampled)
        tpi = predict_tpi_grid(system, snap, rec.mpki_sampled, mlp_hat)
        epi = predict_epi_grid(system, snap, rec.mpki_sampled, tpi)
        assert epi.shape == tpi.shape
        assert np.all(epi > 0)

    def test_prediction_near_truth_at_current_config(self, snapshot_setup):
        system, rec, snap = snapshot_setup
        mlp_hat = Model2.mlp_hat(system, snap, rec.mlp_sampled)
        tpi = predict_tpi_grid(system, snap, rec.mpki_sampled, mlp_hat)
        epi = predict_epi_grid(system, snap, rec.mpki_sampled, tpi)
        cur = epi[snap.core_index, snap.freq_index, snap.ways - 1]
        truth = rec.epi_at(system.baseline_allocation())
        assert cur == pytest.approx(truth, rel=0.15)


class TestManagers:
    def _wl(self):
        return Workload(
            name="m4", apps=("mcf_like", "soplex_like", "libquantum_like", "povray_like")
        )

    def test_baseline_manager_returns_none(self, system4, db4):
        mgr = StaticBaselineManager()
        sim = RMASimulator(system4, db4, self._wl(), mgr, max_slices=3)
        sim.run()
        assert mgr.on_interval(0) is None

    def test_factories_configure_dimensions(self):
        assert rm1_partitioning_only().control_dvfs is False
        assert rm1_partitioning_only().control_partitioning is True
        assert rm2_combined().control_dvfs is True
        assert rm2_combined().control_core_size is False
        assert rm3_core_adaptive().control_core_size is True
        assert dvfs_only().control_partitioning is False

    def test_rm3_defaults_to_model3(self):
        assert rm3_core_adaptive().model is MLP_MODELS["model3"]
        assert rm2_combined().model is MLP_MODELS["model2"]

    def test_attach_resets_state(self, system4, db4):
        mgr = rm2_combined()
        sim = RMASimulator(system4, db4, self._wl(), mgr, max_slices=3)
        sim.run()
        assert mgr.curves
        inv1 = mgr.meter.invocations
        sim2 = RMASimulator(system4, db4, self._wl(), mgr, max_slices=3)
        sim2.run()
        assert mgr.meter.invocations == inv1  # fresh meter per run

    def test_first_invocation_keeps_baseline_for_unknown_cores(self, system4, db4):
        """The paper's protocol: cores without statistics stay at baseline."""
        wl = self._wl()
        mgr = rm2_combined()
        sim = RMASimulator(system4, db4, wl, mgr, max_slices=3)
        mgr.attach(sim)
        # Simulate the very first completion on core 2 only.
        core = sim.cores[2]
        rec = db4.record(core.app, core.seq[0])
        core.last_record = rec
        core.last_snapshot = rec.observe(system4, core.alloc)
        allocs = mgr.on_interval(2)
        for j in (0, 1, 3):
            assert allocs[j].ways == system4.baseline_ways
            assert allocs[j].freq == system4.baseline_freq_index

    def test_oracle_manager_runs(self, system4, db4):
        run = simulate_workload(
            system4, db4, self._wl(), rm2_combined(oracle=True), max_slices=4
        )
        assert run.rma_invocations > 0

    def test_custom_dimensions(self, system4, db4):
        mgr = CoordinatedManager(name="custom", control_dvfs=True,
                                 control_core_size=True, control_partitioning=False)
        run = simulate_workload(system4, db4, self._wl(), mgr, max_slices=4)
        assert run.manager == "custom"

    def test_meter_counts_work(self, system4, db4):
        mgr = rm2_combined()
        run = simulate_workload(system4, db4, self._wl(), mgr, max_slices=4)
        assert run.rma_instructions > 0
        per_inv = run.rma_instructions / run.rma_invocations
        # the paper's bound: well under 0.1% of a 100M-instruction interval
        assert per_inv < 0.001 * system4.interval_instructions
