"""Tests for the dynamic scenario engine.

Covers scenario/event validation, generator determinism (same seed ==
identical event streams), event-application semantics in the RMA simulator
(swap, depart, slack at interval boundaries), manager invalidation on
tenancy changes, and bit-identical results across process counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.managers import StaticBaselineManager, rm2_combined
from repro.experiments.runner import BASELINE, RM2, ExperimentContext
from repro.scenarios import (
    Scenario,
    ScenarioEvent,
    burst_load,
    churn,
    poisson_arrivals,
    qos_ramp,
    trace_arrivals,
)
from repro.simulation.metrics import interval_violation_stats
from repro.simulation.rma_sim import simulate_scenario
from repro.workloads.mixes import Workload
from tests.conftest import TEST_BENCHMARKS

GENERATORS = [poisson_arrivals, churn, qos_ramp, burst_load]


def _ctx(system4, db4) -> ExperimentContext:
    return ExperimentContext(system=system4, db=db4, max_slices=6)


class TestEventValidation:
    def test_kinds_checked(self):
        with pytest.raises(ValueError):
            ScenarioEvent(time_ns=0.0, core=0, kind="teleport")

    def test_swap_needs_app(self):
        with pytest.raises(ValueError):
            ScenarioEvent(time_ns=0.0, core=0, kind="swap")

    def test_slack_needs_value(self):
        with pytest.raises(ValueError):
            ScenarioEvent(time_ns=0.0, core=0, kind="slack")
        with pytest.raises(ValueError):
            ScenarioEvent(time_ns=0.0, core=0, kind="slack", slack=-0.1)

    def test_scenario_rejects_out_of_range_core(self):
        wl = Workload(name="w", apps=("mcf_like", "namd_like"))
        ev = ScenarioEvent(time_ns=1.0, core=7, kind="depart")
        with pytest.raises(ValueError):
            Scenario(name="s", workload=wl, events=(ev,))

    def test_scenario_rejects_unordered_per_core_events(self):
        wl = Workload(name="w", apps=("mcf_like", "namd_like"))
        events = (
            ScenarioEvent(time_ns=5.0, core=0, kind="depart"),
            ScenarioEvent(time_ns=1.0, core=0, kind="swap", app="mcf_like"),
        )
        with pytest.raises(ValueError):
            Scenario(name="s", workload=wl, events=events)

    def test_scenario_needs_one_active_core(self):
        wl = Workload(name="w", apps=("mcf_like", "namd_like"))
        with pytest.raises(ValueError):
            Scenario(name="s", workload=wl, active=(False, False))


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("gen", GENERATORS)
    def test_same_seed_same_events(self, gen):
        a = gen("det", 4, TEST_BENCHMARKS, seed=3, horizon_intervals=32)
        b = gen("det", 4, TEST_BENCHMARKS, seed=3, horizon_intervals=32)
        assert a.workload == b.workload
        assert a.events == b.events
        assert a.active == b.active

    def test_different_seed_different_stream(self):
        a = poisson_arrivals("det", 4, TEST_BENCHMARKS, seed=0)
        b = poisson_arrivals("det", 4, TEST_BENCHMARKS, seed=1)
        assert a.events != b.events

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_events_ordered_per_core(self, gen):
        sc = gen("order", 4, TEST_BENCHMARKS, seed=5, horizon_intervals=48)
        for core in range(4):
            times = [ev.time_ns for ev in sc.events_for(core)]
            assert times == sorted(times)

    def test_trace_arrivals_sorts_entries(self):
        wl = Workload(name="w", apps=("mcf_like", "namd_like"))
        sc = trace_arrivals(
            "trace", wl,
            [(9.0, 1, "lbm_like"), (2.0, 0, "astar_like")],
        )
        assert [ev.time_ns for ev in sc.events] == [2.0, 9.0]
        assert sc.events[0].app == "astar_like"


class TestEngineSemantics:
    def test_horizon_is_exact(self, system4, db4):
        sc = poisson_arrivals("h", 4, TEST_BENCHMARKS, horizon_intervals=20)
        run = simulate_scenario(system4, db4, sc, max_slices=6)
        assert sum(a.intervals for a in run.apps) == 20
        assert run.workload == "h"

    def test_energy_scores_completed_intervals_only(self, system4, db4):
        # Work is fixed at the horizon: totals must grow strictly with it,
        # and per-core energy excludes the in-flight partial interval (a
        # core that completed nothing reports zero energy even though it
        # executed partial work before the horizon hit).
        sc_small = poisson_arrivals("work", 4, TEST_BENCHMARKS, horizon_intervals=8)
        sc_big = poisson_arrivals("work", 4, TEST_BENCHMARKS, horizon_intervals=12)
        small = simulate_scenario(system4, db4, sc_small, max_slices=6)
        big = simulate_scenario(system4, db4, sc_big, max_slices=6)
        assert small.total_energy_nj < big.total_energy_nj
        wl = Workload(name="w", apps=("mcf_like", "namd_like", "namd_like", "namd_like"))
        sc = Scenario(name="partial", workload=wl, horizon_intervals=3)
        run = simulate_scenario(system4, db4, sc, max_slices=6)
        by_core = {a.core: a for a in run.apps}
        # mcf is ~4x slower: it never completes an interval within horizon 3
        assert by_core[0].intervals == 0
        assert by_core[0].energy_nj == 0.0
        assert sum(a.intervals for a in run.apps) == 3

    def test_swap_changes_tenant(self, system4, db4):
        wl = Workload(name="w", apps=("mcf_like",) * 4)
        ev = ScenarioEvent(time_ns=1.0, core=2, kind="swap", app="namd_like")
        sc = Scenario(name="swap", workload=wl, events=(ev,), horizon_intervals=16)
        run = simulate_scenario(system4, db4, sc, max_slices=6)
        by_core = {a.core: a.app for a in run.apps}
        assert by_core[2] == "namd_like"
        assert by_core[0] == "mcf_like"

    def test_slack_event_applies(self, system4, db4):
        wl = Workload(name="w", apps=("mcf_like",) * 4)
        events = tuple(
            ScenarioEvent(time_ns=1.0, core=j, kind="slack", slack=0.25)
            for j in range(4)
        )
        sc = Scenario(name="sl", workload=wl, events=events, horizon_intervals=16)
        run = simulate_scenario(system4, db4, sc, max_slices=6)
        assert all(a.slack == 0.25 for a in run.apps)

    def test_departed_core_stops_accruing(self, system4, db4):
        wl = Workload(name="w", apps=("mcf_like",) * 4)
        ev = ScenarioEvent(time_ns=1.0, core=3, kind="depart")
        sc = Scenario(name="dep", workload=wl, events=(ev,), horizon_intervals=24)
        run = simulate_scenario(system4, db4, sc, max_slices=6)
        by_core = {a.core: a for a in run.apps}
        # the departing core completes at most its first interval
        assert by_core[3].intervals <= 1
        assert by_core[0].intervals > by_core[3].intervals

    def test_all_idle_without_arrivals_raises(self, system4, db4):
        wl = Workload(name="w", apps=("mcf_like",) * 4)
        events = tuple(
            ScenarioEvent(time_ns=1.0, core=j, kind="depart") for j in range(4)
        )
        sc = Scenario(name="drain", workload=wl, events=events, horizon_intervals=64)
        with pytest.raises(ValueError, match="idle"):
            simulate_scenario(system4, db4, sc, max_slices=6)

    def test_idle_gap_then_arrival(self, system4, db4):
        wl = Workload(name="w", apps=("mcf_like",) * 4)
        events = (
            ScenarioEvent(time_ns=1.0, core=1, kind="depart"),
            ScenarioEvent(time_ns=5e8, core=1, kind="swap", app="lbm_like"),
        )
        sc = Scenario(name="gap", workload=wl, events=events, horizon_intervals=24)
        run = simulate_scenario(system4, db4, sc, max_slices=6)
        by_core = {a.core: a for a in run.apps}
        assert by_core[1].app == "lbm_like"
        assert by_core[1].intervals >= 1  # the replacement tenant ran

    def test_interval_samples_cover_every_interval(self, system4, db4):
        sc = churn("cov", 4, TEST_BENCHMARKS, horizon_intervals=30, seed=1)
        run = simulate_scenario(system4, db4, sc, rm2_combined(), max_slices=6)
        assert len(run.interval_samples) == 30
        stats = interval_violation_stats(run.interval_samples)
        assert stats["n"] == 30

    def test_manager_notified_of_tenancy_changes(self, system4, db4):
        calls: list[tuple[int, str]] = []

        class SpyManager(StaticBaselineManager):
            def on_scenario_event(self, core_id: int, kind: str) -> None:
                calls.append((core_id, kind))

        sc = churn("spy", 4, TEST_BENCHMARKS, cycles=4, horizon_intervals=40, seed=0)
        simulate_scenario(system4, db4, sc, SpyManager(), max_slices=6)
        kinds = {kind for _, kind in calls}
        assert kinds == {"swap", "depart"}
        assert len(calls) >= 4

    def test_coordinated_manager_drops_curve_on_swap(self, system4, db4):
        mgr = rm2_combined()
        sc = poisson_arrivals(
            "drop", 4, TEST_BENCHMARKS, rate_per_interval=0.5,
            horizon_intervals=40, seed=2,
        )
        assert any(ev.kind == "swap" for ev in sc.events)
        run = simulate_scenario(system4, db4, sc, mgr, max_slices=6)
        assert run.rma_invocations > 0  # the engine kept optimising throughout


class TestDeterminismAcrossProcesses:
    def _scenarios(self, db4):
        apps = sorted(db4.records)
        return [
            poisson_arrivals("p0", 4, apps, horizon_intervals=24, seed=0),
            churn("c0", 4, apps, cycles=4, horizon_intervals=24, seed=0),
            qos_ramp("q0", 4, apps, horizon_intervals=24, seed=0),
        ]

    @staticmethod
    def _assert_identical(a, b):
        assert a.workload == b.workload and a.manager == b.manager
        assert a.total_energy_nj == b.total_energy_nj  # bit-identical
        for x, y in zip(a.apps, b.apps):
            assert (x.app, x.core, x.intervals) == (y.app, y.core, y.intervals)
            assert x.time_ns == y.time_ns and x.energy_nj == y.energy_nj
        assert len(a.interval_samples) == len(b.interval_samples)
        for x, y in zip(a.interval_samples, b.interval_samples):
            assert x == y

    def test_serial_matches_multiprocess(self, system4, db4):
        ctx = _ctx(system4, db4)
        scenarios = self._scenarios(db4)
        serial = ctx.run_scenarios(scenarios, [BASELINE, RM2], processes=1)
        parallel = ctx.run_scenarios(scenarios, [BASELINE, RM2], processes=3)
        assert set(serial) == set(parallel)
        for key in serial:
            self._assert_identical(serial[key], parallel[key])

    def test_same_seed_identical_runs(self, system4, db4):
        apps = sorted(db4.records)
        for _ in range(2):
            runs = []
            for _ in range(2):
                sc = burst_load("b0", 4, apps, horizon_intervals=24, seed=7)
                runs.append(simulate_scenario(system4, db4, sc, rm2_combined(),
                                              max_slices=6))
            self._assert_identical(runs[0], runs[1])


class TestScenarioExperiments:
    def test_s1_driver(self, system4, db4):
        from repro.experiments.scenarios import s1_poisson_arrivals

        result = s1_poisson_arrivals(_ctx(system4, db4))
        assert result.experiment_id == "S1"
        assert len(result.rows) == 4
        assert "rm2-combined avg savings %" in result.summary

    def test_s2_relax_saves_more_than_tighten(self, system4, db4):
        from repro.experiments.scenarios import s2_qos_ramp

        result = s2_qos_ramp(_ctx(system4, db4))
        rows = {r[0]: r[2] for r in result.rows}  # rm2 savings per scenario
        relax = np.mean([v for k, v in rows.items() if "relax" in k])
        tighten = np.mean([v for k, v in rows.items() if "tighten" in k])
        # both directions spend part of the run relaxed; neither should be
        # wildly negative, and savings must be positive somewhere
        assert max(relax, tighten) > 0.0

    def test_registry_has_scenario_experiments(self):
        from repro.experiments.registry import get_experiment, list_experiments

        ids = list_experiments()
        for sid in ("S1", "S2", "S3", "S4"):
            assert sid in ids
            assert get_experiment(sid).paper == "scenario"
