"""Unit tests for repro.util: rng, stats, tables, parallel, validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.parallel import default_processes, parallel_map
from repro.util.rng import rng_for, seed_for
from repro.util.stats import Summary, geo_mean, summarize, weighted_mean
from repro.util.tables import format_cell, render_table
from repro.util.validation import (
    require,
    require_monotone,
    require_positive,
    require_prob,
)


class TestRng:
    def test_seed_is_stable(self):
        assert seed_for("a", 1, 2.5) == seed_for("a", 1, 2.5)

    def test_different_parts_different_seeds(self):
        assert seed_for("a") != seed_for("b")
        assert seed_for("a", 0) != seed_for("a", 1)

    def test_part_boundaries_matter(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert seed_for("ab", "c") != seed_for("a", "bc")

    def test_rng_reproducible(self):
        a = rng_for("x", 1).standard_normal(8)
        b = rng_for("x", 1).standard_normal(8)
        np.testing.assert_array_equal(a, b)

    def test_rng_streams_independent(self):
        a = rng_for("x", 1).standard_normal(8)
        b = rng_for("x", 2).standard_normal(8)
        assert not np.allclose(a, b)

    def test_seed_is_64_bit(self):
        s = seed_for("anything")
        assert 0 <= s < 2**64


class TestStats:
    def test_geo_mean_basic(self):
        assert geo_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geo_mean_empty(self):
        assert geo_mean([]) == 0.0

    def test_geo_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geo_mean([1.0, 0.0])

    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_weighted_mean_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_weighted_mean_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s == Summary(3, 2.0, pytest.approx(np.std([1, 2, 3])), 1.0, 3.0)

    def test_summarize_empty(self):
        assert summarize([]).n == 0

    @given(st.lists(st.floats(0.1, 100.0), min_size=1, max_size=30))
    def test_geo_mean_between_min_and_max(self, xs):
        g = geo_mean(xs)
        assert min(xs) - 1e-9 <= g <= max(xs) + 1e-9


class TestTables:
    def test_render_basic(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = out.splitlines()
        assert "a" in lines[0] and "bb" in lines[0]
        assert "2.50" in out and "30" in out

    def test_render_with_title(self):
        out = render_table(["x"], [[1]], title="T1")
        assert out.startswith("T1\n==")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_format_cell_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_format_cell_float_format(self):
        assert format_cell(1.234, "{:.1f}") == "1.2"

    def test_columns_align(self):
        out = render_table(["col", "x"], [["aaaa", 1], ["b", 22]])
        rows = out.splitlines()
        assert len(rows[2]) == len(rows[3])


def _square(x):
    return x * x


class TestParallel:
    def test_serial_fallback(self):
        assert parallel_map(_square, [1, 2, 3], processes=1) == [1, 4, 9]

    def test_parallel_matches_serial(self):
        items = list(range(20))
        assert parallel_map(_square, items, processes=4) == [x * x for x in items]

    def test_empty(self):
        assert parallel_map(_square, [], processes=4) == []

    def test_single_item_no_pool(self):
        assert parallel_map(_square, [7], processes=8) == [49]

    def test_default_processes_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "3")
        assert default_processes() == 3

    def test_order_preserved(self):
        items = list(range(50))
        assert parallel_map(_square, items, processes=5) == [x * x for x in items]


class TestValidation:
    def test_require_ok(self):
        require(True, "nope")

    def test_require_raises(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")

    def test_require_prob(self):
        require_prob(0.0, "p")
        require_prob(1.0, "p")
        with pytest.raises(ValueError):
            require_prob(1.01, "p")

    def test_require_positive(self):
        require_positive(0.1, "x")
        with pytest.raises(ValueError):
            require_positive(0.0, "x")

    def test_require_monotone_decreasing(self):
        require_monotone([3.0, 2.0, 2.0, 1.0], "m")
        with pytest.raises(ValueError):
            require_monotone([1.0, 2.0], "m")

    def test_require_monotone_increasing(self):
        require_monotone([1.0, 2.0], "m", increasing=True)
        with pytest.raises(ValueError):
            require_monotone([2.0, 1.0], "m", increasing=True)
