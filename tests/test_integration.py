"""End-to-end integration tests: the paper's headline claims in miniature.

These run the full pipeline (database -> baseline -> managed runs) on the
small test suite and assert the *shape* of the paper's results: who wins,
what is (in)effective, and that QoS holds where it must.
"""

from __future__ import annotations

import pytest

from repro.core.managers import (
    IndependentManager,
    dvfs_only,
    rm1_partitioning_only,
    rm2_combined,
    rm3_core_adaptive,
)
from repro.simulation.metrics import compare_runs, interval_violation_stats
from repro.simulation.rma_sim import simulate_workload
from repro.workloads.mixes import Workload

MAX_SLICES = 40

CS_MIX = Workload(
    name="cs-mix", apps=("mcf_like", "soplex_like", "libquantum_like", "povray_like")
)
STREAM_MIX = Workload(
    name="stream-mix", apps=("libquantum_like", "lbm_like", "libquantum_like", "lbm_like")
)
COMPUTE_MIX = Workload(
    name="compute-mix", apps=("povray_like", "namd_like", "povray_like", "namd_like")
)


@pytest.fixture(scope="module")
def runs(system4, db4):
    """Baseline + managed runs for the three characteristic mixes."""
    out = {}
    for wl in (CS_MIX, STREAM_MIX, COMPUTE_MIX):
        base = simulate_workload(system4, db4, wl, max_slices=MAX_SLICES)
        out[wl.name] = {"base": base, "wl": wl}
    return out


def _cmp(system, db, runs, mix, manager):
    entry = runs[mix]
    run = simulate_workload(system, db, entry["wl"], manager, max_slices=MAX_SLICES)
    return compare_runs(entry["base"], run), run


class TestPaperHeadlines:
    def test_combined_rma_saves_on_cs_mix(self, system4, db4, runs):
        cmp, _ = _cmp(system4, db4, runs, "cs-mix", rm2_combined())
        assert cmp.savings_pct > 3.0

    def test_combined_rma_keeps_qos_tight(self, system4, db4, runs):
        cmp, _ = _cmp(system4, db4, runs, "cs-mix", rm2_combined())
        worst = max(v.slowdown_pct for v in cmp.violations)
        assert worst < 9.0  # paper: max observed violation 9%

    def test_partitioning_only_saves_much_less(self, system4, db4, runs):
        c1, _ = _cmp(system4, db4, runs, "cs-mix", rm1_partitioning_only())
        c2, _ = _cmp(system4, db4, runs, "cs-mix", rm2_combined())
        assert c2.savings_pct > c1.savings_pct + 1.0

    def test_dvfs_only_saves_nothing_under_strict_qos(self, system4, db4, runs):
        for mix in ("cs-mix", "stream-mix", "compute-mix"):
            cmp, _ = _cmp(system4, db4, runs, mix, dvfs_only())
            assert cmp.savings_pct < 0.5, mix

    def test_rm3_beats_rm2_when_parallelism_sensitive(self, system4, db4, runs):
        c2, _ = _cmp(system4, db4, runs, "stream-mix", rm2_combined())
        c3, _ = _cmp(system4, db4, runs, "stream-mix", rm3_core_adaptive())
        assert c2.savings_pct < 1.0          # scenario 3: RM2 ineffective
        assert c3.savings_pct > c2.savings_pct + 3.0

    def test_nothing_works_on_pure_compute(self, system4, db4, runs):
        for mgr in (rm1_partitioning_only(), rm2_combined(), rm3_core_adaptive()):
            cmp, _ = _cmp(system4, db4, runs, "compute-mix", mgr)
            assert abs(cmp.savings_pct) < 1.5, mgr.name

    def test_oracle_at_least_as_good_and_violation_free(self, system4, db4, runs):
        creal, _ = _cmp(system4, db4, runs, "cs-mix", rm2_combined())
        cperf, _ = _cmp(system4, db4, runs, "cs-mix", rm2_combined(oracle=True))
        assert cperf.savings_pct > creal.savings_pct - 1.5
        assert cperf.n_violations == 0

    def test_relaxation_buys_energy(self, system4, db4):
        wl = CS_MIX
        base = simulate_workload(system4, db4, wl, max_slices=MAX_SLICES)
        strict = simulate_workload(
            system4, db4, wl, rm2_combined(oracle=True), max_slices=MAX_SLICES
        )
        relaxed = simulate_workload(
            system4, db4, wl.with_slack(0.4), rm2_combined(oracle=True),
            max_slices=MAX_SLICES,
        )
        s_strict = compare_runs(base, strict).savings_pct
        s_relaxed = compare_runs(base, relaxed).savings_pct
        assert s_relaxed > s_strict + 3.0

    def test_relaxed_qos_still_respected(self, system4, db4):
        wl = CS_MIX.with_slack(0.4)
        base = simulate_workload(system4, db4, CS_MIX, max_slices=MAX_SLICES)
        run = simulate_workload(
            system4, db4, wl, rm2_combined(oracle=True), max_slices=MAX_SLICES
        )
        cmp = compare_runs(base, run)
        assert cmp.n_violations == 0  # within the 40% allowance

    def test_independent_controllers_violate_qos(self, system4, db4, runs):
        cmp, _ = _cmp(system4, db4, runs, "cs-mix", IndependentManager())
        # UCP gives the streaming app's ways away without QoS regard --
        # someone in the mix ends up slower than allowed.
        assert cmp.n_violations >= 1

    def test_model3_interval_violations_bounded(self, system4, db4, runs):
        _, run = _cmp(system4, db4, runs, "stream-mix", rm3_core_adaptive())
        stats = interval_violation_stats(run.interval_samples)
        assert stats["probability"] < 25.0

    def test_energy_conservation(self, system4, db4, runs):
        """Managed energy differs from baseline only by a sane fraction."""
        for mix in ("cs-mix", "stream-mix", "compute-mix"):
            cmp, _ = _cmp(system4, db4, runs, mix, rm3_core_adaptive())
            assert -5.0 < cmp.savings_pct < 40.0


class TestEightCoreHeadlines:
    def test_combined_rma_8core(self, system8, db8):
        wl = Workload(
            name="cs8",
            apps=("mcf_like", "soplex_like", "mcf_like", "astar_like",
                  "libquantum_like", "lbm_like", "povray_like", "namd_like"),
        )
        base = simulate_workload(system8, db8, wl, max_slices=20)
        run = simulate_workload(system8, db8, wl, rm2_combined(), max_slices=20)
        cmp = compare_runs(base, run)
        assert cmp.savings_pct > 2.0
        assert max(v.slowdown_pct for v in cmp.violations) < 9.0
