#!/usr/bin/env python
"""Bench-regression gate: diff fresh ``BENCH_*.json`` against baselines.

Compares every freshly produced artifact in ``benchmarks/_artifacts/``
against the committed baselines in ``benchmarks/_artifacts/baselines/`` and
fails (exit 1) on:

* any ``result_hash`` mismatch or ``bit_identical: false`` -- semantic
  drift is never tolerated, independent of timing noise;
* a fidelity-context mismatch (``ncores``, ``max_slices``, ...) -- the
  baseline no longer measures the same experiment and must be refreshed;
* a wall-clock regression beyond ``--threshold`` (default 25%) after
  rescaling the baseline by the two machines' ``calibration_s`` yardsticks,
  ignoring sub-``--min-delta-s`` absolute differences (timing noise on
  near-instant measurements is not a regression);
* a ``speedup`` ratio dropping by more than ``--threshold``, skipped when
  every wall-clock in the same record is below ``--min-delta-s``.

``events_per_sec`` throughput deltas are printed as report-only ``note``
lines next to each verdict -- never gated (the wall-clocks behind them
already are).

Refreshing baselines (after an intentional perf or semantics change)::

    PYTHONPATH=src python tools/bench_smoke.py
    PYTHONPATH=src python tools/bench_engine_speedup.py --horizon 512 --max-slices 24
    PYTHONPATH=src python tools/bench_manager_overhead.py
    python tools/bench_compare.py --update   # copy fresh over baselines
    git add benchmarks/_artifacts/baselines/ && git commit

EXPERIMENTS.md documents the thresholds and the full procedure.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import shutil
import sys

ARTIFACT_DIR = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "benchmarks", "_artifacts")
)
BASELINE_DIR = os.path.join(ARTIFACT_DIR, "baselines")

#: Keys that must match exactly between baseline and fresh artifacts.
EXACT_KEYS = {
    "result_hash",
    "bit_identical",
    "cold_store_hits",
    "warm_store_hits",
    "rma_invocations",
    "result_store",
}

#: Fidelity context: a mismatch means the artifacts measure different
#: experiments and the baseline must be refreshed, not compared.
CONTEXT_KEYS = {
    "benchmark",
    "ncores",
    "horizon_intervals",
    "max_slices",
    "accesses_per_set",
    "repeats",
}

#: Keys never compared (machine- or run-specific metadata).
SKIP_KEYS = {"timestamp", "calibration_s"}


#: Sentinel yielded for keys the fresh artifact no longer produces.
_MISSING = object()


def _walk(base: dict, fresh: dict, path: str = ""):
    """Yield (path, key, base_value, fresh_value) for every baseline leaf.

    Keys present in the baseline but absent from the fresh artifact yield
    ``_MISSING`` as the fresh value: a disappearing metric or manager must
    fail the gate, not silently skip its checks.
    """
    for key in base:
        b = base[key]
        here = f"{path}.{key}" if path else key
        if key not in fresh:
            yield path, key, b, _MISSING, here
            continue
        f = fresh[key]
        if isinstance(b, dict) and isinstance(f, dict):
            yield from _walk(b, f, here)
        else:
            yield path, key, b, f, here


def _max_wall_s(record: dict) -> float:
    """Largest wall-clock measurement in one record (0 if none)."""
    walls = [
        v
        for k, v in record.items()
        if isinstance(v, (int, float)) and k.endswith("_s") and k not in SKIP_KEYS
    ]
    return max(walls, default=0.0)


def _record_at(report: dict, path: str) -> dict:
    node = report
    for part in [p for p in path.split(".") if p]:
        node = node[part]
    return node


def compare_reports(
    base: dict,
    fresh: dict,
    threshold: float = 0.25,
    min_delta_s: float = 0.1,
    notes: list[str] | None = None,
) -> list[str]:
    """Problems found comparing one baseline report against a fresh one.

    ``notes``, when given, collects report-only observations -- throughput
    (``events_per_sec``) deltas against the baseline -- that never fail the
    gate: wall-clocks are gated with calibration rescaling and noise slack,
    so their reciprocal would double-count every regression, but the delta
    is the headline number a perf PR wants printed next to ``ok``.
    """
    problems: list[str] = []
    # Calibration rescale: a slower machine inflates every wall-clock by
    # roughly the same factor as the fixed yardstick workload.
    base_cal = base.get("calibration_s") or 0.0
    fresh_cal = fresh.get("calibration_s") or 0.0
    scale = fresh_cal / base_cal if base_cal and fresh_cal else 1.0

    for path, key, b, f, here in _walk(base, fresh):
        if key in SKIP_KEYS:
            continue
        if f is _MISSING:
            problems.append(
                f"{here}: present in the baseline but missing from the fresh "
                "artifact (metric or manager disappeared)"
            )
            continue
        if key in CONTEXT_KEYS:
            if b != f:
                problems.append(
                    f"{here}: fidelity context changed ({b!r} -> {f!r}); "
                    "refresh the baselines (see tools/bench_compare.py --update)"
                )
            continue
        if key in EXACT_KEYS:
            if key == "bit_identical" and f is not True:
                problems.append(f"{here}: fresh run is not bit-identical")
            elif b != f:
                problems.append(f"{here}: {b!r} -> {f!r} (exact-match key)")
            continue
        if key.endswith("events_per_sec"):
            if (
                notes is not None
                and isinstance(b, (int, float))
                and isinstance(f, (int, float))
                and b > 0
            ):
                notes.append(
                    f"{here}: {b:,.0f} -> {f:,.0f} events/s "
                    f"({(f - b) / b:+.1%})"
                )
            continue
        if key == "speedup":
            if _max_wall_s(_record_at(base, path)) < min_delta_s:
                continue  # nothing measurable behind the ratio
            if isinstance(b, (int, float)) and isinstance(f, (int, float)):
                if f < b * (1.0 - threshold):
                    problems.append(
                        f"{here}: speedup regressed {b:.2f}x -> {f:.2f}x "
                        f"(> {threshold:.0%} drop)"
                    )
            continue
        is_wall = key.endswith("_s")
        if is_wall and isinstance(b, (int, float)) and isinstance(f, (int, float)):
            allowed = b * scale * (1.0 + threshold)
            if f > allowed and (f - b * scale) > min_delta_s:
                problems.append(
                    f"{here}: wall-clock regressed {b:.3f}s -> {f:.3f}s "
                    f"(allowed {allowed:.3f}s at calibration scale {scale:.2f})"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--artifact-dir", default=ARTIFACT_DIR)
    parser.add_argument("--baseline-dir", default=BASELINE_DIR)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative wall-clock/speedup regression allowed",
    )
    parser.add_argument(
        "--min-delta-s",
        type=float,
        default=0.1,
        help="absolute wall-clock slack (timing noise floor)",
    )
    parser.add_argument(
        "--update", action="store_true", help="copy fresh artifacts over the baselines"
    )
    args = parser.parse_args(argv)

    fresh_paths = sorted(glob.glob(os.path.join(args.artifact_dir, "BENCH_*.json")))
    if not fresh_paths:
        print(f"no fresh BENCH_*.json under {args.artifact_dir}", file=sys.stderr)
        return 2

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in fresh_paths:
            dst = os.path.join(args.baseline_dir, os.path.basename(path))
            shutil.copyfile(path, dst)
            print(f"baseline updated: {dst}")
        return 0

    failed = False
    for path in fresh_paths:
        name = os.path.basename(path)
        base_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(base_path):
            print(
                f"FAIL {name}: no committed baseline "
                "(run tools/bench_compare.py --update and commit)"
            )
            failed = True
            continue
        with open(base_path, encoding="utf-8") as fh:
            base = json.load(fh)
        with open(path, encoding="utf-8") as fh:
            fresh = json.load(fh)
        notes: list[str] = []
        problems = compare_reports(base, fresh, args.threshold, args.min_delta_s, notes=notes)
        if problems:
            failed = True
            print(f"FAIL {name}:")
            for p in problems:
                print(f"  - {p}")
        else:
            print(f"ok   {name}")
        for n in notes:
            print(f"  note {n}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
