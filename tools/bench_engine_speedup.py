#!/usr/bin/env python
"""Benchmark: incremental engine vs the frozen full-rescan reference.

Replays the same 8-core dynamic scenario through the layered kernel
(:mod:`repro.simulation.engine`) and the pre-refactor monolithic loop
(:mod:`repro.simulation.legacy_sim`), verifies the results are
bit-identical, and records wall-clock plus speedup into
``benchmarks/_artifacts/BENCH_engine_speedup.json`` so the perf trajectory
is tracked as an artefact per commit.

Usage::

    PYTHONPATH=src python tools/bench_engine_speedup.py \
        [--ncores 8] [--horizon 512] [--max-slices 24] [--repeats 3]

The database is a small fixed benchmark subset (the test suite's seven
apps), so on a machine that has run the tests the build step is served from
``.sim_cache`` instantly.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))
from _bench_common import (  # noqa: E402
    BENCHMARK_SUBSET,
    add_src_to_path,
    machine_calibration_s,
    run_result_hash,
    runs_bit_identical,
    time_best_of,
    write_bench_artifact,
)

# Small-suite database at the test suite's trace density: reuses the test
# cache when present.  Must be set before repro.experiments.runner imports.
os.environ.setdefault("REPRO_ACCESSES_PER_SET", "400")
add_src_to_path()

from repro.core.managers import StaticBaselineManager, rm2_combined  # noqa: E402
from repro.experiments.runner import get_context  # noqa: E402
from repro.scenarios import poisson_arrivals  # noqa: E402
from repro.simulation.legacy_sim import LegacyRMASimulator  # noqa: E402
from repro.simulation.rma_sim import RMASimulator  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ncores", type=int, default=8)
    parser.add_argument(
        "--horizon", type=int, default=512, help="scenario horizon in intervals (total work)"
    )
    parser.add_argument("--max-slices", type=int, default=24)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    ctx = get_context(args.ncores, names=BENCHMARK_SUBSET)
    scenario = poisson_arrivals(
        f"bench-{args.ncores}core",
        args.ncores,
        BENCHMARK_SUBSET,
        rate_per_interval=0.25,
        horizon_intervals=args.horizon,
        seed=args.seed,
    )

    managers = {"baseline": StaticBaselineManager, "rm2-combined": rm2_combined}
    report: dict = {
        "benchmark": "engine_speedup",
        "ncores": args.ncores,
        "horizon_intervals": args.horizon,
        "max_slices": args.max_slices,
        "accesses_per_set": int(os.environ["REPRO_ACCESSES_PER_SET"]),
        "repeats": args.repeats,
        "calibration_s": round(machine_calibration_s(), 4),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "managers": {},
    }
    identical = True
    for name, factory in managers.items():
        legacy_s, legacy_run = time_best_of(
            lambda: LegacyRMASimulator(
                ctx.system,
                ctx.db,
                scenario.workload,
                factory(),
                max_slices=args.max_slices,
                scenario=scenario,
            ).run(),
            args.repeats,
        )
        engine_s, engine_run = time_best_of(
            lambda: RMASimulator(
                ctx.system,
                ctx.db,
                scenario.workload,
                factory(),
                max_slices=args.max_slices,
                scenario=scenario,
            ).run(),
            args.repeats,
        )
        same = runs_bit_identical(legacy_run, engine_run)
        identical = identical and same
        report["managers"][name] = {
            "legacy_s": round(legacy_s, 4),
            "engine_s": round(engine_s, 4),
            "speedup": round(legacy_s / engine_s, 3),
            "bit_identical": same,
            "result_hash": run_result_hash(engine_run),
        }
        print(
            f"{name:14s} legacy {legacy_s:7.3f}s  engine {engine_s:7.3f}s  "
            f"speedup {legacy_s / engine_s:5.2f}x  bit-identical={same}"
        )
    report["bit_identical"] = identical

    write_bench_artifact("engine_speedup", report)
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
