#!/usr/bin/env python
"""Run the scenario-replay service over HTTP.

Usage::

    PYTHONPATH=src python tools/serve.py [--host H] [--port P] [--workers N]
        [--ncores N ...] [--cache-dir PATH] [--benchmarks a,b,...]

``--ncores`` pre-warms experiment contexts (database + results store) for
those system sizes at startup; other sizes are built lazily on first
request.  ``--benchmarks`` restricts the simulation database to a named
subset (the CI smoke uses the seven-app tier-1 set so it shares the test
suite's cached database).  Fidelity knobs come from the environment
(``REPRO_MAX_SLICES``, ``REPRO_ACCESSES_PER_SET``), exactly as for the
experiment CLI.

With ``--port 0`` the OS picks a free port; the bound address is printed
as ``listening on http://host:port`` (stdout, flushed) so wrappers such as
``tools/service_smoke.py`` can discover it.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.runner import DEFAULT_CACHE_DIR, get_context  # noqa: E402
from repro.service import ReplayService, make_server  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8100)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--ncores", type=int, nargs="*", default=[],
                        help="system sizes to pre-warm contexts for")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset for the "
                             "simulation database (default: full catalogue)")
    args = parser.parse_args(argv)

    names = args.benchmarks.split(",") if args.benchmarks else None

    def factory(ncores: int):
        return get_context(ncores, cache_dir=args.cache_dir, names=names)

    service = ReplayService(context_factory=factory, workers=args.workers)
    for ncores in args.ncores:
        service.ctx_for(ncores)
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
