#!/usr/bin/env python
"""Run the scenario-replay service over HTTP.

Usage::

    PYTHONPATH=src python tools/serve.py [--host H] [--port P] [--workers N]
        [--executor thread|process] [--processes N] [--max-queue N]
        [--journal-dir PATH | --no-journal] [--ncores N ...]
        [--cache-dir PATH] [--benchmarks a,b,...]

``--ncores`` pre-warms experiment contexts (database + results store) for
those system sizes at startup; other sizes are built lazily on first
request.  ``--benchmarks`` restricts the simulation database to a named
subset (the CI smoke uses the seven-app tier-1 set so it shares the test
suite's cached database).  Fidelity knobs come from the environment
(``REPRO_MAX_SLICES``, ``REPRO_ACCESSES_PER_SET``), exactly as for the
experiment CLI.

Durability is on by default: job transitions are journalled to
``<cache-dir>/journal/`` and unsettled journalled jobs are re-submitted on
boot (printed as ``recovered N jobs from journal``) before the listening
socket opens.  ``--no-journal`` opts out.  ``--executor process`` replays
jobs on a persistent process pool (``--processes`` per system size) instead
of the worker threads; ``--max-queue`` bounds admission (full queues answer
429 + ``Retry-After``).

With ``--port 0`` the OS picks a free port; the bound address is printed
as ``listening on http://host:port`` (stdout, flushed) so wrappers such as
``tools/service_smoke.py`` can discover it.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.runner import DEFAULT_CACHE_DIR, get_context  # noqa: E402
from repro.service import EXECUTOR_KINDS, ReplayService, make_server  # noqa: E402
from repro.service.pool import DEFAULT_MAX_QUEUE  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8100)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_KINDS,
        default="thread",
        help="where replays run: in the worker threads, or on a persistent process pool",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="process-pool size per system ncores (default: --workers)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=DEFAULT_MAX_QUEUE,
        help="admission-queue bound; overflowing submissions get 429 + Retry-After",
    )
    parser.add_argument(
        "--journal-dir",
        default=None,
        help="job-journal directory (default: <cache-dir>/journal)",
    )
    parser.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the durable job journal (jobs die with the process)",
    )
    parser.add_argument(
        "--ncores",
        type=int,
        nargs="*",
        default=[],
        help="system sizes to pre-warm contexts for",
    )
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    parser.add_argument(
        "--benchmarks",
        default=None,
        help="comma-separated benchmark subset for the "
        "simulation database (default: full catalogue)",
    )
    args = parser.parse_args(argv)

    names = args.benchmarks.split(",") if args.benchmarks else None

    def factory(ncores: int):
        return get_context(ncores, cache_dir=args.cache_dir, names=names)

    journal_dir = None
    if not args.no_journal:
        journal_dir = args.journal_dir or os.path.join(args.cache_dir, "journal")

    service = ReplayService(
        context_factory=factory,
        workers=args.workers,
        executor=args.executor,
        processes=args.processes,
        max_queue=args.max_queue,
        journal=journal_dir,
    )
    for ncores in args.ncores:
        service.ctx_for(ncores)
    recovered = service.recover()
    if recovered:
        print(f"recovered {len(recovered)} jobs from journal", flush=True)
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
