#!/usr/bin/env python
"""Run the scenario-replay service over HTTP.

Usage::

    PYTHONPATH=src python tools/serve.py [--host H] [--port P] [--workers N]
        [--executor thread|process] [--processes N] [--max-queue N]
        [--journal-dir PATH | --no-journal] [--ncores N ...]
        [--cache-dir PATH] [--benchmarks a,b,...]
        [--max-retries N] [--job-timeout S]
        [--fault-seed SEED] [--fault SITE=RATE[:MAX_FIRES[:PARAM]] ...]

``--ncores`` pre-warms experiment contexts (database + results store) for
those system sizes at startup; other sizes are built lazily on first
request.  ``--benchmarks`` restricts the simulation database to a named
subset (the CI smoke uses the seven-app tier-1 set so it shares the test
suite's cached database).  Fidelity knobs come from the environment
(``REPRO_MAX_SLICES``, ``REPRO_ACCESSES_PER_SET``), exactly as for the
experiment CLI.

Durability is on by default: job transitions are journalled to
``<cache-dir>/journal/`` and unsettled journalled jobs are re-submitted on
boot (printed as ``recovered N jobs from journal``) before the listening
socket opens.  ``--no-journal`` opts out.  ``--executor process`` replays
jobs on a persistent process pool (``--processes`` per system size) instead
of the worker threads; ``--max-queue`` bounds admission (full queues answer
429 + ``Retry-After``).

Self-healing knobs: ``--max-retries`` bounds per-job retry allowance
(attempt failures are retried with capped exponential backoff before a job
settles ``failed``), ``--job-timeout`` arms the per-attempt watchdog (a hung
attempt is abandoned, its executor recycled, the job requeued).  Chaos
testing: ``--fault SITE=RATE[:MAX_FIRES[:PARAM]]`` (repeatable) installs a
deterministic fault plan seeded by ``--fault-seed``; injection sites are
listed in ``repro.service.faults.SITES``.  ``tools/chaos_smoke.py`` drives
these in-process instead.

With ``--port 0`` the OS picks a free port; the bound address is printed
as ``listening on http://host:port`` (stdout, flushed) so wrappers such as
``tools/service_smoke.py`` can discover it.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.runner import DEFAULT_CACHE_DIR, get_context  # noqa: E402
from repro.service import EXECUTOR_KINDS, ReplayService, faults, make_server  # noqa: E402
from repro.service.pool import DEFAULT_MAX_QUEUE, DEFAULT_MAX_RETRIES  # noqa: E402


def _parse_fault(arg: str) -> faults.FaultRule:
    """``SITE=RATE[:MAX_FIRES[:PARAM]]`` -> a validated :class:`FaultRule`."""
    try:
        site, _, spec = arg.partition("=")
        parts = spec.split(":")
        rate = float(parts[0])
        max_fires = int(parts[1]) if len(parts) > 1 and parts[1] else None
        param = float(parts[2]) if len(parts) > 2 and parts[2] else None
    except (ValueError, IndexError) as exc:
        raise argparse.ArgumentTypeError(
            f"expected SITE=RATE[:MAX_FIRES[:PARAM]], got {arg!r}"
        ) from exc
    try:
        return faults.FaultRule(site, rate=rate, max_fires=max_fires, param=param)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8100)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--executor",
        choices=EXECUTOR_KINDS,
        default="thread",
        help="where replays run: in the worker threads, or on a persistent process pool",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="process-pool size per system ncores (default: --workers)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=DEFAULT_MAX_QUEUE,
        help="admission-queue bound; overflowing submissions get 429 + Retry-After",
    )
    parser.add_argument(
        "--journal-dir",
        default=None,
        help="job-journal directory (default: <cache-dir>/journal)",
    )
    parser.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the durable job journal (jobs die with the process)",
    )
    parser.add_argument(
        "--ncores",
        type=int,
        nargs="*",
        default=[],
        help="system sizes to pre-warm contexts for",
    )
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    parser.add_argument(
        "--benchmarks",
        default=None,
        help="comma-separated benchmark subset for the "
        "simulation database (default: full catalogue)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=DEFAULT_MAX_RETRIES,
        help="failed attempts are retried up to this many times before a "
        "job settles failed",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="per-attempt watchdog deadline in seconds (default: unarmed)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the deterministic fault plan (with --fault)",
    )
    parser.add_argument(
        "--fault",
        type=_parse_fault,
        action="append",
        default=[],
        metavar="SITE=RATE[:MAX_FIRES[:PARAM]]",
        help="inject deterministic faults at SITE (repeatable); see "
        "repro.service.faults.SITES",
    )
    args = parser.parse_args(argv)

    if args.fault:
        plan = faults.FaultPlan(args.fault_seed, args.fault)
        faults.install(plan)
        sites = ", ".join(rule.site for rule in args.fault)
        print(f"fault plan installed (seed {args.fault_seed}): {sites}", flush=True)

    names = args.benchmarks.split(",") if args.benchmarks else None

    def factory(ncores: int):
        return get_context(ncores, cache_dir=args.cache_dir, names=names)

    journal_dir = None
    if not args.no_journal:
        journal_dir = args.journal_dir or os.path.join(args.cache_dir, "journal")

    service = ReplayService(
        context_factory=factory,
        workers=args.workers,
        executor=args.executor,
        processes=args.processes,
        max_queue=args.max_queue,
        journal=journal_dir,
        max_retries=args.max_retries,
        job_timeout_s=args.job_timeout,
    )
    for ncores in args.ncores:
        service.ctx_for(ncores)
    recovered = service.recover()
    if recovered:
        print(f"recovered {len(recovered)} jobs from journal", flush=True)
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
